// eva_loadgen: open-loop load harness for eva_serve_main (DESIGN.md
// "Request timelines & load harness") — the serving regression gate.
//
// Arrivals are an open-loop Poisson process: request send times are
// drawn up front from exponential inter-arrival gaps at --rate and a
// dispatcher releases each request at its scheduled instant regardless
// of how the server is doing — so, unlike a closed-loop client, a slow
// server accumulates queueing delay instead of silently throttling the
// offered load. Each worker owns one persistent connection; client-side
// dispatch skew (scheduled -> actually sent) is measured and reported so
// an undersized worker pool cannot masquerade as server latency.
//
// The workload mixes priorities, deadlines, circuit types, and warm/cold
// cache behaviour (--warm-frac requests reuse a small seed pool, so the
// server's WL-canonical-hash ResultCache sees repeats; the rest use
// unique seeds and always miss). Results are written as BENCH-style JSON
// (--out): offered vs. achieved vs. goodput rates, status counts,
// client- and server-side end-to-end percentiles, per-stage
// (queue/decode/cache/verify) percentiles from the terminator-line
// timelines, the stage-sum vs. e2e coverage ratio, and the server's own
// {"cmd":"stats"} snapshot fetched after the run.
//
// Usage:
//   eva_loadgen [--host H] [--port P] [--rate R] [--duration S]
//               [--n N] [--temperature T] [--deadline-ms D]
//               [--high-frac F] [--low-frac F] [--types a,b,...]
//               [--warm-frac F] [--warm-seeds K] [--conns C]
//               [--retry N] [--retry-base-ms B]
//               [--seed S] [--out PATH] [--strict]
//
// Environment defaults: EVA_LOADGEN_RATE, EVA_LOADGEN_DURATION_SEC,
// EVA_LOADGEN_CONNS, EVA_LOADGEN_RETRY, EVA_LOADGEN_OUT.
//
// --retry N re-sends a request up to N more times when its terminator
// is "rejected"/"unavailable" (waiting the larger of the server's
// retry_after_ms hint and an exponential-backoff delay from
// serve/backoff.hpp — the same policy the router applies internally) or
// when the transport fails mid-response (reconnect + resend). Every
// response line is also checked for protocol integrity: a line that is
// not a complete JSON object counts as "malformed" in the output JSON,
// and any malformed line fails the run — the chaos gate's
// zero-corruption assertion.
//
// Exit code: 0 when every request got a terminator and no line was
// malformed; with --strict, also requires every terminator to be "ok"
// (the CI gate runs at a low rate where timeouts/rejects mean a
// regression).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "serve/backoff.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// --- config ------------------------------------------------------------------

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end == v || *end != '\0') ? fallback : parsed;
}

struct Config {
  std::string host = "127.0.0.1";
  int port = 7077;
  double rate = env_double("EVA_LOADGEN_RATE", 4.0);        // req/s offered
  double duration_s = env_double("EVA_LOADGEN_DURATION_SEC", 5.0);
  int n = 1;                 // topologies per request
  double temperature = 0.0;  // 0 = server default
  double deadline_ms = 0.0;  // 0 = none
  double high_frac = 0.1;    // priority mix: high / low / rest normal
  double low_frac = 0.1;
  std::vector<std::string> types;  // circuit-type mix (round-robin); empty
                                   // = server default type
  double warm_frac = 0.5;    // fraction reusing the warm seed pool
  int warm_seeds = 8;        // pool size: smaller = warmer
  int conns = static_cast<int>(env_double("EVA_LOADGEN_CONNS", 16));
  int retry = static_cast<int>(env_double("EVA_LOADGEN_RETRY", 0));
  double retry_base_ms = 25.0;  // backoff base for --retry
  std::uint64_t seed = 1;    // arrival + mix RNG
  std::string out = [] {
    const char* v = std::getenv("EVA_LOADGEN_OUT");
    return std::string(v && *v ? v : "BENCH_loadgen.json");
  }();
  bool strict = false;
};

// --- tiny line-oriented client ----------------------------------------------

int connect_to(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  const auto give_up = Clock::now() + std::chrono::seconds(5);
  while (Clock::now() < give_up) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

bool send_line(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t k = ::send(fd, out.data() + off, out.size() - off, 0);
    if (k <= 0) return false;
    off += static_cast<std::size_t>(k);
  }
  return true;
}

/// Read one \n-terminated line (buffered in `buf`); false on EOF/error.
bool read_line(int fd, std::string& buf, std::string& line) {
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    const ssize_t k = ::recv(fd, chunk, sizeof(chunk), 0);
    if (k <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(k));
  }
}

// --- minimal value extraction from a response line ---------------------------
// The server's terminator keys are unique within a line, so flat string
// search is exact enough here (this binary intentionally links nothing).

bool find_number(const std::string& line, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

std::string find_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

// --- per-request record ------------------------------------------------------

struct Shot {
  double sched_s = 0.0;   // scheduled send time, relative to run start
  std::string payload;    // request line
};

struct Outcome {
  std::string status;       // "" = transport failure before a terminator
  double client_ms = 0.0;   // send -> terminator observed
  double server_ms = 0.0;   // terminator latency_ms
  double skew_ms = 0.0;     // scheduled -> actually sent (client-side lag)
  double queue_ms = 0.0, decode_ms = 0.0, cache_ms = 0.0, verify_ms = 0.0;
  double surrogate_ms = 0.0;
  double tokens = 0.0;
  int items_valid = 0;
  int retries = 0;    // extra attempts this request consumed
  int malformed = 0;  // response lines that were not complete JSON objects
  bool has_stages = false;
};

struct Aggregate {
  std::mutex mu;
  std::vector<Outcome> outcomes;
};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

void percentiles_json(FILE* f, const char* key,
                      const std::vector<double>& xs) {
  std::fprintf(f,
               "\"%s\": {\"count\": %zu, \"mean\": %.6g, \"p50\": %.6g, "
               "\"p90\": %.6g, \"p99\": %.6g, \"max\": %.6g}",
               key, xs.size(), mean(xs), percentile(xs, 50.0),
               percentile(xs, 90.0), percentile(xs, 99.0),
               xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end()));
}

// --- worker ------------------------------------------------------------------

struct Dispatcher {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::pair<Shot, Clock::time_point>> ready;  // shot + due time
  bool closed = false;
};

void worker_loop(const Config& cfg, int widx, Dispatcher& disp,
                 Aggregate& agg) {
  const eva::serve::BackoffPolicy backoff{cfg.retry, cfg.retry_base_ms,
                                          1000.0};
  int fd = connect_to(cfg.host, cfg.port);
  std::string buf;
  std::uint64_t attempt_seq = 0;
  for (;;) {
    std::pair<Shot, Clock::time_point> job;
    {
      std::unique_lock<std::mutex> lk(disp.mu);
      disp.cv.wait(lk, [&] { return disp.closed || !disp.ready.empty(); });
      if (disp.ready.empty()) return;  // closed and drained
      job = std::move(disp.ready.front());
      disp.ready.pop_front();
    }
    Outcome oc;
    oc.skew_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                           job.second)
                     .count();
    const auto t0 = Clock::now();
    bool got_done = false;
    for (int attempt = 0; attempt <= cfg.retry; ++attempt) {
      if (attempt > 0) ++oc.retries;
      if (fd < 0) fd = connect_to(cfg.host, cfg.port);  // lazy reconnect
      if (fd < 0) break;
      got_done = false;
      oc.status.clear();
      std::string done_line;
      if (send_line(fd, job.first.payload)) {
        std::string line;
        oc.items_valid = 0;
        while (read_line(fd, buf, line)) {
          // Integrity check: every line the server emits must be one
          // complete JSON object — a torn line (e.g. a replica killed
          // mid-write) is protocol corruption and fails the whole run.
          if (line.empty() || line.front() != '{' || line.back() != '}') {
            ++oc.malformed;
            break;
          }
          if (line.find("\"valid\": true") != std::string::npos) {
            ++oc.items_valid;
          }
          if (line.find("\"done\"") == std::string::npos) continue;
          got_done = true;
          done_line = line;
          oc.client_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count();
          oc.status = find_string(line, "status");
          find_number(line, "latency_ms", &oc.server_ms);
          double v = 0.0;
          oc.has_stages = find_number(line, "queue_ms", &oc.queue_ms);
          find_number(line, "decode_ms", &oc.decode_ms);
          find_number(line, "cache_ms", &oc.cache_ms);
          find_number(line, "surrogate_ms", &oc.surrogate_ms);
          find_number(line, "verify_ms", &oc.verify_ms);
          if (find_number(line, "tokens", &v)) oc.tokens = v;
          break;
        }
      }
      if (!got_done) {
        // Transport failure: drop the connection so the retry (or the
        // next job) reconnects from scratch.
        if (fd >= 0) ::close(fd);
        fd = -1;
        buf.clear();
        if (attempt < cfg.retry) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(backoff.delay_ms(
                  attempt + 1,
                  cfg.seed ^ static_cast<std::uint64_t>(widx) << 32 ^
                      ++attempt_seq)));
        }
        continue;
      }
      // Backpressure terminators are retryable while budget remains,
      // waiting the larger of the server's hint and the backoff delay.
      if ((oc.status == "rejected" || oc.status == "unavailable") &&
          attempt < cfg.retry) {
        double hint_ms = 0.0;
        find_number(done_line, "retry_after_ms", &hint_ms);
        const double wait_ms = std::max(
            hint_ms,
            backoff.delay_ms(attempt + 1,
                             cfg.seed ^ static_cast<std::uint64_t>(widx) << 32 ^
                                 ++attempt_seq));
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(wait_ms));
        continue;
      }
      break;
    }
    std::lock_guard<std::mutex> lk(agg.mu);
    agg.outcomes.push_back(std::move(oc));
  }
  // not reached; fd cleanup below
}

// --- payload synthesis -------------------------------------------------------

std::string make_payload(const Config& cfg, std::mt19937_64& rng,
                         std::size_t index) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::string p = "{\"n\": " + std::to_string(cfg.n);
  if (cfg.temperature > 0.0) {
    p += ", \"temperature\": " + std::to_string(cfg.temperature);
  }
  if (cfg.deadline_ms > 0.0) {
    p += ", \"deadline_ms\": " + std::to_string(cfg.deadline_ms);
  }
  const double pr = uni(rng);
  if (pr < cfg.high_frac) {
    p += ", \"priority\": \"high\"";
  } else if (pr < cfg.high_frac + cfg.low_frac) {
    p += ", \"priority\": \"low\"";
  }
  if (!cfg.types.empty()) {
    p += ", \"type\": \"" + cfg.types[index % cfg.types.size()] + "\"";
  }
  // Warm requests draw seeds from a small pool: the first occurrence of
  // each pooled seed is a cold miss, every repeat is a canonical-hash
  // cache hit. Cold requests use unique seeds and always miss.
  std::uint64_t seed;
  if (uni(rng) < cfg.warm_frac && cfg.warm_seeds > 0) {
    seed = 1 + (rng() % static_cast<std::uint64_t>(cfg.warm_seeds));
  } else {
    seed = 1'000'000 + index;
  }
  p += ", \"seed\": " + std::to_string(seed) + "}";
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--host") cfg.host = next();
    else if (arg == "--port") cfg.port = std::atoi(next());
    else if (arg == "--rate") cfg.rate = std::atof(next());
    else if (arg == "--duration") cfg.duration_s = std::atof(next());
    else if (arg == "--n") cfg.n = std::max(1, std::atoi(next()));
    else if (arg == "--temperature") cfg.temperature = std::atof(next());
    else if (arg == "--deadline-ms") cfg.deadline_ms = std::atof(next());
    else if (arg == "--high-frac") cfg.high_frac = std::atof(next());
    else if (arg == "--low-frac") cfg.low_frac = std::atof(next());
    else if (arg == "--warm-frac") cfg.warm_frac = std::atof(next());
    else if (arg == "--warm-seeds") cfg.warm_seeds = std::atoi(next());
    else if (arg == "--conns") cfg.conns = std::max(1, std::atoi(next()));
    else if (arg == "--retry") cfg.retry = std::max(0, std::atoi(next()));
    else if (arg == "--retry-base-ms") cfg.retry_base_ms = std::atof(next());
    else if (arg == "--seed") cfg.seed = static_cast<std::uint64_t>(
        std::strtoull(next(), nullptr, 10));
    else if (arg == "--out") cfg.out = next();
    else if (arg == "--strict") cfg.strict = true;
    else if (arg == "--types") {
      std::string list = next();
      std::size_t pos = 0, comma;
      while ((comma = list.find(',', pos)) != std::string::npos) {
        cfg.types.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
      }
      if (pos < list.size()) cfg.types.push_back(list.substr(pos));
    } else {
      std::fprintf(stderr, "eva_loadgen: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (!(cfg.rate > 0.0) || !(cfg.duration_s > 0.0)) {
    std::fprintf(stderr, "eva_loadgen: --rate and --duration must be > 0\n");
    return 2;
  }

  // Deterministic arrival schedule: exponential inter-arrival gaps.
  std::mt19937_64 rng(cfg.seed);
  std::exponential_distribution<double> gap(cfg.rate);
  std::vector<Shot> shots;
  double t = gap(rng);
  while (t < cfg.duration_s && shots.size() < 200'000) {
    Shot s;
    s.sched_s = t;
    s.payload = make_payload(cfg, rng, shots.size());
    shots.push_back(std::move(s));
    t += gap(rng);
  }
  std::fprintf(stderr,
               "eva_loadgen: offering %zu requests over %.1fs (%.2f rps) to "
               "%s:%d with %d connections\n",
               shots.size(), cfg.duration_s, cfg.rate, cfg.host.c_str(),
               cfg.port, cfg.conns);

  Dispatcher disp;
  Aggregate agg;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.conns));
  for (int i = 0; i < cfg.conns; ++i) {
    workers.emplace_back([&, i] { worker_loop(cfg, i, disp, agg); });
  }

  // Open-loop dispatch: release each shot at its scheduled instant, no
  // matter how many are still in flight.
  const auto start = Clock::now();
  for (Shot& s : shots) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(s.sched_s));
    std::this_thread::sleep_until(due);
    {
      std::lock_guard<std::mutex> lk(disp.mu);
      disp.ready.emplace_back(std::move(s), due);
    }
    disp.cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lk(disp.mu);
    disp.closed = true;
  }
  disp.cv.notify_all();
  for (auto& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Post-run: the server's own live snapshot, embedded verbatim.
  std::string stats_line;
  {
    const int fd = connect_to(cfg.host, cfg.port);
    if (fd >= 0) {
      std::string buf;
      if (send_line(fd, "{\"cmd\":\"stats\"}")) {
        read_line(fd, buf, stats_line);
      }
      ::close(fd);
    }
  }

  // Aggregate.
  std::vector<double> client_ms, server_ms, skew_ms;
  std::vector<double> queue_ms, decode_ms, cache_ms, surrogate_ms, verify_ms,
      sum_ms;
  std::size_t n_ok = 0, n_timeout = 0, n_rejected = 0, n_other = 0,
              n_transport = 0;
  long long n_retries = 0, n_malformed = 0;
  long long valid_items = 0;
  double tokens = 0.0;
  for (const Outcome& oc : agg.outcomes) {
    skew_ms.push_back(oc.skew_ms);
    n_retries += oc.retries;
    n_malformed += oc.malformed;
    if (oc.status.empty()) {
      ++n_transport;
      continue;
    }
    if (oc.status == "ok") {
      ++n_ok;
      client_ms.push_back(oc.client_ms);
      server_ms.push_back(oc.server_ms);
      valid_items += oc.items_valid;
      tokens += oc.tokens;
      if (oc.has_stages) {
        queue_ms.push_back(oc.queue_ms);
        decode_ms.push_back(oc.decode_ms);
        cache_ms.push_back(oc.cache_ms);
        surrogate_ms.push_back(oc.surrogate_ms);
        verify_ms.push_back(oc.verify_ms);
        sum_ms.push_back(oc.queue_ms + oc.decode_ms + oc.cache_ms +
                         oc.surrogate_ms + oc.verify_ms);
      }
    } else if (oc.status == "timeout") {
      ++n_timeout;
    } else if (oc.status == "rejected") {
      ++n_rejected;
    } else {
      ++n_other;
    }
  }
  // Stage coverage: how much of the server-reported e2e the four stages
  // explain (should be ~1.0 — the acceptance bar for the attribution).
  const double stage_coverage =
      server_ms.empty() || mean(server_ms) <= 0.0
          ? 0.0
          : mean(sum_ms) / mean(server_ms);

  FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "eva_loadgen: cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"context\": {\"tool\": \"eva_loadgen\", ");
  std::fprintf(f,
               "\"rate_rps\": %.6g, \"duration_s\": %.6g, \"n\": %d, "
               "\"deadline_ms\": %.6g, \"high_frac\": %.6g, \"low_frac\": "
               "%.6g, \"warm_frac\": %.6g, \"warm_seeds\": %d, \"conns\": "
               "%d, \"seed\": %llu},\n",
               cfg.rate, cfg.duration_s, cfg.n, cfg.deadline_ms,
               cfg.high_frac, cfg.low_frac, cfg.warm_frac, cfg.warm_seeds,
               cfg.conns, static_cast<unsigned long long>(cfg.seed));
  std::fprintf(f, "  \"results\": {\n");
  std::fprintf(f, "    \"offered\": %zu,\n", shots.size());
  std::fprintf(f, "    \"offered_rps\": %.6g,\n",
               static_cast<double>(shots.size()) / cfg.duration_s);
  std::fprintf(f,
               "    \"counts\": {\"ok\": %zu, \"timeout\": %zu, \"rejected\": "
               "%zu, \"other\": %zu, \"transport_error\": %zu, \"malformed\": "
               "%lld, \"retries\": %lld},\n",
               n_ok, n_timeout, n_rejected, n_other, n_transport, n_malformed,
               n_retries);
  std::fprintf(f, "    \"goodput_rps\": %.6g,\n",
               wall_s > 0.0 ? static_cast<double>(n_ok) / wall_s : 0.0);
  std::fprintf(f, "    \"valid_circuits\": %lld,\n", valid_items);
  std::fprintf(f, "    \"valid_circuits_per_sec\": %.6g,\n",
               wall_s > 0.0 ? static_cast<double>(valid_items) / wall_s : 0.0);
  std::fprintf(f, "    \"tokens\": %.6g,\n", tokens);
  std::fprintf(f, "    \"wall_s\": %.6g,\n", wall_s);
  std::fprintf(f, "    ");
  percentiles_json(f, "e2e_client_ms", client_ms);
  std::fprintf(f, ",\n    ");
  percentiles_json(f, "e2e_server_ms", server_ms);
  std::fprintf(f, ",\n    ");
  percentiles_json(f, "dispatch_skew_ms", skew_ms);
  std::fprintf(f, ",\n    \"stages\": {");
  percentiles_json(f, "queue_ms", queue_ms);
  std::fprintf(f, ", ");
  percentiles_json(f, "decode_ms", decode_ms);
  std::fprintf(f, ", ");
  percentiles_json(f, "cache_ms", cache_ms);
  std::fprintf(f, ", ");
  percentiles_json(f, "surrogate_ms", surrogate_ms);
  std::fprintf(f, ", ");
  percentiles_json(f, "verify_ms", verify_ms);
  std::fprintf(f, ", ");
  percentiles_json(f, "stage_sum_ms", sum_ms);
  std::fprintf(f, "},\n");
  std::fprintf(f, "    \"stage_coverage\": %.6g\n  }", stage_coverage);
  if (!stats_line.empty()) {
    std::fprintf(f, ",\n  \"server_stats\": %s", stats_line.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);

  std::fprintf(stderr,
               "eva_loadgen: ok=%zu timeout=%zu rejected=%zu other=%zu "
               "transport=%zu malformed=%lld retries=%lld goodput=%.2f rps "
               "p50=%.1fms p99=%.1fms stage_coverage=%.3f -> %s\n",
               n_ok, n_timeout, n_rejected, n_other, n_transport, n_malformed,
               n_retries,
               wall_s > 0.0 ? static_cast<double>(n_ok) / wall_s : 0.0,
               percentile(client_ms, 50.0), percentile(client_ms, 99.0),
               stage_coverage, cfg.out.c_str());

  // Protocol corruption is never acceptable, at any strictness level.
  if (n_malformed > 0) return 1;
  const bool all_answered = n_transport == 0 &&
                            agg.outcomes.size() == shots.size();
  if (!all_answered) return 1;
  if (cfg.strict && (n_timeout + n_rejected + n_other) > 0) return 1;
  return 0;
}
