// eva_serve_client: tiny JSON-lines client for eva_serve_main.
//
// Usage:
//   eva_serve_client [--host H] [--port P] [--repeat K] [--burst]
//                    [--retry N] [--retry-base-ms B]
//                    ['{"type":"OpAmp","n":2}' ...]
//
// Each positional argument is sent as one request line; with no
// positionals a single default request ("{}") is sent. --repeat K sends
// the whole set K times. Normally the client writes a request, then
// reads lines until the {"done":...} terminator; --burst writes ALL
// request lines up front and only then starts reading — with a small
// server queue this overflows admission and exercises the backpressure
// path (the CI smoke job relies on this).
//
// --retry N resends a request whose terminator came back "rejected" or
// "unavailable" up to N more times, waiting the larger of the server's
// retry_after_ms hint and an exponential-backoff delay with jitter
// (serve/backoff.hpp — the same policy the router applies internally).
// Transport failures mid-response reconnect and retry too. Retries are
// sequential-mode only (--burst pipelines blind, so it cannot retry).
//
// Exit code 0 when every expected terminator line arrived, 1 otherwise.
// Connection attempts retry for ~5 s so the client can be launched
// concurrently with the server.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/backoff.hpp"

namespace {

int connect_with_retry(const char* host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) return -1;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < give_up) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

bool send_line(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read lines until `want_done` terminator lines have been seen (or EOF).
/// Returns the number of terminators observed; when `last_done` is
/// non-null it receives the final terminator line (for retry decisions).
int read_until_done(int fd, std::string& buf, int want_done,
                    std::string* last_done = nullptr) {
  int done_seen = 0;
  char chunk[4096];
  while (done_seen < want_done) {
    std::size_t nl;
    while (done_seen < want_done &&
           (nl = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      std::printf("%s\n", line.c_str());
      if (line.find("\"done\"") != std::string::npos) {
        ++done_seen;
        if (last_done) *last_done = line;
      }
    }
    if (done_seen >= want_done) break;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  return done_seen;
}

/// Should this terminator be retried, and after how long? The server's
/// retry_after_ms hint is honored when it exceeds the backoff delay.
bool wants_retry(const std::string& done_line, double* hint_ms) {
  const bool backpressure =
      done_line.find("\"status\": \"rejected\"") != std::string::npos ||
      done_line.find("\"status\": \"unavailable\"") != std::string::npos;
  if (!backpressure) return false;
  const std::size_t at = done_line.find("\"retry_after_ms\": ");
  if (at != std::string::npos) {
    *hint_ms = std::strtod(done_line.c_str() + at + 18, nullptr);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* host = "127.0.0.1";
  int port = 7077;
  int repeat = 1;
  bool burst = false;
  eva::serve::BackoffPolicy backoff{/*max_retries=*/0, /*base_ms=*/25.0,
                                    /*max_ms=*/1000.0};
  std::vector<std::string> requests;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--retry" && i + 1 < argc) {
      backoff.max_retries = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--retry-base-ms" && i + 1 < argc) {
      backoff.base_ms = std::atof(argv[++i]);
    } else if (arg == "--burst") {
      burst = true;
    } else {
      requests.push_back(arg);
    }
  }
  if (requests.empty()) requests.emplace_back("{}");

  int fd = connect_with_retry(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "eva_serve_client: cannot connect to %s:%d\n", host,
                 port);
    return 1;
  }

  const int total = repeat * static_cast<int>(requests.size());
  int done_seen = 0;
  int retries = 0;
  std::string buf;
  bool write_ok = true;
  if (burst) {
    for (int k = 0; write_ok && k < repeat; ++k) {
      for (const auto& r : requests) {
        if (!send_line(fd, r)) {
          write_ok = false;
          break;
        }
      }
    }
    done_seen = read_until_done(fd, buf, total);
  } else {
    std::uint64_t attempt_seq = 0;
    for (int k = 0; write_ok && k < repeat; ++k) {
      for (const auto& r : requests) {
        bool answered = false;
        for (int attempt = 0; attempt <= backoff.max_retries; ++attempt) {
          if (attempt > 0) ++retries;
          if (fd < 0) fd = connect_with_retry(host, port);
          if (fd < 0) break;
          if (!send_line(fd, r)) {
            // Stale connection (server restarted): reconnect and retry.
            ::close(fd);
            fd = -1;
            buf.clear();
            continue;
          }
          std::string done_line;
          if (read_until_done(fd, buf, 1, &done_line) != 1) {
            ::close(fd);
            fd = -1;
            buf.clear();
            continue;
          }
          double hint_ms = 0.0;
          if (!wants_retry(done_line, &hint_ms) ||
              attempt == backoff.max_retries) {
            answered = true;
            break;
          }
          const double wait_ms = std::max(
              hint_ms, backoff.delay_ms(attempt + 1, 0x5eed ^ ++attempt_seq));
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(wait_ms));
        }
        if (answered) {
          ++done_seen;
        } else if (fd < 0) {
          write_ok = false;
          break;
        }
      }
    }
  }
  if (fd >= 0) ::close(fd);

  std::fprintf(stderr,
               "eva_serve_client: %d/%d responses complete (%d retries)\n",
               done_seen, total, retries);
  return (write_ok && done_seen == total) ? 0 : 1;
}
