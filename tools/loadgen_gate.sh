#!/usr/bin/env bash
# Serving regression gate (CI "loadgen gate" step): drive a live
# eva_serve process with the open-loop Poisson harness at a fixed low
# rate and require every request to come back "ok" — at this offered
# load, any timeout/reject/transport error is a serving regression, not
# noise. The BENCH-style latency JSON is left at $out for artifact
# upload, and the server must still drain cleanly on SIGTERM afterwards.
#
# Usage: tools/loadgen_gate.sh <build-dir> [out.json]
set -euo pipefail

build_dir=${1:?usage: loadgen_gate.sh <build-dir> [out.json]}
out=${2:-BENCH_loadgen.json}
server_bin="$build_dir/src/serve/eva_serve_main"
loadgen_bin="$build_dir/tools/eva_loadgen"
work=$(mktemp -d)
trap 'kill "${server_pid:-}" 2>/dev/null || true; rm -rf "$work"' EXIT

wait_for_port() {
  local log=$1 i
  for i in $(seq 1 100); do
    if grep -q 'eva_serve listening on port' "$log"; then
      grep -o 'eva_serve listening on port [0-9]*' "$log" | awk '{print $5}'
      return 0
    fi
    sleep 0.1
  done
  echo "server never became ready" >&2
  cat "$log" >&2
  return 1
}

echo "== loadgen gate: open-loop Poisson load, strict =="
EVA_SERVE_PORT=0 "$server_bin" >"$work/server.log" 2>&1 &
server_pid=$!
port=$(wait_for_port "$work/server.log")

# Low fixed rate with mixed priorities and a warm/cold cache mix: the
# gate asserts zero timeouts/rejects via --strict (nonzero exit on any
# non-ok terminator or unanswered request).
"$loadgen_bin" --port "$port" --rate 8 --duration 5 \
  --high-frac 0.2 --low-frac 0.2 --warm-frac 0.5 --warm-seeds 8 \
  --conns 8 --seed 42 --out "$out" --strict

# The run must have produced parseable JSON with a sane shape, and the
# per-stage attribution must cover the server-side e2e latency (the
# stage sum and e2e are measured independently; a drift means a stage
# went missing from the timeline).
python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
res = doc["results"]
assert res["counts"]["ok"] == res["offered"] > 0, res["counts"]
assert res["counts"]["timeout"] == 0, res["counts"]
assert res["counts"]["rejected"] == 0, res["counts"]
assert res["counts"]["transport_error"] == 0, res["counts"]
cov = res["stage_coverage"]
assert 0.90 <= cov <= 1.10, f"stage attribution drifted: coverage={cov}"
stats = doc["server_stats"]["stats"]
assert stats["requests"]["completed"] >= res["offered"]
print(f"loadgen gate: {res['counts']['ok']} ok, "
      f"p99={res['e2e_client_ms']['p99']:.1f}ms, stage_coverage={cov:.3f}")
EOF

echo "== loadgen gate: SIGTERM drain =="
kill -TERM "$server_pid"
wait "$server_pid"
grep -q 'eva_serve drained, exiting' "$work/server.log"
unset server_pid

echo "loadgen gate: passed ($out)"
