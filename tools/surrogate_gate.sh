#!/usr/bin/env bash
# Surrogate gate (CI "surrogate gate" step): prove the learned FoM
# surrogate subsystem (DESIGN.md §15) earns its place on the hot path.
#
# Usage: tools/surrogate_gate.sh <build-dir> [out.json]
#
# Two assertions:
#   1. Training: a quick-scale eva_surrogate_train run (reward-model
#      labeling pipeline + pooled-embedding MLP) must reach pairwise
#      ranking accuracy >= 0.70 and beat chance on class accuracy — a
#      filter that cannot order candidates would shed discoveries, not
#      just work.
#   2. Serving ROI: the paired BM_ServeThroughputSurrogate window (the
#      same seeded cold-cache request through surrogate-on keep=0.25 and
#      surrogate-off services, interleaved in one process so machine
#      drift cancels) must show the on variant strictly faster at both
#      widths.
#
# The bench JSON is left at $out for artifact upload.
set -euo pipefail

build_dir=${1:?usage: surrogate_gate.sh <build-dir> [out.json]}
out=${2:-BENCH_surrogate.json}
train_bin="$build_dir/tools/eva_surrogate_train"
bench_bin="$build_dir/bench/bench_micro"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== surrogate gate: quick-scale training run =="
"$train_bin" --out "$work/ckpt" --steps 150 --per-type 16 \
  >"$work/train.json"
cat "$work/train.json"
python3 - "$work/train.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
acc = r["ranking_accuracy"]
assert acc >= 0.70, f"ranking accuracy {acc:.3f} below the 0.70 gate"
assert r["class_accuracy"] > 1.0 / 3.0, "classifier no better than chance"
print(f"ranking accuracy {acc:.3f} >= 0.70")
EOF

# The checkpoint the trainer left must load back into a fresh head (the
# serving path EVA_SURROGATE_CKPT exercises).
"$train_bin" --out "$work/ckpt" --steps 150 --per-type 16 --resume \
  >"$work/resume.json"
python3 - "$work/resume.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["start_step"] == 150, f"resume did not restore step: {r}"
EOF
echo "checkpoint resume restored step 150"

echo "== surrogate gate: paired serve bench (on vs off) =="
EVA_BENCH_OUT="$out" "$bench_bin" \
  --benchmark_filter='BM_ServeThroughputSurrogate'
python3 - "$out" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
rows = {b["name"]: b for b in r["benchmarks"]}
for width in (8, 16):
    off = rows[f"BM_ServeThroughputSurrogate/{width}/0/"
               "iterations:1/manual_time"]["real_time"]
    on = rows[f"BM_ServeThroughputSurrogate/{width}/1/"
              "iterations:1/manual_time"]["real_time"]
    print(f"width {width}: off {off:.1f}ms on {on:.1f}ms "
          f"({(1 - on / off) * 100:+.2f}%)")
    assert on < off, (
        f"surrogate-on slower than the paired off baseline at width {width}")
EOF

echo "surrogate gate passed"
