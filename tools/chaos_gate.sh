#!/usr/bin/env bash
# Chaos gate (CI "chaos gate" step): prove the serving fleet survives
# replica crashes without corrupting the protocol or losing meaningful
# goodput.
#
# Usage: tools/chaos_gate.sh <build-dir> [out.json]
#
# Topology: 3 eva_serve replicas + 1 cache sidecar behind eva_router,
# driven by the open-loop Poisson harness (tools/eva_loadgen).
#
#   phase A (steady state): strict load through the healthy fleet — any
#     non-ok terminator at this rate is a regression. The achieved ok
#     ratio is the goodput baseline.
#   phase B (chaos): the same load with client retries enabled while two
#     replicas are SIGKILLed mid-run and restarted on their old ports.
#     The gate asserts, from the loadgen exit code and its JSON:
#       * zero malformed lines — every byte the router relayed was a
#         complete JSON object (no torn replica writes leak through)
#       * every request resolved with a terminator (no hangs, no
#         silent drops; shed/unavailable count as resolved)
#       * ok-goodput >= 90% of the phase-A baseline
#   phase C: the router's own stats snapshot is fetched and embedded in
#     the merged report (breaker trips/recoveries, retries, hedges,
#     cache hits) so CI artifacts show what the fleet actually did.
set -euo pipefail

build_dir=${1:?usage: chaos_gate.sh <build-dir> [out.json]}
out=${2:-BENCH_chaos.json}
server_bin="$build_dir/src/serve/eva_serve_main"
router_bin="$build_dir/src/serve/eva_router_main"
cache_bin="$build_dir/src/serve/eva_cache_main"
loadgen_bin="$build_dir/tools/eva_loadgen"
client_bin="$build_dir/tools/eva_serve_client"
work=$(mktemp -d)
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$work"' EXIT

wait_for_ready() {
  # Scrape "<name> listening on port N" from a log and echo N.
  local log=$1 name=$2 i
  for i in $(seq 1 150); do
    if grep -q "$name listening on port" "$log" 2>/dev/null; then
      grep -o "$name listening on port [0-9]*" "$log" | awk '{print $5}'
      return 0
    fi
    sleep 0.1
  done
  echo "$name never became ready" >&2
  cat "$log" >&2
  return 1
}

# Replicas need fixed ports (the router's backend list is static and a
# crashed replica must come back on the same address), so pick a base
# unlikely to collide and let bind failures surface as a loud non-ready.
base_port=$((21000 + RANDOM % 20000))
replica_port() { echo $((base_port + $1)); }

start_replica() {
  # start_replica <idx>: launch a replica on its fixed port; the pid is
  # written to $work/replica<idx>.pid.
  local idx=$1 log="$work/replica$1.log"
  : >"$log"
  EVA_SERVE_PORT=$(replica_port "$idx") "$server_bin" >>"$log" 2>&1 &
  echo $! >"$work/replica$idx.pid"
  pids+=("$(cat "$work/replica$idx.pid")")
  wait_for_ready "$log" eva_serve >/dev/null
}

echo "== chaos gate: starting fleet (3 replicas + cache + router) =="
for i in 0 1 2; do start_replica "$i"; done
backends="127.0.0.1:$(replica_port 0),127.0.0.1:$(replica_port 1),127.0.0.1:$(replica_port 2)"

EVA_CACHE_PORT=0 "$cache_bin" >"$work/cache.log" 2>&1 &
pids+=($!)
cache_port=$(wait_for_ready "$work/cache.log" eva_cache)

EVA_ROUTER_PORT=0 EVA_ROUTER_BACKENDS="$backends" \
  EVA_ROUTER_CACHE="127.0.0.1:$cache_port" \
  EVA_ROUTER_HEALTH_MS=100 EVA_ROUTER_HEDGE_MS=300 \
  "$router_bin" >"$work/router.log" 2>&1 &
pids+=($!)
router_port=$(wait_for_ready "$work/router.log" eva_router)

echo "== phase A: steady-state baseline (strict) =="
"$loadgen_bin" --port "$router_port" --rate 8 --duration 5 \
  --high-frac 0.2 --warm-frac 0.4 --warm-seeds 8 \
  --conns 8 --seed 42 --out "$work/baseline.json" --strict

echo "== phase B: load with replica crashes mid-run =="
"$loadgen_bin" --port "$router_port" --rate 8 --duration 12 \
  --high-frac 0.2 --warm-frac 0.4 --warm-seeds 8 \
  --conns 8 --retry 5 --retry-base-ms 50 --seed 43 \
  --out "$work/chaos.json" &
load_pid=$!

# Two staggered kill -9 / restart cycles while the load is offered: the
# fleet is briefly down to 2/3 capacity twice, never to zero.
sleep 2;  kill -9 "$(cat "$work/replica1.pid")" 2>/dev/null || true
sleep 3;  start_replica 1
sleep 1;  kill -9 "$(cat "$work/replica2.pid")" 2>/dev/null || true
sleep 3;  start_replica 2

# The loadgen's own exit code already enforces "every request resolved"
# and "zero malformed lines".
wait "$load_pid"

echo "== phase C: router stats + goodput check =="
"$client_bin" --port "$router_port" '{"cmd":"stats"}' >"$work/stats.out"

python3 - "$work/baseline.json" "$work/chaos.json" "$work/stats.out" "$out" <<'EOF'
import json, sys
base = json.load(open(sys.argv[1]))["results"]
chaos = json.load(open(sys.argv[2]))["results"]
stats = json.loads(open(sys.argv[3]).read().splitlines()[0])

# Protocol integrity: nothing the router relayed was torn, and every
# offered request came back with a terminator.
assert chaos["counts"]["malformed"] == 0, chaos["counts"]
resolved = sum(chaos["counts"][k]
               for k in ("ok", "timeout", "rejected", "other"))
assert resolved == chaos["offered"], (resolved, chaos["offered"])
assert chaos["counts"]["transport_error"] == 0, chaos["counts"]

# Goodput: the ok ratio under chaos stays within 90% of steady state.
base_ratio = base["counts"]["ok"] / base["offered"]
chaos_ratio = chaos["counts"]["ok"] / chaos["offered"]
assert chaos_ratio >= 0.9 * base_ratio, (chaos_ratio, base_ratio)

# The router must have been exercised as a router: its stats object is
# present and it actually retried/failed over during the chaos phase.
router = stats["router"]
assert router["requests"] >= chaos["offered"], router

json.dump({"baseline": base, "chaos": chaos, "router_stats": stats},
          open(sys.argv[4], "w"), indent=2)
print(f"chaos gate: ok_ratio steady={base_ratio:.3f} "
      f"chaos={chaos_ratio:.3f} retries={router['retries']} "
      f"breaker_trips={router['breaker_trips']} "
      f"cache_hits={router['cache_hits']}")
EOF

echo "chaos gate: passed ($out)"
