#!/usr/bin/env bash
# Loopback smoke test for the serving layer (CI "server smoke" step).
#
# Usage: tools/serve_smoke.sh <build-dir>
#
# Exercises the full wire path against a real eva_serve process:
#   1. round trip:   n=2 seeded request answered with item + done lines,
#                    every line echoing the request id, the terminator
#                    carrying the per-stage latency attribution
#   2. bad request:  malformed JSON and unknown "cmd" values get a
#                    bad_request terminator and the connection stays usable
#   3. stats:        {"cmd":"stats"} answers inline with a parseable
#                    snapshot of stage percentiles / queue depths / cache
#   4. past deadline: deadline_ms=1 resolves to a "timeout" terminator
#   5. queue overflow: EVA_SERVE_QUEUE_MAX=1 plus parallel bursty clients
#                    forces "rejected" terminators carrying retry_after_ms
#   6. SIGTERM drain: the server exits cleanly with its drain banner
set -euo pipefail

build_dir=${1:?usage: serve_smoke.sh <build-dir>}
server_bin="$build_dir/src/serve/eva_serve_main"
client_bin="$build_dir/tools/eva_serve_client"
work=$(mktemp -d)
trap 'kill "${server_pid:-}" 2>/dev/null || true; rm -rf "$work"' EXIT

wait_for_port() {
  # Scrape the readiness line and echo the bound port.
  local log=$1 i
  for i in $(seq 1 100); do
    if grep -q 'eva_serve listening on port' "$log"; then
      grep -o 'eva_serve listening on port [0-9]*' "$log" | awk '{print $5}'
      return 0
    fi
    sleep 0.1
  done
  echo "server never became ready" >&2
  cat "$log" >&2
  return 1
}

echo "== phase 1: round trip, bad request, past deadline =="
EVA_SERVE_PORT=0 "$server_bin" >"$work/server1.log" 2>&1 &
server_pid=$!
port=$(wait_for_port "$work/server1.log")

"$client_bin" --port "$port" '{"n":2,"seed":7}' 'this is not json' \
  '{"cmd":"selfdestruct"}' >"$work/client1.out"
grep -q '"status": "ok"' "$work/client1.out"
grep -q '"status": "bad_request"' "$work/client1.out"
grep -q 'unknown cmd: selfdestruct' "$work/client1.out"
# The ok response must stream one line per requested topology, each
# echoing the request id, and the terminator must attribute latency to
# stages (DESIGN.md "Request timelines & load harness").
[ "$(grep -c '"netlist"' "$work/client1.out")" -ge 2 ]
[ "$(grep -c '"request_id"' "$work/client1.out")" -ge 3 ]
grep -q '"stages": {"queue_ms"' "$work/client1.out"

echo "== phase 1b: live stats snapshot =="
"$client_bin" --port "$port" '{"cmd":"stats"}' >"$work/stats.out"
python3 - "$work/stats.out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    line = next(l for l in f if '"stats"' in l)
doc = json.loads(line)
assert doc["status"] == "ok" and doc["cmd"] == "stats"
stats = doc["stats"]
for stage in ("queue", "decode", "cache", "verify", "write", "e2e"):
    snap = stats["stages"][stage]
    assert "window" in snap and "total" in snap, stage
    assert "p99" in snap["total"], stage
# The n=2 round trip above must already be visible in the snapshot.
assert stats["requests"]["completed"] >= 1, stats["requests"]
assert stats["stages"]["e2e"]["total"]["count"] >= 1
assert set(stats["queue_depth"]) == {"high", "normal", "low", "total"}
print("stats snapshot: ok")
EOF

# A 1ms deadline only expires if the scheduler cannot pick the request
# up immediately, so park a long-running request in front of it.
"$client_bin" --port "$port" '{"n":64,"seed":5}' >"$work/long.out" &
long_pid=$!
sleep 0.1
"$client_bin" --port "$port" '{"n":1,"deadline_ms":1}' >"$work/deadline.out"
wait "$long_pid"
grep -q '"status": "timeout"' "$work/deadline.out"

echo "== phase 2: SIGTERM drain =="
kill -TERM "$server_pid"
wait "$server_pid"
grep -q 'eva_serve drained, exiting' "$work/server1.log"

echo "== phase 3: queue overflow under EVA_SERVE_QUEUE_MAX=1 =="
EVA_SERVE_PORT=0 EVA_SERVE_QUEUE_MAX=1 "$server_bin" >"$work/server2.log" 2>&1 &
server_pid=$!
port=$(wait_for_port "$work/server2.log")

# One scheduler drains a queue of one: parallel clients bursting n=32
# requests must overflow admission. Clients exit 0 on rejected
# terminators too -- rejection is a well-formed response.
for i in $(seq 1 8); do
  "$client_bin" --port "$port" --burst --repeat 4 '{"n":32,"seed":11}' \
    >"$work/burst$i.out" &
done
wait %2 %3 %4 %5 %6 %7 %8 %9
cat "$work"/burst*.out >"$work/burst.all"
grep -q '"status": "rejected"' "$work/burst.all"
grep -q 'retry_after_ms' "$work/burst.all"
grep -q '"status": "ok"' "$work/burst.all"

kill -TERM "$server_pid"
wait "$server_pid"
grep -q 'eva_serve drained, exiting' "$work/server2.log"
unset server_pid

echo "serve smoke: all phases passed"
