// eva_surrogate_train: fit the learned FoM surrogate head (DESIGN.md
// §15) and leave a checkpoint a serving process can load.
//
// Pipeline: synthesize a dataset -> label it through the reward-model
// pipeline (rule-based validity + Mini-SPICE FoM + Otsu split) -> train
// the pooled-embedding MLP on the valid rank classes -> report accuracy
// metrics as one JSON line on stdout (tools/surrogate_gate.sh parses
// it).
//
// Usage: eva_surrogate_train [--out DIR] [--steps N] [--per-type N]
//                            [--seed N] [--resume]
//   --out DIR     checkpoint directory (default $EVA_SURROGATE_CKPT,
//                 else "surrogate_ckpt"); empty string disables
//                 checkpointing
//   --steps N     training steps (default 300)
//   --per-type N  synthesized topologies per circuit type (default 24)
//   --seed N      dataset/model seed (default 17)
//   --resume      resume from the newest checkpoint in --out
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/dataset.hpp"
#include "nn/config.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "rl/reward_model.hpp"
#include "surrogate/surrogate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace eva;

  std::string out_dir;
  if (const char* v = std::getenv("EVA_SURROGATE_CKPT"); v && *v) out_dir = v;
  if (out_dir.empty()) out_dir = "surrogate_ckpt";
  int steps = 300;
  int per_type = 24;
  std::uint64_t seed = 17;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_val = i + 1 < argc;
    if (arg == "--out" && has_val) {
      out_dir = argv[++i];
    } else if (arg == "--steps" && has_val) {
      steps = std::atoi(argv[++i]);
    } else if (arg == "--per-type" && has_val) {
      per_type = std::atoi(argv[++i]);
    } else if (arg == "--seed" && has_val) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--resume") {
      resume = true;
    } else {
      std::fprintf(stderr, "eva_surrogate_train: unknown arg %s\n",
                   arg.c_str());
      return 2;
    }
  }

  try {
    data::DatasetConfig dcfg;
    dcfg.per_type = per_type;
    dcfg.seed = seed;
    dcfg.require_simulatable = false;
    const auto ds = data::Dataset::build(dcfg);
    // The serving vocabulary, not a data-driven one: the checkpoint's
    // fingerprint (vocab, d_embed, d_hidden) must match the head
    // eva_serve_main builds, or EVA_SURROGATE_CKPT refuses to load.
    // Keep the limits in sync with eva_serve_main.
    const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});

    rl::LabelingConfig lcfg;
    lcfg.seed = seed + 1;
    lcfg.skip_unencodable = true;  // entries past the fixed limits
    const auto labels = rl::label_dataset(ds, tok, lcfg);
    const auto examples = surrogate::make_labeled(labels.examples);
    if (examples.empty()) {
      std::fprintf(stderr, "eva_surrogate_train: no valid-rank examples\n");
      return 1;
    }

    // The embedding seed comes from a fresh LM at the serving scale; a
    // pretrained checkpoint would slot in here once train_lm emits one.
    // bench_scale to match the d_embed of the head eva_serve_main builds.
    Rng rng(seed + 2);
    const nn::ModelConfig mcfg = nn::ModelConfig::bench_scale(tok.vocab_size());
    const nn::TransformerLM lm(mcfg, rng);
    surrogate::SurrogateModel model =
        surrogate::SurrogateModel::from_lm(lm, 32, rng);

    surrogate::SurrogateTrainConfig tcfg;
    tcfg.steps = steps;
    tcfg.seed = seed + 3;
    tcfg.checkpoint_dir = out_dir;
    tcfg.resume = resume;
    const auto res = model.train(examples, tcfg);

    std::printf("{\"steps\": %zu, \"start_step\": %d, \"examples\": %zu, "
                "\"labeled\": %d, \"skipped_unencodable\": %d, "
                "\"final_loss\": %.6g, "
                "\"class_accuracy\": %.6g, \"ranking_accuracy\": %.6g, "
                "\"checkpoint_dir\": \"%s\"}\n",
                res.losses.size() + static_cast<std::size_t>(res.start_step),
                res.start_step, examples.size(), labels.labeled_count,
                labels.skipped_unencodable,
                res.losses.empty() ? 0.0 : res.losses.back(),
                res.class_accuracy, res.ranking_accuracy, out_dir.c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "eva_surrogate_train: %s\n", e.what());
    return 1;
  }
}
