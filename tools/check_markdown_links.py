#!/usr/bin/env python3
"""Check that documentation cross-references point at real files.

Two classes of reference are verified, in the given markdown files:

  1. Relative markdown links: ``[text](path)`` and ``[text](path#anchor)``.
     http(s)/mailto links are skipped; everything else must resolve to an
     existing file or directory relative to the markdown file's location.

  2. Backticked repo paths: `` `src/nn/sampler.cpp` `` and friends.  A
     backticked span counts as a path claim when it starts with a known
     top-level directory (src/, tests/, bench/, examples/, tools/, .github/)
     or is a top-level *.md file.  Trailing ``:123`` line suffixes are
     stripped, and ``{a,b}`` brace groups are expanded (every expansion must
     exist).  Spans containing spaces, ``*`` globs or ``<...>`` placeholders
     are ignored.

Exit status is non-zero if any reference is broken — CI runs this over
README.md, DESIGN.md, EXPERIMENTS.md and ROADMAP.md.
"""

import itertools
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Backticked spans are only treated as path claims under these roots.
PATH_PREFIXES = ("src/", "tests/", "bench/", "examples/", "tools/", ".github/")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")
CODE_FENCE = re.compile(r"^(```|~~~)")


def expand_braces(text: str) -> list[str]:
    """Expand one level of {a,b,c} groups (nested groups unsupported)."""
    m = re.search(r"\{([^{}]*)\}", text)
    if not m:
        return [text]
    head, tail = text[: m.start()], text[m.end():]
    out = []
    for alt in m.group(1).split(","):
        out.extend(expand_braces(head + alt + tail))
    return out


def non_fenced_lines(text: str):
    """Yield (lineno, line) for lines outside ``` fenced blocks."""
    fenced = False
    for i, line in enumerate(text.splitlines(), start=1):
        if CODE_FENCE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            yield i, line


def check_file(md_path: Path) -> list[str]:
    errors = []
    text = md_path.read_text(encoding="utf-8")

    # 1. Relative markdown links (checked in all lines; links don't appear
    #    inside code fences in practice, but fenced lines are skipped anyway
    #    to avoid matching example snippets).
    for lineno, line in non_fenced_lines(text):
        for target in MD_LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md_path}:{lineno}: broken link target '{target}'")

        # 2. Backticked repo paths.
        for span in BACKTICK.findall(line):
            if " " in span or "*" in span or "<" in span or "$" in span:
                continue
            if "..." in span:  # `src/...`-style placeholders
                continue
            candidate = span.strip()
            is_top_md = re.fullmatch(r"[A-Za-z0-9_.-]+\.md", candidate)
            if not (candidate.startswith(PATH_PREFIXES) or is_top_md):
                continue
            candidate = re.sub(r":\d+(-\d+)?$", "", candidate)  # :line refs
            for expansion in expand_braces(candidate):
                if not (REPO_ROOT / expansion).exists():
                    errors.append(
                        f"{md_path}:{lineno}: backticked path "
                        f"'{span}' -> '{expansion}' does not exist")
    return errors


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv] or sorted(REPO_ROOT.glob("*.md"))
    all_errors = list(
        itertools.chain.from_iterable(check_file(f) for f in files))
    for err in all_errors:
        print(err)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not all_errors else f'{len(all_errors)} broken'}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
