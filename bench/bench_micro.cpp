// google-benchmark microbenchmarks for the substrates: tensor engine,
// circuit representation, mini-SPICE, generation throughput.
//
// Always writes a machine-readable report (chrome for CI trend tracking):
// unless the caller passes an explicit --benchmark_out, the run also
// writes google-benchmark JSON to BENCH_micro.json in the working
// directory (override the path with EVA_BENCH_OUT). GFLOP/s and token
// throughput appear as items_per_second, latencies as real_time in the
// benchmark's declared unit.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/canon.hpp"
#include "circuit/pingraph.hpp"
#include "circuit/validity.hpp"
#include "data/generators.hpp"
#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "serve/service.hpp"
#include "spice/engine.hpp"
#include "surrogate/scorer.hpp"
#include "surrogate/surrogate.hpp"
#include "spice/fom.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace eva;

// --- tensor ---------------------------------------------------------------

// Raw kernel throughput for the three GEMM shapes the training loop
// exercises: nn (forward), nt (input-gradient), tn (weight-gradient).
// items_per_second == FLOP/s; read it as GFLOP/s.

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int ni = static_cast<int>(n);
  Rng rng(41);
  auto a = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  auto b = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm_nn(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * state.range(0) *
                          state.range(0) * state.range(0));
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int ni = static_cast<int>(n);
  Rng rng(42);
  auto a = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  auto b = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm_nt(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * state.range(0) *
                          state.range(0) * state.range(0));
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(256);

void BM_GemmTN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int ni = static_cast<int>(n);
  Rng rng(43);
  auto a = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  auto b = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm_tn(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * state.range(0) *
                          state.range(0) * state.range(0));
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(256);

// Quantized inference GEMM (weight-only int8/bf16, fused bias epilogue)
// at the batched-decode shape: n rows of activations against a
// (256, 768)-ish weight. items_per_second == FLOP/s of the equivalent
// f32 GEMM, so these read directly against BM_GemmNN.
void bm_qgemm(benchmark::State& state, tensor::QuantKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kIn = 192;
  constexpr std::size_t kOut = 768;
  Rng rng(44);
  auto w = tensor::Tensor::randn({static_cast<int>(kIn), static_cast<int>(kOut)},
                                 rng, 1.0f, false);
  auto x = tensor::Tensor::randn({static_cast<int>(n), static_cast<int>(kIn)},
                                 rng, 1.0f, false);
  auto b = tensor::Tensor::randn({static_cast<int>(kOut)}, rng, 1.0f, false);
  const auto qw = tensor::QuantMatrix::quantize(kind, w.data().data(), kIn, kOut);
  std::vector<float> y(n * kOut, 0.0f);
  for (auto _ : state) {
    tensor::qgemm(x.data().data(), qw, b.data().data(), y.data(), n,
                  tensor::Epilogue::kBias);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * state.range(0) *
                          static_cast<std::int64_t>(kIn * kOut));
}
void BM_QGemmInt8(benchmark::State& state) {
  bm_qgemm(state, tensor::QuantKind::kInt8);
}
BENCHMARK(BM_QGemmInt8)->Arg(1)->Arg(8)->Arg(16);
void BM_QGemmBf16(benchmark::State& state) {
  bm_qgemm(state, tensor::QuantKind::kBf16);
}
BENCHMARK(BM_QGemmBf16)->Arg(1)->Arg(8)->Arg(16);

void BM_TensorMatmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  auto a = tensor::Tensor::randn({n, n}, rng, 1.0f, false);
  auto b = tensor::Tensor::randn({n, n}, rng, 1.0f, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(64)->Arg(128)->Arg(256);

void BM_TransformerForwardBackward(benchmark::State& state) {
  Rng rng(2);
  nn::ModelConfig cfg = nn::ModelConfig::bench_scale(200);
  nn::TransformerLM model(cfg, rng);
  std::vector<int> tokens(4 * 128, 5);
  for (auto _ : state) {
    auto logits = model.forward(tokens, 4, 128);
    auto loss = tensor::mean_all(logits);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 4 * 128);
}
BENCHMARK(BM_TransformerForwardBackward)->Unit(benchmark::kMillisecond);

void BM_KvCacheTokenThroughput(benchmark::State& state) {
  Rng rng(3);
  nn::ModelConfig cfg = nn::ModelConfig::bench_scale(200);
  nn::TransformerLM model(cfg, rng);
  std::vector<float> logits;
  auto cache = model.make_cache();
  int produced = 0;
  for (auto _ : state) {
    if (cache.len >= cfg.max_seq) cache = model.make_cache();
    model.infer_step(cache, 5, logits);
    ++produced;
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(produced);
}
BENCHMARK(BM_KvCacheTokenThroughput);

// End-to-end generation: KV-cache inference + legality masking + top-k
// sampling, the loop batched topology discovery spends its time in.
// items_per_second == sampled tokens/sec.
void BM_SampleTokenThroughput(benchmark::State& state) {
  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  Rng rng(30);
  nn::ModelConfig cfg = nn::ModelConfig::bench_scale(tok.vocab_size());
  nn::TransformerLM model(cfg, rng);
  nn::SampleOptions opts;
  opts.temperature = 0.9f;
  opts.top_k = 12;
  opts.max_len = 96;
  Rng sample_rng(31);
  std::int64_t tokens = 0;
  for (auto _ : state) {
    const auto res = nn::sample_sequence(model, tok, sample_rng, opts);
    tokens += static_cast<std::int64_t>(res.ids.size());
    benchmark::DoNotOptimize(res.ids.data());
  }
  state.SetItemsProcessed(tokens);
}
BENCHMARK(BM_SampleTokenThroughput)->Unit(benchmark::kMillisecond);

// Batch generation head-to-head on an identical 24-sequence workload:
// the thread-fanout reference path (B independent single-sequence
// decodes) vs the continuous-batching BatchedDecoder at several widths.
// items_per_second == sampled tokens/sec in both, so the ratio is the
// end-to-end speedup of batched decode.

nn::SampleOptions batch_bench_opts() {
  nn::SampleOptions opts;
  opts.temperature = 0.9f;
  opts.top_k = 12;
  opts.max_len = 80;
  return opts;
}
// Deployment-shaped model for the head-to-head: large enough that the
// weight matrices overflow L2, so per-sequence gemv decode re-streams
// every weight once per token per sequence while the batched engine
// streams them once per step for the whole cohort. bench_scale weights
// fit in L1/L2, which would hide exactly the effect being measured.
nn::ModelConfig batch_bench_config(int vocab) {
  return {vocab, 192, 4, 4, 768, 96, 0.0f};
}
constexpr int kBatchBenchSeqs = 24;

void BM_SampleBatchReference(benchmark::State& state) {
  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  Rng rng(30);
  nn::ModelConfig cfg = batch_bench_config(tok.vocab_size());
  nn::TransformerLM model(cfg, rng);
  const auto opts = batch_bench_opts();
  Rng sample_rng(31);
  std::int64_t tokens = 0;
  for (auto _ : state) {
    const auto batch = nn::sample_batch_reference(model, tok, sample_rng,
                                                  kBatchBenchSeqs, opts);
    for (const auto& res : batch) {
      tokens += static_cast<std::int64_t>(res.ids.size());
    }
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(tokens);
}
BENCHMARK(BM_SampleBatchReference)->Unit(benchmark::kMillisecond);

void bm_sample_batch_decoder(benchmark::State& state, tensor::QuantKind quant) {
  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  Rng rng(30);
  nn::ModelConfig cfg = batch_bench_config(tok.vocab_size());
  nn::TransformerLM model(cfg, rng);
  model.set_inference_quant(quant);
  auto opts = batch_bench_opts();
  opts.batch_width = static_cast<int>(state.range(0));
  nn::BatchedDecoder decoder(model, tok, opts.batch_width, opts);
  Rng sample_rng(31);
  std::int64_t tokens = 0;
  for (auto _ : state) {
    const auto batch = decoder.decode(sample_rng, kBatchBenchSeqs);
    for (const auto& res : batch) {
      tokens += static_cast<std::int64_t>(res.ids.size());
    }
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(tokens);
  state.SetLabel(tensor::quant_kind_name(quant));
}
// The quantized decode trajectory: int8 weight-quantized by default
// here (EVA_QUANT overrides the tier). Serving itself defaults to f32;
// this family tracks what the opt-in quantized tier buys.
void BM_SampleBatchDecoder(benchmark::State& state) {
  bm_sample_batch_decoder(
      state, tensor::quant_kind_from_env(tensor::QuantKind::kInt8));
}
BENCHMARK(BM_SampleBatchDecoder)->Arg(1)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);
// The f32 trajectory, kept as its own family so the quantization win
// stays measurable against the same commit.
void BM_SampleBatchDecoderF32(benchmark::State& state) {
  bm_sample_batch_decoder(state, tensor::QuantKind::kF32);
}
BENCHMARK(BM_SampleBatchDecoderF32)->Arg(1)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// --- circuit ----------------------------------------------------------------

circuit::Netlist bench_netlist() {
  Rng rng(4);
  return data::gen_opamp(rng);
}

void BM_EulerTourEncode(benchmark::State& state) {
  const auto nl = bench_netlist();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::encode_tour(nl, rng).size());
  }
}
BENCHMARK(BM_EulerTourEncode);

void BM_TourDecode(benchmark::State& state) {
  const auto nl = bench_netlist();
  Rng rng(6);
  const auto tour = circuit::encode_tour(nl, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::decode_tour(tour).ok);
  }
}
BENCHMARK(BM_TourDecode);

void BM_CanonicalHash(benchmark::State& state) {
  const auto nl = bench_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::canonical_hash(nl));
  }
}
BENCHMARK(BM_CanonicalHash);

void BM_ValidityCheck(benchmark::State& state) {
  const auto nl = bench_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::structurally_valid(nl));
  }
}
BENCHMARK(BM_ValidityCheck);

// --- spice -------------------------------------------------------------------

void BM_DcOperatingPoint(benchmark::State& state) {
  const auto nl = bench_netlist();
  const auto sz = spice::default_sizing(nl);
  for (auto _ : state) {
    spice::Simulator sim(nl, sz);
    benchmark::DoNotOptimize(sim.solve_dc());
  }
}
BENCHMARK(BM_DcOperatingPoint)->Unit(benchmark::kMicrosecond);

void BM_AcSweep(benchmark::State& state) {
  const auto nl = bench_netlist();
  const auto sz = spice::default_sizing(nl);
  spice::Simulator sim(nl, sz);
  if (!sim.solve_dc()) state.SkipWithError("DC failed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.ac_sweep().size());
  }
}
BENCHMARK(BM_AcSweep)->Unit(benchmark::kMicrosecond);

void BM_FomEvaluation(benchmark::State& state) {
  const auto nl = bench_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::evaluate_default(nl, circuit::CircuitType::OpAmp).fom);
  }
}
BENCHMARK(BM_FomEvaluation)->Unit(benchmark::kMicrosecond);

void BM_DatasetGenerate(benchmark::State& state) {
  Rng rng(7);
  int i = 0;
  for (auto _ : state) {
    const auto type = static_cast<circuit::CircuitType>(i++ % 11);
    benchmark::DoNotOptimize(data::generate(type, rng).num_devices());
  }
}
BENCHMARK(BM_DatasetGenerate);

// --- serving -----------------------------------------------------------------

// Closed-loop serving throughput through the full GenerationService path:
// submit -> scheduler -> batched decode -> canonical-hash lookup ->
// (validity + FoM on miss) -> response. Arg 0 is the decoder width,
// arg 1 selects cold (0) vs warm (1) cache. Both variants replay the
// exact same seeded request, so the decode work is identical; cold
// clears the ResultCache before every request (every topology pays
// validity + SPICE FoM), warm keeps it (evaluations memoized by WL
// canonical hash). items_per_second == served topologies/sec on wall
// clock -- warm minus cold is the evaluation cost the cache removes.
//
// Measurement is PAIRED: the cache gap is a few percent of end-to-end
// request latency (decode dominates, DESIGN.md section 10), smaller than
// the multi-percent drift a shared machine shows between sequentially
// run benchmark variants -- an unpaired cold-then-warm run flips sign on
// a bad day. So for each width one window alternates
// cold,warm,cold,warm... requests and accumulates each variant's wall
// time separately; the cold and warm rows then report their half of that
// shared window via manual timing. Drift hits both variants of a pair
// equally, so the reported ordering is the within-window truth.
//
// The same window also drives a second service pinned to the f32 tier
// (BM_ServeThroughputF32): the quantized-vs-f32 serving comparison is
// cross-process otherwise, and process-to-process drift on this host is
// larger than the quantization win itself. Interleaving all four
// variants per round makes the int8/f32 ordering in one committed run
// trustworthy.
struct PairedServeWindow {
  double cold_s = 0.0;
  double warm_s = 0.0;
  double f32_cold_s = 0.0;
  double f32_warm_s = 0.0;
  std::int64_t items = 0;  // per variant
  bool failed = false;
};

const PairedServeWindow& paired_serve_window(int width) {
  static std::map<int, PairedServeWindow> windows;
  const auto it = windows.find(width);
  if (it != windows.end()) return it->second;
  PairedServeWindow w;

  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  // Weight seed 99 + request seed 1364 is a scanned pair whose 8-topology
  // batch holds 4 simulatable circuits under the int8 tier
  // (the deepest valid fraction found in a 4k-seed scan with the VNNI
  // kernels), so the validity + FoM evaluation the cache memoizes
  // actually runs: an arbitrary untrained-weight batch is almost
  // entirely rejected by the ~2us structural pre-check, which would
  // bench the cache on a workload where it has nothing to do.
  // bench_scale, not tiny: at d_model 32 a request is mostly scheduler +
  // canonicalization and the serve rows stop tracking the decode path
  // they exist to watch (quantization is invisible there). At d_model 64
  // decode dominates again, matching the decoder benches above.
  const nn::ModelConfig cfg = nn::ModelConfig::bench_scale(tok.vocab_size());
  // Two identically-seeded models: the services repack their model into
  // their tier at construction, so the tiers can't share one instance.
  Rng rng_i8(99), rng_f32(99);
  nn::TransformerLM model_i8(cfg, rng_i8);
  nn::TransformerLM model_f32(cfg, rng_f32);
  serve::ServiceConfig scfg;
  scfg.batch_width = width;
  scfg.queue_max = 256;
  scfg.sample.temperature = 0.9f;
  scfg.sample.top_k = 12;
  scfg.sample.max_len = 32;
  scfg.quant = tensor::QuantKind::kInt8;  // the opt-in quantized tier
  serve::GenerationService service_i8(model_i8, tok, scfg);
  scfg.quant = tensor::QuantKind::kF32;  // unquantized baseline
  serve::GenerationService service_f32(model_f32, tok, scfg);
  service_i8.start();
  service_f32.start();

  const auto timed_request = [&](serve::GenerationService& service, bool warm,
                                 double& acc) {
    if (!warm) service.cache().clear();
    serve::Request req;
    req.n = 8;
    req.seed = 1364;
    req.temperature = 0.9f;  // the per-request override the scan used
    const auto t0 = std::chrono::steady_clock::now();
    const auto resp = service.submit(req).response.get();
    const auto t1 = std::chrono::steady_clock::now();
    if (resp.status != serve::Status::kOk) {
      w.failed = true;
      return;
    }
    acc += std::chrono::duration<double>(t1 - t0).count();
    if (warm) w.items += static_cast<std::int64_t>(resp.items.size());
  };

  // Prime all paths once so no variant pays first-touch costs.
  timed_request(service_i8, false, w.cold_s);
  timed_request(service_i8, true, w.warm_s);
  timed_request(service_f32, false, w.f32_cold_s);
  timed_request(service_f32, true, w.f32_warm_s);
  w.cold_s = w.warm_s = w.f32_cold_s = w.f32_warm_s = 0.0;
  w.items = 0;
  constexpr int kRounds = 200;
  for (int i = 0; i < kRounds && !w.failed; ++i) {
    timed_request(service_i8, false, w.cold_s);
    timed_request(service_i8, true, w.warm_s);
    timed_request(service_f32, false, w.f32_cold_s);
    timed_request(service_f32, true, w.f32_warm_s);
  }
  // Both services serve n=8 per round; halve so `items` stays per-variant.
  w.items /= 2;
  service_i8.drain();
  service_f32.drain();
  return windows.emplace(width, w).first->second;
}

void BM_ServeThroughput(benchmark::State& state) {
  const PairedServeWindow& w = paired_serve_window(static_cast<int>(state.range(0)));
  const bool warm = state.range(1) != 0;
  if (w.failed) {
    state.SkipWithError("request not served");
    return;
  }
  for (auto _ : state) {
    state.SetIterationTime(warm ? w.warm_s : w.cold_s);
  }
  state.SetItemsProcessed(w.items);
  state.SetLabel(warm ? "int8 warm-cache" : "int8 cold-cache");
}
BENCHMARK(BM_ServeThroughput)
    ->Args({1, 0})->Args({1, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Args({16, 0})->Args({16, 1})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The f32-tier half of the paired serving window above: same request
// stream, same rounds, interleaved in the same process, so this row is
// the drift-cancelled baseline the quantized rows are judged against.
void BM_ServeThroughputF32(benchmark::State& state) {
  const PairedServeWindow& w = paired_serve_window(static_cast<int>(state.range(0)));
  const bool warm = state.range(1) != 0;
  if (w.failed) {
    state.SkipWithError("request not served");
    return;
  }
  for (auto _ : state) {
    state.SetIterationTime(warm ? w.f32_warm_s : w.f32_cold_s);
  }
  state.SetItemsProcessed(w.items);
  state.SetLabel(warm ? "f32 warm-cache" : "f32 cold-cache");
}
BENCHMARK(BM_ServeThroughputF32)
    ->Args({1, 0})->Args({1, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Args({16, 0})->Args({16, 1})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Surrogate pre-filter ROI on the serving path (DESIGN.md §15): the same
// scanned request (weight seed 99 / request seed 1364 — 4 simulatable
// topologies in the 8-candidate batch, so there is real SPICE work to
// shed) through two services sharing weights, one with the learned FoM
// pre-filter at keep = 0.25 and one without. Both run verify at
// EVA_AC_POINTS-class fidelity (2001-point sweep) — the SPICE-bound
// regime the filter targets; at the Mini-SPICE default 61 points decode
// dominates and the filter's saving sits inside scheduler noise. Cold
// cache on every request — warm requests memoize the evaluations and the
// filter has nothing left to remove. Interleaved rounds as above: drift
// hits both variants equally, so the on/off ordering within one
// committed run is trustworthy.
struct PairedSurrogateWindow {
  double off_s = 0.0;
  double on_s = 0.0;
  std::int64_t items = 0;  // per variant
  bool failed = false;
};

const PairedSurrogateWindow& paired_surrogate_window(int width) {
  static std::map<int, PairedSurrogateWindow> windows;
  const auto it = windows.find(width);
  if (it != windows.end()) return it->second;
  PairedSurrogateWindow w;

  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  const nn::ModelConfig cfg = nn::ModelConfig::bench_scale(tok.vocab_size());
  Rng rng_off(99), rng_on(99);
  nn::TransformerLM model_off(cfg, rng_off);
  nn::TransformerLM model_on(cfg, rng_on);
  serve::ServiceConfig scfg;
  scfg.batch_width = width;
  scfg.queue_max = 256;
  scfg.sample.temperature = 0.9f;
  scfg.sample.top_k = 12;
  scfg.sample.max_len = 32;
  // int8 on both sides (tier held equal; the comparison is the filter):
  // the faster decode makes the verify stage a larger slice of the
  // request, so the filter's saving clears within-window noise.
  scfg.quant = tensor::QuantKind::kInt8;
  scfg.sim.ac_points = 2001;
  serve::GenerationService service_off(model_off, tok, scfg);
  Rng head_rng(41);
  surrogate::SurrogateModel head =
      surrogate::SurrogateModel::from_lm(model_on, 32, head_rng);
  scfg.surrogate = std::make_shared<surrogate::SurrogateScorer>(head);
  scfg.surrogate_keep = 0.25;
  serve::GenerationService service_on(model_on, tok, scfg);
  service_off.start();
  service_on.start();

  const auto timed_request = [&](serve::GenerationService& service,
                                 double& acc, bool count_items) {
    service.cache().clear();  // cold: every candidate reaches the filter
    serve::Request req;
    req.n = 8;
    req.seed = 1364;
    req.temperature = 0.9f;
    const auto t0 = std::chrono::steady_clock::now();
    const auto resp = service.submit(req).response.get();
    const auto t1 = std::chrono::steady_clock::now();
    if (resp.status != serve::Status::kOk) {
      w.failed = true;
      return;
    }
    acc += std::chrono::duration<double>(t1 - t0).count();
    if (count_items) w.items += static_cast<std::int64_t>(resp.items.size());
  };

  timed_request(service_off, w.off_s, false);
  timed_request(service_on, w.on_s, false);
  w.off_s = w.on_s = 0.0;
  // ABBA within each round: first-order drift across the two calls of a
  // round cancels too, not just drift across rounds.
  constexpr int kRounds = 150;
  for (int i = 0; i < kRounds && !w.failed; ++i) {
    if (i % 2 == 0) {
      timed_request(service_off, w.off_s, true);
      timed_request(service_on, w.on_s, false);
    } else {
      timed_request(service_on, w.on_s, false);
      timed_request(service_off, w.off_s, true);
    }
  }
  service_off.drain();
  service_on.drain();
  return windows.emplace(width, w).first->second;
}

void BM_ServeThroughputSurrogate(benchmark::State& state) {
  const PairedSurrogateWindow& w =
      paired_surrogate_window(static_cast<int>(state.range(0)));
  const bool on = state.range(1) != 0;
  if (w.failed) {
    state.SkipWithError("request not served");
    return;
  }
  for (auto _ : state) {
    state.SetIterationTime(on ? w.on_s : w.off_s);
  }
  state.SetItemsProcessed(w.items);
  state.SetLabel(on ? "surrogate keep=0.25 cold-cache"
                    : "surrogate off cold-cache");
}
BENCHMARK(BM_ServeThroughputSurrogate)
    ->Args({8, 0})->Args({8, 1})
    ->Args({16, 0})->Args({16, 1})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Library build type, stamped into the JSON context so a committed
  // BENCH_micro.json can always be audited for how it was produced.
#ifdef NDEBUG
  constexpr bool kReleaseBuild = true;
#else
  constexpr bool kReleaseBuild = false;
#endif
  benchmark::AddCustomContext("eva_build_type",
                              kReleaseBuild ? "release" : "debug");

  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_path = "BENCH_micro.json";
  bool explicit_out = has_out;
  if (const char* env = std::getenv("EVA_BENCH_OUT")) {
    out_path = env;
    explicit_out = true;
  }
  // Non-Release numbers must never silently land in the default report
  // file (the committed baseline is a Release artifact): a debug build
  // only writes JSON when the caller explicitly asked for a path, and
  // even then the eva_build_type context tags the result.
  if (!kReleaseBuild && !explicit_out) {
    std::fprintf(stderr,
                 "bench_micro: debug/unoptimized build -- refusing to write "
                 "%s; pass --benchmark_out or set EVA_BENCH_OUT to record "
                 "debug numbers anyway\n",
                 out_path.c_str());
  }
  std::string out_flag = "--benchmark_out=" + out_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out && (kReleaseBuild || explicit_out)) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
