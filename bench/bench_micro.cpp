// google-benchmark microbenchmarks for the substrates: tensor engine,
// circuit representation, mini-SPICE, generation throughput.
//
// Always writes a machine-readable report (chrome for CI trend tracking):
// unless the caller passes an explicit --benchmark_out, the run also
// writes google-benchmark JSON to BENCH_micro.json in the working
// directory (override the path with EVA_BENCH_OUT). GFLOP/s and token
// throughput appear as items_per_second, latencies as real_time in the
// benchmark's declared unit.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/canon.hpp"
#include "circuit/pingraph.hpp"
#include "circuit/validity.hpp"
#include "data/generators.hpp"
#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "serve/service.hpp"
#include "spice/engine.hpp"
#include "spice/fom.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace eva;

// --- tensor ---------------------------------------------------------------

// Raw kernel throughput for the three GEMM shapes the training loop
// exercises: nn (forward), nt (input-gradient), tn (weight-gradient).
// items_per_second == FLOP/s; read it as GFLOP/s.

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int ni = static_cast<int>(n);
  Rng rng(41);
  auto a = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  auto b = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm_nn(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * state.range(0) *
                          state.range(0) * state.range(0));
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int ni = static_cast<int>(n);
  Rng rng(42);
  auto a = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  auto b = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm_nt(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * state.range(0) *
                          state.range(0) * state.range(0));
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(256);

void BM_GemmTN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int ni = static_cast<int>(n);
  Rng rng(43);
  auto a = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  auto b = tensor::Tensor::randn({ni, ni}, rng, 1.0f, false);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm_tn(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * state.range(0) *
                          state.range(0) * state.range(0));
}
BENCHMARK(BM_GemmTN)->Arg(64)->Arg(256);

void BM_TensorMatmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  auto a = tensor::Tensor::randn({n, n}, rng, 1.0f, false);
  auto b = tensor::Tensor::randn({n, n}, rng, 1.0f, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(64)->Arg(128)->Arg(256);

void BM_TransformerForwardBackward(benchmark::State& state) {
  Rng rng(2);
  nn::ModelConfig cfg = nn::ModelConfig::bench_scale(200);
  nn::TransformerLM model(cfg, rng);
  std::vector<int> tokens(4 * 128, 5);
  for (auto _ : state) {
    auto logits = model.forward(tokens, 4, 128);
    auto loss = tensor::mean_all(logits);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 4 * 128);
}
BENCHMARK(BM_TransformerForwardBackward)->Unit(benchmark::kMillisecond);

void BM_KvCacheTokenThroughput(benchmark::State& state) {
  Rng rng(3);
  nn::ModelConfig cfg = nn::ModelConfig::bench_scale(200);
  nn::TransformerLM model(cfg, rng);
  std::vector<float> logits;
  auto cache = model.make_cache();
  int produced = 0;
  for (auto _ : state) {
    if (cache.len >= cfg.max_seq) cache = model.make_cache();
    model.infer_step(cache, 5, logits);
    ++produced;
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(produced);
}
BENCHMARK(BM_KvCacheTokenThroughput);

// End-to-end generation: KV-cache inference + legality masking + top-k
// sampling, the loop batched topology discovery spends its time in.
// items_per_second == sampled tokens/sec.
void BM_SampleTokenThroughput(benchmark::State& state) {
  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  Rng rng(30);
  nn::ModelConfig cfg = nn::ModelConfig::bench_scale(tok.vocab_size());
  nn::TransformerLM model(cfg, rng);
  nn::SampleOptions opts;
  opts.temperature = 0.9f;
  opts.top_k = 12;
  opts.max_len = 96;
  Rng sample_rng(31);
  std::int64_t tokens = 0;
  for (auto _ : state) {
    const auto res = nn::sample_sequence(model, tok, sample_rng, opts);
    tokens += static_cast<std::int64_t>(res.ids.size());
    benchmark::DoNotOptimize(res.ids.data());
  }
  state.SetItemsProcessed(tokens);
}
BENCHMARK(BM_SampleTokenThroughput)->Unit(benchmark::kMillisecond);

// Batch generation head-to-head on an identical 24-sequence workload:
// the thread-fanout reference path (B independent single-sequence
// decodes) vs the continuous-batching BatchedDecoder at several widths.
// items_per_second == sampled tokens/sec in both, so the ratio is the
// end-to-end speedup of batched decode.

nn::SampleOptions batch_bench_opts() {
  nn::SampleOptions opts;
  opts.temperature = 0.9f;
  opts.top_k = 12;
  opts.max_len = 80;
  return opts;
}
// Deployment-shaped model for the head-to-head: large enough that the
// weight matrices overflow L2, so per-sequence gemv decode re-streams
// every weight once per token per sequence while the batched engine
// streams them once per step for the whole cohort. bench_scale weights
// fit in L1/L2, which would hide exactly the effect being measured.
nn::ModelConfig batch_bench_config(int vocab) {
  return {vocab, 192, 4, 4, 768, 96, 0.0f};
}
constexpr int kBatchBenchSeqs = 24;

void BM_SampleBatchReference(benchmark::State& state) {
  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  Rng rng(30);
  nn::ModelConfig cfg = batch_bench_config(tok.vocab_size());
  nn::TransformerLM model(cfg, rng);
  const auto opts = batch_bench_opts();
  Rng sample_rng(31);
  std::int64_t tokens = 0;
  for (auto _ : state) {
    const auto batch = nn::sample_batch_reference(model, tok, sample_rng,
                                                  kBatchBenchSeqs, opts);
    for (const auto& res : batch) {
      tokens += static_cast<std::int64_t>(res.ids.size());
    }
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(tokens);
}
BENCHMARK(BM_SampleBatchReference)->Unit(benchmark::kMillisecond);

void BM_SampleBatchDecoder(benchmark::State& state) {
  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  Rng rng(30);
  nn::ModelConfig cfg = batch_bench_config(tok.vocab_size());
  nn::TransformerLM model(cfg, rng);
  auto opts = batch_bench_opts();
  opts.batch_width = static_cast<int>(state.range(0));
  nn::BatchedDecoder decoder(model, tok, opts.batch_width, opts);
  Rng sample_rng(31);
  std::int64_t tokens = 0;
  for (auto _ : state) {
    const auto batch = decoder.decode(sample_rng, kBatchBenchSeqs);
    for (const auto& res : batch) {
      tokens += static_cast<std::int64_t>(res.ids.size());
    }
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(tokens);
}
BENCHMARK(BM_SampleBatchDecoder)->Arg(1)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// --- circuit ----------------------------------------------------------------

circuit::Netlist bench_netlist() {
  Rng rng(4);
  return data::gen_opamp(rng);
}

void BM_EulerTourEncode(benchmark::State& state) {
  const auto nl = bench_netlist();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::encode_tour(nl, rng).size());
  }
}
BENCHMARK(BM_EulerTourEncode);

void BM_TourDecode(benchmark::State& state) {
  const auto nl = bench_netlist();
  Rng rng(6);
  const auto tour = circuit::encode_tour(nl, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::decode_tour(tour).ok);
  }
}
BENCHMARK(BM_TourDecode);

void BM_CanonicalHash(benchmark::State& state) {
  const auto nl = bench_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::canonical_hash(nl));
  }
}
BENCHMARK(BM_CanonicalHash);

void BM_ValidityCheck(benchmark::State& state) {
  const auto nl = bench_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::structurally_valid(nl));
  }
}
BENCHMARK(BM_ValidityCheck);

// --- spice -------------------------------------------------------------------

void BM_DcOperatingPoint(benchmark::State& state) {
  const auto nl = bench_netlist();
  const auto sz = spice::default_sizing(nl);
  for (auto _ : state) {
    spice::Simulator sim(nl, sz);
    benchmark::DoNotOptimize(sim.solve_dc());
  }
}
BENCHMARK(BM_DcOperatingPoint)->Unit(benchmark::kMicrosecond);

void BM_AcSweep(benchmark::State& state) {
  const auto nl = bench_netlist();
  const auto sz = spice::default_sizing(nl);
  spice::Simulator sim(nl, sz);
  if (!sim.solve_dc()) state.SkipWithError("DC failed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.ac_sweep().size());
  }
}
BENCHMARK(BM_AcSweep)->Unit(benchmark::kMicrosecond);

void BM_FomEvaluation(benchmark::State& state) {
  const auto nl = bench_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::evaluate_default(nl, circuit::CircuitType::OpAmp).fom);
  }
}
BENCHMARK(BM_FomEvaluation)->Unit(benchmark::kMicrosecond);

void BM_DatasetGenerate(benchmark::State& state) {
  Rng rng(7);
  int i = 0;
  for (auto _ : state) {
    const auto type = static_cast<circuit::CircuitType>(i++ % 11);
    benchmark::DoNotOptimize(data::generate(type, rng).num_devices());
  }
}
BENCHMARK(BM_DatasetGenerate);

// --- serving -----------------------------------------------------------------

// Closed-loop serving throughput through the full GenerationService path:
// submit -> scheduler -> batched decode -> canonical-hash lookup ->
// (validity + FoM on miss) -> response. Arg 0 is the decoder width,
// arg 1 selects cold (0) vs warm (1) cache. Both variants replay the
// exact same seeded request, so the decode work is identical; cold
// clears the ResultCache before every request (every topology pays
// validity + SPICE FoM), warm keeps it (evaluations memoized by WL
// canonical hash). items_per_second == served topologies/sec on wall
// clock -- warm minus cold is the evaluation cost the cache removes.
//
// Measurement is PAIRED: the cache gap is a few percent of end-to-end
// request latency (decode dominates, DESIGN.md section 10), smaller than
// the multi-percent drift a shared machine shows between sequentially
// run benchmark variants -- an unpaired cold-then-warm run flips sign on
// a bad day. So for each width one window alternates
// cold,warm,cold,warm... requests and accumulates each variant's wall
// time separately; the cold and warm rows then report their half of that
// shared window via manual timing. Drift hits both variants of a pair
// equally, so the reported ordering is the within-window truth.
struct PairedServeWindow {
  double cold_s = 0.0;
  double warm_s = 0.0;
  std::int64_t items = 0;  // per variant
  bool failed = false;
};

const PairedServeWindow& paired_serve_window(int width) {
  static std::map<int, PairedServeWindow> windows;
  const auto it = windows.find(width);
  if (it != windows.end()) return it->second;
  PairedServeWindow w;

  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  // Weight seed 99 + request seed 3444 is a scanned pair whose 8-topology
  // batch holds 4 simulatable circuits (the deepest valid fraction found
  // in a 50k-seed scan), so the validity + FoM evaluation the cache
  // memoizes actually runs: an arbitrary untrained-weight batch is
  // almost entirely rejected by the ~2us structural pre-check, which
  // would bench the cache on a workload where it has nothing to do.
  Rng rng(99);
  const nn::ModelConfig cfg = nn::ModelConfig::tiny(tok.vocab_size());
  const nn::TransformerLM model(cfg, rng);
  serve::ServiceConfig scfg;
  scfg.batch_width = width;
  scfg.queue_max = 256;
  scfg.sample.temperature = 0.9f;
  scfg.sample.top_k = 12;
  scfg.sample.max_len = 32;
  serve::GenerationService service(model, tok, scfg);
  service.start();

  const auto timed_request = [&](bool warm, double& acc) {
    if (!warm) service.cache().clear();
    serve::Request req;
    req.n = 8;
    req.seed = 3444;
    req.temperature = 0.9f;  // the per-request override the scan used
    const auto t0 = std::chrono::steady_clock::now();
    const auto resp = service.submit(req).response.get();
    const auto t1 = std::chrono::steady_clock::now();
    if (resp.status != serve::Status::kOk) {
      w.failed = true;
      return;
    }
    acc += std::chrono::duration<double>(t1 - t0).count();
    if (warm) w.items += static_cast<std::int64_t>(resp.items.size());
  };

  // Prime both paths once so neither variant pays first-touch costs.
  timed_request(false, w.cold_s);
  timed_request(true, w.warm_s);
  w.cold_s = w.warm_s = 0.0;
  w.items = 0;
  constexpr int kRounds = 400;
  for (int i = 0; i < kRounds && !w.failed; ++i) {
    timed_request(false, w.cold_s);
    timed_request(true, w.warm_s);
  }
  service.drain();
  return windows.emplace(width, w).first->second;
}

void BM_ServeThroughput(benchmark::State& state) {
  const PairedServeWindow& w = paired_serve_window(static_cast<int>(state.range(0)));
  const bool warm = state.range(1) != 0;
  if (w.failed) {
    state.SkipWithError("request not served");
    return;
  }
  for (auto _ : state) {
    state.SetIterationTime(warm ? w.warm_s : w.cold_s);
  }
  state.SetItemsProcessed(w.items);
  state.SetLabel(warm ? "warm-cache" : "cold-cache");
}
BENCHMARK(BM_ServeThroughput)
    ->Args({1, 0})->Args({1, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Args({16, 0})->Args({16, 1})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_path = "BENCH_micro.json";
  if (const char* env = std::getenv("EVA_BENCH_OUT")) out_path = env;
  std::string out_flag = "--benchmark_out=" + out_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
