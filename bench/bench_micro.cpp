// google-benchmark microbenchmarks for the substrates: tensor engine,
// circuit representation, mini-SPICE, generation throughput.
#include <benchmark/benchmark.h>

#include "circuit/canon.hpp"
#include "circuit/pingraph.hpp"
#include "circuit/validity.hpp"
#include "data/generators.hpp"
#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "spice/engine.hpp"
#include "spice/fom.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace eva;

// --- tensor ---------------------------------------------------------------

void BM_TensorMatmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  auto a = tensor::Tensor::randn({n, n}, rng, 1.0f, false);
  auto b = tensor::Tensor::randn({n, n}, rng, 1.0f, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(64)->Arg(128)->Arg(256);

void BM_TransformerForwardBackward(benchmark::State& state) {
  Rng rng(2);
  nn::ModelConfig cfg = nn::ModelConfig::bench_scale(200);
  nn::TransformerLM model(cfg, rng);
  std::vector<int> tokens(4 * 128, 5);
  for (auto _ : state) {
    auto logits = model.forward(tokens, 4, 128);
    auto loss = tensor::mean_all(logits);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * 4 * 128);
}
BENCHMARK(BM_TransformerForwardBackward)->Unit(benchmark::kMillisecond);

void BM_KvCacheTokenThroughput(benchmark::State& state) {
  Rng rng(3);
  nn::ModelConfig cfg = nn::ModelConfig::bench_scale(200);
  nn::TransformerLM model(cfg, rng);
  std::vector<float> logits;
  auto cache = model.make_cache();
  int produced = 0;
  for (auto _ : state) {
    if (cache.len >= cfg.max_seq) cache = model.make_cache();
    model.infer_step(cache, 5, logits);
    ++produced;
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(produced);
}
BENCHMARK(BM_KvCacheTokenThroughput);

// --- circuit ----------------------------------------------------------------

circuit::Netlist bench_netlist() {
  Rng rng(4);
  return data::gen_opamp(rng);
}

void BM_EulerTourEncode(benchmark::State& state) {
  const auto nl = bench_netlist();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::encode_tour(nl, rng).size());
  }
}
BENCHMARK(BM_EulerTourEncode);

void BM_TourDecode(benchmark::State& state) {
  const auto nl = bench_netlist();
  Rng rng(6);
  const auto tour = circuit::encode_tour(nl, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::decode_tour(tour).ok);
  }
}
BENCHMARK(BM_TourDecode);

void BM_CanonicalHash(benchmark::State& state) {
  const auto nl = bench_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::canonical_hash(nl));
  }
}
BENCHMARK(BM_CanonicalHash);

void BM_ValidityCheck(benchmark::State& state) {
  const auto nl = bench_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::structurally_valid(nl));
  }
}
BENCHMARK(BM_ValidityCheck);

// --- spice -------------------------------------------------------------------

void BM_DcOperatingPoint(benchmark::State& state) {
  const auto nl = bench_netlist();
  const auto sz = spice::default_sizing(nl);
  for (auto _ : state) {
    spice::Simulator sim(nl, sz);
    benchmark::DoNotOptimize(sim.solve_dc());
  }
}
BENCHMARK(BM_DcOperatingPoint)->Unit(benchmark::kMicrosecond);

void BM_AcSweep(benchmark::State& state) {
  const auto nl = bench_netlist();
  const auto sz = spice::default_sizing(nl);
  spice::Simulator sim(nl, sz);
  if (!sim.solve_dc()) state.SkipWithError("DC failed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.ac_sweep().size());
  }
}
BENCHMARK(BM_AcSweep)->Unit(benchmark::kMicrosecond);

void BM_FomEvaluation(benchmark::State& state) {
  const auto nl = bench_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::evaluate_default(nl, circuit::CircuitType::OpAmp).fom);
  }
}
BENCHMARK(BM_FomEvaluation)->Unit(benchmark::kMicrosecond);

void BM_DatasetGenerate(benchmark::State& state) {
  Rng rng(7);
  int i = 0;
  for (auto _ : state) {
    const auto type = static_cast<circuit::CircuitType>(i++ % 11);
    benchmark::DoNotOptimize(data::generate(type, rng).num_devices());
  }
}
BENCHMARK(BM_DatasetGenerate);

}  // namespace

BENCHMARK_MAIN();
