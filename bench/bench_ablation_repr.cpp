// Ablation (ours, motivated by §III-A): cost of the Eulerian-circuit
// sequence representation vs a dense adjacency matrix, and the effect of
// the DeviceFirst tour policy on sequence-grammar locality.
//
//  * Token efficiency: Euler-tour length is ~2|E|+1 and grows linearly
//    with device count, while an adjacency matrix over pins grows
//    quadratically — the paper's sparsity argument.
//  * Tour-policy ablation: fraction of device-pin runs that are
//    contiguous under DeviceFirst vs Uniform tours (the property that
//    makes the token grammar learnable at small scale).
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "util/stats.hpp"
#include "circuit/pingraph.hpp"
#include "data/dataset.hpp"

namespace {

using namespace eva;
using circuit::PinGraph;

/// Fraction of devices whose pins appear as one contiguous block
/// somewhere in the tour (first mention to cycle completion).
double contiguity(const std::vector<circuit::PinToken>& tour) {
  std::map<std::pair<int, int>, std::vector<std::size_t>> positions;
  for (std::size_t i = 0; i < tour.size(); ++i) {
    if (tour[i].is_io) continue;
    positions[{static_cast<int>(tour[i].kind), tour[i].index}].push_back(i);
  }
  if (positions.empty()) return 1.0;
  int contiguous = 0;
  for (const auto& [dev, pos] : positions) {
    (void)dev;
    // A full cycle run of a p-pin device occupies p+1 consecutive slots.
    bool found = false;
    for (std::size_t i = 0; i + 1 < pos.size(); ++i) {
      std::size_t run = 1;
      while (i + run < pos.size() && pos[i + run] == pos[i] + run) ++run;
      if (run >= 3) {
        found = true;
        break;
      }
    }
    contiguous += found;
  }
  return static_cast<double>(contiguous) / static_cast<double>(positions.size());
}

}  // namespace

int main() {
  using namespace eva;
  std::cout << "=== Ablation: sequence representation cost and tour policy "
               "===\n";
  data::DatasetConfig cfg;
  cfg.per_type = 20;
  cfg.seed = 11;
  cfg.require_simulatable = false;
  const auto ds = data::Dataset::build(cfg);

  // Token efficiency by device count bucket.
  std::map<int, std::vector<double>> tour_len, adj_len;
  Rng rng(3);
  double dev_first_contig = 0, uniform_contig = 0;
  int counted = 0;
  for (const auto& e : ds.entries()) {
    const PinGraph g = PinGraph::from_netlist(e.netlist);
    const auto t_dev = g.euler_tour(rng, PinGraph::TourPolicy::DeviceFirst);
    const auto t_uni = g.euler_tour(rng, PinGraph::TourPolicy::Uniform);
    const int bucket = (e.netlist.num_devices() / 5) * 5;
    const auto pins = static_cast<double>(g.vertices().size());
    tour_len[bucket].push_back(static_cast<double>(t_dev.size()));
    adj_len[bucket].push_back(pins * pins);  // dense pin adjacency matrix
    dev_first_contig += contiguity(t_dev);
    uniform_contig += contiguity(t_uni);
    ++counted;
  }

  ConsoleTable table("Sequence length vs dense adjacency (mean per bucket)",
                     {"devices", "Euler-tour tokens", "adjacency entries",
                      "ratio", "n"});
  for (const auto& [bucket, lens] : tour_len) {
    const double t = eva::mean(lens);
    const double a = eva::mean(adj_len[bucket]);
    table.add_row({std::to_string(bucket) + "-" + std::to_string(bucket + 4),
                   fmt(t, 1), fmt(a, 0), fmt(a / t, 1),
                   std::to_string(lens.size())});
  }
  table.print(std::cout);

  std::cout << "tour policy: contiguous device runs "
            << fmt(100.0 * dev_first_contig / counted, 1)
            << "% (DeviceFirst) vs "
            << fmt(100.0 * uniform_contig / counted, 1) << "% (Uniform)\n";
  std::cout << "shape: Euler tours stay linear in |E| while adjacency "
               "grows quadratically (paper's sparsity argument).\n";
  return 0;
}
