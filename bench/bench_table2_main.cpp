// Reproduces Table II: "Performance comparison between EVA and existing
// analog circuit topology generation work."
//
// Columns: Validity (%), Novelty (Diff circuit % + MMD), Versatility,
// # of labeled topologies (Op-Amp / Power converter), FoM@10 (Op-Amp /
// Power converter). Rows: the four baselines and five EVA variants
// (Pretrain, PPO only, DPO only, Pretrain+PPO, Pretrain+DPO).
//
// Expected shape (absolute numbers depend on the CPU-scale model; see
// EXPERIMENTS.md): EVA(Pretrain) leads baselines on novelty+versatility
// with 0 labeled samples; PPO-only/DPO-only from scratch produce ~0%
// validity; fine-tuned EVA focuses on the target type and lifts FoM@10
// far above its pretrain-only value.
#include <iostream>

#include "baselines/baselines.hpp"
#include "bench/common.hpp"
#include "rl/dpo.hpp"
#include "rl/ppo.hpp"

namespace {

using namespace eva;
using circuit::CircuitType;

struct Row {
  std::string name;
  std::string validity, diff, mmd, versat;
  std::string lab_op, lab_pc, fom_op, fom_pc;
};

std::vector<eval::Attempt> baseline_attempts(
    baselines::TopologyGenerator& gen, int n, Rng& rng) {
  std::vector<eval::Attempt> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(gen.generate(rng));
  return out;
}

opt::GaConfig bench_ga() {
  opt::GaConfig ga;
  ga.population = 14;
  ga.generations = 6;
  return ga;
}

Row eval_baseline(baselines::TopologyGenerator& gen, const data::Dataset& ds,
                  int gen_n, Rng& rng) {
  std::cout << "[table2] evaluating " << gen.name() << "...\n";
  const auto attempts = baseline_attempts(gen, gen_n, rng);
  const auto ev = eval::evaluate_generation(attempts, ds);

  Row row;
  row.name = gen.name();
  row.validity = bench::pct(ev.validity_pct);
  row.diff = ev.valid > 0 ? bench::pct(ev.novelty_pct) : bench::na();
  row.mmd = ev.valid > 0 ? fmt(ev.mmd, 4) : bench::na();
  row.versat = std::to_string(ev.versatility);

  auto fom_for = [&](CircuitType t) -> std::string {
    if (!gen.supports(t)) return bench::na();
    Rng frng = rng.fork();
    const auto res = eval::fom_at_k(
        [&]() { return gen.generate(frng); }, 10, t, bench_ga());
    return fmt(res.best_fom, 1);
  };
  const int lab_op = gen.labeled_required(CircuitType::OpAmp);
  const int lab_pc = gen.labeled_required(CircuitType::PowerConverter);
  row.lab_op = lab_op < 0 ? bench::na() : std::to_string(lab_op);
  row.lab_pc = lab_pc < 0 ? bench::na() : std::to_string(lab_pc);
  row.fom_op = fom_for(CircuitType::OpAmp);
  row.fom_pc = fom_for(CircuitType::PowerConverter);
  return row;
}

rl::PpoConfig bench_ppo() {
  rl::PpoConfig ppo;
  ppo.epochs = 6;
  ppo.rollouts = 12;
  ppo.ppo_epochs = 2;
  ppo.minibatch = 4;
  ppo.max_len = 192;
  ppo.lr = 3e-4f;
  return ppo;
}

rl::DpoConfig bench_dpo() {
  rl::DpoConfig dpo;
  dpo.steps = 40;
  dpo.pairs_per_step = 3;
  dpo.lr = 1e-4f;
  return dpo;
}

rl::RewardModelConfig bench_rm() {
  rl::RewardModelConfig rm;
  rm.steps = 100;
  return rm;
}

}  // namespace

int main() {
  using namespace eva;
  bench::BenchScale scale;
  scale.gen_n = bench::env_int("EVA_BENCH_GEN_N", 200);

  std::cout << "=== Table II: EVA vs prior art ===\n";
  core::Eva engine = bench::make_pretrained(scale);
  const std::string ckpt = "/tmp/eva_table2_pretrained.bin";
  engine.save_model(ckpt);
  const int labeled_op = engine.label_for(CircuitType::OpAmp).labeled_count;
  const int labeled_pc =
      engine.label_for(CircuitType::PowerConverter).labeled_count;

  std::vector<Row> rows;
  Rng brng(scale.seed + 1000);

  // --- Baselines ----------------------------------------------------------
  for (auto factory :
       {&baselines::make_analogcoder_like, &baselines::make_artisan_like,
        &baselines::make_cktgnn_like, &baselines::make_lamagic_like}) {
    auto gen = factory(engine.dataset());
    rows.push_back(eval_baseline(*gen, engine.dataset(), scale.gen_n, brng));
  }

  // --- EVA (Pretrain) -------------------------------------------------------
  {
    std::cout << "[table2] evaluating EVA (Pretrain)...\n";
    const auto ev = engine.evaluate_generation(scale.gen_n);
    const auto fom_op =
        engine.discover(CircuitType::OpAmp, 10, bench_ga());
    const auto fom_pc =
        engine.discover(CircuitType::PowerConverter, 10, bench_ga());
    rows.push_back(Row{"EVA (Pretrain)", bench::pct(ev.validity_pct),
                       bench::pct(ev.novelty_pct), fmt(ev.mmd, 4),
                       std::to_string(ev.versatility), "0", "0",
                       fmt(fom_op.best_fom, 1), fmt(fom_pc.best_fom, 1)});
  }

  // --- EVA (PPO only / DPO only): fine-tuning from random init -------------
  {
    std::cout << "[table2] evaluating EVA (PPO only, from scratch)...\n";
    core::Eva scratch(bench::bench_config(scale));
    scratch.prepare();  // model stays randomly initialized
    scratch.finetune_ppo(CircuitType::OpAmp, bench_ppo(), bench_rm());
    const auto ev = scratch.evaluate_generation(scale.gen_n / 4);
    rows.push_back(Row{"EVA (PPO only)", bench::pct(ev.validity_pct),
                       ev.valid > 0 ? bench::pct(ev.novelty_pct) : bench::na(),
                       ev.valid > 0 ? fmt(ev.mmd, 4) : bench::na(),
                       std::to_string(ev.versatility),
                       std::to_string(labeled_op), std::to_string(labeled_pc),
                       bench::na(), bench::na()});
  }
  {
    std::cout << "[table2] evaluating EVA (DPO only, from scratch)...\n";
    core::Eva scratch(bench::bench_config(scale));
    scratch.prepare();
    scratch.finetune_dpo(CircuitType::OpAmp, bench_dpo(), 30);
    const auto ev = scratch.evaluate_generation(scale.gen_n / 4);
    rows.push_back(Row{"EVA (DPO only)", bench::pct(ev.validity_pct),
                       ev.valid > 0 ? bench::pct(ev.novelty_pct) : bench::na(),
                       ev.valid > 0 ? fmt(ev.mmd, 4) : bench::na(),
                       std::to_string(ev.versatility),
                       std::to_string(labeled_op), std::to_string(labeled_pc),
                       bench::na(), bench::na()});
  }

  // --- EVA (Pretrain+PPO) ----------------------------------------------------
  {
    std::cout << "[table2] evaluating EVA (Pretrain+PPO)...\n";
    engine.load_model(ckpt);
    engine.finetune_ppo(CircuitType::OpAmp, bench_ppo(), bench_rm());
    const auto ev = engine.evaluate_generation(scale.gen_n);
    const auto fom_op = engine.discover(CircuitType::OpAmp, 10, bench_ga());
    engine.load_model(ckpt);
    engine.finetune_ppo(CircuitType::PowerConverter, bench_ppo(), bench_rm());
    const auto fom_pc =
        engine.discover(CircuitType::PowerConverter, 10, bench_ga());
    rows.push_back(Row{"EVA (Pretrain+PPO)", bench::pct(ev.validity_pct),
                       bench::pct(ev.novelty_pct), fmt(ev.mmd, 4),
                       std::to_string(ev.versatility),
                       std::to_string(labeled_op), std::to_string(labeled_pc),
                       fmt(fom_op.best_fom, 1), fmt(fom_pc.best_fom, 1)});
  }

  // --- EVA (Pretrain+DPO) ----------------------------------------------------
  {
    std::cout << "[table2] evaluating EVA (Pretrain+DPO)...\n";
    engine.load_model(ckpt);
    engine.finetune_dpo(CircuitType::OpAmp, bench_dpo(), 30);
    const auto ev = engine.evaluate_generation(scale.gen_n);
    const auto fom_op = engine.discover(CircuitType::OpAmp, 10, bench_ga());
    engine.load_model(ckpt);
    engine.finetune_dpo(CircuitType::PowerConverter, bench_dpo(), 30);
    const auto fom_pc =
        engine.discover(CircuitType::PowerConverter, 10, bench_ga());
    rows.push_back(Row{"EVA (Pretrain+DPO)", bench::pct(ev.validity_pct),
                       bench::pct(ev.novelty_pct), fmt(ev.mmd, 4),
                       std::to_string(ev.versatility),
                       std::to_string(labeled_op), std::to_string(labeled_pc),
                       fmt(fom_op.best_fom, 1), fmt(fom_pc.best_fom, 1)});
  }

  ConsoleTable table(
      "Table II: performance comparison (this reproduction's measurements)",
      {"Method", "Validity(%)", "Diff(%)", "MMD", "Versatility",
       "#lab OpAmp", "#lab PwrConv", "FoM@10 OpAmp", "FoM@10 PwrConv"});
  for (const auto& r : rows) {
    table.add_row({r.name, r.validity, r.diff, r.mmd, r.versat, r.lab_op,
                   r.lab_pc, r.fom_op, r.fom_pc});
  }
  table.print(std::cout);
  return 0;
}
