// Shared setup for the reproduction benchmarks: one standard pipeline
// configuration (dataset scale, model scale, pretraining budget) so every
// table/figure bench runs the same EVA.
//
// Scale knobs come from environment variables so the same binaries can run
// quick (CI) or closer to paper scale:
//   EVA_BENCH_PER_TYPE   topologies per circuit type   (default 30)
//   EVA_BENCH_STEPS      pretraining steps             (default 600)
//   EVA_BENCH_GEN_N      generation batch for metrics  (default 300)
//   EVA_BENCH_SEED       master seed                   (default 7)
#pragma once

#include <chrono>
#include <cstdlib>
#include <string>

#include "core/eva.hpp"
#include "obs/log.hpp"
#include "util/io.hpp"

namespace eva::bench {

inline int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : def;
}

struct BenchScale {
  int per_type = env_int("EVA_BENCH_PER_TYPE", 30);
  int pretrain_steps = env_int("EVA_BENCH_STEPS", 600);
  int gen_n = env_int("EVA_BENCH_GEN_N", 300);
  std::uint64_t seed = static_cast<std::uint64_t>(env_int("EVA_BENCH_SEED", 7));
};

/// The standard bench configuration of the EVA engine.
inline core::EvaConfig bench_config(const BenchScale& s) {
  core::EvaConfig cfg;
  cfg.seed = s.seed;
  cfg.dataset.per_type = s.per_type;
  cfg.dataset.seed = s.seed + 100;
  cfg.dataset.require_simulatable = true;
  cfg.tours_per_topology = 4;
  cfg.model = nn::ModelConfig::bench_scale(0);
  cfg.pretrain.steps = s.pretrain_steps;
  cfg.pretrain.batch = 8;
  cfg.pretrain.lr = 3e-3f;
  // Mild sharpening: at CPU scale the model's top-1 structure is far more
  // reliable than its tail, and the paper's metrics sample generations.
  cfg.sample_temperature = 0.75f;
  return cfg;
}

/// Build + pretrain the standard pipeline. Progress goes through the
/// structured logger (stderr + EVA_LOG_FILE), keeping stdout clean for
/// the paper-style tables the bench binaries print.
inline core::Eva make_pretrained(const BenchScale& s) {
  const auto t0 = std::chrono::steady_clock::now();
  core::Eva engine(bench_config(s));
  obs::log_info("bench.setup",
                {{"per_type", s.per_type}, {"pretrain_steps", s.pretrain_steps}});
  engine.prepare();
  obs::log_info(
      "bench.prepared",
      {{"topologies",
        static_cast<std::int64_t>(engine.dataset().entries().size())},
       {"vocab", engine.tokenizer().vocab_size()},
       {"train_seqs", static_cast<std::int64_t>(engine.corpus().train.size())},
       {"model_params", static_cast<std::int64_t>(engine.model().num_params())}});
  const auto result = engine.pretrain();
  const auto dt = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  obs::log_info("bench.pretrained", {{"first_loss", result.losses.front()},
                                     {"last_loss", result.losses.back()},
                                     {"val_loss", result.final_val_loss},
                                     {"setup_s", dt}});
  return engine;
}

/// Format helpers for paper-style table cells.
inline std::string pct(double v) { return eva::fmt(v, 1); }
inline std::string na() { return "N/A"; }

}  // namespace eva::bench
