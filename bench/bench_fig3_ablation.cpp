// Reproduces Fig. 3: "PPO score and DPO validation reward accuracy
// comparison between Pretrain + Finetune, Pretrain only, and Finetune
// only while targeting Op-Amp design."
//
// Left panel: PPO mean sequence reward (Table I scale, -1..1) per epoch
// for the three arms. Right panel: DPO validation reward accuracy per
// training step for the three arms. Curves print as ASCII and are saved
// to CSV next to the binary.
#include <iostream>

#include "bench/common.hpp"
#include "rl/dpo.hpp"
#include "rl/ppo.hpp"

namespace {

using namespace eva;
using circuit::CircuitType;

rl::PpoConfig fig_ppo() {
  rl::PpoConfig ppo;
  ppo.epochs = 8;
  ppo.rollouts = 10;
  ppo.ppo_epochs = 2;
  ppo.minibatch = 4;
  ppo.max_len = 192;
  ppo.lr = 3e-4f;
  return ppo;
}

rl::DpoConfig fig_dpo() {
  rl::DpoConfig dpo;
  dpo.steps = 40;
  dpo.pairs_per_step = 3;
  dpo.lr = 1e-4f;
  return dpo;
}

}  // namespace

int main() {
  using namespace eva;
  bench::BenchScale scale;
  scale.per_type = bench::env_int("EVA_BENCH_PER_TYPE", 20);
  scale.pretrain_steps = bench::env_int("EVA_BENCH_STEPS", 1500);

  std::cout << "=== Fig. 3: necessity of pretraining AND fine-tuning "
               "(Op-Amp target) ===\n";
  core::Eva engine = bench::make_pretrained(scale);
  const std::string ckpt = "/tmp/eva_fig3_pretrained.bin";
  engine.save_model(ckpt);
  const auto labels = engine.label_for(CircuitType::OpAmp);

  // Shared reward model, trained once on the labeled set.
  Rng rng(scale.seed + 50);
  rl::RewardModel reward(engine.model(), engine.tokenizer(), rng);
  rl::RewardModelConfig rmc;
  rmc.steps = 100;
  reward.train(labels.examples, rmc);

  // --- PPO panel -------------------------------------------------------------
  std::vector<double> ppo_pf, ppo_p, ppo_f;

  std::cout << "[fig3] arm 1/3: Pretrain + PPO finetune...\n";
  {
    engine.load_model(ckpt);
    rl::PpoTrainer t(engine.model(), engine.tokenizer(), reward, fig_ppo(),
                     rng);
    ppo_pf = t.train().mean_reward;
  }
  std::cout << "[fig3] arm 2/3: Pretrain only (no updates)...\n";
  {
    engine.load_model(ckpt);
    rl::PpoConfig frozen = fig_ppo();
    rl::PpoTrainer t(engine.model(), engine.tokenizer(), reward, frozen, rng);
    for (int e = 0; e < frozen.epochs; ++e) {
      ppo_p.push_back(t.evaluate_mean_reward(frozen.rollouts));
    }
  }
  std::cout << "[fig3] arm 3/3: PPO finetune only (random init)...\n";
  {
    core::Eva scratch(bench::bench_config(scale));
    scratch.prepare();
    rl::PpoTrainer t(scratch.model(), scratch.tokenizer(), reward, fig_ppo(),
                     rng);
    ppo_f = t.train().mean_reward;
  }

  std::cout << "\n" << ascii_curve(ppo_pf, "PPO score - Pretrain+Finetune");
  std::cout << "\n" << ascii_curve(ppo_p, "PPO score - Pretrain only");
  std::cout << "\n" << ascii_curve(ppo_f, "PPO score - Finetune only");

  // --- DPO panel -------------------------------------------------------------
  Rng prng(scale.seed + 60);
  const auto pairs = rl::build_preference_pairs(labels.examples, 30, prng);
  std::vector<double> dpo_pf, dpo_p, dpo_f;

  std::cout << "\n[fig3] DPO arms...\n";
  {
    engine.load_model(ckpt);
    rl::DpoTrainer t(engine.model(), engine.tokenizer(), fig_dpo());
    dpo_pf = t.train(pairs).reward_acc;
  }
  {
    engine.load_model(ckpt);  // pretrain-only: policy == reference
    rl::DpoTrainer t(engine.model(), engine.tokenizer(), fig_dpo());
    for (std::size_t i = 0; i < dpo_pf.size(); ++i) {
      dpo_p.push_back(t.reward_accuracy(pairs));
    }
  }
  {
    core::Eva scratch(bench::bench_config(scale));
    scratch.prepare();
    rl::DpoTrainer t(scratch.model(), scratch.tokenizer(), fig_dpo());
    dpo_f = t.train(pairs).reward_acc;
  }

  std::cout << "\n" << ascii_curve(dpo_pf, "DPO reward acc - Pretrain+Finetune");
  std::cout << "\n" << ascii_curve(dpo_p, "DPO reward acc - Pretrain only");
  std::cout << "\n" << ascii_curve(dpo_f, "DPO reward acc - Finetune only");

  // CSV dump.
  CsvWriter csv({"epoch", "ppo_pretrain_finetune", "ppo_pretrain_only",
                 "ppo_finetune_only"});
  for (std::size_t i = 0; i < ppo_pf.size(); ++i) {
    csv.add_row(std::vector<double>{static_cast<double>(i), ppo_pf[i],
                                    i < ppo_p.size() ? ppo_p[i] : 0.0,
                                    i < ppo_f.size() ? ppo_f[i] : 0.0});
  }
  csv.save("fig3_ppo_score.csv");
  CsvWriter csv2({"step", "dpo_pretrain_finetune", "dpo_pretrain_only",
                  "dpo_finetune_only"});
  for (std::size_t i = 0; i < dpo_pf.size(); ++i) {
    csv2.add_row(std::vector<double>{static_cast<double>(i), dpo_pf[i],
                                     i < dpo_p.size() ? dpo_p[i] : 0.0,
                                     i < dpo_f.size() ? dpo_f[i] : 0.0});
  }
  csv2.save("fig3_dpo_acc.csv");
  std::cout << "\nsaved fig3_ppo_score.csv / fig3_dpo_acc.csv\n";

  // Headline shape check, mirroring the paper's conclusion.
  const double pf_final = ppo_pf.empty() ? 0 : ppo_pf.back();
  const double f_final = ppo_f.empty() ? 0 : ppo_f.back();
  std::cout << "\nshape: PPO final score pretrain+finetune="
            << fmt(pf_final, 3) << "  finetune-only=" << fmt(f_final, 3)
            << "  (paper: only pretrain+finetune reaches high scores)\n";
  return 0;
}
