// Reproduces Fig. 4: "EVA's PPO loss and DPO loss after pretraining while
// targeting Op-Amp design."
//
// Left: the PPO losses over updates (L_policy, L_value, L_PPO). Right:
// the DPO loss over steps, plus the win/lose sequence log-likelihoods
// whose joint decline (losing faster) is the degeneration the paper
// discusses in §IV-C.
#include <iostream>

#include "bench/common.hpp"
#include "rl/dpo.hpp"
#include "rl/ppo.hpp"
#include "util/stats.hpp"

int main() {
  using namespace eva;
  using circuit::CircuitType;

  bench::BenchScale scale;
  scale.per_type = bench::env_int("EVA_BENCH_PER_TYPE", 20);
  scale.pretrain_steps = bench::env_int("EVA_BENCH_STEPS", 1500);

  std::cout << "=== Fig. 4: PPO and DPO training losses after pretraining "
               "(Op-Amp target) ===\n";
  core::Eva engine = bench::make_pretrained(scale);
  const std::string ckpt = "/tmp/eva_fig4_pretrained.bin";
  engine.save_model(ckpt);
  const auto labels = engine.label_for(CircuitType::OpAmp);

  Rng rng(scale.seed + 70);
  rl::RewardModel reward(engine.model(), engine.tokenizer(), rng);
  rl::RewardModelConfig rmc;
  rmc.steps = 100;
  reward.train(labels.examples, rmc);

  // --- PPO losses -----------------------------------------------------------
  std::cout << "[fig4] PPO fine-tuning...\n";
  rl::PpoConfig ppo;
  ppo.epochs = 8;
  ppo.rollouts = 10;
  ppo.ppo_epochs = 2;
  ppo.minibatch = 4;
  ppo.max_len = 192;
  ppo.lr = 3e-4f;
  rl::PpoTrainer ptrainer(engine.model(), engine.tokenizer(), reward, ppo,
                          rng);
  const auto pstats = ptrainer.train();

  std::cout << "\n" << ascii_curve(ema(pstats.total_loss, 0.3),
                                   "PPO loss L_PPO (EMA)");
  std::cout << "\n" << ascii_curve(ema(pstats.policy_loss, 0.3),
                                   "PPO policy objective L_policy (EMA)");
  std::cout << "\n" << ascii_curve(ema(pstats.value_loss, 0.3),
                                   "PPO value loss L_value (EMA)");

  // --- DPO losses -----------------------------------------------------------
  std::cout << "\n[fig4] DPO fine-tuning (low learning rate)...\n";
  engine.load_model(ckpt);
  Rng prng(scale.seed + 80);
  const auto pairs = rl::build_preference_pairs(labels.examples, 30, prng);
  rl::DpoConfig dpo;
  dpo.steps = 50;
  dpo.pairs_per_step = 3;
  dpo.lr = 1e-4f;
  dpo.logprob_probe = 8;
  rl::DpoTrainer dtrainer(engine.model(), engine.tokenizer(), dpo);
  const auto dstats = dtrainer.train(pairs);

  std::cout << "\n" << ascii_curve(ema(dstats.loss, 0.3), "DPO loss (EMA)");
  std::cout << "\n" << ascii_curve(dstats.logp_win,
                                   "log pi(y_w) - winning topologies");
  std::cout << "\n" << ascii_curve(dstats.logp_lose,
                                   "log pi(y_l) - losing topologies");

  // CSV dumps.
  CsvWriter pcsv({"update", "l_ppo", "l_policy", "l_value"});
  for (std::size_t i = 0; i < pstats.total_loss.size(); ++i) {
    pcsv.add_row(std::vector<double>{static_cast<double>(i),
                                     pstats.total_loss[i],
                                     pstats.policy_loss[i],
                                     pstats.value_loss[i]});
  }
  pcsv.save("fig4_ppo_loss.csv");
  CsvWriter dcsv({"step", "dpo_loss", "logp_win", "logp_lose", "reward_acc"});
  for (std::size_t i = 0; i < dstats.loss.size(); ++i) {
    dcsv.add_row(std::vector<double>{
        static_cast<double>(i), dstats.loss[i],
        i < dstats.logp_win.size() ? dstats.logp_win[i] : 0.0,
        i < dstats.logp_lose.size() ? dstats.logp_lose[i] : 0.0,
        dstats.reward_acc[i]});
  }
  dcsv.save("fig4_dpo_loss.csv");
  std::cout << "\nsaved fig4_ppo_loss.csv / fig4_dpo_loss.csv\n";

  // Degeneration check (paper §IV-C): both log-probs decline, the losing
  // one faster, so the margin still grows.
  if (dstats.logp_win.size() >= 5) {
    const double dw = dstats.logp_win.back() - dstats.logp_win.front();
    const double dl = dstats.logp_lose.back() - dstats.logp_lose.front();
    std::cout << "\nshape: d(log pi(y_w)) = " << fmt(dw, 2)
              << ", d(log pi(y_l)) = " << fmt(dl, 2)
              << "  (paper: both decline at low LR, losing faster => "
              << (dl < dw ? "REPRODUCED" : "not observed at this scale")
              << ")\n";
  }
  return 0;
}
