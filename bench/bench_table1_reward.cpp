// Validates Table I: "Rank score definitions for PPO finetuning."
//
// Checks that (a) the rule-based checker + trained reward model assign
// the Table I reward levels to held-out examples of each rank class, and
// (b) the Plackett-Luce-trained scores preserve the Table I ordering
// High > Low > Irrelevant > Invalid.
#include <iostream>

#include "bench/common.hpp"
#include "rl/reward_model.hpp"

int main() {
  using namespace eva;
  using circuit::CircuitType;
  using rl::RankClass;

  bench::BenchScale scale;
  scale.per_type = bench::env_int("EVA_BENCH_PER_TYPE", 18);
  scale.pretrain_steps = bench::env_int("EVA_BENCH_STEPS", 800);

  std::cout << "=== Table I: rank-score definitions, reward model check "
               "(Op-Amp target) ===\n";
  core::Eva engine = bench::make_pretrained(scale);
  const auto labels = engine.label_for(CircuitType::OpAmp);

  // Split labeled examples into train/held-out per class, guaranteeing at
  // least one held-out example of every class that has two or more.
  std::vector<rl::RankedExample> train, held;
  int count_per_class[4] = {0, 0, 0, 0};
  int total_per_class[4] = {0, 0, 0, 0};
  for (const auto& e : labels.examples) {
    ++total_per_class[static_cast<int>(e.rank)];
  }
  for (const auto& e : labels.examples) {
    const int cls = static_cast<int>(e.rank);
    const int i = count_per_class[cls]++;
    const bool to_held =
        total_per_class[cls] >= 2 && (i == 0 || i % 5 == 4);
    (to_held ? held : train).push_back(e);
  }

  Rng rng(scale.seed + 90);
  rl::RewardModel reward(engine.model(), engine.tokenizer(), rng);
  rl::RewardModelConfig rmc;
  rmc.steps = 120;
  reward.train(train, rmc);

  const char* class_names[4] = {"High-perf relevant valid",
                                "Low-perf relevant valid",
                                "Irrelevant valid", "Invalid circuit"};
  const double defined[4] = {1.0, 0.5, -0.5, -1.0};

  double mean_reward[4] = {0, 0, 0, 0};
  int n[4] = {0, 0, 0, 0};
  for (const auto& e : held) {
    const int c = static_cast<int>(e.rank);
    mean_reward[c] += reward.reward(e.ids);
    ++n[c];
  }

  ConsoleTable table("Table I: reward assignments on held-out topologies",
                     {"Rank class", "Defined reward", "Model mean reward",
                      "Held-out n"});
  for (int c = 0; c < 4; ++c) {
    const double mean = n[c] > 0 ? mean_reward[c] / n[c] : 0.0;
    table.add_row({class_names[c], fmt(defined[c], 1), fmt(mean, 3),
                   std::to_string(n[c])});
    mean_reward[c] = mean;
  }
  table.print(std::cout);

  std::cout << "held-out classification accuracy: "
            << fmt(100.0 * reward.accuracy(held), 1) << "%\n";

  const bool ordered = mean_reward[0] > mean_reward[1] &&
                       mean_reward[1] > mean_reward[2] &&
                       mean_reward[2] > mean_reward[3];
  std::cout << "shape: Table I ordering High > Low > Irrelevant > Invalid "
            << (ordered ? "REPRODUCED" : "NOT fully ordered at this scale")
            << "\n";
  std::cout << "Otsu FoM threshold used for the high/low split: "
            << fmt(labels.fom_threshold, 3) << "\n";
  return 0;
}
