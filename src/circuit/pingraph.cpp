#include "circuit/pingraph.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>
#include <unordered_map>

namespace eva::circuit {

std::string PinToken::name() const {
  if (is_io) return std::string{io_name(io)};
  std::ostringstream os;
  os << kind_prefix(kind) << index << '_' << pin_suffix(kind, pin);
  return os.str();
}

std::uint32_t pack_token(const PinToken& t) {
  if (t.is_io) return (1u << 30) | static_cast<std::uint32_t>(t.io);
  EVA_ASSERT(t.index >= 1 && t.index < (1 << 16), "device index out of range");
  EVA_ASSERT(t.pin >= 0 && t.pin < pin_count(t.kind), "pin out of range");
  return (static_cast<std::uint32_t>(t.kind) << 20) |
         (static_cast<std::uint32_t>(t.index) << 4) |
         static_cast<std::uint32_t>(t.pin);
}

PinToken unpack_token(std::uint32_t key) {
  if (key & (1u << 30)) {
    return io_token(static_cast<IoPin>(key & 0xFFFF));
  }
  return dev_token(static_cast<DeviceKind>((key >> 20) & 0xFF),
                   static_cast<int>((key >> 4) & 0xFFFF),
                   static_cast<int>(key & 0xF));
}

namespace {

/// Deterministic device-cycle edges for a device instance: a cycle through
/// its pins for 3- and 4-pin devices, a doubled edge for 2-pin devices.
/// These edges make the multigraph connected per-device and keep all
/// degrees even; decode subtracts exactly this multiset.
std::vector<std::pair<PinToken, PinToken>> device_cycle_edges(DeviceKind kind,
                                                              int index) {
  std::vector<std::pair<PinToken, PinToken>> out;
  const int n = pin_count(kind);
  if (n == 2) {
    out.emplace_back(dev_token(kind, index, 0), dev_token(kind, index, 1));
    out.emplace_back(dev_token(kind, index, 0), dev_token(kind, index, 1));
  } else {
    for (int p = 0; p < n; ++p) {
      out.emplace_back(dev_token(kind, index, p),
                       dev_token(kind, index, (p + 1) % n));
    }
  }
  return out;
}

/// Net edges: cycle through the pins for k >= 3, doubled edge for k == 2.
template <typename AddEdge>
void add_net_edges(const std::vector<PinToken>& pins, AddEdge add) {
  const std::size_t k = pins.size();
  if (k < 2) return;  // degenerate net: contributes nothing
  if (k == 2) {
    add(pins[0], pins[1]);
    add(pins[0], pins[1]);
    return;
  }
  for (std::size_t i = 0; i < k; ++i) add(pins[i], pins[(i + 1) % k]);
}

std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Union-find over small index spaces.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

PinGraph PinGraph::from_netlist(const Netlist& nl) {
  PinGraph g;
  std::unordered_map<std::uint32_t, std::size_t> vid;
  auto vertex = [&](const PinToken& t) -> std::size_t {
    const auto key = pack_token(t);
    auto [it, inserted] = vid.emplace(key, g.vertices_.size());
    if (inserted) {
      g.vertices_.push_back(t);
      g.incident_.emplace_back();
    }
    return it->second;
  };
  auto add_edge = [&](const PinToken& a, const PinToken& b,
                      bool is_device_edge) {
    const std::size_t u = vertex(a);
    const std::size_t v = vertex(b);
    const std::size_t e = g.edges_.size();
    g.edges_.emplace_back(u, v);
    g.edge_is_device_.push_back(is_device_edge ? 1 : 0);
    g.incident_[u].push_back(e);
    g.incident_[v].push_back(e);
  };

  // Device cycles (every pin of every device becomes a vertex).
  for (std::size_t d = 0; d < nl.devices().size(); ++d) {
    const Device& dev = nl.devices()[d];
    for (auto& [a, b] : device_cycle_edges(dev.kind, dev.index)) {
      add_edge(a, b, true);
    }
  }

  // Net cycles.
  for (const auto& net : nl.nets()) {
    std::vector<PinToken> pins;
    pins.reserve(net.size());
    for (const auto& p : net) {
      if (p.is_io()) {
        pins.push_back(io_token(p.io));
      } else {
        const Device& dev = nl.devices()[static_cast<std::size_t>(p.device)];
        pins.push_back(dev_token(dev.kind, dev.index, p.pin));
      }
    }
    add_net_edges(pins, [&](const PinToken& a, const PinToken& b) {
      add_edge(a, b, false);
    });
  }
  return g;
}

std::size_t PinGraph::degree(std::size_t v) const {
  EVA_ASSERT(v < incident_.size(), "degree: vertex out of range");
  return incident_[v].size();
}

bool PinGraph::all_degrees_even() const {
  for (const auto& inc : incident_) {
    if (inc.size() % 2 != 0) return false;
  }
  return true;
}

bool PinGraph::connected() const {
  if (vertices_.empty()) return true;
  std::vector<char> seen(vertices_.size(), 0);
  std::vector<std::size_t> stack{0};
  seen[0] = 1;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t e : incident_[v]) {
      const auto [a, b] = edges_[e];
      const std::size_t w = (a == v) ? b : a;
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](char c) { return c != 0; });
}

std::vector<PinToken> PinGraph::euler_tour(Rng& rng,
                                           TourPolicy policy) const {
  // Locate VSS.
  std::size_t start = vertices_.size();
  for (std::size_t v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].is_io && vertices_[v].io == IoPin::Vss) {
      start = v;
      break;
    }
  }
  if (start == vertices_.size()) {
    throw CircuitError("euler_tour: netlist has no VSS pin");
  }
  if (!all_degrees_even()) {
    throw CircuitError("euler_tour: odd-degree vertex (internal invariant)");
  }

  // Randomize traversal order per vertex (sequence augmentation). Under
  // DeviceFirst, device-cycle edges are tried before net edges so each
  // device's pins form a contiguous run in the tour — a local grammar the
  // generation model can master at small scale (DESIGN.md §2).
  std::vector<std::vector<std::size_t>> inc = incident_;
  for (auto& list : inc) {
    rng.shuffle(list);
    if (policy == TourPolicy::DeviceFirst) {
      std::stable_partition(list.begin(), list.end(), [this](std::size_t e) {
        return edge_is_device_[e] != 0;
      });
    }
  }

  // Iterative Hierholzer.
  std::vector<char> used(edges_.size(), 0);
  std::vector<std::size_t> ptr(vertices_.size(), 0);
  std::vector<std::size_t> stack{start};
  std::vector<std::size_t> tour;
  tour.reserve(edges_.size() + 1);
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    bool advanced = false;
    while (ptr[v] < inc[v].size()) {
      const std::size_t e = inc[v][ptr[v]++];
      if (used[e]) continue;
      used[e] = 1;
      const auto [a, b] = edges_[e];
      stack.push_back(a == v ? b : a);
      advanced = true;
      break;
    }
    if (!advanced) {
      tour.push_back(v);
      stack.pop_back();
    }
  }
  if (tour.size() != edges_.size() + 1) {
    throw CircuitError("euler_tour: graph is disconnected");
  }
  std::reverse(tour.begin(), tour.end());

  std::vector<PinToken> tokens;
  tokens.reserve(tour.size());
  for (std::size_t v : tour) tokens.push_back(vertices_[v]);
  return tokens;
}

std::vector<PinToken> encode_tour(const Netlist& nl, Rng& rng,
                                  PinGraph::TourPolicy policy) {
  return PinGraph::from_netlist(nl).euler_tour(rng, policy);
}

DecodeResult decode_tour(const std::vector<PinToken>& tour) {
  DecodeResult res;
  if (tour.size() < 3) {
    res.error = "sequence too short";
    return res;
  }
  const PinToken vss = io_token(IoPin::Vss);
  if (!(tour.front() == vss)) {
    res.error = "tour must start at VSS";
    return res;
  }
  if (!(tour.back() == vss)) {
    res.error = "tour must return to VSS";
    return res;
  }

  // Walk-edge multiset.
  std::unordered_map<std::uint64_t, int> edge_count;
  for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
    const auto a = pack_token(tour[i]);
    const auto b = pack_token(tour[i + 1]);
    if (a == b) {
      res.error = "self-loop at " + tour[i].name();
      return res;
    }
    ++edge_count[edge_key(a, b)];
  }

  // Device instances mentioned anywhere in the tour.
  std::map<std::pair<DeviceKind, int>, bool> instances;
  for (const auto& t : tour) {
    if (!t.is_io) instances[{t.kind, t.index}] = true;
  }

  // Subtract every instance's deterministic device-cycle edges.
  for (const auto& [inst, unused] : instances) {
    (void)unused;
    for (auto& [a, b] : device_cycle_edges(inst.first, inst.second)) {
      auto it = edge_count.find(edge_key(pack_token(a), pack_token(b)));
      if (it == edge_count.end() || it->second == 0) {
        res.error = "incomplete device cycle for " +
                    std::string{kind_prefix(inst.first)} +
                    std::to_string(inst.second);
        return res;
      }
      --it->second;
    }
  }

  // Collect all vertices: every pin of every seen instance + IO tokens seen.
  std::vector<PinToken> verts;
  std::unordered_map<std::uint32_t, std::size_t> vid;
  auto vertex = [&](const PinToken& t) -> std::size_t {
    const auto key = pack_token(t);
    auto [it, inserted] = vid.emplace(key, verts.size());
    if (inserted) verts.push_back(t);
    return it->second;
  };
  for (const auto& [inst, unused] : instances) {
    (void)unused;
    for (int p = 0; p < pin_count(inst.first); ++p) {
      vertex(dev_token(inst.first, inst.second, p));
    }
  }
  for (const auto& t : tour) {
    if (t.is_io) vertex(t);
  }

  // Remaining edges define net connectivity.
  UnionFind uf(verts.size());
  std::vector<char> has_net_edge(verts.size(), 0);
  for (const auto& [key, count] : edge_count) {
    if (count <= 0) continue;
    const auto a = static_cast<std::uint32_t>(key >> 32);
    const auto b = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    const std::size_t u = vertex(unpack_token(a));
    const std::size_t v = vertex(unpack_token(b));
    uf.unite(u, v);
    has_net_edge[u] = has_net_edge[v] = 1;
  }

  // Rebuild the netlist: devices in (kind, index) order so reconstruction
  // is deterministic; instance numbers are renumbered contiguously (the
  // topology is unchanged up to naming).
  Netlist nl;
  std::map<std::pair<DeviceKind, int>, int> dev_id;
  for (const auto& [inst, unused] : instances) {
    (void)unused;
    dev_id[inst] = nl.add_device(inst.first);
  }

  std::map<std::size_t, Net> components;
  int floating = 0;
  for (std::size_t v = 0; v < verts.size(); ++v) {
    const PinToken& t = verts[v];
    if (!has_net_edge[v]) {
      if (!t.is_io) ++floating;
      continue;
    }
    PinRef ref = t.is_io
                     ? io_ref(t.io)
                     : dev_ref(dev_id.at({t.kind, t.index}), t.pin);
    components[uf.find(v)].push_back(ref);
  }
  for (auto& [root, net] : components) {
    (void)root;
    if (net.size() >= 2) nl.add_net(std::move(net));
  }

  res.ok = true;
  res.netlist = std::move(nl);
  res.floating_pins = floating;
  return res;
}

}  // namespace eva::circuit
