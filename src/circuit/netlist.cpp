#include "circuit/netlist.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace eva::circuit {

int Netlist::add_device(DeviceKind kind) {
  const int key = static_cast<int>(kind);
  int& next = kind_next_index_[key];
  if (next == 0) next = 1;
  devices_.push_back(Device{kind, next});
  ++next;
  return static_cast<int>(devices_.size()) - 1;
}

int Netlist::add_net(Net pins) {
  for (const auto& p : pins) {
    if (!p.is_io()) {
      EVA_REQUIRE(p.device < num_devices(), "net references unknown device");
      EVA_REQUIRE(
          p.pin < pin_count(devices_[static_cast<std::size_t>(p.device)].kind),
          "net references out-of-range pin");
    }
    EVA_REQUIRE(!net_of(p).has_value(),
                "pin " + pin_name(p) + " already belongs to a net");
  }
  // A net must not contain duplicate pins.
  Net sorted = pins;
  std::sort(sorted.begin(), sorted.end());
  EVA_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              "duplicate pin within a net");
  nets_.push_back(std::move(pins));
  return static_cast<int>(nets_.size()) - 1;
}

void Netlist::connect(int net_id, PinRef pin) {
  EVA_REQUIRE(net_id >= 0 && net_id < static_cast<int>(nets_.size()),
              "connect: unknown net");
  EVA_REQUIRE(!net_of(pin).has_value(),
              "pin " + pin_name(pin) + " already belongs to a net");
  nets_[static_cast<std::size_t>(net_id)].push_back(pin);
}

void Netlist::merge_nets(int a, int b) {
  EVA_REQUIRE(a >= 0 && a < static_cast<int>(nets_.size()) && b >= 0 &&
                  b < static_cast<int>(nets_.size()) && a != b,
              "merge_nets: bad net ids");
  auto& na = nets_[static_cast<std::size_t>(a)];
  auto& nb = nets_[static_cast<std::size_t>(b)];
  na.insert(na.end(), nb.begin(), nb.end());
  nb.clear();
}

void Netlist::disconnect(const PinRef& pin) {
  for (auto& net : nets_) {
    net.erase(std::remove(net.begin(), net.end(), pin), net.end());
  }
}

std::optional<int> Netlist::net_of(const PinRef& pin) const {
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    for (const auto& p : nets_[i]) {
      if (p == pin) return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

std::map<DeviceKind, int> Netlist::kind_counts() const {
  std::map<DeviceKind, int> counts;
  for (const auto& d : devices_) ++counts[d.kind];
  return counts;
}

bool Netlist::uses_io(IoPin p) const {
  for (const auto& net : nets_) {
    for (const auto& pin : net) {
      if (pin.is_io() && pin.io == p) return true;
    }
  }
  return false;
}

std::vector<IoPin> Netlist::io_pins() const {
  std::set<IoPin> seen;
  for (const auto& net : nets_) {
    for (const auto& pin : net) {
      if (pin.is_io()) seen.insert(pin.io);
    }
  }
  return {seen.begin(), seen.end()};
}

std::string Netlist::pin_name(const PinRef& pin) const {
  if (pin.is_io()) return std::string{io_name(pin.io)};
  EVA_ASSERT(pin.device < num_devices(), "pin_name: unknown device");
  const Device& d = devices_[static_cast<std::size_t>(pin.device)];
  std::ostringstream os;
  os << kind_prefix(d.kind) << d.index << '_' << pin_suffix(d.kind, pin.pin);
  return os.str();
}

std::string Netlist::to_spice() const {
  // Name nets: IO nets get their IO name; internal nets get n<k>.
  std::vector<std::string> net_names(nets_.size());
  int anon = 1;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    std::string name;
    for (const auto& p : nets_[i]) {
      if (p.is_io()) {
        name = std::string{io_name(p.io)};
        break;
      }
    }
    if (name.empty()) name = "n" + std::to_string(anon++);
    net_names[i] = std::move(name);
  }
  auto net_name_of = [&](const PinRef& p) -> std::string {
    if (auto id = net_of(p)) return net_names[static_cast<std::size_t>(*id)];
    return "<float>";
  };

  std::ostringstream os;
  os << "* EVA netlist: " << devices_.size() << " devices, " << nets_.size()
     << " nets\n";
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const Device& d = devices_[i];
    os << kind_prefix(d.kind) << d.index;
    for (int p = 0; p < pin_count(d.kind); ++p) {
      os << ' ' << net_name_of(dev_ref(static_cast<int>(i), p));
    }
    switch (d.kind) {
      case DeviceKind::Nmos: os << " nmos"; break;
      case DeviceKind::Pmos: os << " pmos"; break;
      case DeviceKind::Npn: os << " npn"; break;
      case DeviceKind::Pnp: os << " pnp"; break;
      case DeviceKind::Resistor: os << " 10k"; break;
      case DeviceKind::Capacitor: os << " 1p"; break;
      case DeviceKind::Inductor: os << " 1n"; break;
      case DeviceKind::Diode: os << " dmod"; break;
    }
    os << '\n';
  }
  os << ".end\n";
  return os.str();
}

void Netlist::prune_degenerate_nets() {
  std::vector<Net> kept;
  kept.reserve(nets_.size());
  for (auto& net : nets_) {
    if (net.size() >= 2) kept.push_back(std::move(net));
  }
  nets_ = std::move(kept);
}

}  // namespace eva::circuit
