#include "circuit/canon.hpp"

#include <algorithm>
#include <vector>

namespace eva::circuit {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

/// Initial color of an IO pin / device / net node.
std::uint64_t seed_color(std::uint64_t tag, std::uint64_t sub) {
  return mix(mix(0x5851F42D4C957F2DULL, tag), sub);
}

}  // namespace

std::uint64_t canonical_hash(const Netlist& nl, int rounds) {
  // Node space: devices [0, D), nets [D, D+N).
  const auto D = static_cast<std::size_t>(nl.num_devices());
  const std::size_t N = nl.nets().size();
  const std::size_t total = D + N;
  if (total == 0) return 0x00C0FFEE00C0FFEEULL;

  // Edges: (device, net, pin-role). IO pins contribute to net seed colors.
  struct Edge {
    std::size_t device;
    std::size_t net;
    std::uint64_t role;
  };
  std::vector<Edge> edges;
  std::vector<std::uint64_t> color(total);

  for (std::size_t d = 0; d < D; ++d) {
    color[d] = seed_color(1, static_cast<std::uint64_t>(nl.devices()[d].kind));
  }
  for (std::size_t n = 0; n < N; ++n) {
    // Net seed: unordered multiset of its IO pins (internal nets identical).
    std::vector<std::uint64_t> ios;
    for (const auto& p : nl.nets()[n]) {
      if (p.is_io()) ios.push_back(static_cast<std::uint64_t>(p.io));
    }
    std::sort(ios.begin(), ios.end());
    std::uint64_t c = seed_color(2, 0);
    for (auto v : ios) c = mix(c, v + 17);
    color[D + n] = c;

    for (const auto& p : nl.nets()[n]) {
      if (p.is_io()) continue;
      const auto kind = nl.devices()[static_cast<std::size_t>(p.device)].kind;
      const std::uint64_t role =
          (static_cast<std::uint64_t>(kind) << 8) |
          static_cast<std::uint64_t>(p.pin);
      edges.push_back({static_cast<std::size_t>(p.device), D + n, role});
    }
  }

  std::vector<std::uint64_t> next(total);
  for (int round = 0; round < rounds; ++round) {
    // Each node's new color = old color mixed with the sorted multiset of
    // (neighbor color, edge role) signatures.
    std::vector<std::vector<std::uint64_t>> sigs(total);
    for (const auto& e : edges) {
      sigs[e.device].push_back(mix(color[e.net], e.role));
      sigs[e.net].push_back(mix(color[e.device], e.role + 0x1000));
    }
    for (std::size_t v = 0; v < total; ++v) {
      std::sort(sigs[v].begin(), sigs[v].end());
      std::uint64_t c = mix(color[v], 0xABCD);
      for (auto s : sigs[v]) c = mix(c, s);
      next[v] = c;
    }
    color.swap(next);
  }

  // Final hash: sorted multiset of stable colors.
  std::sort(color.begin(), color.end());
  std::uint64_t h = 0x2545F4914F6CDD1DULL;
  for (auto c : color) h = mix(h, c);
  return h;
}

}  // namespace eva::circuit
