// Graph statistics used by the MMD novelty metric (paper §IV-A: generated
// topologies are converted to graphs and compared to the real-world set
// with maximum mean discrepancy). Following the GraphRNN/CktGNN evaluation
// convention, MMD is computed over distributions of local graph statistics;
// we expose the per-circuit statistic vectors here and the kernel/MMD
// computation lives in src/eval.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace eva::circuit {

/// Per-topology statistic histograms.
struct GraphStats {
  std::vector<double> degree_hist;    // pin-graph vertex degrees, bins 1..12+
  std::vector<double> netsize_hist;   // net sizes, bins 2..9+
  std::vector<double> kind_hist;      // device-kind mix (8 bins, normalized)
  double avg_degree = 0.0;
  double device_count = 0.0;
  double net_count = 0.0;
};

[[nodiscard]] GraphStats graph_stats(const Netlist& nl);

/// Flattened fixed-length feature vector (concatenated histograms plus the
/// scalar summaries, scaled to comparable magnitudes).
[[nodiscard]] std::vector<double> stats_vector(const GraphStats& s);
[[nodiscard]] std::vector<double> stats_vector(const Netlist& nl);

}  // namespace eva::circuit
