#include "circuit/classify.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

namespace eva::circuit {

std::string_view type_name(CircuitType t) {
  switch (t) {
    case CircuitType::OpAmp: return "Op-Amp";
    case CircuitType::Ldo: return "LDO";
    case CircuitType::Bandgap: return "Bandgap";
    case CircuitType::Comparator: return "Comparator";
    case CircuitType::Pll: return "PLL";
    case CircuitType::Lna: return "LNA";
    case CircuitType::Pa: return "PA";
    case CircuitType::Mixer: return "Mixer";
    case CircuitType::Vco: return "VCO";
    case CircuitType::PowerConverter: return "PowerConverter";
    case CircuitType::ScSampler: return "SC-Sampler";
    case CircuitType::Unknown: return "Unknown";
  }
  return "?";
}

namespace {

bool is_mos(DeviceKind k) {
  return k == DeviceKind::Nmos || k == DeviceKind::Pmos;
}

/// True if net `id` contains the given IO pin.
bool net_has_io(const Netlist& nl, int id, IoPin io) {
  for (const auto& p : nl.nets()[static_cast<std::size_t>(id)]) {
    if (p.is_io() && p.io == io) return true;
  }
  return false;
}

struct MosInfo {
  int device = 0;
  DeviceKind kind = DeviceKind::Nmos;
  std::optional<int> g, d, s, b;
};

}  // namespace

StructuralFeatures extract_features(const Netlist& nl) {
  StructuralFeatures f;
  for (const auto& d : nl.devices()) {
    switch (d.kind) {
      case DeviceKind::Nmos: ++f.n_nmos; break;
      case DeviceKind::Pmos: ++f.n_pmos; break;
      case DeviceKind::Npn:
      case DeviceKind::Pnp: ++f.n_bjt; break;
      case DeviceKind::Resistor: ++f.n_res; break;
      case DeviceKind::Capacitor: ++f.n_cap; break;
      case DeviceKind::Inductor: ++f.n_ind; break;
      case DeviceKind::Diode: ++f.n_diode; break;
    }
  }
  f.uses_clk = nl.uses_io(IoPin::Clk1) || nl.uses_io(IoPin::Clk2);
  f.uses_iref = nl.uses_io(IoPin::Iref);
  f.uses_vin1 = nl.uses_io(IoPin::Vin1);
  f.uses_vin2 = nl.uses_io(IoPin::Vin2);
  f.uses_vout = nl.uses_io(IoPin::Vout1) || nl.uses_io(IoPin::Vout2);

  // Gather MOS pin nets.
  std::vector<MosInfo> mos;
  for (int d = 0; d < nl.num_devices(); ++d) {
    const Device& dev = nl.devices()[static_cast<std::size_t>(d)];
    if (!is_mos(dev.kind)) continue;
    MosInfo m;
    m.device = d;
    m.kind = dev.kind;
    m.g = nl.net_of(dev_ref(d, mos::G));
    m.d = nl.net_of(dev_ref(d, mos::D));
    m.s = nl.net_of(dev_ref(d, mos::S));
    m.b = nl.net_of(dev_ref(d, mos::B));
    mos.push_back(m);
  }

  // Pairwise MOS structure detection.
  for (std::size_t i = 0; i < mos.size(); ++i) {
    const auto& a = mos[i];
    // Clock-gated switch.
    if (a.g && (net_has_io(nl, *a.g, IoPin::Clk1) ||
                net_has_io(nl, *a.g, IoPin::Clk2))) {
      f.has_clk_switch = true;
    }
    // Pass device: S/D spanning VDD and VOUT.
    if (a.d && a.s) {
      const bool sd_vdd = net_has_io(nl, *a.d, IoPin::Vdd) ||
                          net_has_io(nl, *a.s, IoPin::Vdd);
      const bool sd_out = net_has_io(nl, *a.d, IoPin::Vout1) ||
                          net_has_io(nl, *a.s, IoPin::Vout1) ||
                          net_has_io(nl, *a.d, IoPin::Vout2) ||
                          net_has_io(nl, *a.s, IoPin::Vout2);
      if (sd_vdd && sd_out) f.has_pass_device = true;
    }
    for (std::size_t j = i + 1; j < mos.size(); ++j) {
      const auto& b = mos[j];
      if (a.kind != b.kind) continue;
      // Differential pair: shared source net, distinct gate nets. The
      // common source must be a floating (tail) node — two common-source
      // stages sharing a supply rail are not a pair.
      const bool shared_src_is_rail =
          a.s && (net_has_io(nl, *a.s, IoPin::Vss) ||
                  net_has_io(nl, *a.s, IoPin::Vdd));
      if (a.s && b.s && *a.s == *b.s && !shared_src_is_rail && a.g && b.g &&
          *a.g != *b.g) {
        f.has_diff_pair = true;
        const bool in1 = net_has_io(nl, *a.g, IoPin::Vin1) ||
                         net_has_io(nl, *b.g, IoPin::Vin1);
        const bool in2 = net_has_io(nl, *a.g, IoPin::Vin2) ||
                         net_has_io(nl, *b.g, IoPin::Vin2);
        if (in1 && in2) f.diff_pair_on_inputs = true;
        // Tail: some other MOS drain on the shared source net.
        for (const auto& c : mos) {
          if (c.device == a.device || c.device == b.device) continue;
          if (c.d && *c.d == *a.s) f.has_tail_source = true;
        }
      }
      // Current mirror: shared gate net, one of them diode-connected.
      if (a.g && b.g && *a.g == *b.g) {
        const bool diode_a = a.d && *a.d == *a.g;
        const bool diode_b = b.d && *b.d == *b.g;
        if (diode_a || diode_b) f.has_current_mirror = true;
      }
      // Cross-coupled pair: gate of each on drain net of the other.
      if (a.g && b.g && a.d && b.d && *a.g == *b.d && *b.g == *a.d &&
          *a.d != *b.d) {
        f.has_cross_coupled = true;
      }
    }
  }

  // Inverters: NMOS+PMOS sharing gate net and drain net, sources on rails.
  struct Inv {
    int in_net;
    int out_net;
  };
  std::vector<Inv> inverters;
  for (const auto& a : mos) {
    if (a.kind != DeviceKind::Nmos) continue;
    if (!(a.s && net_has_io(nl, *a.s, IoPin::Vss))) continue;
    for (const auto& b : mos) {
      if (b.kind != DeviceKind::Pmos) continue;
      if (!(b.s && net_has_io(nl, *b.s, IoPin::Vdd))) continue;
      if (a.g && b.g && *a.g == *b.g && a.d && b.d && *a.d == *b.d) {
        inverters.push_back({*a.g, *a.d});
      }
    }
  }
  f.n_inverter_stages = static_cast<int>(inverters.size());
  // Ring: follow out->in links; a cycle of length >= 3 marks a ring osc.
  if (inverters.size() >= 3) {
    for (std::size_t start = 0; start < inverters.size() && !f.inverter_ring;
         ++start) {
      int net = inverters[start].out_net;
      std::set<std::size_t> seen{start};
      for (int hop = 0; hop < static_cast<int>(inverters.size()); ++hop) {
        bool moved = false;
        for (std::size_t k = 0; k < inverters.size(); ++k) {
          if (inverters[k].in_net == net) {
            if (k == start && seen.size() >= 3) {
              f.inverter_ring = true;
            }
            if (seen.count(k)) break;
            seen.insert(k);
            net = inverters[k].out_net;
            moved = true;
            break;
          }
        }
        if (!moved || f.inverter_ring) break;
      }
    }
  }

  // Inductor to output; cap from output to a rail.
  for (int d = 0; d < nl.num_devices(); ++d) {
    const Device& dev = nl.devices()[static_cast<std::size_t>(d)];
    const auto np = nl.net_of(dev_ref(d, two::P));
    const auto nn = nl.net_of(dev_ref(d, two::N));
    if (!np || !nn) continue;
    auto on_out = [&](int id) {
      return net_has_io(nl, id, IoPin::Vout1) ||
             net_has_io(nl, id, IoPin::Vout2);
    };
    auto on_rail = [&](int id) {
      return net_has_io(nl, id, IoPin::Vss) || net_has_io(nl, id, IoPin::Vdd);
    };
    if (dev.kind == DeviceKind::Inductor && (on_out(*np) || on_out(*nn))) {
      f.has_series_ind_to_out = true;
    }
    if (dev.kind == DeviceKind::Capacitor &&
        ((on_out(*np) && on_rail(*nn)) || (on_out(*nn) && on_rail(*np)))) {
      f.output_has_cap_to_rail = true;
    }
  }

  return f;
}

CircuitType classify(const Netlist& nl) { return classify(extract_features(nl)); }

CircuitType classify(const StructuralFeatures& f) {
  const int n_mos = f.n_nmos + f.n_pmos;

  // Power converter: inductor in the power path with a switching device
  // or rectifier plus an output filter cap. (RF amps never carry clocked
  // switches or diodes, so this stays disjoint from LNA/PA.)
  if (f.n_ind >= 1 && (f.n_diode >= 1 || f.has_clk_switch) &&
      f.output_has_cap_to_rail && !f.has_diff_pair) {
    return CircuitType::PowerConverter;
  }

  // Switched-capacitor sampler: clocked switches + caps, no amplifier core
  // and no oscillator (a ring would indicate a PLL).
  if (f.has_clk_switch && f.n_cap >= 1 && f.n_ind == 0 && !f.has_diff_pair &&
      f.n_diode == 0 && !f.inverter_ring) {
    return CircuitType::ScSampler;
  }

  // PLL: ring oscillator plus loop filter (R and C) and a clock reference.
  if (f.inverter_ring && f.n_res >= 1 && f.n_cap >= 1 && f.uses_clk) {
    return CircuitType::Pll;
  }

  // VCO: cross-coupled pair with a tank, or a free-running inverter ring.
  // Clocked circuits (comparators' latch loads) are excluded.
  if (f.has_cross_coupled && (f.n_ind >= 1 || f.n_cap >= 1) && !f.uses_clk) {
    return CircuitType::Vco;
  }
  if (f.inverter_ring && !f.uses_clk) {
    return CircuitType::Vco;
  }

  // Comparator: clocked diff pair (latch) — diff pair + clock switch.
  if (f.has_diff_pair && f.has_clk_switch) {
    return CircuitType::Comparator;
  }

  // Bandgap: bipolars/diodes with resistors and a mirror, no signal input.
  if ((f.n_bjt >= 2 || f.n_diode >= 2) && f.n_res >= 1 &&
      f.has_current_mirror && !f.uses_vin1) {
    return CircuitType::Bandgap;
  }

  // Mixer: stacked differential structure with both inputs (RF + LO).
  if (f.has_diff_pair && f.uses_vin1 && f.uses_vin2 &&
      !f.diff_pair_on_inputs) {
    return CircuitType::Mixer;
  }

  // RF amps: inductive matching/loads, single-ended input, no diff pair.
  if (f.n_ind >= 1 && f.uses_vin1 && !f.has_diff_pair && n_mos >= 1) {
    // PA: big drive (multiple parallel output devices) or explicit series
    // inductor to the output; LNA otherwise.
    if (f.has_series_ind_to_out && n_mos >= 2) return CircuitType::Pa;
    return CircuitType::Lna;
  }

  // LDO: pass device + error amplifier whose inputs sit on the reference
  // and the feedback divider (not on the signal inputs — that would be a
  // two-stage Op-Amp driving a load).
  if (f.has_pass_device && f.has_diff_pair && f.n_res >= 2 &&
      !f.diff_pair_on_inputs) {
    return CircuitType::Ldo;
  }

  // Op-Amp: differential input pair on VIN1/VIN2, no clocks, no inductors.
  if (f.has_diff_pair && f.diff_pair_on_inputs && !f.uses_clk &&
      f.n_ind == 0 && f.uses_vout) {
    return CircuitType::OpAmp;
  }

  return CircuitType::Unknown;
}

}  // namespace eva::circuit
