// Pin-level multigraph and its Eulerian-circuit sequentialization
// (paper §III-A, Fig. 1).
//
// Construction (documented in DESIGN.md §2): vertices are device pins and
// IO pins; each net contributes a cycle through its pins (or a doubled
// edge for 2-pin nets) and each device contributes a cycle through its own
// pins. All vertex degrees are therefore even and the multigraph is
// connected exactly when the circuit is electrically connected, so an
// Eulerian circuit starting at VSS always exists for valid topologies.
//
// encode:  Netlist -> PinGraph -> randomized Euler tour (token sequence).
// decode:  token sequence -> multiset of walk edges -> subtract the
//          deterministic device-cycle edges -> remaining components = nets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "util/rng.hpp"

namespace eva::circuit {

/// One token of the sequence representation: a device pin or an IO pin.
struct PinToken {
  bool is_io = true;
  IoPin io = IoPin::Vss;
  DeviceKind kind = DeviceKind::Nmos;  // valid when !is_io
  int index = 1;                       // 1-based device instance number
  int pin = 0;                         // pin number within the device

  [[nodiscard]] std::string name() const;

  friend bool operator==(const PinToken& a, const PinToken& b) {
    if (a.is_io != b.is_io) return false;
    if (a.is_io) return a.io == b.io;
    return a.kind == b.kind && a.index == b.index && a.pin == b.pin;
  }
};

[[nodiscard]] inline PinToken io_token(IoPin p) {
  return PinToken{true, p, DeviceKind::Nmos, 1, 0};
}
[[nodiscard]] inline PinToken dev_token(DeviceKind k, int index, int pin) {
  return PinToken{false, IoPin::Vss, k, index, pin};
}

/// Dense packing of a PinToken for hashing/map keys.
[[nodiscard]] std::uint32_t pack_token(const PinToken& t);
[[nodiscard]] PinToken unpack_token(std::uint32_t key);

/// Pin-level multigraph of a netlist.
class PinGraph {
 public:
  /// Build the multigraph (net cycles + device cycles) from a netlist.
  [[nodiscard]] static PinGraph from_netlist(const Netlist& nl);

  [[nodiscard]] const std::vector<PinToken>& vertices() const {
    return vertices_;
  }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] bool connected() const;
  [[nodiscard]] bool all_degrees_even() const;
  /// Degree (with multiplicity) of vertex v.
  [[nodiscard]] std::size_t degree(std::size_t v) const;

  /// Tour-order policy for euler_tour. The multigraph and the decoder are
  /// identical either way; only the distribution over tours differs.
  ///  * DeviceFirst (default): at each vertex, prefer unused device-cycle
  ///    edges, so a device's pins appear as one contiguous run
  ///    (NM1_G NM1_D NM1_S NM1_B NM1_G ...). This makes the sequence
  ///    grammar local and is what the generation model is trained on.
  ///  * Uniform: fully randomized edge order (ablation baseline).
  enum class TourPolicy { DeviceFirst, Uniform };

  /// Randomized Hierholzer Euler circuit starting (and ending) at VSS.
  /// Different rng draws yield different tours of the same topology — the
  /// augmentation the paper uses to expand 3470 topologies to 234k
  /// sequences. Throws CircuitError if VSS is absent or the graph is not
  /// Eulerian-traversable from VSS (disconnected circuit).
  [[nodiscard]] std::vector<PinToken> euler_tour(
      Rng& rng, TourPolicy policy = TourPolicy::DeviceFirst) const;

 private:
  std::vector<PinToken> vertices_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;  // undirected
  std::vector<char> edge_is_device_;                // device-cycle flag
  std::vector<std::vector<std::size_t>> incident_;  // vertex -> edge ids
};

/// Result of decoding a token sequence back into a netlist.
struct DecodeResult {
  bool ok = false;
  std::string error;        // first structural problem found (when !ok)
  Netlist netlist;          // valid when ok
  int floating_pins = 0;    // device pins with no net after reconstruction
};

/// Decode an Euler-tour token sequence into a netlist. Never throws on
/// malformed input — malformed sequences are an expected model output and
/// are reported via DecodeResult::ok/error (they count as invalid in the
/// paper's Validity metric).
[[nodiscard]] DecodeResult decode_tour(const std::vector<PinToken>& tour);

/// Convenience: encode a netlist as one randomized Euler tour.
[[nodiscard]] std::vector<PinToken> encode_tour(
    const Netlist& nl, Rng& rng,
    PinGraph::TourPolicy policy = PinGraph::TourPolicy::DeviceFirst);

}  // namespace eva::circuit
