#include "circuit/validity.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace eva::circuit {

namespace {

/// Union-find over net ids through shared devices: two nets are in the
/// same electrical component if some device has pins on both.
std::vector<int> net_components(const Netlist& nl) {
  const auto n = nl.nets().size();
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) { parent[find(a)] = find(b); };

  for (int d = 0; d < nl.num_devices(); ++d) {
    int first_net = -1;
    const auto kind = nl.devices()[static_cast<std::size_t>(d)].kind;
    for (int p = 0; p < pin_count(kind); ++p) {
      if (auto id = nl.net_of(dev_ref(d, p))) {
        if (first_net < 0) {
          first_net = *id;
        } else {
          unite(static_cast<std::size_t>(first_net),
                static_cast<std::size_t>(*id));
        }
      }
    }
  }
  std::vector<int> comp(n);
  for (std::size_t i = 0; i < n; ++i) comp[i] = static_cast<int>(find(i));
  return comp;
}

}  // namespace

ValidityReport check_structure(const Netlist& nl) {
  ValidityReport rep;

  if (nl.num_devices() == 0) {
    rep.fail("no devices");
    return rep;
  }
  if (!nl.uses_io(IoPin::Vss)) rep.fail("VSS not connected");
  if (!nl.uses_io(IoPin::Vdd)) rep.fail("VDD not connected");
  if (!nl.uses_io(IoPin::Vout1) && !nl.uses_io(IoPin::Vout2)) {
    rep.fail("no output pin connected");
  }

  // Supply short: one net containing both rails.
  for (const auto& net : nl.nets()) {
    bool has_vss = false;
    bool has_vdd = false;
    for (const auto& p : net) {
      if (p.is_io() && p.io == IoPin::Vss) has_vss = true;
      if (p.is_io() && p.io == IoPin::Vdd) has_vdd = true;
    }
    if (has_vss && has_vdd) {
      rep.fail("net shorts VDD to VSS");
      break;
    }
  }

  // Floating pins and fully-shorted devices.
  for (int d = 0; d < nl.num_devices(); ++d) {
    const Device& dev = nl.devices()[static_cast<std::size_t>(d)];
    std::set<int> nets_touched;
    bool floating = false;
    for (int p = 0; p < pin_count(dev.kind); ++p) {
      const auto id = nl.net_of(dev_ref(d, p));
      if (!id) {
        floating = true;
      } else {
        nets_touched.insert(*id);
      }
    }
    if (floating) {
      rep.fail("floating pin on " + std::string{kind_prefix(dev.kind)} +
               std::to_string(dev.index));
    }
    if (!floating && nets_touched.size() == 1) {
      rep.fail("all pins of " + std::string{kind_prefix(dev.kind)} +
               std::to_string(dev.index) + " shorted together");
    }
  }

  // Single-pin nets are dangling connections.
  for (const auto& net : nl.nets()) {
    if (net.size() < 2) {
      rep.fail("degenerate single-pin net");
      break;
    }
  }

  // Connectivity: all nets must belong to one electrical component.
  if (!nl.nets().empty()) {
    const auto comp = net_components(nl);
    const int root = comp[0];
    if (!std::all_of(comp.begin(), comp.end(),
                     [root](int c) { return c == root; })) {
      rep.fail("circuit is electrically disconnected");
    }
  }

  return rep;
}

bool structurally_valid(const Netlist& nl) {
  return check_structure(nl).valid;
}

}  // namespace eva::circuit
