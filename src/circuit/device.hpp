// Device and circuit-level pin vocabulary.
//
// EVA's sequence representation is built from *device pins* (paper §III-A):
// every token names either one pin of one device instance (NM1_G, R2_P, ...)
// or a circuit-level IO pin (VSS, VDD, VIN1, ...). This header defines that
// alphabet: device kinds, their pin counts and pin-name suffixes, and the
// fixed circuit-level IO pin set.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace eva::circuit {

/// Device kinds supported by the topology representation, the dataset
/// generators, and the mini-SPICE simulator.
enum class DeviceKind : std::uint8_t {
  Nmos,       // 4 pins: G D S B
  Pmos,       // 4 pins: G D S B
  Npn,        // 3 pins: C B E
  Pnp,        // 3 pins: C B E
  Resistor,   // 2 pins: P N
  Capacitor,  // 2 pins: P N
  Inductor,   // 2 pins: P N
  Diode,      // 2 pins: A K
};

inline constexpr int kNumDeviceKinds = 8;

/// Circuit-level IO pins (the non-device tokens in the vocabulary).
enum class IoPin : std::uint8_t {
  Vss,   // the Euler-tour start token (paper: generation starts from VSS)
  Vdd,
  Vin1,
  Vin2,
  Vout1,
  Vout2,
  Vb1,   // bias voltages
  Vb2,
  Clk1,  // clock phases (comparators, SC circuits)
  Clk2,
  Iref,  // reference current input
};

inline constexpr int kNumIoPins = 11;

[[nodiscard]] constexpr int pin_count(DeviceKind k) {
  switch (k) {
    case DeviceKind::Nmos:
    case DeviceKind::Pmos:
      return 4;
    case DeviceKind::Npn:
    case DeviceKind::Pnp:
      return 3;
    case DeviceKind::Resistor:
    case DeviceKind::Capacitor:
    case DeviceKind::Inductor:
    case DeviceKind::Diode:
      return 2;
  }
  return 0;
}

/// Netlist-name prefix per kind ("NM", "PM", "R", ...).
[[nodiscard]] constexpr std::string_view kind_prefix(DeviceKind k) {
  switch (k) {
    case DeviceKind::Nmos: return "NM";
    case DeviceKind::Pmos: return "PM";
    case DeviceKind::Npn: return "QN";
    case DeviceKind::Pnp: return "QP";
    case DeviceKind::Resistor: return "R";
    case DeviceKind::Capacitor: return "C";
    case DeviceKind::Inductor: return "L";
    case DeviceKind::Diode: return "D";
  }
  return "?";
}

/// Pin-name suffix for pin index `pin` of kind `k` ("G","D","S","B", ...).
[[nodiscard]] constexpr std::string_view pin_suffix(DeviceKind k, int pin) {
  constexpr std::array<std::string_view, 4> mos{"G", "D", "S", "B"};
  constexpr std::array<std::string_view, 3> bjt{"C", "B", "E"};
  constexpr std::array<std::string_view, 2> two{"P", "N"};
  constexpr std::array<std::string_view, 2> dio{"A", "K"};
  switch (k) {
    case DeviceKind::Nmos:
    case DeviceKind::Pmos:
      return mos[static_cast<std::size_t>(pin)];
    case DeviceKind::Npn:
    case DeviceKind::Pnp:
      return bjt[static_cast<std::size_t>(pin)];
    case DeviceKind::Diode:
      return dio[static_cast<std::size_t>(pin)];
    default:
      return two[static_cast<std::size_t>(pin)];
  }
}

// Named pin indices for readability in generators and the simulator.
namespace mos {
inline constexpr int G = 0, D = 1, S = 2, B = 3;
}
namespace bjt {
inline constexpr int C = 0, B = 1, E = 2;
}
namespace two {
inline constexpr int P = 0, N = 1;
}
namespace dio {
inline constexpr int A = 0, K = 1;
}

[[nodiscard]] constexpr std::string_view io_name(IoPin p) {
  switch (p) {
    case IoPin::Vss: return "VSS";
    case IoPin::Vdd: return "VDD";
    case IoPin::Vin1: return "VIN1";
    case IoPin::Vin2: return "VIN2";
    case IoPin::Vout1: return "VOUT1";
    case IoPin::Vout2: return "VOUT2";
    case IoPin::Vb1: return "VB1";
    case IoPin::Vb2: return "VB2";
    case IoPin::Clk1: return "CLK1";
    case IoPin::Clk2: return "CLK2";
    case IoPin::Iref: return "IREF";
  }
  return "?";
}

/// One endpoint of a connection: either pin `pin` of device `device`
/// (device >= 0), or the circuit-level IO pin `io` (device == -1).
struct PinRef {
  int device = -1;
  int pin = 0;            // device-pin index; ignored for IO refs
  IoPin io = IoPin::Vss;  // IO pin; ignored for device refs

  [[nodiscard]] bool is_io() const { return device < 0; }

  friend bool operator==(const PinRef& a, const PinRef& b) {
    if (a.is_io() != b.is_io()) return false;
    if (a.is_io()) return a.io == b.io;
    return a.device == b.device && a.pin == b.pin;
  }
  friend std::strong_ordering operator<=>(const PinRef& a, const PinRef& b) {
    if (auto c = a.device <=> b.device; c != 0) return c;
    if (a.is_io()) return a.io <=> b.io;
    return a.pin <=> b.pin;
  }
};

[[nodiscard]] inline PinRef io_ref(IoPin p) { return PinRef{-1, 0, p}; }
[[nodiscard]] inline PinRef dev_ref(int device, int pin) {
  EVA_ASSERT(device >= 0 && pin >= 0, "bad device pin ref");
  return PinRef{device, pin, IoPin::Vss};
}

}  // namespace eva::circuit
