#include "circuit/graphstats.hpp"

#include <algorithm>

#include "circuit/pingraph.hpp"

namespace eva::circuit {

GraphStats graph_stats(const Netlist& nl) {
  GraphStats s;
  constexpr std::size_t kDegBins = 12;
  constexpr std::size_t kNetBins = 8;
  s.degree_hist.assign(kDegBins, 0.0);
  s.netsize_hist.assign(kNetBins, 0.0);
  s.kind_hist.assign(static_cast<std::size_t>(kNumDeviceKinds), 0.0);

  const PinGraph g = PinGraph::from_netlist(nl);
  const std::size_t nv = g.vertices().size();
  double deg_sum = 0.0;
  for (std::size_t v = 0; v < nv; ++v) {
    const std::size_t d = g.degree(v);
    deg_sum += static_cast<double>(d);
    const std::size_t bin = std::min(d == 0 ? 0 : d - 1, kDegBins - 1);
    s.degree_hist[bin] += 1.0;
  }
  if (nv > 0) {
    for (auto& x : s.degree_hist) x /= static_cast<double>(nv);
    s.avg_degree = deg_sum / static_cast<double>(nv);
  }

  std::size_t n_nets = 0;
  for (const auto& net : nl.nets()) {
    if (net.size() < 2) continue;
    ++n_nets;
    const std::size_t bin = std::min(net.size() - 2, kNetBins - 1);
    s.netsize_hist[bin] += 1.0;
  }
  if (n_nets > 0) {
    for (auto& x : s.netsize_hist) x /= static_cast<double>(n_nets);
  }

  for (const auto& d : nl.devices()) {
    s.kind_hist[static_cast<std::size_t>(d.kind)] += 1.0;
  }
  if (!nl.devices().empty()) {
    for (auto& x : s.kind_hist) x /= static_cast<double>(nl.devices().size());
  }

  s.device_count = static_cast<double>(nl.num_devices());
  s.net_count = static_cast<double>(n_nets);
  return s;
}

std::vector<double> stats_vector(const GraphStats& s) {
  std::vector<double> v;
  v.reserve(s.degree_hist.size() + s.netsize_hist.size() +
            s.kind_hist.size() + 3);
  v.insert(v.end(), s.degree_hist.begin(), s.degree_hist.end());
  v.insert(v.end(), s.netsize_hist.begin(), s.netsize_hist.end());
  v.insert(v.end(), s.kind_hist.begin(), s.kind_hist.end());
  // Scale scalar summaries so no single coordinate dominates the kernel.
  v.push_back(s.avg_degree / 8.0);
  v.push_back(s.device_count / 40.0);
  v.push_back(s.net_count / 40.0);
  return v;
}

std::vector<double> stats_vector(const Netlist& nl) {
  return stats_vector(graph_stats(nl));
}

}  // namespace eva::circuit
