// Circuit taxonomy and rule-based type classification.
//
// The paper's dataset spans 11 analog circuit types (§IV-A). The reward
// model needs a *relevance* oracle ("is this an Op-Amp?") and the
// Versatility metric counts distinct generated types. In the paper this
// labeling comes from human experts; here a structural rule-based
// classifier plays that role (substitution documented in DESIGN.md §4).
#pragma once

#include <string_view>

#include "circuit/netlist.hpp"

namespace eva::circuit {

/// The paper's 11 circuit types plus Unknown for unclassifiable topologies.
enum class CircuitType : std::uint8_t {
  OpAmp,
  Ldo,
  Bandgap,
  Comparator,
  Pll,
  Lna,
  Pa,
  Mixer,
  Vco,
  PowerConverter,
  ScSampler,
  Unknown,
};

inline constexpr int kNumCircuitTypes = 11;  // excludes Unknown

[[nodiscard]] std::string_view type_name(CircuitType t);

/// Structural features extracted from a netlist; the classifier's input
/// and also useful for dataset inspection and graph statistics.
struct StructuralFeatures {
  int n_nmos = 0, n_pmos = 0, n_bjt = 0;
  int n_res = 0, n_cap = 0, n_ind = 0, n_diode = 0;
  bool has_diff_pair = false;          // matched pair, common source net
  bool diff_pair_on_inputs = false;    // its gates reach VIN1/VIN2
  bool has_current_mirror = false;     // shared-gate pair, one diode-connected
  bool has_tail_source = false;        // diff-pair source fed by a device
  bool has_cross_coupled = false;      // gate_i on drain_j and vice versa
  bool has_clk_switch = false;         // MOS gate tied to CLK1/CLK2
  bool has_pass_device = false;        // MOS with S/D spanning VDD->VOUT
  bool has_series_ind_to_out = false;  // inductor with one end on an output
  bool uses_clk = false;
  bool uses_iref = false;
  bool uses_vin1 = false, uses_vin2 = false;
  bool uses_vout = false;
  bool output_has_cap_to_rail = false;  // load/filter cap on output
  int n_inverter_stages = 0;            // CMOS inverter count (ring VCO/PLL)
  bool inverter_ring = false;           // inverters chained in a cycle
};

[[nodiscard]] StructuralFeatures extract_features(const Netlist& nl);

/// Rule-based classification into one of the 11 types (or Unknown).
[[nodiscard]] CircuitType classify(const Netlist& nl);
[[nodiscard]] CircuitType classify(const StructuralFeatures& f);

}  // namespace eva::circuit
