// Structural validity checking.
//
// The paper defines a valid topology as "simulatable in SPICE without
// errors (e.g., floating or shorting nodes)" with default sizing (§IV-A).
// This module implements the structural half of that rule (the numerical
// half — a solvable DC operating point — lives in src/spice, and the
// combined check is spice::simulatable). The reward model's rule-based
// checker (§III-C1) uses the same predicate.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace eva::circuit {

/// Outcome of a structural validity check with human-readable reasons.
struct ValidityReport {
  bool valid = true;
  std::vector<std::string> reasons;

  void fail(std::string reason) {
    valid = false;
    reasons.push_back(std::move(reason));
  }
};

/// Run all structural checks on a netlist:
///  1. at least one device,
///  2. VSS present and VDD present (supply rails),
///  3. no net shorting VDD to VSS,
///  4. at least one output pin (VOUT1/VOUT2) connected,
///  5. no floating device pins (every pin belongs to a >= 2-pin net),
///  6. the circuit graph is connected (every device reachable from VSS
///     through nets),
///  7. no device with all pins tied to one net (fully shorted device),
///  8. MOS/BJT control sanity: a transistor's gate/base must not be tied
///     only to its own drain+source+bulk net in isolation from the rest
///     (covered by 6/7), and bulk pins must connect somewhere.
[[nodiscard]] ValidityReport check_structure(const Netlist& nl);

/// Convenience: full structural validity as a bool.
[[nodiscard]] bool structurally_valid(const Netlist& nl);

}  // namespace eva::circuit
