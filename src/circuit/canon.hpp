// Canonical topology hashing via Weisfeiler–Leman color refinement.
//
// Two netlists that differ only in device instance numbering or net
// ordering must hash identically: the hash is used to deduplicate the
// dataset and to compute the paper's Novelty metric ("percentage of
// generated topologies different from the topologies in the dataset").
//
// We run WL refinement on the bipartite device/net graph with edge labels
// carrying the pin role (gate vs drain etc.), which distinguishes e.g. a
// diode-connected mirror transistor from a cascode even when the plain
// adjacency structure matches.
#pragma once

#include <cstdint>

#include "circuit/netlist.hpp"

namespace eva::circuit {

/// Canonical hash of a topology, invariant to device renumbering and
/// net ordering. `rounds` WL iterations (default covers typical circuit
/// diameters; collisions are possible in principle but astronomically
/// unlikely at dataset scale).
[[nodiscard]] std::uint64_t canonical_hash(const Netlist& nl, int rounds = 8);

}  // namespace eva::circuit
