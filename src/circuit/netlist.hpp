// Netlist: the device-level description of an analog circuit topology.
//
// A Netlist is a list of device instances plus a partition of their pins
// (and the circuit-level IO pins) into nets. This is the object the whole
// pipeline revolves around: dataset generators emit Netlists, the Euler
// tour encodes them into token sequences, the decoder reconstructs them,
// the validity checker and mini-SPICE consume them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/device.hpp"

namespace eva::circuit {

/// A device instance. `index` is the 1-based per-kind instance number used
/// in pin token names (NM1, NM2, ..., R1, ...).
struct Device {
  DeviceKind kind = DeviceKind::Nmos;
  int index = 1;
};

/// A net: the set of electrically-connected pins.
using Net = std::vector<PinRef>;

class Netlist {
 public:
  Netlist() = default;

  /// Add a device of `kind`; returns its device id (position in devices()).
  /// Per-kind instance indices are assigned 1,2,3,... automatically.
  int add_device(DeviceKind kind);

  /// Create a new net from the given pins (each pin must not already be in
  /// a net). Returns the net id. Throws CircuitError on reuse.
  int add_net(Net pins);

  /// Append a pin to an existing net.
  void connect(int net_id, PinRef pin);

  /// Merge net b into net a (used by structural mutations).
  void merge_nets(int a, int b);

  /// Remove a pin from whatever net contains it (no-op if unconnected).
  /// Used by structural mutations before rewiring the pin elsewhere.
  void disconnect(const PinRef& pin);

  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }

  /// Net id containing `pin`, or nullopt if the pin is unconnected.
  [[nodiscard]] std::optional<int> net_of(const PinRef& pin) const;

  /// Number of devices of each kind.
  [[nodiscard]] std::map<DeviceKind, int> kind_counts() const;

  /// True if the given IO pin appears in some net.
  [[nodiscard]] bool uses_io(IoPin p) const;

  /// All IO pins that appear in some net.
  [[nodiscard]] std::vector<IoPin> io_pins() const;

  [[nodiscard]] int num_devices() const {
    return static_cast<int>(devices_.size());
  }

  /// Human-readable pin name ("NM1_G", "VSS").
  [[nodiscard]] std::string pin_name(const PinRef& pin) const;

  /// SPICE-like textual dump (for examples / debugging).
  [[nodiscard]] std::string to_spice() const;

  /// Drop empty and single-pin nets (normalization after mutations).
  void prune_degenerate_nets();

 private:
  std::vector<Device> devices_;
  std::vector<Net> nets_;
  std::map<int, int> kind_next_index_;  // per-kind next 1-based index
};

}  // namespace eva::circuit
