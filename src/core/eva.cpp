#include "core/eva.hpp"

#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "tensor/serialize.hpp"

namespace eva::core {

using circuit::CircuitType;

Eva::Eva(EvaConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed) {}

void Eva::prepare() {
  obs::Span span("eva.prepare");
  dataset_ = std::make_unique<data::Dataset>(
      data::Dataset::build(cfg_.dataset));
  tokenizer_ = std::make_unique<nn::Tokenizer>(
      nn::Tokenizer::from_dataset(*dataset_));
  cfg_.model.vocab = tokenizer_->vocab_size();
  model_ = std::make_unique<nn::TransformerLM>(cfg_.model, rng_);
  corpus_ = std::make_unique<nn::SequenceCorpus>(
      nn::build_corpus(*dataset_, *tokenizer_, cfg_.tours_per_topology,
                       cfg_.model.max_seq, rng_));
  obs::log_info(
      "eva.prepared",
      {{"topologies", static_cast<std::int64_t>(dataset_->entries().size())},
       {"vocab", tokenizer_->vocab_size()},
       {"train_seqs", static_cast<std::int64_t>(corpus_->train.size())},
       {"val_seqs", static_cast<std::int64_t>(corpus_->val.size())}});
}

nn::PretrainResult Eva::pretrain() {
  EVA_REQUIRE(prepared(), "call prepare() before pretrain()");
  return nn::pretrain(*model_, *corpus_, cfg_.pretrain);
}

rl::LabelingResult Eva::label_for(CircuitType target) const {
  EVA_REQUIRE(prepared(), "call prepare() first");
  rl::LabelingConfig lcfg;
  lcfg.target = target;
  lcfg.seed = cfg_.seed + 13;
  return rl::label_dataset(*dataset_, *tokenizer_, lcfg);
}

rl::PpoStats Eva::finetune_ppo(CircuitType target, rl::PpoConfig ppo,
                               rl::RewardModelConfig rm) {
  EVA_REQUIRE(prepared(), "call prepare() first");
  const auto labels = label_for(target);
  rl::RewardModel reward(*model_, *tokenizer_, rng_);
  reward.train(labels.examples, rm);
  rl::PpoTrainer trainer(*model_, *tokenizer_, reward, ppo, rng_);
  return trainer.train();
}

rl::DpoStats Eva::finetune_dpo(CircuitType target, rl::DpoConfig dpo,
                               int pairs_per_combo) {
  EVA_REQUIRE(prepared(), "call prepare() first");
  const auto labels = label_for(target);
  Rng pair_rng(cfg_.seed + 29);
  const auto pairs =
      rl::build_preference_pairs(labels.examples, pairs_per_combo, pair_rng);
  rl::DpoTrainer trainer(*model_, *tokenizer_, dpo);
  return trainer.train(pairs);
}

std::vector<eval::Attempt> Eva::generate(int n) {
  EVA_REQUIRE(prepared(), "call prepare() first");
  obs::Span span("eva.generate");
  nn::SampleOptions opts;
  opts.temperature = cfg_.sample_temperature;
  const auto samples = nn::sample_batch(*model_, *tokenizer_, rng_, n, opts);
  std::vector<eval::Attempt> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    out.push_back(nn::ids_to_netlist(*tokenizer_, s.ids));
  }
  return out;
}

eval::GenerationEval Eva::evaluate_generation(int n) {
  return eval::evaluate_generation(generate(n), *dataset_);
}

eval::FomAtKResult Eva::discover(CircuitType target, int k,
                                 const opt::GaConfig& ga) {
  EVA_REQUIRE(prepared(), "call prepare() first");
  nn::SampleOptions opts;
  opts.temperature = cfg_.sample_temperature;
  auto gen = [&]() -> eval::Attempt {
    const auto s = nn::sample_sequence(*model_, *tokenizer_, rng_, opts);
    return nn::ids_to_netlist(*tokenizer_, s.ids);
  };
  return eval::fom_at_k(gen, k, target, ga);
}

void Eva::save_model(const std::string& path) const {
  EVA_REQUIRE(prepared(), "call prepare() first");
  auto params = model_->parameters();
  tensor::save_params(params, path);
}

void Eva::load_model(const std::string& path) {
  EVA_REQUIRE(prepared(), "call prepare() first");
  auto params = model_->parameters();
  tensor::load_params(params, path);
}

const data::Dataset& Eva::dataset() const {
  EVA_REQUIRE(prepared(), "not prepared");
  return *dataset_;
}
const nn::Tokenizer& Eva::tokenizer() const {
  EVA_REQUIRE(prepared(), "not prepared");
  return *tokenizer_;
}
nn::TransformerLM& Eva::model() {
  EVA_REQUIRE(prepared(), "not prepared");
  return *model_;
}
const nn::SequenceCorpus& Eva::corpus() const {
  EVA_REQUIRE(prepared(), "not prepared");
  return *corpus_;
}

}  // namespace eva::core
