// EVA engine facade — the library's primary public API.
//
// Wires the full pipeline of the paper together:
//   dataset -> tokenizer -> pretraining (§III-B)
//           -> labeling -> reward model -> PPO (§III-C1)
//                        -> preference pairs -> DPO (§III-C2)
//           -> generation + metrics (§IV).
//
// Typical use (see examples/quickstart.cpp):
//   eva::core::Eva engine(eva::core::EvaConfig{});
//   engine.prepare();                      // dataset + tokenizer
//   engine.pretrain();                     // foundation model
//   engine.finetune_ppo(CircuitType::OpAmp);
//   auto circuits = engine.generate(10);
#pragma once

#include <memory>
#include <optional>

#include "data/dataset.hpp"
#include "eval/metrics.hpp"
#include "nn/lm_trainer.hpp"
#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "rl/dpo.hpp"
#include "rl/ppo.hpp"
#include "rl/reward_model.hpp"

namespace eva::core {

struct EvaConfig {
  data::DatasetConfig dataset;           // corpus scale
  int tours_per_topology = 4;            // sequence augmentation factor
  nn::ModelConfig model;                 // vocab filled automatically
  nn::PretrainConfig pretrain;
  float sample_temperature = 1.0f;
  std::uint64_t seed = 7;

  EvaConfig() {
    model = nn::ModelConfig::bench_scale(0);
  }
};

class Eva {
 public:
  explicit Eva(EvaConfig cfg);

  /// Stage 1: build the dataset, tokenizer and (untrained) model.
  void prepare();

  /// Stage 2: pretrain on the unlabeled corpus (Eq. 1). Requires prepare().
  nn::PretrainResult pretrain();

  /// Label the dataset for a target type (Otsu FoM split, Table I ranks).
  [[nodiscard]] rl::LabelingResult label_for(
      circuit::CircuitType target) const;

  /// Stage 3a: PPO fine-tuning toward a target type. Trains a reward
  /// model on the labels, then runs Algorithm 1. Requires pretrain()
  /// (or an explicitly loaded checkpoint).
  rl::PpoStats finetune_ppo(circuit::CircuitType target,
                            rl::PpoConfig ppo = {},
                            rl::RewardModelConfig rm = {});

  /// Stage 3b: DPO fine-tuning toward a target type (Eq. 5).
  rl::DpoStats finetune_dpo(circuit::CircuitType target,
                            rl::DpoConfig dpo = {}, int pairs_per_combo = 40);

  /// Generate n topologies (decoded; nullopt for undecodable emissions).
  [[nodiscard]] std::vector<eval::Attempt> generate(int n);

  /// Paper metrics over n fresh generations.
  [[nodiscard]] eval::GenerationEval evaluate_generation(int n);

  /// Discovery efficiency: FoM@k with GA sizing for the target type.
  [[nodiscard]] eval::FomAtKResult discover(circuit::CircuitType target,
                                            int k, const opt::GaConfig& ga);

  /// Snapshot / restore model weights (e.g. pretrained checkpoint reuse
  /// across fine-tuning arms).
  void save_model(const std::string& path) const;
  void load_model(const std::string& path);

  [[nodiscard]] const data::Dataset& dataset() const;
  [[nodiscard]] const nn::Tokenizer& tokenizer() const;
  [[nodiscard]] nn::TransformerLM& model();
  [[nodiscard]] const nn::SequenceCorpus& corpus() const;
  [[nodiscard]] const EvaConfig& config() const { return cfg_; }
  [[nodiscard]] bool prepared() const { return dataset_ != nullptr; }

 private:
  EvaConfig cfg_;
  Rng rng_;
  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<nn::Tokenizer> tokenizer_;
  std::unique_ptr<nn::TransformerLM> model_;
  std::unique_ptr<nn::SequenceCorpus> corpus_;
};

}  // namespace eva::core
