// The paper's evaluation metrics (§IV-A):
//  (1) Validity  — % of generated topologies that are simulatable,
//  (2) Novelty   — % different from the dataset (canonical hash) and the
//                  MMD between generated and real graph statistics,
//  (3) Versatility — number of distinct circuit types generated,
//  (4) Training sample efficiency — # of performance-labeled topologies
//                  (reported by callers; each method knows its own count),
//  (5) Discovery efficiency — FoM@k: best FoM among k generated topologies
//                  after GA sizing and mini-SPICE evaluation.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "circuit/classify.hpp"
#include "circuit/netlist.hpp"
#include "data/dataset.hpp"
#include "opt/ga.hpp"

namespace eva::eval {

/// A generation attempt: nullopt when the method emitted something that
/// does not even decode to a netlist.
using Attempt = std::optional<circuit::Netlist>;

struct GenerationEval {
  int total = 0;
  int valid = 0;                    // simulatable with default sizing
  double validity_pct = 0.0;
  int novel = 0;                    // valid and not in the dataset
  double novelty_pct = 0.0;         // novel / valid (paper: "diff circuit %")
  double mmd = 0.0;                 // generated-vs-dataset graph-stat MMD
  int versatility = 0;              // distinct known types among valid
  std::map<circuit::CircuitType, int> type_counts;
};

/// Evaluate a batch of generation attempts against the reference dataset.
[[nodiscard]] GenerationEval evaluate_generation(
    const std::vector<Attempt>& attempts, const data::Dataset& reference);

/// Gaussian-kernel MMD between two sets of feature vectors. sigma <= 0
/// selects the median-distance heuristic over the pooled sample.
[[nodiscard]] double mmd_gaussian(const std::vector<std::vector<double>>& x,
                                  const std::vector<std::vector<double>>& y,
                                  double sigma = 0.0);

struct FomAtKResult {
  double best_fom = 0.0;
  int attempts = 0;       // k
  int valid = 0;          // topologies that reached GA sizing
  int relevant = 0;       // ... classified as the target type
  std::vector<double> foms;  // FoM of each sized topology
};

/// Discovery efficiency: draw k attempts from `gen`, GA-size every valid
/// one for the target type's FoM, report the best.
[[nodiscard]] FomAtKResult fom_at_k(const std::function<Attempt()>& gen, int k,
                                    circuit::CircuitType target,
                                    const opt::GaConfig& ga);

}  // namespace eva::eval
