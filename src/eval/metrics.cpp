#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "circuit/canon.hpp"
#include "circuit/graphstats.hpp"
#include "obs/metrics.hpp"
#include "spice/engine.hpp"

namespace eva::eval {

using circuit::CircuitType;

GenerationEval evaluate_generation(const std::vector<Attempt>& attempts,
                                   const data::Dataset& reference) {
  GenerationEval ev;
  ev.total = static_cast<int>(attempts.size());

  // Validity failures split by cause: an undecodable emission or a
  // structurally broken netlist is the model's fault, a non-converged DC
  // solve may be the solver giving up (see spice::SimVerdict).
  static obs::Counter& undecodable = obs::counter("eval.undecodable");
  static obs::Counter& invalid = obs::counter("eval.invalid_circuit");
  static obs::Counter& gave_up = obs::counter("eval.solver_gave_up");
  static obs::Counter& valid_c = obs::counter("eval.valid");

  std::vector<std::vector<double>> gen_stats;
  std::set<CircuitType> types;
  for (const auto& a : attempts) {
    if (!a.has_value()) {
      undecodable.add();
      continue;
    }
    switch (spice::simulatable_verdict(*a)) {
      case spice::SimVerdict::kStructurallyInvalid:
      case spice::SimVerdict::kError:
        invalid.add();
        continue;
      case spice::SimVerdict::kNonConverged:
        gave_up.add();
        continue;
      case spice::SimVerdict::kOk:
        break;
    }
    valid_c.add();
    ++ev.valid;
    const auto h = circuit::canonical_hash(*a);
    if (!reference.contains_hash(h)) ++ev.novel;
    gen_stats.push_back(circuit::stats_vector(*a));
    const CircuitType t = circuit::classify(*a);
    ++ev.type_counts[t];
    if (t != CircuitType::Unknown) types.insert(t);
  }
  ev.validity_pct =
      ev.total > 0 ? 100.0 * ev.valid / static_cast<double>(ev.total) : 0.0;
  ev.novelty_pct =
      ev.valid > 0 ? 100.0 * ev.novel / static_cast<double>(ev.valid) : 0.0;
  ev.versatility = static_cast<int>(types.size());

  if (!gen_stats.empty()) {
    std::vector<std::vector<double>> ref_stats;
    ref_stats.reserve(reference.entries().size());
    for (const auto& e : reference.entries()) {
      ref_stats.push_back(circuit::stats_vector(e.netlist));
    }
    ev.mmd = mmd_gaussian(gen_stats, ref_stats);
  }
  return ev;
}

namespace {
double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}
}  // namespace

double mmd_gaussian(const std::vector<std::vector<double>>& x,
                    const std::vector<std::vector<double>>& y, double sigma) {
  if (x.empty() || y.empty()) return 0.0;
  EVA_REQUIRE(x[0].size() == y[0].size(), "mmd: feature dims differ");

  double sigma2 = sigma * sigma;
  if (sigma <= 0.0) {
    // Median heuristic over a bounded subsample of pooled pairs.
    std::vector<double> dists;
    const std::size_t nx = std::min<std::size_t>(x.size(), 128);
    const std::size_t ny = std::min<std::size_t>(y.size(), 128);
    for (std::size_t i = 0; i < nx; ++i) {
      for (std::size_t j = 0; j < ny; ++j) {
        dists.push_back(sq_dist(x[i], y[j]));
      }
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<long>(dists.size() / 2),
                     dists.end());
    sigma2 = std::max(dists[dists.size() / 2], 1e-6);
  }
  const double gamma = 1.0 / (2.0 * sigma2);
  auto kernel_mean = [&](const std::vector<std::vector<double>>& a,
                         const std::vector<std::vector<double>>& b) {
    double s = 0;
    for (const auto& u : a) {
      for (const auto& v : b) s += std::exp(-gamma * sq_dist(u, v));
    }
    return s / (static_cast<double>(a.size()) * static_cast<double>(b.size()));
  };
  const double mmd2 =
      kernel_mean(x, x) + kernel_mean(y, y) - 2.0 * kernel_mean(x, y);
  return std::sqrt(std::max(mmd2, 0.0));
}

FomAtKResult fom_at_k(const std::function<Attempt()>& gen, int k,
                      CircuitType target, const opt::GaConfig& ga) {
  FomAtKResult res;
  res.attempts = k;
  for (int i = 0; i < k; ++i) {
    const Attempt a = gen();
    if (!a.has_value()) continue;
    if (!spice::simulatable(*a)) continue;
    ++res.valid;
    if (circuit::classify(*a) == target) ++res.relevant;
    opt::GaConfig cfg = ga;
    cfg.seed = ga.seed + static_cast<std::uint64_t>(i) * 101;
    const auto sized = opt::size_topology(*a, target, cfg);
    if (sized.ok) {
      res.foms.push_back(sized.perf.fom);
      res.best_fom = std::max(res.best_fom, sized.perf.fom);
    }
  }
  return res;
}

}  // namespace eva::eval
