// Behaviour-faithful reimplementations of the four prior-art baselines of
// Table II. Each encodes the design-space restriction that drives the
// paper's qualitative comparison (DESIGN.md §4):
//
//  * AnalogCoder [11]: training-free LLM synthesis from a small library of
//    ~20 known simple topologies across 7 circuit types; generation reuses
//    library entries (zero novelty) with an LLM-error model that corrupts
//    a fraction of emissions (validity ~2/3).
//  * Artisan [12]: an Op-Amp-only domain LLM fine-tuned on a large corpus
//    of labeled Op-Amps; reuses known high-quality Op-Amp topologies with
//    a small error rate. Versatility 1, novelty 0, strong FoM.
//  * CktGNN [1]: sub-block DAG generation for Op-Amps trained on synthetic
//    data; composes stage blocks into new arrangements — novel circuits,
//    but one type only and synthetic-data graph statistics (high MMD).
//  * LaMAGIC [13]: masked-language-model topology generation for power
//    converters over a tiny design space (<= 4 power devices on fixed
//    nodes); almost everything it can emit already exists (novelty ~3%).
//
// All baselines expose the same interface the evaluation harness consumes.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "circuit/classify.hpp"
#include "circuit/netlist.hpp"
#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace eva::baselines {

class TopologyGenerator {
 public:
  virtual ~TopologyGenerator() = default;

  /// One generation attempt. nullopt models an emission that does not
  /// parse into a netlist at all.
  [[nodiscard]] virtual std::optional<circuit::Netlist> generate(Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of performance-labeled topologies the method's training
  /// consumed for the given target (Table II's sample-efficiency column);
  /// -1 when the method cannot target that circuit type at all (N/A).
  [[nodiscard]] virtual int labeled_required(
      circuit::CircuitType target) const = 0;

  /// Whether the method can emit the given circuit type at all.
  [[nodiscard]] virtual bool supports(circuit::CircuitType t) const = 0;
};

/// AnalogCoder-like: library reuse + LLM-error corruption.
[[nodiscard]] std::unique_ptr<TopologyGenerator> make_analogcoder_like(
    const data::Dataset& ds);

/// Artisan-like: Op-Amp specialist trained on labeled Op-Amps.
[[nodiscard]] std::unique_ptr<TopologyGenerator> make_artisan_like(
    const data::Dataset& ds);

/// CktGNN-like: sub-block DAG composer for Op-Amps.
[[nodiscard]] std::unique_ptr<TopologyGenerator> make_cktgnn_like(
    const data::Dataset& ds);

/// LaMAGIC-like: <=4-device power-converter matrix model.
[[nodiscard]] std::unique_ptr<TopologyGenerator> make_lamagic_like(
    const data::Dataset& ds);

}  // namespace eva::baselines
