#include "baselines/baselines.hpp"

#include <algorithm>

#include "circuit/validity.hpp"
#include "data/builder.hpp"
#include "spice/fom.hpp"

namespace eva::baselines {

using circuit::CircuitType;
using circuit::DeviceKind;
using circuit::IoPin;
using circuit::Netlist;
using data::NetBuilder;

namespace {

constexpr DeviceKind N = DeviceKind::Nmos;
constexpr DeviceKind P = DeviceKind::Pmos;
constexpr DeviceKind R = DeviceKind::Resistor;
constexpr DeviceKind C = DeviceKind::Capacitor;
constexpr DeviceKind L = DeviceKind::Inductor;
constexpr DeviceKind D = DeviceKind::Diode;

/// Corrupt a netlist the way a hallucinated SPICE deck is wrong: drop one
/// pin connection (floating node) or short a device onto one net.
Netlist corrupt(Netlist nl, Rng& rng) {
  if (nl.num_devices() == 0) return nl;
  const int dev = static_cast<int>(rng.index(
      static_cast<std::size_t>(nl.num_devices())));
  const auto kind = nl.devices()[static_cast<std::size_t>(dev)].kind;
  const int pin = static_cast<int>(rng.index(
      static_cast<std::size_t>(pin_count(kind))));
  nl.disconnect(circuit::dev_ref(dev, pin));  // floating pin => invalid
  return nl;
}

// ---------------------------------------------------------------------------
// AnalogCoder-like
// ---------------------------------------------------------------------------

class AnalogCoderLike final : public TopologyGenerator {
 public:
  explicit AnalogCoderLike(const data::Dataset& ds) {
    // Library: the ~3 simplest known topologies for each of 7 supported
    // types (~20 entries, mirroring AnalogCoder's synthesis library).
    const CircuitType supported[] = {
        CircuitType::OpAmp,  CircuitType::Comparator, CircuitType::Lna,
        CircuitType::Pa,     CircuitType::Mixer,      CircuitType::Vco,
        CircuitType::ScSampler};
    for (CircuitType t : supported) {
      auto of_type = ds.of_type(t);
      std::sort(of_type.begin(), of_type.end(),
                [](const data::TopologyEntry* a, const data::TopologyEntry* b) {
                  return a->netlist.num_devices() < b->netlist.num_devices();
                });
      int taken = 0;
      for (const auto* e : of_type) {
        if (taken >= 3) break;
        library_.push_back(e->netlist);
        ++taken;
        per_type_[t] = taken;
      }
    }
    EVA_REQUIRE(!library_.empty(), "AnalogCoder library is empty");
  }

  std::optional<Netlist> generate(Rng& rng) override {
    // LLM error model: some emissions do not parse at all, some produce
    // netlists with floating/shorted nodes.
    const double u = rng.uniform();
    if (u < 0.14) return std::nullopt;  // unparseable code
    const Netlist& pick = library_[rng.index(library_.size())];
    if (u < 0.34) return corrupt(pick, rng);  // wrong connectivity
    return pick;
  }

  std::string name() const override { return "AnalogCoder-like"; }

  int labeled_required(CircuitType target) const override {
    // Training-free: only the few in-context library examples of the
    // target type count as labeled usage.
    auto it = per_type_.find(target);
    return it == per_type_.end() ? -1 : it->second;
  }

  bool supports(CircuitType t) const override {
    return per_type_.count(t) > 0;
  }

 private:
  std::vector<Netlist> library_;
  std::map<CircuitType, int> per_type_;
};

// ---------------------------------------------------------------------------
// Artisan-like
// ---------------------------------------------------------------------------

class ArtisanLike final : public TopologyGenerator {
 public:
  explicit ArtisanLike(const data::Dataset& ds) {
    // "Fine-tuned on a large labeled Op-Amp corpus": every Op-Amp in the
    // dataset is performance-evaluated, and generation reuses the
    // top-performing half.
    const auto opamps = ds.of_type(CircuitType::OpAmp);
    std::vector<std::pair<double, const data::TopologyEntry*>> scored;
    for (const auto* e : opamps) {
      const auto perf =
          spice::evaluate_default(e->netlist, CircuitType::OpAmp);
      scored.emplace_back(perf.ok ? perf.fom : 0.0, e);
      ++labeled_;
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const std::size_t keep = std::max<std::size_t>(scored.size() / 2, 1);
    for (std::size_t i = 0; i < keep; ++i) {
      pool_.push_back(scored[i].second->netlist);
    }
    EVA_REQUIRE(!pool_.empty(), "Artisan pool is empty");
  }

  std::optional<Netlist> generate(Rng& rng) override {
    const double u = rng.uniform();
    if (u < 0.06) return std::nullopt;
    const Netlist& pick = pool_[rng.index(pool_.size())];
    if (u < 0.18) return corrupt(pick, rng);
    return pick;
  }

  std::string name() const override { return "Artisan-like"; }

  int labeled_required(CircuitType target) const override {
    return target == CircuitType::OpAmp ? labeled_ : -1;
  }

  bool supports(CircuitType t) const override {
    return t == CircuitType::OpAmp;
  }

 private:
  std::vector<Netlist> pool_;
  int labeled_ = 0;
};

// ---------------------------------------------------------------------------
// CktGNN-like: sub-block DAG composition (Op-Amps only)
// ---------------------------------------------------------------------------

class CktGnnLike final : public TopologyGenerator {
 public:
  explicit CktGnnLike(const data::Dataset& ds)
      : labeled_(static_cast<int>(ds.of_type(CircuitType::OpAmp).size())) {}

  std::optional<Netlist> generate(Rng& rng) override {
    // Compose stages from a block grammar. Because the "GNN" was trained
    // on synthetic data, compositions are loosely constrained: some
    // arrangements are electrically nonsensical (=> invalid), and graph
    // statistics drift from textbook designs (=> high MMD).
    NetBuilder b;
    b.rails();
    b.io("inp", IoPin::Vin1);
    b.io("inn", IoPin::Vin2);

    const bool nmos_in = rng.chance(0.5);
    const DeviceKind IK = nmos_in ? N : P;
    const DeviceKind LK = nmos_in ? P : N;
    const std::string irail = nmos_in ? "VSS" : "VDD";
    const std::string lrail = nmos_in ? "VDD" : "VSS";

    // Stage 1: diff pair with a randomly chosen (possibly absent!) tail.
    b.mos(IK, "inp", "d1", "tail");
    b.mos(IK, "inn", "d2", "tail");
    const int tail_kind = rng.range(0, 3);
    if (tail_kind == 0) {
      b.io("bt", IoPin::Vb1);
      b.mos(IK, "bt", "tail", irail);
    } else if (tail_kind == 1) {
      b.two(R, "tail", irail);
    } else if (tail_kind == 2) {
      // Synthetic-data artifact: tail tied straight to the rail.
      b.two(R, "tail", irail);
      b.two(R, "tail", irail);
    } else {
      // Missing tail: floating node (invalid), as loose grammars permit.
    }

    // Load block.
    const int load = rng.range(0, 2);
    if (load == 0) {
      b.mos(LK, "d1", "d1", lrail);
      b.mos(LK, "d1", "d2", lrail);
    } else if (load == 1) {
      b.two(R, lrail, "d1");
      b.two(R, lrail, "d2");
    } else {
      // Diode-connected loads.
      b.mos(LK, "d1", "d1", lrail);
      b.mos(LK, "d2", "d2", lrail);
    }

    // Random extra blocks (the DAG can chain 0-2 more stages).
    std::string out = "d2";
    const int extra = rng.range(0, 2);
    for (int s = 0; s < extra; ++s) {
      const std::string next = "s" + std::to_string(s);
      b.mos(LK, out, next, lrail);
      if (rng.chance(0.7)) {
        b.two(R, next, irail);
      }  // else: stage without bias (often invalid)
      if (rng.chance(0.5)) b.two(C, out, next);
      out = next;
    }
    b.io(out, IoPin::Vout1);
    if (rng.chance(0.4)) b.two(C, out, "VSS");
    Netlist nl = b.take();
    // Decoded sub-block DAGs do not always map onto complete netlists
    // (CktGNN reports ~68% validity): model that as dropped connections.
    if (rng.chance(0.28)) return corrupt(std::move(nl), rng);
    return nl;
  }

  std::string name() const override { return "CktGNN-like"; }

  int labeled_required(CircuitType target) const override {
    return target == CircuitType::OpAmp ? labeled_ : -1;
  }

  bool supports(CircuitType t) const override {
    return t == CircuitType::OpAmp;
  }

 private:
  int labeled_ = 0;
};

// ---------------------------------------------------------------------------
// LaMAGIC-like: <=4-device power converters on fixed nodes
// ---------------------------------------------------------------------------

class LaMagicLike final : public TopologyGenerator {
 public:
  explicit LaMagicLike(const data::Dataset& ds)
      : labeled_(
            static_cast<int>(ds.of_type(CircuitType::PowerConverter).size())) {}

  std::optional<Netlist> generate(Rng& rng) override {
    // Fixed node alphabet {VDD, SW, OUT, VSS}; pick 3-4 devices from the
    // power-converter palette and place each between two distinct nodes.
    // This mirrors LaMAGIC's adjacency-matrix formulation: tiny space,
    // mostly rediscovering known converters.
    static const char* kNodes[] = {"VDD", "sw", "out", "VSS"};
    NetBuilder b;
    b.rails();
    b.io("clk", IoPin::Clk1);
    b.io("out", IoPin::Vout1);

    const int n_dev = rng.range(3, 4);
    bool placed_switch = false;
    for (int i = 0; i < n_dev; ++i) {
      const int a = rng.range(0, 3);
      int c = rng.range(0, 3);
      if (c == a) c = (c + 1) % 4;
      const std::string na = kNodes[a];
      const std::string nc = kNodes[c];
      const int kind = rng.range(0, 4);
      switch (kind) {
        case 0:
          b.mos(P, "clk", na, nc, "VDD");
          placed_switch = true;
          break;
        case 1:
          b.mos(N, "clk", na, nc, "VSS");
          placed_switch = true;
          break;
        case 2: b.two(D, na, nc); break;
        case 3: b.two(L, na, nc); break;
        default: b.two(C, na, nc); break;
      }
    }
    // The MLM's output cap token is nearly always present.
    if (rng.chance(0.9)) b.two(C, "out", "VSS");
    if (!placed_switch && rng.chance(0.5)) b.mos(P, "clk", "VDD", "sw", "VDD");
    return b.take();
  }

  std::string name() const override { return "LaMAGIC-like"; }

  int labeled_required(CircuitType target) const override {
    return target == CircuitType::PowerConverter ? labeled_ : -1;
  }

  bool supports(CircuitType t) const override {
    return t == CircuitType::PowerConverter;
  }

 private:
  int labeled_ = 0;
};

}  // namespace

std::unique_ptr<TopologyGenerator> make_analogcoder_like(
    const data::Dataset& ds) {
  return std::make_unique<AnalogCoderLike>(ds);
}
std::unique_ptr<TopologyGenerator> make_artisan_like(const data::Dataset& ds) {
  return std::make_unique<ArtisanLike>(ds);
}
std::unique_ptr<TopologyGenerator> make_cktgnn_like(const data::Dataset& ds) {
  return std::make_unique<CktGnnLike>(ds);
}
std::unique_ptr<TopologyGenerator> make_lamagic_like(const data::Dataset& ds) {
  return std::make_unique<LaMagicLike>(ds);
}

}  // namespace eva::baselines
