// SurrogateScorer: the batched inference side of the learned FoM
// surrogate (DESIGN.md §15).
//
// A scorer is an immutable raw-buffer snapshot of a SurrogateModel,
// built once and then shared read-only by the serving scheduler and PPO
// rollout collection. Scoring a batch of n sequences is:
//
//   pool    n rows of mean-pooled token embeddings (parallel_for across
//           sequences — O(len * E) per row, no GEMM)
//   layer1  (n,E) x (E,H) through the tensor::gemm_backend seam —
//           f32 gemm_nn, or qgemm with the fused kBiasGelu epilogue on
//           the bf16/int8 tiers (same QuantMatrix machinery as the
//           transformer's repacked linears)
//   layer2  (n,H) x (H,3) + bias, softmax per row, expected rank score
//
// Per-row results are independent of the batch composition (pooling is
// per-row; gemm_nn/qgemm fix each row's reduction order by the shapes
// alone), so score_batch over any width is bitwise identical to n
// score_one calls — the invariant test_surrogate pins across all three
// quant tiers.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "surrogate/surrogate.hpp"
#include "tensor/quant.hpp"

namespace eva::surrogate {

class SurrogateScorer {
 public:
  /// Snapshot `model`'s weights into the given inference tier. kF32
  /// keeps exact float copies; kBf16/kInt8 quantize the two MLP weight
  /// matrices (the embedding stays f32 — pooling is a gather, not a
  /// GEMM). The model can keep training afterwards; this scorer does not
  /// track it.
  explicit SurrogateScorer(const SurrogateModel& model,
                           tensor::QuantKind quant = tensor::QuantKind::kF32);

  [[nodiscard]] const SurrogateConfig& config() const { return cfg_; }
  [[nodiscard]] tensor::QuantKind quant() const { return quant_; }

  /// Expected rank score per sequence, one batched pass. Empty input
  /// yields an empty vector.
  [[nodiscard]] std::vector<float> score_batch(
      const std::vector<const std::vector<int>*>& seqs) const;
  [[nodiscard]] std::vector<float> score_batch(
      const std::vector<std::vector<int>>& seqs) const;

  /// Single-sequence convenience; bitwise equal to the corresponding
  /// score_batch row.
  [[nodiscard]] float score_one(const std::vector<int>& ids) const;

  /// Score every prefix of `ids` (lengths 1..T) in one batched pass:
  /// row t pools tokens [0, t]. The dense PPO shaping signal — the
  /// running mean embedding makes this O(T*E) pooling plus one (T,H)
  /// GEMM, not T independent re-pools. Row T-1 is bitwise equal to
  /// score_one(ids).
  [[nodiscard]] std::vector<float> score_prefixes(
      const std::vector<int>& ids) const;

  /// Ranking accuracy of the model this scorer snapshotted (carried as
  /// metadata into the serve.surrogate stats; NaN = never measured).
  void set_ranking_accuracy(double a) { ranking_accuracy_ = a; }
  [[nodiscard]] double ranking_accuracy() const { return ranking_accuracy_; }

 private:
  /// Mean-pooled embedding of `ids` into `row` (E floats, pre-zeroed).
  void pool_into(const std::vector<int>& ids, float* row) const;
  /// MLP + softmax + expected-score over pooled rows X(n,E) -> out(n).
  void mlp_scores(const float* X, std::size_t n, float* out) const;

  SurrogateConfig cfg_;
  tensor::QuantKind quant_;
  std::vector<float> emb_;  // (V,E) row-major, always f32
  std::vector<float> w1_;   // (E,H) — f32 tier only
  std::vector<float> w2_;   // (H,3) — f32 tier only
  std::vector<float> b1_;   // (H)
  std::vector<float> b2_;   // (3)
  tensor::QuantMatrix qw1_;  // bf16/int8 tiers
  tensor::QuantMatrix qw2_;
  double ranking_accuracy_ = std::numeric_limits<double>::quiet_NaN();
};

}  // namespace eva::surrogate
