#include "surrogate/scorer.hpp"

#include <algorithm>

#include "tensor/gemm.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace eva::surrogate {

using tensor::Epilogue;
using tensor::QuantKind;
using tensor::QuantMatrix;

SurrogateScorer::SurrogateScorer(const SurrogateModel& model, QuantKind quant)
    : cfg_(model.config()), quant_(quant) {
  const auto emb = model.emb_.data();
  const auto w1 = model.w1_.data();
  const auto b1 = model.b1_.data();
  const auto w2 = model.w2_.data();
  const auto b2 = model.b2_.data();
  emb_.assign(emb.begin(), emb.end());
  b1_.assign(b1.begin(), b1.end());
  b2_.assign(b2.begin(), b2.end());
  const auto E = static_cast<std::size_t>(cfg_.d_embed);
  const auto H = static_cast<std::size_t>(cfg_.d_hidden);
  if (quant_ == QuantKind::kF32) {
    w1_.assign(w1.begin(), w1.end());
    w2_.assign(w2.begin(), w2.end());
  } else {
    qw1_ = QuantMatrix::quantize(quant_, w1.data(), E, H);
    qw2_ = QuantMatrix::quantize(quant_, w2.data(), H,
                                 static_cast<std::size_t>(kNumClasses));
  }
}

void SurrogateScorer::pool_into(const std::vector<int>& ids, float* row) const {
  const auto E = static_cast<std::size_t>(cfg_.d_embed);
  int n = 0;
  for (const int id : ids) {
    if (id < 0 || id >= cfg_.vocab) continue;
    const float* e = &emb_[static_cast<std::size_t>(id) * E];
    for (std::size_t j = 0; j < E; ++j) row[j] += e[j];
    ++n;
  }
  if (n > 0) {
    const float inv = 1.0f / static_cast<float>(n);
    for (std::size_t j = 0; j < E; ++j) row[j] *= inv;
  }
}

void SurrogateScorer::mlp_scores(const float* X, std::size_t n,
                                 float* out) const {
  const auto E = static_cast<std::size_t>(cfg_.d_embed);
  const auto H = static_cast<std::size_t>(cfg_.d_hidden);
  constexpr std::size_t C = kNumClasses;
  std::vector<float> h(n * H, 0.0f);
  std::vector<float> logits(n * C, 0.0f);
  if (quant_ == QuantKind::kF32) {
    tensor::gemm_nn(X, w1_.data(), h.data(), n, E, H);
    // Unfused epilogue via the shared gelu_approx, bitwise matching the
    // quantized kernels' kBiasGelu on identical inputs.
    for (std::size_t i = 0; i < n; ++i) {
      float* hr = &h[i * H];
      for (std::size_t j = 0; j < H; ++j) {
        hr[j] = tensor::gelu_approx(hr[j] + b1_[j]);
      }
    }
    tensor::gemm_nn(h.data(), w2_.data(), logits.data(), n, H, C);
    for (std::size_t i = 0; i < n; ++i) {
      float* lr = &logits[i * C];
      for (std::size_t j = 0; j < C; ++j) lr[j] += b2_[j];
    }
  } else {
    tensor::qgemm(X, qw1_, b1_.data(), h.data(), n, Epilogue::kBiasGelu);
    tensor::qgemm(h.data(), qw2_, b2_.data(), logits.data(), n,
                  Epilogue::kBias);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const float* lr = &logits[i * C];
    float mx = lr[0];
    for (std::size_t j = 1; j < C; ++j) mx = std::max(mx, lr[j]);
    float p[C];
    float sum = 0.0f;
    for (std::size_t j = 0; j < C; ++j) {
      p[j] = std::exp(lr[j] - mx);
      sum += p[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < C; ++j) p[j] *= inv;
    out[i] = expected_rank_score(p);
  }
}

std::vector<float> SurrogateScorer::score_batch(
    const std::vector<const std::vector<int>*>& seqs) const {
  const std::size_t n = seqs.size();
  if (n == 0) return {};
  const auto E = static_cast<std::size_t>(cfg_.d_embed);
  std::vector<float> X(n * E, 0.0f);
  // Pooling parallelizes across sequences; the GEMMs below parallelize
  // internally through the backend seam.
  parallel_for(0, n, [&](std::size_t i) {
    EVA_ASSERT(seqs[i] != nullptr, "surrogate: null sequence");
    pool_into(*seqs[i], &X[i * E]);
  });
  std::vector<float> out(n, 0.0f);
  mlp_scores(X.data(), n, out.data());
  return out;
}

std::vector<float> SurrogateScorer::score_batch(
    const std::vector<std::vector<int>>& seqs) const {
  std::vector<const std::vector<int>*> ptrs;
  ptrs.reserve(seqs.size());
  for (const auto& s : seqs) ptrs.push_back(&s);
  return score_batch(ptrs);
}

float SurrogateScorer::score_one(const std::vector<int>& ids) const {
  return score_batch(std::vector<const std::vector<int>*>{&ids})[0];
}

std::vector<float> SurrogateScorer::score_prefixes(
    const std::vector<int>& ids) const {
  const std::size_t T = ids.size();
  if (T == 0) return {};
  const auto E = static_cast<std::size_t>(cfg_.d_embed);
  std::vector<float> X(T * E, 0.0f);
  // Running-sum pooling: prefix t's row is the cumulative embedding sum
  // scaled by the in-range token count — the same sum-then-scale order
  // as pool_into, so the full-length row matches score_one bitwise.
  std::vector<float> sum(E, 0.0f);
  int n = 0;
  for (std::size_t t = 0; t < T; ++t) {
    const int id = ids[t];
    if (id >= 0 && id < cfg_.vocab) {
      const float* e = &emb_[static_cast<std::size_t>(id) * E];
      for (std::size_t j = 0; j < E; ++j) sum[j] += e[j];
      ++n;
    }
    float* row = &X[t * E];
    if (n > 0) {
      const float inv = 1.0f / static_cast<float>(n);
      for (std::size_t j = 0; j < E; ++j) row[j] = sum[j] * inv;
    }
  }
  std::vector<float> out(T, 0.0f);
  mlp_scores(X.data(), T, out.data());
  return out;
}

}  // namespace eva::surrogate
