#include "surrogate/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "tensor/optim.hpp"
#include "train/checkpoint.hpp"
#include "train/signal.hpp"
#include "util/error.hpp"

namespace eva::surrogate {

using namespace eva::tensor;

SurrogateModel::SurrogateModel(SurrogateConfig cfg, Rng& rng) : cfg_(cfg) {
  EVA_REQUIRE(cfg.vocab > 0 && cfg.d_embed > 0 && cfg.d_hidden > 0,
              "surrogate: config dimensions must be positive");
  emb_ = Tensor::randn({cfg.vocab, cfg.d_embed}, rng, 0.02f, true);
  w1_ = Tensor::randn({cfg.d_embed, cfg.d_hidden}, rng, 0.02f, true);
  b1_ = Tensor::zeros({cfg.d_hidden}, true);
  w2_ = Tensor::randn({cfg.d_hidden, kNumClasses}, rng, 0.02f, true);
  b2_ = Tensor::zeros({kNumClasses}, true);
}

SurrogateModel SurrogateModel::from_lm(const nn::TransformerLM& lm,
                                       int d_hidden, Rng& rng) {
  SurrogateModel m(
      SurrogateConfig{lm.config().vocab, lm.config().d_model, d_hidden}, rng);
  const auto src = lm.token_embedding().data();
  std::copy(src.begin(), src.end(), m.emb_.data().begin());
  return m;
}

std::vector<Tensor> SurrogateModel::parameters() const {
  return {emb_, w1_, b1_, w2_, b2_};
}

std::uint64_t SurrogateModel::fingerprint() const {
  train::Fingerprint fp;
  fp.mix(std::uint64_t{0x5347});  // format tag: surrogate head snapshot
  fp.mix(cfg_.vocab).mix(cfg_.d_embed).mix(cfg_.d_hidden);
  return fp.value();
}

Tensor SurrogateModel::class_logits(
    const std::vector<const std::vector<int>*>& batch) const {
  const int B = static_cast<int>(batch.size());
  EVA_REQUIRE(B > 0, "surrogate: empty batch");
  const int V = cfg_.vocab;
  // Bag-of-tokens pooling matrix P(B,V): row b holds the normalized
  // token histogram of sequence b (out-of-range ids ignored; an empty or
  // all-out-of-range sequence pools to the zero vector).
  std::vector<float> counts(static_cast<std::size_t>(B) * V, 0.0f);
  for (int b = 0; b < B; ++b) {
    float* row = &counts[static_cast<std::size_t>(b) * V];
    int n = 0;
    for (const int id : *batch[static_cast<std::size_t>(b)]) {
      if (id >= 0 && id < V) {
        row[id] += 1.0f;
        ++n;
      }
    }
    if (n > 0) {
      const float inv = 1.0f / static_cast<float>(n);
      for (int v = 0; v < V; ++v) row[v] *= inv;
    }
  }
  Tensor P = Tensor::from({B, V}, std::move(counts));
  Tensor feats = matmul(P, emb_);                  // (B,E)
  Tensor h = gelu(add(matmul(feats, w1_), b1_));   // (B,H)
  return add(matmul(h, w2_), b2_);                 // (B,3)
}

double SurrogateModel::score(const std::vector<int>& ids) const {
  Tensor probs = softmax_lastdim(class_logits({&ids}));
  return expected_rank_score(probs.data().data());
}

double SurrogateModel::class_accuracy(
    const std::vector<LabeledSeq>& examples) const {
  int correct = 0;
  int total = 0;
  for (const auto& e : examples) {
    if (e.rank < 0 || e.rank >= kNumClasses) continue;
    Tensor logits = class_logits({&e.ids});
    const auto row = logits.data();
    const int pred = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
    correct += pred == e.rank;
    ++total;
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

double SurrogateModel::ranking_accuracy(
    const std::vector<LabeledSeq>& examples) const {
  // Deterministic per-class cap keeps the pair count bounded (the metric
  // is O(cap^2) pairs across the three class boundaries).
  constexpr std::size_t kCapPerClass = 64;
  std::vector<std::vector<double>> scores(kNumClasses);
  for (const auto& e : examples) {
    if (e.rank < 0 || e.rank >= kNumClasses) continue;
    auto& cls = scores[static_cast<std::size_t>(e.rank)];
    if (cls.size() >= kCapPerClass) continue;
    cls.push_back(score(e.ids));
  }
  std::int64_t correct = 0;
  std::int64_t total = 0;
  for (int hi = 0; hi < kNumClasses; ++hi) {
    for (int lo = hi + 1; lo < kNumClasses; ++lo) {
      for (const double a : scores[static_cast<std::size_t>(hi)]) {
        for (const double b : scores[static_cast<std::size_t>(lo)]) {
          correct += a > b;
          ++total;
        }
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) /
                                static_cast<double>(total);
}

SurrogateTrainResult SurrogateModel::train(
    const std::vector<LabeledSeq>& examples, const SurrogateTrainConfig& cfg) {
  EVA_REQUIRE(!examples.empty(), "surrogate: no training examples");
  SurrogateTrainResult res;
  Rng rng(cfg.seed);
  auto params = parameters();
  AdamW opt(params, {.lr = cfg.lr});

  train::TrainState ts;
  ts.params = params;
  ts.opt = &opt;
  ts.rng = &rng;

  std::unique_ptr<train::CheckpointManager> ckpt;
  if (!cfg.checkpoint_dir.empty()) {
    ckpt = std::make_unique<train::CheckpointManager>(train::CheckpointOptions{
        cfg.checkpoint_dir, cfg.keep_checkpoints, fingerprint()});
  }
  if (ckpt && cfg.resume) {
    if (auto restored = ckpt->load_latest(ts)) {
      res.start_step = static_cast<int>(*restored);
    }
  }

  for (int step = res.start_step; step < cfg.steps; ++step) {
    opt.zero_grad();
    std::vector<const std::vector<int>*> batch;
    std::vector<int> labels;
    batch.reserve(static_cast<std::size_t>(cfg.minibatch));
    labels.reserve(static_cast<std::size_t>(cfg.minibatch));
    for (int b = 0; b < std::max(1, cfg.minibatch); ++b) {
      const LabeledSeq& e = examples[rng.index(examples.size())];
      batch.push_back(&e.ids);
      labels.push_back(e.rank);
    }
    Tensor logits = class_logits(batch);
    Tensor loss = cross_entropy(logits, labels);
    loss.backward();
    clip_grad_norm(params, cfg.clip);
    opt.step();
    res.losses.push_back(loss.item());

    const long done = step + 1;
    const bool stopping = train::stop_requested();
    const bool at_cadence =
        cfg.checkpoint_every > 0 && done % cfg.checkpoint_every == 0;
    if (ckpt && (at_cadence || stopping || done == cfg.steps)) {
      ts.step = done;
      try {
        ckpt->save(ts);
      } catch (const Error& e) {
        obs::log_error("surrogate.ckpt_failed", {{"error", e.what()}});
      }
    }
    if (stopping) break;
  }

  res.class_accuracy = class_accuracy(examples);
  res.ranking_accuracy = ranking_accuracy(examples);
  obs::gauge("surrogate.class_accuracy").set(res.class_accuracy);
  obs::gauge("surrogate.ranking_accuracy").set(res.ranking_accuracy);
  obs::log_info(
      "surrogate.trained",
      {{"steps", static_cast<std::int64_t>(res.losses.size())},
       {"start_step", res.start_step},
       {"examples", static_cast<std::int64_t>(examples.size())},
       {"class_accuracy", res.class_accuracy},
       {"ranking_accuracy", res.ranking_accuracy}});
  return res;
}

bool SurrogateModel::load_checkpoint(const std::string& dir) {
  train::CheckpointManager mgr(
      train::CheckpointOptions{dir, /*keep_last=*/3, fingerprint()});
  train::TrainState ts;
  ts.params = parameters();
  return mgr.load_latest(ts).has_value();
}

}  // namespace eva::surrogate
