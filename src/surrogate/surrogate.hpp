// Learned FoM surrogate (DESIGN.md §15): a pooled-embedding MLP head
// that predicts the reward-model rank class of a token sequence without
// touching Mini-SPICE.
//
// The model is deliberately tiny: mean-pool the token-identity
// embedding of a sequence (a bag-of-tokens histogram times the LM's
// embedding table), one GELU hidden layer, a 3-class softmax over the
// valid rank classes {high-relevant, low-relevant, irrelevant}. The
// scalar surrogate score is the expected rank reward under those
// probabilities (same 1.0 / 0.5 / -0.5 weighting the reward model
// uses), so serving and PPO can order candidates by it directly.
//
// Labels come from the reward-model pipeline (rl::label_dataset); the
// Invalid rank is excluded here — surrogate callers already know
// whether a sequence decodes, and the rule-based checker owns that
// verdict. Training is plain minibatch cross-entropy with AdamW,
// checkpointed through train::CheckpointManager with bitwise
// kill-and-resume (same contract as pretrain/PPO/DPO).
//
// This header stays independent of src/rl (eva_rl links eva_surrogate,
// not the other way around): make_labeled() converts any range of
// {ids, rank}-shaped examples — rl::RankedExample in practice — into
// the local LabeledSeq form, dropping ranks outside [0, 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/transformer.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace eva::surrogate {

struct SurrogateConfig {
  int vocab = 0;     // pooling histogram width (token id range)
  int d_embed = 0;   // embedding width (d_model when seeded from the LM)
  int d_hidden = 32; // MLP hidden width
};

/// Number of predicted rank classes: {high, low, irrelevant}.
inline constexpr int kNumClasses = 3;

/// Expected rank reward of a class-probability row (p_high, p_low,
/// p_irrelevant) — the reward model's Table I weighting of the valid
/// classes. Range [-0.5, 1.0].
[[nodiscard]] inline float expected_rank_score(const float* p) {
  return p[0] * 1.0f + p[1] * 0.5f + p[2] * -0.5f;
}

/// One training example: raw token ids (VSS-first, no EOS) plus the rank
/// class in [0, kNumClasses).
struct LabeledSeq {
  std::vector<int> ids;
  int rank = 2;
};

/// Convert a range of {ids, rank}-shaped examples (rl::RankedExample)
/// into LabeledSeq form, skipping ranks outside the valid classes (the
/// Invalid rank belongs to the rule-based checker, not the surrogate).
template <class Range>
[[nodiscard]] std::vector<LabeledSeq> make_labeled(const Range& examples) {
  std::vector<LabeledSeq> out;
  for (const auto& e : examples) {
    const int r = static_cast<int>(e.rank);
    if (r < 0 || r >= kNumClasses) continue;
    out.push_back(LabeledSeq{e.ids, r});
  }
  return out;
}

struct SurrogateTrainConfig {
  int steps = 300;
  int minibatch = 8;
  float lr = 5e-3f;
  float clip = 1.0f;
  std::uint64_t seed = 31;

  // Fault tolerance (train/): empty checkpoint_dir disables snapshots.
  std::string checkpoint_dir;
  int checkpoint_every = 50;  // steps between snapshots
  int keep_checkpoints = 3;
  bool resume = false;
};

struct SurrogateTrainResult {
  std::vector<double> losses;     // per-step CE loss
  int start_step = 0;             // > 0 when resumed from a checkpoint
  double class_accuracy = 0.0;    // argmax accuracy over the training set
  double ranking_accuracy = 0.0;  // pairwise score-ordering accuracy
};

/// Training-side surrogate: autograd tensors, trainer, checkpoints. The
/// serving/PPO hot paths never touch this class — they use the
/// raw-buffer SurrogateScorer built from it (scorer.hpp).
class SurrogateModel {
 public:
  /// Fresh random init (embedding included).
  SurrogateModel(SurrogateConfig cfg, Rng& rng);

  /// Seed the embedding from the LM's token-embedding table (the ZeroSim
  /// observation: the pretrained embedding already separates circuit
  /// vocabulary), random-init the MLP head.
  [[nodiscard]] static SurrogateModel from_lm(const nn::TransformerLM& lm,
                                              int d_hidden, Rng& rng);

  [[nodiscard]] const SurrogateConfig& config() const { return cfg_; }

  /// All trainable parameters (stable order; serializable):
  /// {emb, w1, b1, w2, b2}.
  [[nodiscard]] std::vector<tensor::Tensor> parameters() const;

  /// Architecture fingerprint for checkpoint compatibility. Mixes only
  /// the shape-determining config (vocab, d_embed, d_hidden) so a
  /// checkpoint written by the trainer loads in a serving process that
  /// knows nothing about the training hyperparameters.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Class logits (B, kNumClasses) for a batch of sequences (autograd).
  [[nodiscard]] tensor::Tensor class_logits(
      const std::vector<const std::vector<int>*>& batch) const;

  /// Expected rank score of one sequence (inference convenience; the
  /// batched hot path lives in SurrogateScorer).
  [[nodiscard]] double score(const std::vector<int>& ids) const;

  /// Minibatch cross-entropy training with AdamW; checkpoints at
  /// cfg.checkpoint_every-step cadence plus the final step. Fills the
  /// result's accuracy metrics over `examples` and exports them as the
  /// surrogate.ranking_accuracy / surrogate.class_accuracy gauges.
  SurrogateTrainResult train(const std::vector<LabeledSeq>& examples,
                             const SurrogateTrainConfig& cfg);

  /// Argmax class accuracy over a labeled set.
  [[nodiscard]] double class_accuracy(
      const std::vector<LabeledSeq>& examples) const;

  /// Pairwise ranking accuracy: over pairs (a, b) where a's rank class
  /// is strictly better than b's, the fraction with score(a) > score(b).
  /// Per-class sample capped (deterministically) so the pair count stays
  /// bounded on large sets.
  [[nodiscard]] double ranking_accuracy(
      const std::vector<LabeledSeq>& examples) const;

  /// Restore the newest validating snapshot from `dir` into this model's
  /// parameters (no optimizer/RNG needed — inference-side load). Returns
  /// false when no usable snapshot exists.
  bool load_checkpoint(const std::string& dir);

 private:
  friend class SurrogateScorer;

  SurrogateConfig cfg_;
  tensor::Tensor emb_;  // (V, E)
  tensor::Tensor w1_;   // (E, H)
  tensor::Tensor b1_;   // (H)
  tensor::Tensor w2_;   // (H, kNumClasses)
  tensor::Tensor b2_;   // (kNumClasses)
};

}  // namespace eva::surrogate
