// Genetic-algorithm device sizing (paper §IV-A: FoM@10 is reported "after
// sizing with a genetic algorithm and SPICE evaluation").
//
// Generic real-coded GA over the unit cube with tournament selection,
// blend crossover, and Gaussian mutation, plus a topology-sizing wrapper
// that decodes genomes through spice::sizing_from_unit and scores with the
// mini-SPICE FoM.
#pragma once

#include <functional>
#include <vector>

#include "circuit/classify.hpp"
#include "spice/fom.hpp"
#include "util/rng.hpp"

namespace eva::opt {

struct GaConfig {
  int population = 24;
  int generations = 10;
  int elites = 2;
  int tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.2;
  double mutation_sigma = 0.15;
  std::uint64_t seed = 2024;
};

struct GaResult {
  std::vector<double> best;       // genome in [0,1]^dim
  double best_fitness = 0.0;
  std::vector<double> history;    // best fitness per generation
};

/// Maximize `fitness` over [0,1]^dim.
[[nodiscard]] GaResult ga_optimize(
    int dim, const std::function<double(const std::vector<double>&)>& fitness,
    const GaConfig& cfg);

struct SizingResult {
  spice::Sizing sizing;
  spice::Performance perf;   // performance at the best sizing
  bool ok = false;
};

/// GA-size one topology for the target circuit type's FoM.
[[nodiscard]] SizingResult size_topology(const circuit::Netlist& nl,
                                         circuit::CircuitType target,
                                         const GaConfig& cfg);

}  // namespace eva::opt
