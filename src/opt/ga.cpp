#include "opt/ga.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace eva::opt {

GaResult ga_optimize(
    int dim, const std::function<double(const std::vector<double>&)>& fitness,
    const GaConfig& cfg) {
  EVA_REQUIRE(dim > 0, "ga_optimize: dim must be positive");
  EVA_REQUIRE(cfg.population >= 4, "ga_optimize: population too small");
  Rng rng(cfg.seed);

  struct Individual {
    std::vector<double> genome;
    double fit = 0.0;
  };
  std::vector<Individual> pop(static_cast<std::size_t>(cfg.population));
  for (auto& ind : pop) {
    ind.genome.resize(static_cast<std::size_t>(dim));
    for (auto& g : ind.genome) g = rng.uniform();
  }
  // Seed one individual at the center (default-ish sizing).
  std::fill(pop[0].genome.begin(), pop[0].genome.end(), 0.5);

  auto eval_all = [&](std::vector<Individual>& p) {
    parallel_for(0, p.size(),
                 [&](std::size_t i) { p[i].fit = fitness(p[i].genome); });
  };
  eval_all(pop);

  auto better = [](const Individual& a, const Individual& b) {
    return a.fit > b.fit;
  };

  GaResult res;
  for (int gen = 0; gen < cfg.generations; ++gen) {
    std::sort(pop.begin(), pop.end(), better);
    res.history.push_back(pop.front().fit);

    std::vector<Individual> next;
    next.reserve(pop.size());
    for (int e = 0; e < cfg.elites && e < cfg.population; ++e) {
      next.push_back(pop[static_cast<std::size_t>(e)]);
    }
    auto tournament_pick = [&]() -> const Individual& {
      const Individual* best = &pop[rng.index(pop.size())];
      for (int t = 1; t < cfg.tournament; ++t) {
        const Individual& cand = pop[rng.index(pop.size())];
        if (cand.fit > best->fit) best = &cand;
      }
      return *best;
    };
    while (next.size() < pop.size()) {
      Individual child;
      const Individual& pa = tournament_pick();
      const Individual& pb = tournament_pick();
      child.genome.resize(static_cast<std::size_t>(dim));
      const bool crossover = rng.chance(cfg.crossover_rate);
      for (int d = 0; d < dim; ++d) {
        const auto di = static_cast<std::size_t>(d);
        double g = crossover
                       ? (rng.chance(0.5) ? pa.genome[di] : pb.genome[di])
                       : pa.genome[di];
        if (rng.chance(cfg.mutation_rate)) {
          g += rng.normal(0.0, cfg.mutation_sigma);
        }
        child.genome[di] = std::clamp(g, 0.0, 1.0);
      }
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    // Elites keep their fitness; re-evaluate the offspring.
    parallel_for(static_cast<std::size_t>(cfg.elites), pop.size(),
                 [&](std::size_t i) { pop[i].fit = fitness(pop[i].genome); });
  }
  std::sort(pop.begin(), pop.end(), better);
  res.best = pop.front().genome;
  res.best_fitness = pop.front().fit;
  res.history.push_back(res.best_fitness);
  return res;
}

SizingResult size_topology(const circuit::Netlist& nl,
                           circuit::CircuitType target, const GaConfig& cfg) {
  SizingResult out;
  const int dim = nl.num_devices();
  if (dim == 0) return out;

  auto fitness = [&](const std::vector<double>& genome) -> double {
    const auto sizing = spice::sizing_from_unit(nl, genome);
    const auto perf = spice::evaluate(nl, sizing, target);
    return perf.ok ? perf.fom : -1.0;
  };
  const GaResult ga = ga_optimize(dim, fitness, cfg);
  out.sizing = spice::sizing_from_unit(nl, ga.best);
  out.perf = spice::evaluate(nl, out.sizing, target);
  out.ok = out.perf.ok;
  return out;
}

}  // namespace eva::opt
