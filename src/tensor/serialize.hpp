// Binary (de)serialization of parameter lists: a simple tagged format
// (magic, count, then shape + float32 payload per tensor). Used to
// checkpoint pretrained models before PPO/DPO fine-tuning.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace eva::tensor {

/// Save parameter tensors in order. Throws eva::ConfigError on I/O failure.
void save_params(const std::vector<Tensor>& params, const std::string& path);

/// Load into existing tensors (shapes must match the file).
/// Throws eva::ConfigError on I/O failure or shape mismatch.
void load_params(std::vector<Tensor>& params, const std::string& path);

/// Deep-copy parameter values from src into dst (shapes must match).
/// Used to snapshot a reference model πθ_ref before fine-tuning.
void copy_params(const std::vector<Tensor>& src, std::vector<Tensor>& dst);

/// Total number of scalar parameters.
[[nodiscard]] std::size_t count_params(const std::vector<Tensor>& params);

}  // namespace eva::tensor
