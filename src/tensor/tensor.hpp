// Minimal reverse-mode autodiff tensor engine.
//
// This is the numerical substrate for every neural component in EVA (the
// decoder-only generation transformer, the reward model, and the PPO/DPO
// fine-tuning losses). The paper trains with PyTorch on GPU; we implement
// the equivalent engine from scratch for CPU:
//
//  * float32 dense tensors of rank 1..3 (vector / matrix / batched matrix),
//  * a dynamic tape: each op records parents and a backward closure,
//  * fused domain ops (softmax / layernorm / cross-entropy / embedding /
//    causal attention softmax) so the graph stays small and fast,
//  * multi-threaded matmul via eva::parallel_chunks.
//
// Conventions: a Tensor is a cheap shared handle (shared_ptr to a Node).
// Ops are free functions returning new Tensors. Gradients are accumulated
// (+=) so a value used twice receives both contributions. backward() is
// called on a scalar loss.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace eva::tensor {

/// Dimension sizes, outermost first. Rank 1..3 supported by all ops.
using Shape = std::vector<int>;

[[nodiscard]] std::size_t shape_numel(const Shape& s);
[[nodiscard]] std::string shape_str(const Shape& s);
[[nodiscard]] bool same_shape(const Shape& a, const Shape& b);
/// True when `suffix` equals the trailing dims of `full` (broadcast rule).
[[nodiscard]] bool is_suffix(const Shape& suffix, const Shape& full);

class Tensor;

namespace detail {

/// Graph node: storage + tape entry. Not part of the public API.
struct Node {
  std::vector<float> data;
  std::vector<float> grad;  // lazily allocated on first access
  Shape shape;
  bool requires_grad = false;
  const char* op = "leaf";
  std::vector<std::shared_ptr<Node>> parents;
  // Pushes this node's grad into parents' grads. Null for leaves.
  std::function<void(Node&)> backward;

  [[nodiscard]] std::size_t numel() const { return data.size(); }
  void ensure_grad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace detail

/// Shared handle to a tensor graph node. Copy = alias (PyTorch-like).
class Tensor {
 public:
  /// Default-constructed Tensor is "undefined"; check with defined().
  Tensor() = default;

  // --- Factories -------------------------------------------------------
  [[nodiscard]] static Tensor zeros(Shape shape, bool requires_grad = false);
  [[nodiscard]] static Tensor full(Shape shape, float value,
                                   bool requires_grad = false);
  [[nodiscard]] static Tensor from(Shape shape, std::vector<float> data,
                                   bool requires_grad = false);
  /// Gaussian init with the given stddev (for parameters).
  [[nodiscard]] static Tensor randn(Shape shape, Rng& rng, float stddev,
                                    bool requires_grad = true);
  [[nodiscard]] static Tensor scalar(float v, bool requires_grad = false);

  // --- Introspection ---------------------------------------------------
  [[nodiscard]] bool defined() const { return node_ != nullptr; }
  [[nodiscard]] const Shape& shape() const;
  [[nodiscard]] int rank() const { return static_cast<int>(shape().size()); }
  [[nodiscard]] int dim(int i) const;
  [[nodiscard]] std::size_t numel() const;
  [[nodiscard]] bool requires_grad() const;

  [[nodiscard]] std::span<float> data();
  [[nodiscard]] std::span<const float> data() const;
  /// Gradient buffer (allocated zero-filled on first call).
  [[nodiscard]] std::span<float> grad();
  [[nodiscard]] std::span<const float> grad() const;

  /// Value of a single-element tensor.
  [[nodiscard]] float item() const;

  // --- Autograd --------------------------------------------------------
  /// Backprop from this scalar: seeds grad = 1 and walks the tape in
  /// reverse topological order. Requires numel()==1 and requires_grad().
  void backward();
  void zero_grad();
  /// Deep copy with no graph history (requires_grad = false).
  [[nodiscard]] Tensor detach() const;

  // Internal: used by op implementations.
  [[nodiscard]] std::shared_ptr<detail::Node> node() const { return node_; }
  explicit Tensor(std::shared_ptr<detail::Node> n) : node_(std::move(n)) {}

 private:
  std::shared_ptr<detail::Node> node_;
};

// --- Elementwise binary (shapes equal, or rhs scalar, or rhs a suffix of
// lhs; suffix operands broadcast over leading dims) -----------------------
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);

// --- Scalar ops ----------------------------------------------------------
[[nodiscard]] Tensor add_scalar(const Tensor& a, float s);
[[nodiscard]] Tensor mul_scalar(const Tensor& a, float s);

// --- Unary ---------------------------------------------------------------
[[nodiscard]] Tensor neg(const Tensor& a);
[[nodiscard]] Tensor exp_t(const Tensor& a);
[[nodiscard]] Tensor log_t(const Tensor& a);  // requires strictly positive
[[nodiscard]] Tensor tanh_t(const Tensor& a);
[[nodiscard]] Tensor sigmoid(const Tensor& a);
[[nodiscard]] Tensor relu(const Tensor& a);
/// GELU, tanh approximation (as used by GPT-style transformers).
[[nodiscard]] Tensor gelu(const Tensor& a);
[[nodiscard]] Tensor square(const Tensor& a);
/// Clamp to [lo, hi]; gradient is 1 inside the interval, 0 outside.
[[nodiscard]] Tensor clamp_t(const Tensor& a, float lo, float hi);
/// Elementwise minimum (same shapes); subgradient routes to the smaller
/// operand (ties go to a). Used by the PPO clipped surrogate.
[[nodiscard]] Tensor min_t(const Tensor& a, const Tensor& b);

// --- Matmul / layout -----------------------------------------------------
/// (M,K)x(K,N); (B,M,K)x(K,N); (B,M,K)x(B,K,N). Multi-threaded.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);
/// Swap the last two dims.
[[nodiscard]] Tensor transpose_last(const Tensor& a);
/// Same data, new shape (copies; numel must match).
[[nodiscard]] Tensor reshape(const Tensor& a, Shape shape);
/// (B,T,H*D) -> (B*H,T,D): head split for multi-head attention.
[[nodiscard]] Tensor split_heads(const Tensor& a, int heads);
/// (B*H,T,D) -> (B,T,H*D): inverse of split_heads.
[[nodiscard]] Tensor merge_heads(const Tensor& a, int heads);

// --- Reductions ----------------------------------------------------------
[[nodiscard]] Tensor sum_all(const Tensor& a);
[[nodiscard]] Tensor mean_all(const Tensor& a);
/// Mean weighted by a per-element constant mask (no grad through mask):
/// sum(a*mask)/max(1,sum(mask)). Used for padded-token losses.
[[nodiscard]] Tensor masked_mean(const Tensor& a,
                                 const std::vector<float>& mask);

// --- Fused NN ops ---------------------------------------------------------
/// Softmax over the last dim.
[[nodiscard]] Tensor softmax_lastdim(const Tensor& a);
/// Softmax over the last dim with a causal mask: input (B,T,T) (or (R,T)
/// where R is a multiple of T); row r attends to columns [0, r mod T].
[[nodiscard]] Tensor causal_softmax(const Tensor& scores, int seq_len);
[[nodiscard]] Tensor log_softmax_lastdim(const Tensor& a);
/// LayerNorm over the last dim with learnable gamma/beta (shape = lastdim).
[[nodiscard]] Tensor layernorm(const Tensor& x, const Tensor& gamma,
                               const Tensor& beta, float eps = 1e-5f);
/// Row-gather from an embedding table (V,C) by flat indices -> (B,T,C).
[[nodiscard]] Tensor embedding(const Tensor& table,
                               const std::vector<int>& indices, int batch,
                               int seq_len);
/// Mean cross-entropy of logits (N,V) against integer targets; targets
/// equal to ignore_index contribute nothing.
[[nodiscard]] Tensor cross_entropy(const Tensor& logits,
                                   const std::vector<int>& targets,
                                   int ignore_index = -1);
/// Pick one element per row of a (N,V) tensor -> (N,). Used to extract
/// per-token log-probabilities for PPO/DPO.
[[nodiscard]] Tensor gather_lastdim(const Tensor& a,
                                    const std::vector<int>& indices);
/// Inverted-dropout (scales kept activations by 1/(1-p)); identity when
/// `training` is false or p == 0.
[[nodiscard]] Tensor dropout(const Tensor& a, float p, Rng& rng,
                             bool training);

}  // namespace eva::tensor
