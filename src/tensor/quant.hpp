// Inference-only weight quantization (DESIGN.md "Kernel backends &
// quantized inference").
//
// Two reduced-precision weight formats for the decode hot path:
//
//  * bf16 — f32 with the low 16 mantissa bits dropped (round to nearest
//    even). Elementwise relative error <= 2^-8; halves weight traffic.
//    On AVX-512 BF16 hardware the kernels also round the activations to
//    bf16 (same 2^-8 relative error) and drive vdpbf16ps, which retires
//    two multiply-accumulates per lane per cycle — 2x the f32 FMA rate.
//  * int8 — symmetric per-output-column scaling of the row-major
//    W(in, out): scale[j] = max|W[:,j]| / 127, q = round(W / scale[j]).
//    Elementwise absolute error <= scale[j] / 2; quarters weight
//    traffic. Scales are per *column* (not per input row) so the scale
//    factors out of the K reduction entirely: on AVX-512 VNNI hardware
//    the kernels quantize each activation row to u8 (zero point 128)
//    and accumulate exact int32 dot products with vpdpbusd — four
//    multiply-accumulates per lane per cycle — then apply
//    y = ascale * (scale[j] * (acc - 128 * colsum[j])) once per output.
//
// Training never sees these types: repacking is a one-time explicit step
// (TransformerLM::set_inference_quant) and autograd stays f32.
//
// Besides the canonical row-major codes, QuantMatrix carries packed
// copies laid out for the 512-bit kernels:
//
//  * q8p  — [ceil(rows/4)][padded_cols][4] int8: four consecutive K
//    entries of one column sit in adjacent bytes, so one 64-byte load
//    yields 16 columns x 4 K-steps, the exact vpdpbusd operand shape.
//  * bf16p — [ceil(rows/2)][padded_cols][2] bf16: K-pairs per column,
//    one 64-byte load = 16 columns x 2 K-steps for vdpbf16ps.
//
// Columns are zero-padded to a multiple of kQuantColPad and K to the
// group size, so the hot loops never need masked loads; the zero codes
// contribute nothing to the reduction.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "util/aligned.hpp"

namespace eva::tensor {

/// Inference weight tier. kF32 means "no repack, use the float path".
enum class QuantKind { kF32, kBf16, kInt8 };

[[nodiscard]] const char* quant_kind_name(QuantKind kind);

/// Parse "f32" / "bf16" / "int8" (case-sensitive). Returns `fallback`
/// for anything else, including the empty string.
[[nodiscard]] QuantKind parse_quant_kind(std::string_view name,
                                         QuantKind fallback);

/// Resolve the EVA_QUANT environment variable; unset or unparseable
/// yields `fallback`.
[[nodiscard]] QuantKind quant_kind_from_env(QuantKind fallback);

// --- bf16 scalar conversions -----------------------------------------------

/// Round-to-nearest-even truncation of f32 to bf16 bits (NaN-safe: NaNs
/// keep a set mantissa bit instead of rounding to infinity).
[[nodiscard]] inline std::uint16_t f32_to_bf16(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, sizeof(b));
  if ((b & 0x7fffffffu) > 0x7f800000u) {
    return static_cast<std::uint16_t>((b >> 16) | 0x0040u);
  }
  b += 0x7fffu + ((b >> 16) & 1u);
  return static_cast<std::uint16_t>(b >> 16);
}

[[nodiscard]] inline float bf16_to_f32(std::uint16_t h) {
  const std::uint32_t b = static_cast<std::uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &b, sizeof(f));
  return f;
}

// --- quantized weight matrix -------------------------------------------------

/// Column padding of the packed payloads: one register tile of the
/// quantized kernels (two 16-lane vectors).
constexpr std::size_t kQuantColPad = 32;

/// A quantized copy of one row-major weight matrix W(rows=in, cols=out).
/// The canonical payload (`bf16` or `q8`, selected by `kind`) stays
/// row-major for dequantize() and portable kernels; `q8p`/`bf16p` are
/// the 512-bit-kernel packings described in the header comment.
struct QuantMatrix {
  QuantKind kind = QuantKind::kF32;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t padded_cols = 0;      // cols rounded up to kQuantColPad
  std::vector<std::uint16_t> bf16;  // rows*cols when kind == kBf16
  std::vector<std::int8_t> q8;      // rows*cols when kind == kInt8
  std::vector<float> scale;         // cols entries when kind == kInt8
  std::vector<std::int32_t> colsum;  // cols entries: sum_k q8(k, j)
  AlignedVec<std::int8_t> q8p;       // ceil(rows/4)*padded_cols*4
  AlignedVec<std::uint16_t> bf16p;   // ceil(rows/2)*padded_cols*2

  [[nodiscard]] bool empty() const { return rows == 0 || cols == 0; }

  /// Quantize `w` (rows*cols floats, row-major). kind must not be kF32.
  /// int8 columns that are all zero (or whose max is not finite) get
  /// scale 0 and all-zero codes — dequantizing reproduces exact zeros
  /// instead of NaN.
  [[nodiscard]] static QuantMatrix quantize(QuantKind kind, const float* w,
                                            std::size_t rows,
                                            std::size_t cols);

  /// Reconstruct the float matrix into `out` (rows*cols floats).
  void dequantize(float* out) const;
};

/// Fused epilogue applied by the quantized kernels after the K reduction
/// (the whole point: bias add and activation happen while the output
/// tile is still hot, with no extra pass over Y).
enum class Epilogue { kNone, kBias, kBiasGelu };

/// The tanh-approximation GELU used across the inference path. Shared so
/// the fused epilogue and the unfused f32 path are bitwise identical.
[[nodiscard]] inline float gelu_approx(float x) {
  constexpr float kC = 0.7978845608028654f;
  return 0.5f * x * (1.0f + std::tanh(kC * (x + 0.044715f * x * x * x)));
}

}  // namespace eva::tensor
