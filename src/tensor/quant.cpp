#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace eva::tensor {

const char* quant_kind_name(QuantKind kind) {
  switch (kind) {
    case QuantKind::kF32: return "f32";
    case QuantKind::kBf16: return "bf16";
    case QuantKind::kInt8: return "int8";
  }
  return "unknown";
}

QuantKind parse_quant_kind(std::string_view name, QuantKind fallback) {
  if (name == "f32") return QuantKind::kF32;
  if (name == "bf16") return QuantKind::kBf16;
  if (name == "int8") return QuantKind::kInt8;
  return fallback;
}

QuantKind quant_kind_from_env(QuantKind fallback) {
  const char* v = std::getenv("EVA_QUANT");
  if (v == nullptr || *v == '\0') return fallback;
  return parse_quant_kind(v, fallback);
}

namespace {

/// Interleave the canonical row-major codes into the K-grouped kernel
/// layout: groups of `group` consecutive K entries of one column land in
/// adjacent elements ([k/group][padded_col][k%group]). Rows past `rows`
/// and columns past `cols` pad with zero, which contributes nothing to
/// the kernels' reductions.
template <typename T>
void pack_k_groups(const std::vector<T>& src, std::size_t rows,
                   std::size_t cols, std::size_t padded_cols,
                   std::size_t group, AlignedVec<T>& dst) {
  const std::size_t kg = (rows + group - 1) / group;
  dst.assign(kg * padded_cols * group, T{0});
  for (std::size_t k = 0; k < rows; ++k) {
    const T* row = src.data() + k * cols;
    T* out = dst.data() + (k / group) * padded_cols * group + (k % group);
    for (std::size_t j = 0; j < cols; ++j) out[j * group] = row[j];
  }
}

}  // namespace

QuantMatrix QuantMatrix::quantize(QuantKind kind, const float* w,
                                  std::size_t rows, std::size_t cols) {
  EVA_REQUIRE(kind != QuantKind::kF32, "quantize: kF32 is the unpacked tier");
  QuantMatrix m;
  m.kind = kind;
  m.rows = rows;
  m.cols = cols;
  m.padded_cols = (cols + kQuantColPad - 1) / kQuantColPad * kQuantColPad;
  const std::size_t n = rows * cols;
  if (kind == QuantKind::kBf16) {
    m.bf16.resize(n);
    for (std::size_t i = 0; i < n; ++i) m.bf16[i] = f32_to_bf16(w[i]);
    pack_k_groups(m.bf16, rows, cols, m.padded_cols, 2, m.bf16p);
    return m;
  }
  m.q8.resize(n);
  m.scale.assign(cols, 0.0f);
  m.colsum.assign(cols, 0);
  // Pass 1: per-column absolute maxima. NaN must poison the column (the
  // scale-0 contract below), so reduce with a comparison that lets NaN
  // through — std::max would silently discard it and a NaN code would
  // later hit an undefined float->int8 cast.
  std::vector<float> amax(cols, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      const float a = std::fabs(row[c]);
      // `a > NaN` is false, so a poisoned amax is never overwritten.
      if (a > amax[c] || std::isnan(a)) amax[c] = a;
    }
  }
  // Zero columns (and columns poisoned by non-finite values) quantize
  // to scale 0 + all-zero codes: dequantization reproduces exact zeros
  // and the kernels' per-column rescale annihilates the output.
  std::vector<float> inv(cols, 0.0f);
  for (std::size_t c = 0; c < cols; ++c) {
    if (!(amax[c] > 0.0f) || !std::isfinite(amax[c])) continue;
    m.scale[c] = amax[c] / 127.0f;
    inv[c] = 1.0f / m.scale[c];
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    std::int8_t* out = m.q8.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      if (inv[c] == 0.0f) {
        out[c] = 0;
        continue;
      }
      const float q = std::nearbyint(row[c] * inv[c]);
      out[c] = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
      m.colsum[c] += out[c];
    }
  }
  pack_k_groups(m.q8, rows, cols, m.padded_cols, 4, m.q8p);
  return m;
}

void QuantMatrix::dequantize(float* out) const {
  const std::size_t n = rows * cols;
  if (kind == QuantKind::kBf16) {
    for (std::size_t i = 0; i < n; ++i) out[i] = bf16_to_f32(bf16[i]);
    return;
  }
  EVA_REQUIRE(kind == QuantKind::kInt8, "dequantize: no payload for kF32");
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[r * cols + c] = static_cast<float>(q8[r * cols + c]) * scale[c];
    }
  }
}

}  // namespace eva::tensor
