#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "tensor/gemm.hpp"
#include "util/parallel.hpp"

namespace eva::tensor {

using detail::Node;

// ---------------------------------------------------------------------------
// Shape helpers
// ---------------------------------------------------------------------------

std::size_t shape_numel(const Shape& s) {
  std::size_t n = 1;
  for (int d : s) {
    EVA_ASSERT(d > 0, "shape dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

std::string shape_str(const Shape& s) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ',';
    os << s[i];
  }
  os << ')';
  return os.str();
}

bool same_shape(const Shape& a, const Shape& b) { return a == b; }

bool is_suffix(const Shape& suffix, const Shape& full) {
  if (suffix.size() > full.size()) return false;
  return std::equal(suffix.rbegin(), suffix.rend(), full.rbegin());
}

// ---------------------------------------------------------------------------
// Tensor basics
// ---------------------------------------------------------------------------

namespace {

std::shared_ptr<Node> make_leaf(Shape shape, std::vector<float> data,
                                bool requires_grad) {
  EVA_ASSERT(shape_numel(shape) == data.size(), "data size / shape mismatch");
  auto n = std::make_shared<Node>();
  n->shape = std::move(shape);
  n->data = std::move(data);
  n->requires_grad = requires_grad;
  return n;
}

std::shared_ptr<Node> make_result(Shape shape, const char* op,
                                  std::vector<std::shared_ptr<Node>> parents) {
  auto n = std::make_shared<Node>();
  n->shape = std::move(shape);
  n->data.assign(shape_numel(n->shape), 0.0f);
  n->op = op;
  bool rg = false;
  for (const auto& p : parents) rg = rg || p->requires_grad;
  n->requires_grad = rg;
  if (rg) n->parents = std::move(parents);
  return n;
}

}  // namespace

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  const std::size_t n = shape_numel(shape);
  return Tensor{make_leaf(std::move(shape), std::vector<float>(n, 0.0f),
                          requires_grad)};
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  const std::size_t n = shape_numel(shape);
  return Tensor{make_leaf(std::move(shape), std::vector<float>(n, value),
                          requires_grad)};
}

Tensor Tensor::from(Shape shape, std::vector<float> data, bool requires_grad) {
  return Tensor{make_leaf(std::move(shape), std::move(data), requires_grad)};
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  const std::size_t n = shape_numel(shape);
  std::vector<float> data(n);
  for (auto& v : data) v = static_cast<float>(rng.normal()) * stddev;
  return Tensor{make_leaf(std::move(shape), std::move(data), requires_grad)};
}

Tensor Tensor::scalar(float v, bool requires_grad) {
  return from({1}, {v}, requires_grad);
}

const Shape& Tensor::shape() const {
  EVA_ASSERT(node_, "undefined tensor");
  return node_->shape;
}

int Tensor::dim(int i) const {
  const auto& s = shape();
  if (i < 0) i += static_cast<int>(s.size());
  EVA_ASSERT(i >= 0 && i < static_cast<int>(s.size()), "dim index out of range");
  return s[static_cast<std::size_t>(i)];
}

std::size_t Tensor::numel() const {
  EVA_ASSERT(node_, "undefined tensor");
  return node_->numel();
}

bool Tensor::requires_grad() const {
  EVA_ASSERT(node_, "undefined tensor");
  return node_->requires_grad;
}

std::span<float> Tensor::data() {
  EVA_ASSERT(node_, "undefined tensor");
  return node_->data;
}

std::span<const float> Tensor::data() const {
  EVA_ASSERT(node_, "undefined tensor");
  return node_->data;
}

std::span<float> Tensor::grad() {
  EVA_ASSERT(node_, "undefined tensor");
  node_->ensure_grad();
  return node_->grad;
}

std::span<const float> Tensor::grad() const {
  EVA_ASSERT(node_, "undefined tensor");
  const_cast<Node*>(node_.get())->ensure_grad();
  return node_->grad;
}

float Tensor::item() const {
  EVA_ASSERT(numel() == 1, "item() requires a single-element tensor");
  return node_->data[0];
}

void Tensor::zero_grad() {
  EVA_ASSERT(node_, "undefined tensor");
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

Tensor Tensor::detach() const {
  EVA_ASSERT(node_, "undefined tensor");
  return from(node_->shape, node_->data, false);
}

void Tensor::backward() {
  EVA_ASSERT(node_, "undefined tensor");
  EVA_ASSERT(numel() == 1, "backward() must start from a scalar");
  EVA_ASSERT(node_->requires_grad, "backward() on non-grad tensor");

  // Iterative post-order DFS to get a topological order of the tape.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  node_->ensure_grad();
  node_->grad[0] = 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* n = *it;
    if (n->backward) {
      for (const auto& p : n->parents) {
        if (p->requires_grad) p->ensure_grad();
      }
      n->backward(*n);
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise binary ops with suffix broadcast
// ---------------------------------------------------------------------------

namespace {

enum class BinKind { Add, Sub, Mul };

Tensor binary_op(const Tensor& a, const Tensor& b, BinKind kind,
                 const char* name) {
  auto an = a.node();
  auto bn = b.node();
  EVA_ASSERT(an && bn, "undefined operand");
  const bool scalar_b = bn->numel() == 1;
  EVA_REQUIRE(same_shape(an->shape, bn->shape) || scalar_b ||
                  is_suffix(bn->shape, an->shape),
              std::string(name) + ": incompatible shapes " +
                  shape_str(an->shape) + " vs " + shape_str(bn->shape));

  auto out = make_result(an->shape, name, {an, bn});
  const std::size_t n = out->numel();
  const std::size_t bsz = bn->numel();
  const float* pa = an->data.data();
  const float* pb = bn->data.data();
  float* po = out->data.data();
  parallel_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
    switch (kind) {
      case BinKind::Add:
        for (std::size_t i = lo; i < hi; ++i) po[i] = pa[i] + pb[i % bsz];
        break;
      case BinKind::Sub:
        for (std::size_t i = lo; i < hi; ++i) po[i] = pa[i] - pb[i % bsz];
        break;
      case BinKind::Mul:
        for (std::size_t i = lo; i < hi; ++i) po[i] = pa[i] * pb[i % bsz];
        break;
    }
  });

  if (out->requires_grad) {
    out->backward = [an, bn, kind, n, bsz](Node& self) {
      const float* g = self.grad.data();
      if (an->requires_grad) {
        float* ga = an->grad.data();
        const float* pb2 = bn->data.data();
        parallel_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
          switch (kind) {
            case BinKind::Add:
            case BinKind::Sub:
              for (std::size_t i = lo; i < hi; ++i) ga[i] += g[i];
              break;
            case BinKind::Mul:
              for (std::size_t i = lo; i < hi; ++i) ga[i] += g[i] * pb2[i % bsz];
              break;
          }
        });
      }
      if (bn->requires_grad) {
        float* gb = bn->grad.data();
        const float* pa2 = an->data.data();
        // The broadcast operand reduces n -> bsz, so partition over the
        // *output* indices [0,bsz): each gb[j] is owned by one chunk and
        // accumulates its strided column in the same i-ascending order as
        // the serial loop (bitwise-identical result).
        parallel_chunks(0, bsz, [&](std::size_t jlo, std::size_t jhi) {
          for (std::size_t base = 0; base < n; base += bsz) {
            switch (kind) {
              case BinKind::Add:
                for (std::size_t j = jlo; j < jhi; ++j) gb[j] += g[base + j];
                break;
              case BinKind::Sub:
                for (std::size_t j = jlo; j < jhi; ++j) gb[j] -= g[base + j];
                break;
              case BinKind::Mul:
                for (std::size_t j = jlo; j < jhi; ++j) {
                  gb[j] += g[base + j] * pa2[base + j];
                }
                break;
            }
          }
        });
      }
    };
  }
  return Tensor{out};
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, BinKind::Add, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, BinKind::Sub, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, BinKind::Mul, "mul");
}

Tensor add_scalar(const Tensor& a, float s) {
  auto an = a.node();
  auto out = make_result(an->shape, "add_scalar", {an});
  for (std::size_t i = 0; i < out->numel(); ++i) out->data[i] = an->data[i] + s;
  if (out->requires_grad) {
    out->backward = [an](Node& self) {
      for (std::size_t i = 0; i < self.numel(); ++i) {
        an->grad[i] += self.grad[i];
      }
    };
  }
  return Tensor{out};
}

Tensor mul_scalar(const Tensor& a, float s) {
  auto an = a.node();
  auto out = make_result(an->shape, "mul_scalar", {an});
  for (std::size_t i = 0; i < out->numel(); ++i) out->data[i] = an->data[i] * s;
  if (out->requires_grad) {
    out->backward = [an, s](Node& self) {
      for (std::size_t i = 0; i < self.numel(); ++i) {
        an->grad[i] += self.grad[i] * s;
      }
    };
  }
  return Tensor{out};
}

// ---------------------------------------------------------------------------
// Unary ops
// ---------------------------------------------------------------------------

namespace {

/// Generic unary op: fwd computes y from x; dfd computes dy/dx from (x, y).
template <typename F, typename G>
Tensor unary_op(const Tensor& a, const char* name, F fwd, G dfd) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  auto out = make_result(an->shape, name, {an});
  const std::size_t n = out->numel();
  const float* px = an->data.data();
  float* py = out->data.data();
  parallel_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) py[i] = fwd(px[i]);
  });
  if (out->requires_grad) {
    out->backward = [an, dfd, n](Node& self) {
      const float* x = an->data.data();
      const float* y = self.data.data();
      const float* g = self.grad.data();
      float* gx = an->grad.data();
      parallel_chunks(0, n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) gx[i] += g[i] * dfd(x[i], y[i]);
      });
    };
  }
  return Tensor{out};
}

}  // namespace

Tensor neg(const Tensor& a) {
  return unary_op(
      a, "neg", [](float x) { return -x; },
      [](float, float) { return -1.0f; });
}

Tensor exp_t(const Tensor& a) {
  return unary_op(
      a, "exp", [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor log_t(const Tensor& a) {
  return unary_op(
      a, "log",
      [](float x) {
        EVA_ASSERT(x > 0.0f, "log of non-positive value");
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Tensor tanh_t(const Tensor& a) {
  return unary_op(
      a, "tanh", [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, "sigmoid", [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor relu(const Tensor& a) {
  return unary_op(
      a, "relu", [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor gelu(const Tensor& a) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  return unary_op(
      a, "gelu",
      [](float x) {
        const float u = kC * (x + kA * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(u));
      },
      [](float x, float) {
        const float u = kC * (x + kA * x * x * x);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * kA * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      });
}

Tensor square(const Tensor& a) {
  return unary_op(
      a, "square", [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor clamp_t(const Tensor& a, float lo, float hi) {
  EVA_REQUIRE(lo <= hi, "clamp_t: lo must be <= hi");
  return unary_op(
      a, "clamp",
      [lo, hi](float x) { return std::min(std::max(x, lo), hi); },
      [lo, hi](float x, float) {
        return (x >= lo && x <= hi) ? 1.0f : 0.0f;
      });
}

Tensor min_t(const Tensor& a, const Tensor& b) {
  auto an = a.node();
  auto bn = b.node();
  EVA_ASSERT(an && bn, "undefined operand");
  EVA_REQUIRE(same_shape(an->shape, bn->shape), "min_t: shape mismatch");
  auto out = make_result(an->shape, "min", {an, bn});
  const std::size_t n = out->numel();
  for (std::size_t i = 0; i < n; ++i) {
    out->data[i] = std::min(an->data[i], bn->data[i]);
  }
  if (out->requires_grad) {
    out->backward = [an, bn, n](Node& self) {
      for (std::size_t i = 0; i < n; ++i) {
        const bool a_small = an->data[i] <= bn->data[i];
        if (a_small && an->requires_grad) an->grad[i] += self.grad[i];
        if (!a_small && bn->requires_grad) bn->grad[i] += self.grad[i];
      }
    };
  }
  return Tensor{out};
}

// ---------------------------------------------------------------------------
// Matmul (blocked kernels in gemm.cpp; all variants parallel, including
// the weight-gradient gemm_tn which partitions over output columns)
// ---------------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  auto an = a.node();
  auto bn = b.node();
  EVA_ASSERT(an && bn, "undefined operand");
  const Shape& sa = an->shape;
  const Shape& sb = bn->shape;

  if (sa.size() == 2 && sb.size() == 2) {
    EVA_REQUIRE(sa[1] == sb[0], "matmul inner dims mismatch");
    const auto M = static_cast<std::size_t>(sa[0]);
    const auto K = static_cast<std::size_t>(sa[1]);
    const auto N = static_cast<std::size_t>(sb[1]);
    auto out = make_result({sa[0], sb[1]}, "matmul", {an, bn});
    gemm_nn(an->data.data(), bn->data.data(), out->data.data(), M, K, N);
    if (out->requires_grad) {
      out->backward = [an, bn, M, K, N](Node& self) {
        if (an->requires_grad) {
          gemm_nt(self.grad.data(), bn->data.data(), an->grad.data(), M, N, K);
        }
        if (bn->requires_grad) {
          gemm_tn(an->data.data(), self.grad.data(), bn->grad.data(), M, K, N);
        }
      };
    }
    return Tensor{out};
  }

  if (sa.size() == 3 && sb.size() == 2) {
    // Fold (B,M,K) to (B*M,K): same math, one kernel call.
    EVA_REQUIRE(sa[2] == sb[0], "matmul inner dims mismatch");
    const auto B = static_cast<std::size_t>(sa[0]);
    const auto M = static_cast<std::size_t>(sa[1]);
    const auto K = static_cast<std::size_t>(sa[2]);
    const auto N = static_cast<std::size_t>(sb[1]);
    auto out = make_result({sa[0], sa[1], sb[1]}, "matmul", {an, bn});
    gemm_nn(an->data.data(), bn->data.data(), out->data.data(), B * M, K, N);
    if (out->requires_grad) {
      out->backward = [an, bn, B, M, K, N](Node& self) {
        if (an->requires_grad) {
          gemm_nt(self.grad.data(), bn->data.data(), an->grad.data(), B * M, N,
                  K);
        }
        if (bn->requires_grad) {
          gemm_tn(an->data.data(), self.grad.data(), bn->grad.data(), B * M, K,
                  N);
        }
      };
    }
    return Tensor{out};
  }

  if (sa.size() == 3 && sb.size() == 3) {
    EVA_REQUIRE(sa[0] == sb[0], "batched matmul batch mismatch");
    EVA_REQUIRE(sa[2] == sb[1], "matmul inner dims mismatch");
    const auto B = static_cast<std::size_t>(sa[0]);
    const auto M = static_cast<std::size_t>(sa[1]);
    const auto K = static_cast<std::size_t>(sa[2]);
    const auto N = static_cast<std::size_t>(sb[2]);
    auto out = make_result({sa[0], sa[1], sb[2]}, "bmm", {an, bn});
    const float* pa = an->data.data();
    const float* pb = bn->data.data();
    float* pc = out->data.data();
    // Parallelize over batches; the per-batch gemm runs inline (nested
    // parallel regions serialize), so there is no oversubscription.
    parallel_for(0, B, [&](std::size_t batch) {
      gemm_nn(pa + batch * M * K, pb + batch * K * N, pc + batch * M * N, M, K,
              N);
    });
    if (out->requires_grad) {
      out->backward = [an, bn, B, M, K, N](Node& self) {
        const float* g = self.grad.data();
        if (an->requires_grad) {
          float* ga = an->grad.data();
          const float* pb2 = bn->data.data();
          parallel_for(0, B, [&](std::size_t batch) {
            gemm_nt(g + batch * M * N, pb2 + batch * K * N, ga + batch * M * K,
                    M, N, K);
          });
        }
        if (bn->requires_grad) {
          float* gb = bn->grad.data();
          const float* pa2 = an->data.data();
          parallel_for(0, B, [&](std::size_t batch) {
            gemm_tn(pa2 + batch * M * K, g + batch * M * N, gb + batch * K * N,
                    M, K, N);
          });
        }
      };
    }
    return Tensor{out};
  }

  throw Error("matmul: unsupported ranks " + shape_str(sa) + " x " +
              shape_str(sb));
}

Tensor transpose_last(const Tensor& a) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  const Shape& s = an->shape;
  EVA_REQUIRE(s.size() >= 2, "transpose_last needs rank >= 2");
  Shape so = s;
  std::swap(so[so.size() - 1], so[so.size() - 2]);
  const auto R = static_cast<std::size_t>(s[s.size() - 2]);
  const auto C = static_cast<std::size_t>(s[s.size() - 1]);
  const std::size_t mats = an->numel() / (R * C);
  auto out = make_result(so, "transpose", {an});
  const float* px = an->data.data();
  float* py = out->data.data();
  for (std::size_t b = 0; b < mats; ++b) {
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t c = 0; c < C; ++c) {
        py[b * R * C + c * R + r] = px[b * R * C + r * C + c];
      }
    }
  }
  if (out->requires_grad) {
    out->backward = [an, mats, R, C](Node& self) {
      const float* g = self.grad.data();
      float* gx = an->grad.data();
      for (std::size_t b = 0; b < mats; ++b) {
        for (std::size_t r = 0; r < R; ++r) {
          for (std::size_t c = 0; c < C; ++c) {
            gx[b * R * C + r * C + c] += g[b * R * C + c * R + r];
          }
        }
      }
    };
  }
  return Tensor{out};
}

Tensor reshape(const Tensor& a, Shape shape) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  EVA_REQUIRE(shape_numel(shape) == an->numel(), "reshape numel mismatch");
  auto out = make_result(std::move(shape), "reshape", {an});
  out->data = an->data;
  if (out->requires_grad) {
    out->backward = [an](Node& self) {
      for (std::size_t i = 0; i < self.numel(); ++i) {
        an->grad[i] += self.grad[i];
      }
    };
  }
  return Tensor{out};
}

namespace {

// Index map between (B,T,H,D) packed as (B,T,H*D) and (B*H,T,D).
void heads_copy(const float* src, float* dst, std::size_t B, std::size_t T,
                std::size_t H, std::size_t D, bool splitting) {
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t t = 0; t < T; ++t) {
      for (std::size_t h = 0; h < H; ++h) {
        const std::size_t merged = ((b * T + t) * H + h) * D;
        const std::size_t split = ((b * H + h) * T + t) * D;
        const float* s = src + (splitting ? merged : split);
        float* d = dst + (splitting ? split : merged);
        for (std::size_t k = 0; k < D; ++k) d[k] = s[k];
      }
    }
  }
}

void heads_accum(const float* src, float* dst, std::size_t B, std::size_t T,
                 std::size_t H, std::size_t D, bool splitting) {
  // Backward of heads_copy: accumulate through the inverse index map.
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t t = 0; t < T; ++t) {
      for (std::size_t h = 0; h < H; ++h) {
        const std::size_t merged = ((b * T + t) * H + h) * D;
        const std::size_t split = ((b * H + h) * T + t) * D;
        const float* s = src + (splitting ? split : merged);
        float* d = dst + (splitting ? merged : split);
        for (std::size_t k = 0; k < D; ++k) d[k] += s[k];
      }
    }
  }
}

}  // namespace

Tensor split_heads(const Tensor& a, int heads) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  const Shape& s = an->shape;
  EVA_REQUIRE(s.size() == 3, "split_heads needs (B,T,C)");
  EVA_REQUIRE(s[2] % heads == 0, "channels not divisible by heads");
  const auto B = static_cast<std::size_t>(s[0]);
  const auto T = static_cast<std::size_t>(s[1]);
  const auto H = static_cast<std::size_t>(heads);
  const auto D = static_cast<std::size_t>(s[2] / heads);
  auto out = make_result({s[0] * heads, s[1], s[2] / heads}, "split_heads", {an});
  heads_copy(an->data.data(), out->data.data(), B, T, H, D, true);
  if (out->requires_grad) {
    out->backward = [an, B, T, H, D](Node& self) {
      heads_accum(self.grad.data(), an->grad.data(), B, T, H, D, true);
    };
  }
  return Tensor{out};
}

Tensor merge_heads(const Tensor& a, int heads) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  const Shape& s = an->shape;
  EVA_REQUIRE(s.size() == 3, "merge_heads needs (B*H,T,D)");
  EVA_REQUIRE(s[0] % heads == 0, "batch not divisible by heads");
  const auto B = static_cast<std::size_t>(s[0] / heads);
  const auto T = static_cast<std::size_t>(s[1]);
  const auto H = static_cast<std::size_t>(heads);
  const auto D = static_cast<std::size_t>(s[2]);
  auto out =
      make_result({s[0] / heads, s[1], s[2] * heads}, "merge_heads", {an});
  heads_copy(an->data.data(), out->data.data(), B, T, H, D, false);
  if (out->requires_grad) {
    out->backward = [an, B, T, H, D](Node& self) {
      heads_accum(self.grad.data(), an->grad.data(), B, T, H, D, false);
    };
  }
  return Tensor{out};
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Tensor sum_all(const Tensor& a) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  auto out = make_result({1}, "sum", {an});
  double acc = 0.0;
  for (float v : an->data) acc += v;
  out->data[0] = static_cast<float>(acc);
  if (out->requires_grad) {
    out->backward = [an](Node& self) {
      const float g = self.grad[0];
      for (auto& gv : an->grad) gv += g;
    };
  }
  return Tensor{out};
}

Tensor mean_all(const Tensor& a) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  auto out = make_result({1}, "mean", {an});
  double acc = 0.0;
  for (float v : an->data) acc += v;
  const auto n = static_cast<float>(an->numel());
  out->data[0] = static_cast<float>(acc) / n;
  if (out->requires_grad) {
    out->backward = [an, n](Node& self) {
      const float g = self.grad[0] / n;
      for (auto& gv : an->grad) gv += g;
    };
  }
  return Tensor{out};
}

Tensor masked_mean(const Tensor& a, const std::vector<float>& mask) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  EVA_REQUIRE(mask.size() == an->numel(), "masked_mean mask size mismatch");
  double msum = 0.0;
  for (float m : mask) msum += m;
  const float denom = msum > 0.0 ? static_cast<float>(msum) : 1.0f;
  auto out = make_result({1}, "masked_mean", {an});
  double acc = 0.0;
  for (std::size_t i = 0; i < an->numel(); ++i) acc += an->data[i] * mask[i];
  out->data[0] = static_cast<float>(acc) / denom;
  if (out->requires_grad) {
    out->backward = [an, mask, denom](Node& self) {
      const float g = self.grad[0] / denom;
      for (std::size_t i = 0; i < an->numel(); ++i) {
        an->grad[i] += g * mask[i];
      }
    };
  }
  return Tensor{out};
}

// ---------------------------------------------------------------------------
// Fused NN ops
// ---------------------------------------------------------------------------

namespace {

// Shared softmax forward over independent rows with per-row valid length.
// valid_len(r) gives the number of leading entries that participate; the
// rest get probability 0.
template <typename ValidFn>
void softmax_rows(const float* x, float* y, std::size_t rows, std::size_t cols,
                  ValidFn valid_len) {
  parallel_chunks(0, rows, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t v = valid_len(r);
      const float* xr = x + r * cols;
      float* yr = y + r * cols;
      float mx = -std::numeric_limits<float>::infinity();
      for (std::size_t c = 0; c < v; ++c) mx = std::max(mx, xr[c]);
      float z = 0.0f;
      for (std::size_t c = 0; c < v; ++c) {
        yr[c] = std::exp(xr[c] - mx);
        z += yr[c];
      }
      const float inv = 1.0f / z;
      for (std::size_t c = 0; c < v; ++c) yr[c] *= inv;
      for (std::size_t c = v; c < cols; ++c) yr[c] = 0.0f;
    }
  });
}

template <typename ValidFn>
void softmax_backward_rows(const float* y, const float* g, float* gx,
                           std::size_t rows, std::size_t cols,
                           ValidFn valid_len) {
  parallel_chunks(0, rows, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t v = valid_len(r);
      const float* yr = y + r * cols;
      const float* gr = g + r * cols;
      float* gxr = gx + r * cols;
      float dot = 0.0f;
      for (std::size_t c = 0; c < v; ++c) dot += yr[c] * gr[c];
      for (std::size_t c = 0; c < v; ++c) gxr[c] += yr[c] * (gr[c] - dot);
    }
  });
}

}  // namespace

Tensor softmax_lastdim(const Tensor& a) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  const Shape& s = an->shape;
  const auto cols = static_cast<std::size_t>(s.back());
  const std::size_t rows = an->numel() / cols;
  auto out = make_result(s, "softmax", {an});
  softmax_rows(an->data.data(), out->data.data(), rows, cols,
               [cols](std::size_t) { return cols; });
  if (out->requires_grad) {
    out->backward = [an, rows, cols](Node& self) {
      softmax_backward_rows(self.data.data(), self.grad.data(),
                            an->grad.data(), rows, cols,
                            [cols](std::size_t) { return cols; });
    };
  }
  return Tensor{out};
}

Tensor causal_softmax(const Tensor& scores, int seq_len) {
  auto an = scores.node();
  EVA_ASSERT(an, "undefined operand");
  const Shape& s = an->shape;
  const auto cols = static_cast<std::size_t>(s.back());
  EVA_REQUIRE(cols == static_cast<std::size_t>(seq_len),
              "causal_softmax last dim must equal seq_len");
  const std::size_t rows = an->numel() / cols;
  EVA_REQUIRE(rows % cols == 0,
              "causal_softmax rows must be a multiple of seq_len");
  const auto T = static_cast<std::size_t>(seq_len);
  auto valid = [T](std::size_t r) { return (r % T) + 1; };
  auto out = make_result(s, "causal_softmax", {an});
  softmax_rows(an->data.data(), out->data.data(), rows, cols, valid);
  if (out->requires_grad) {
    out->backward = [an, rows, cols, valid](Node& self) {
      softmax_backward_rows(self.data.data(), self.grad.data(),
                            an->grad.data(), rows, cols, valid);
    };
  }
  return Tensor{out};
}

Tensor log_softmax_lastdim(const Tensor& a) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  const Shape& s = an->shape;
  const auto cols = static_cast<std::size_t>(s.back());
  const std::size_t rows = an->numel() / cols;
  auto out = make_result(s, "log_softmax", {an});
  const float* x = an->data.data();
  float* y = out->data.data();
  parallel_chunks(0, rows, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const float* xr = x + r * cols;
      float* yr = y + r * cols;
      float mx = xr[0];
      for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, xr[c]);
      float z = 0.0f;
      for (std::size_t c = 0; c < cols; ++c) z += std::exp(xr[c] - mx);
      const float lz = mx + std::log(z);
      for (std::size_t c = 0; c < cols; ++c) yr[c] = xr[c] - lz;
    }
  });
  if (out->requires_grad) {
    out->backward = [an, rows, cols](Node& self) {
      const float* yv = self.data.data();
      const float* g = self.grad.data();
      float* gx = an->grad.data();
      parallel_chunks(0, rows, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float* yr = yv + r * cols;
          const float* gr = g + r * cols;
          float* gxr = gx + r * cols;
          float gsum = 0.0f;
          for (std::size_t c = 0; c < cols; ++c) gsum += gr[c];
          for (std::size_t c = 0; c < cols; ++c) {
            gxr[c] += gr[c] - std::exp(yr[c]) * gsum;
          }
        }
      });
    };
  }
  return Tensor{out};
}

Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  EVA_ASSERT(xn && gn && bn, "undefined operand");
  const auto C = static_cast<std::size_t>(xn->shape.back());
  EVA_REQUIRE(gn->numel() == C && bn->numel() == C,
              "layernorm gamma/beta must match last dim");
  const std::size_t rows = xn->numel() / C;
  auto out = make_result(xn->shape, "layernorm", {xn, gn, bn});

  // Cache normalized values and inverse stddevs for backward.
  auto xhat = std::make_shared<std::vector<float>>(xn->numel());
  auto istd = std::make_shared<std::vector<float>>(rows);
  const float* px = xn->data.data();
  const float* pg = gn->data.data();
  const float* pb = bn->data.data();
  float* py = out->data.data();
  parallel_chunks(0, rows, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const float* xr = px + r * C;
      float mu = 0.0f;
      for (std::size_t c = 0; c < C; ++c) mu += xr[c];
      mu /= static_cast<float>(C);
      float var = 0.0f;
      for (std::size_t c = 0; c < C; ++c) {
        const float d = xr[c] - mu;
        var += d * d;
      }
      var /= static_cast<float>(C);
      const float is = 1.0f / std::sqrt(var + eps);
      (*istd)[r] = is;
      float* hr = xhat->data() + r * C;
      float* yr = py + r * C;
      for (std::size_t c = 0; c < C; ++c) {
        hr[c] = (xr[c] - mu) * is;
        yr[c] = hr[c] * pg[c] + pb[c];
      }
    }
  });

  if (out->requires_grad) {
    out->backward = [xn, gn, bn, xhat, istd, rows, C](Node& self) {
      const float* g = self.grad.data();
      const float* pg2 = gn->data.data();
      if (gn->requires_grad || bn->requires_grad) {
        float* gg = gn->requires_grad ? gn->grad.data() : nullptr;
        float* gb = bn->requires_grad ? bn->grad.data() : nullptr;
        for (std::size_t r = 0; r < rows; ++r) {
          const float* hr = xhat->data() + r * C;
          const float* gr = g + r * C;
          for (std::size_t c = 0; c < C; ++c) {
            if (gg) gg[c] += gr[c] * hr[c];
            if (gb) gb[c] += gr[c];
          }
        }
      }
      if (xn->requires_grad) {
        float* gx = xn->grad.data();
        parallel_chunks(0, rows, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t r = lo; r < hi; ++r) {
            const float* hr = xhat->data() + r * C;
            const float* gr = g + r * C;
            float* gxr = gx + r * C;
            const float is = (*istd)[r];
            float m1 = 0.0f;  // mean of g*gamma
            float m2 = 0.0f;  // mean of g*gamma*xhat
            for (std::size_t c = 0; c < C; ++c) {
              const float gp = gr[c] * pg2[c];
              m1 += gp;
              m2 += gp * hr[c];
            }
            m1 /= static_cast<float>(C);
            m2 /= static_cast<float>(C);
            for (std::size_t c = 0; c < C; ++c) {
              const float gp = gr[c] * pg2[c];
              gxr[c] += is * (gp - m1 - hr[c] * m2);
            }
          }
        });
      }
    };
  }
  return Tensor{out};
}

Tensor embedding(const Tensor& table, const std::vector<int>& indices,
                 int batch, int seq_len) {
  auto tn = table.node();
  EVA_ASSERT(tn, "undefined operand");
  EVA_REQUIRE(tn->shape.size() == 2, "embedding table must be (V,C)");
  EVA_REQUIRE(indices.size() ==
                  static_cast<std::size_t>(batch) * static_cast<std::size_t>(seq_len),
              "embedding index count mismatch");
  const int V = tn->shape[0];
  const auto C = static_cast<std::size_t>(tn->shape[1]);
  for (int idx : indices) {
    EVA_REQUIRE(idx >= 0 && idx < V, "embedding index out of vocabulary");
  }
  auto out = make_result({batch, seq_len, tn->shape[1]}, "embedding", {tn});
  const float* pt = tn->data.data();
  float* py = out->data.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const float* row = pt + static_cast<std::size_t>(indices[i]) * C;
    std::copy(row, row + C, py + i * C);
  }
  if (out->requires_grad) {
    out->backward = [tn, indices, C](Node& self) {
      const float* g = self.grad.data();
      float* gt = tn->grad.data();
      for (std::size_t i = 0; i < indices.size(); ++i) {
        float* row = gt + static_cast<std::size_t>(indices[i]) * C;
        const float* gr = g + i * C;
        for (std::size_t c = 0; c < C; ++c) row[c] += gr[c];
      }
    };
  }
  return Tensor{out};
}

Tensor cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                     int ignore_index) {
  auto ln = logits.node();
  EVA_ASSERT(ln, "undefined operand");
  EVA_REQUIRE(ln->shape.size() == 2, "cross_entropy expects (N,V) logits");
  const auto N = static_cast<std::size_t>(ln->shape[0]);
  const auto V = static_cast<std::size_t>(ln->shape[1]);
  EVA_REQUIRE(targets.size() == N, "cross_entropy target count mismatch");

  auto probs = std::make_shared<std::vector<float>>(ln->numel());
  std::vector<double> losses(N, 0.0);
  std::size_t valid = 0;
  const float* x = ln->data.data();
  parallel_chunks(0, N, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const float* xr = x + r * V;
      float* pr = probs->data() + r * V;
      float mx = xr[0];
      for (std::size_t c = 1; c < V; ++c) mx = std::max(mx, xr[c]);
      float z = 0.0f;
      for (std::size_t c = 0; c < V; ++c) {
        pr[c] = std::exp(xr[c] - mx);
        z += pr[c];
      }
      const float inv = 1.0f / z;
      for (std::size_t c = 0; c < V; ++c) pr[c] *= inv;
      if (targets[r] != ignore_index) {
        EVA_ASSERT(targets[r] >= 0 && targets[r] < static_cast<int>(V),
                   "cross_entropy target out of range");
        losses[r] = -std::log(
            std::max(pr[static_cast<std::size_t>(targets[r])], 1e-12f));
      }
    }
  });
  for (std::size_t r = 0; r < N; ++r) {
    if (targets[r] != ignore_index) ++valid;
  }
  const float denom = valid > 0 ? static_cast<float>(valid) : 1.0f;
  double total = 0.0;
  for (double l : losses) total += l;

  auto out = make_result({1}, "cross_entropy", {ln});
  out->data[0] = static_cast<float>(total) / denom;
  if (out->requires_grad) {
    out->backward = [ln, probs, targets, ignore_index, N, V, denom](Node& self) {
      const float g = self.grad[0] / denom;
      float* gx = ln->grad.data();
      for (std::size_t r = 0; r < N; ++r) {
        if (targets[r] == ignore_index) continue;
        const float* pr = probs->data() + r * V;
        float* gr = gx + r * V;
        for (std::size_t c = 0; c < V; ++c) gr[c] += g * pr[c];
        gr[static_cast<std::size_t>(targets[r])] -= g;
      }
    };
  }
  return Tensor{out};
}

Tensor gather_lastdim(const Tensor& a, const std::vector<int>& indices) {
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  EVA_REQUIRE(an->shape.size() == 2, "gather_lastdim expects (N,V)");
  const auto N = static_cast<std::size_t>(an->shape[0]);
  const auto V = static_cast<std::size_t>(an->shape[1]);
  EVA_REQUIRE(indices.size() == N, "gather_lastdim index count mismatch");
  auto out = make_result({an->shape[0]}, "gather", {an});
  for (std::size_t r = 0; r < N; ++r) {
    EVA_REQUIRE(indices[r] >= 0 && indices[r] < static_cast<int>(V),
                "gather index out of range");
    out->data[r] = an->data[r * V + static_cast<std::size_t>(indices[r])];
  }
  if (out->requires_grad) {
    out->backward = [an, indices, V](Node& self) {
      for (std::size_t r = 0; r < indices.size(); ++r) {
        an->grad[r * V + static_cast<std::size_t>(indices[r])] += self.grad[r];
      }
    };
  }
  return Tensor{out};
}

Tensor dropout(const Tensor& a, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) return a;
  EVA_REQUIRE(p < 1.0f, "dropout p must be < 1");
  auto an = a.node();
  EVA_ASSERT(an, "undefined operand");
  auto keep = std::make_shared<std::vector<float>>(an->numel());
  const float scale = 1.0f / (1.0f - p);
  for (auto& k : *keep) k = rng.chance(p) ? 0.0f : scale;
  auto out = make_result(an->shape, "dropout", {an});
  for (std::size_t i = 0; i < an->numel(); ++i) {
    out->data[i] = an->data[i] * (*keep)[i];
  }
  if (out->requires_grad) {
    out->backward = [an, keep](Node& self) {
      for (std::size_t i = 0; i < self.numel(); ++i) {
        an->grad[i] += self.grad[i] * (*keep)[i];
      }
    };
  }
  return Tensor{out};
}

}  // namespace eva::tensor
