// Blocked, vectorization-friendly GEMM kernel family behind the runtime
// backend seam.
//
// These are the dispatch entry points the whole engine calls: each
// routes through the active GemmBackendOps table (tensor/gemm_backend.hpp,
// selected by EVA_GEMM_BACKEND / set_gemm_backend) and bumps the
// per-backend tensor.gemm_backend_dispatch.<name> counter. The built-in
// "cpu" backend is one register-tiled micro-kernel (MR x NR accumulator
// block, NR = one cache line of floats) backing all matmul variants of
// the tensor engine plus the KV-cache inference path's vector-matrix
// products. All matrices are row-major float32 and the GEMM trio
// *accumulates* into C (C += ...), matching the autograd convention of
// += into grads.
//
// The quantized family (qgemm/qgemv) is inference-only: weight-quantized
// bf16/int8 matrices (tensor/quant.hpp) with a fused bias+activation
// epilogue. These OVERWRITE their output. On AVX-512 VNNI/BF16 hardware
// the multiplies run natively reduced-precision (int8: u8-quantized
// activations + exact int32 vpdpbusd accumulation rescaled per column;
// bf16: bf16-rounded activations + vdpbf16ps); elsewhere a portable
// dequant-panel fallback computes in f32 with f32 activations. See
// tensor/quant.hpp for the error model.
//
// Threading (cpu backend): gemm_nn / gemm_nt partition over rows of C,
// gemm_tn and qgemm over columns of C (each thread owns a disjoint
// column stripe, so the K-reduction needs no atomics or per-thread
// buffers). All dispatch via eva::parallel_chunks, so they run inline
// under set_num_threads(1) or when called from inside another parallel
// region.
#pragma once

#include <cstddef>

#include "tensor/quant.hpp"

namespace eva::tensor {

/// C(M,N) += A(M,K) @ B(K,N).
void gemm_nn(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N);

/// C(M,N) += A(M,K) @ B(N,K)^T.
void gemm_nt(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N);

/// C(M,N) += A(K,M)^T @ B(K,N). This is the weight-gradient shape
/// (dW += X^T @ dY); parallel over column stripes of C.
void gemm_tn(const float* A, const float* B, float* C, std::size_t K,
             std::size_t M, std::size_t N);

/// y(out) = x(in) @ W(in,out) + bias. bias may be null (treated as 0).
/// Serial: the inference path parallelizes across sequences, not inside
/// a single token step.
void gemv(const float* x, const float* w, const float* bias, float* y,
          std::size_t in, std::size_t out);

/// Y(n,out) ~= epilogue(X(n,in) @ dequant(W) [+ bias]) for a quantized
/// weight matrix W(in,out), within the tier's documented error bound.
/// Overwrites Y; bias must be non-null for the kBias/kBiasGelu
/// epilogues. Per-row values are independent of n (a row's activation
/// quantization, reduction order and epilogue are fixed by the shapes
/// alone), preserving the batched decoder's width-invariance under
/// quantization.
void qgemm(const float* X, const QuantMatrix& W, const float* bias, float* Y,
           std::size_t n, Epilogue ep);

/// One-row variant of qgemm, bit-identical to a qgemm row (it runs the
/// same 1-row kernel): y(out) ~= epilogue(x @ dequant(W) [+ bias]).
void qgemv(const float* x, const QuantMatrix& W, const float* bias, float* y,
           Epilogue ep);

}  // namespace eva::tensor
