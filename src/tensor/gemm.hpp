// Blocked, vectorization-friendly GEMM kernel family.
//
// One register-tiled micro-kernel (MR x NR accumulator block, NR = one
// cache line of floats) backs all matmul variants of the tensor engine
// plus the KV-cache inference path's vector-matrix products. All
// matrices are row-major float32 and every kernel *accumulates* into C
// (C += ...), matching the autograd convention of += into grads.
//
// Threading: gemm_nn / gemm_nt partition over rows of C, gemm_tn over
// columns of C (each thread owns a disjoint column stripe, so the
// K-reduction needs no atomics or per-thread buffers). All dispatch via
// eva::parallel_chunks, so they run inline under set_num_threads(1) or
// when called from inside another parallel region.
#pragma once

#include <cstddef>

namespace eva::tensor {

/// C(M,N) += A(M,K) @ B(K,N).
void gemm_nn(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N);

/// C(M,N) += A(M,K) @ B(N,K)^T.
void gemm_nt(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N);

/// C(M,N) += A(K,M)^T @ B(K,N). This is the weight-gradient shape
/// (dW += X^T @ dY); parallel over column stripes of C.
void gemm_tn(const float* A, const float* B, float* C, std::size_t K,
             std::size_t M, std::size_t N);

/// y(out) = x(in) @ W(in,out) + bias. bias may be null (treated as 0).
/// Serial: the inference path parallelizes across sequences, not inside
/// a single token step.
void gemv(const float* x, const float* w, const float* bias, float* y,
          std::size_t in, std::size_t out);

}  // namespace eva::tensor
