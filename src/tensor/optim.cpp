#include "tensor/optim.hpp"

#include <cmath>

namespace eva::tensor {

void zero_grads(std::vector<Tensor>& params) {
  for (auto& p : params) p.zero_grad();
}

double clip_grad_norm(std::vector<Tensor>& params, double max_norm) {
  EVA_ASSERT(max_norm > 0.0, "clip_grad_norm needs positive max_norm");
  double sq = 0.0;
  for (auto& p : params) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const auto scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (auto& p : params) {
      for (float& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].numel(), 0.0f);
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto data = params_[i].data();
    auto grad = params_[i].grad();
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < data.size(); ++j) {
      vel[j] = momentum_ * vel[j] + grad[j];
      data[j] -= lr_ * vel[j];
    }
  }
}

AdamW::AdamW(std::vector<Tensor> params, Config cfg)
    : params_(std::move(params)), cfg_(cfg) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].numel(), 0.0f);
    v_[i].assign(params_[i].numel(), 0.0f);
  }
}

AdamW::State AdamW::export_state() const { return State{t_, m_, v_}; }

void AdamW::import_state(const State& st) {
  EVA_REQUIRE(st.m.size() == params_.size() && st.v.size() == params_.size(),
              "AdamW state tensor count mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    EVA_REQUIRE(st.m[i].size() == params_[i].numel() &&
                    st.v[i].size() == params_[i].numel(),
                "AdamW state moment size mismatch");
  }
  EVA_REQUIRE(st.t >= 0, "AdamW state has negative step count");
  t_ = st.t;
  m_ = st.m;
  v_ = st.v;
}

void AdamW::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto data = params_[i].data();
    auto grad = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < data.size(); ++j) {
      m[j] = cfg_.beta1 * m[j] + (1.0f - cfg_.beta1) * grad[j];
      v[j] = cfg_.beta2 * v[j] + (1.0f - cfg_.beta2) * grad[j] * grad[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      data[j] -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                            cfg_.weight_decay * data[j]);
    }
  }
}

}  // namespace eva::tensor
