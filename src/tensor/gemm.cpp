#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace eva::tensor {

namespace {

/// FLOP accounting for every kernel entry (2*M*K*N per GEMM). One relaxed
/// striped add per call; bench_micro and the trainer read the counter to
/// report GFLOP/s without re-deriving shapes.
void count_flops(std::size_t m, std::size_t k, std::size_t n) {
  static obs::Counter& flops = obs::counter("tensor.gemm_flops");
  flops.add(static_cast<std::int64_t>(2 * m * k * n));
}

// Register tile: MR rows x NR columns of C. NR = 32 floats = two 64-byte
// cache lines per row, picked empirically: with AVX2/AVX-512 the full
// tile maps onto the vector register file, and even baseline x86-64
// codegen keeps the accumulators hot (see DESIGN.md "Threading &
// kernels" for the measured sweep).
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 32;
// K-panel bound: keeps the nt transpose scratch (kKc * kNr floats) and
// the B panel touched by one tile pass L1/L2-resident.
constexpr std::size_t kKc = 256;

// C tile (mr x nr) += A'(mr x kc) @ Bp(kc x nr).
// A' element (r,k) lives at a[r*rsa + k*csa] — (rsa=lda, csa=1) walks A
// row-major, (rsa=1, csa=lda) walks a transposed view without copying.
// Bp is row-major with leading dimension ldb; C with ldc.
void micro_kernel(std::size_t kc, const float* a, std::size_t rsa,
                  std::size_t csa, const float* bp, std::size_t ldb, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  if (mr == kMr && nr == kNr) {
    // Full tile: fixed trip counts so the inner loops vectorize and the
    // accumulators stay in registers across the whole k sweep.
    float acc[kMr][kNr] = {};
    for (std::size_t k = 0; k < kc; ++k) {
      const float* brow = bp + k * ldb;
      for (std::size_t r = 0; r < kMr; ++r) {
        const float av = a[r * rsa + k * csa];
        for (std::size_t n = 0; n < kNr; ++n) acc[r][n] += av * brow[n];
      }
    }
    for (std::size_t r = 0; r < kMr; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t n = 0; n < kNr; ++n) crow[n] += acc[r][n];
    }
    return;
  }
  // Ragged edge tile.
  float acc[kMr][kNr] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const float* brow = bp + k * ldb;
    for (std::size_t r = 0; r < mr; ++r) {
      const float av = a[r * rsa + k * csa];
      for (std::size_t n = 0; n < nr; ++n) acc[r][n] += av * brow[n];
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (std::size_t n = 0; n < nr; ++n) crow[n] += acc[r][n];
  }
}

}  // namespace

void gemm_nn(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N) {
  obs::Span span("gemm_nn");
  count_flops(M, K, N);
  parallel_chunks(
      0, M,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t kb = 0; kb < K; kb += kKc) {
          const std::size_t kc = std::min(kKc, K - kb);
          for (std::size_t nb = 0; nb < N; nb += kNr) {
            const std::size_t nr = std::min(kNr, N - nb);
            for (std::size_t m = lo; m < hi; m += kMr) {
              const std::size_t mr = std::min(kMr, hi - m);
              micro_kernel(kc, A + m * K + kb, K, 1, B + kb * N + nb, N,
                           C + m * N + nb, N, mr, nr);
            }
          }
        }
      },
      kMr);
}

void gemm_nt(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N) {
  obs::Span span("gemm_nt");
  count_flops(M, K, N);
  parallel_chunks(
      0, M,
      [&](std::size_t lo, std::size_t hi) {
        // Pack B^T panels so the micro-kernel sees contiguous rows; the
        // pack cost amortizes over all row tiles of this stripe.
        std::vector<float> bt(kKc * kNr);
        for (std::size_t kb = 0; kb < K; kb += kKc) {
          const std::size_t kc = std::min(kKc, K - kb);
          for (std::size_t nb = 0; nb < N; nb += kNr) {
            const std::size_t nr = std::min(kNr, N - nb);
            for (std::size_t j = 0; j < nr; ++j) {
              const float* src = B + (nb + j) * K + kb;
              for (std::size_t k = 0; k < kc; ++k) bt[k * kNr + j] = src[k];
            }
            for (std::size_t m = lo; m < hi; m += kMr) {
              const std::size_t mr = std::min(kMr, hi - m);
              micro_kernel(kc, A + m * K + kb, K, 1, bt.data(), kNr,
                           C + m * N + nb, N, mr, nr);
            }
          }
        }
      },
      kMr);
}

void gemm_tn(const float* A, const float* B, float* C, std::size_t K,
             std::size_t M, std::size_t N) {
  obs::Span span("gemm_tn");
  count_flops(K, M, N);
  // Column-stripe partition: each thread owns C[:, n0:n1) and reduces
  // over all of K for it, so concurrent accumulation never races.
  parallel_chunks(
      0, N,
      [&](std::size_t n0, std::size_t n1) {
        for (std::size_t kb = 0; kb < K; kb += kKc) {
          const std::size_t kc = std::min(kKc, K - kb);
          for (std::size_t nb = n0; nb < n1; nb += kNr) {
            const std::size_t nr = std::min(kNr, n1 - nb);
            for (std::size_t m = 0; m < M; m += kMr) {
              const std::size_t mr = std::min(kMr, M - m);
              micro_kernel(kc, A + kb * M + m, 1, M, B + kb * N + nb, N,
                           C + m * N + nb, N, mr, nr);
            }
          }
        }
      },
      kNr);
}

void gemv(const float* x, const float* w, const float* bias, float* y,
          std::size_t in, std::size_t out) {
  // No span here: gemv runs several times per generated token and a
  // trace event each would swamp the buffers; the flop counter is one
  // relaxed add.
  count_flops(1, in, out);
  // One-row variant of the micro-kernel. The strip is wider than kNr
  // because a single row has no row-reuse to feed: 64 floats per strip
  // covers the whole output of the d_model-sized inference linears in
  // one pass and each cache line of W is still fetched exactly once.
  constexpr std::size_t kVNr = 64;
  for (std::size_t nb = 0; nb < out; nb += kVNr) {
    const std::size_t nr = std::min(kVNr, out - nb);
    float acc[kVNr] = {};
    if (nr == kVNr) {
      for (std::size_t k = 0; k < in; ++k) {
        const float xv = x[k];
        const float* wrow = w + k * out + nb;
        for (std::size_t n = 0; n < kVNr; ++n) acc[n] += xv * wrow[n];
      }
    } else {
      for (std::size_t k = 0; k < in; ++k) {
        const float xv = x[k];
        const float* wrow = w + k * out + nb;
        for (std::size_t n = 0; n < nr; ++n) acc[n] += xv * wrow[n];
      }
    }
    if (bias != nullptr) {
      for (std::size_t n = 0; n < nr; ++n) y[nb + n] = bias[nb + n] + acc[n];
    } else {
      for (std::size_t n = 0; n < nr; ++n) y[nb + n] = acc[n];
    }
  }
}

}  // namespace eva::tensor
