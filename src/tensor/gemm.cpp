// The built-in "cpu" GEMM backend: register-tiled f32 kernels plus the
// weight-quantized inference family. The public dispatch wrappers that
// route through the active backend live in gemm_backend.cpp.
#include "tensor/gemm_cpu.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace eva::tensor::cpu {

namespace {

/// FLOP accounting for every kernel entry (2*M*K*N per GEMM). One relaxed
/// striped add per call; bench_micro and the trainer read the counter to
/// report GFLOP/s without re-deriving shapes.
void count_flops(std::size_t m, std::size_t k, std::size_t n) {
  static obs::Counter& flops = obs::counter("tensor.gemm_flops");
  flops.add(static_cast<std::int64_t>(2 * m * k * n));
}

// Register tile: MR rows x NR columns of C. NR = 32 floats = two 64-byte
// cache lines per row, picked empirically: with AVX2/AVX-512 the full
// tile maps onto the vector register file, and even baseline x86-64
// codegen keeps the accumulators hot (see DESIGN.md "Threading &
// kernels" for the measured sweep).
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 32;
// K-panel bound: keeps the nt transpose scratch (kKc * kNr floats) and
// the B panel touched by one tile pass L1/L2-resident.
constexpr std::size_t kKc = 256;

// C tile (mr x nr) += A'(mr x kc) @ Bp(kc x nr).
// A' element (r,k) lives at a[r*rsa + k*csa] — (rsa=lda, csa=1) walks A
// row-major, (rsa=1, csa=lda) walks a transposed view without copying.
// Bp is row-major with leading dimension ldb; C with ldc.
void micro_kernel(std::size_t kc, const float* a, std::size_t rsa,
                  std::size_t csa, const float* bp, std::size_t ldb, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  if (mr == kMr && nr == kNr) {
    // Full tile: fixed trip counts so the inner loops vectorize and the
    // accumulators stay in registers across the whole k sweep.
    float acc[kMr][kNr] = {};
    for (std::size_t k = 0; k < kc; ++k) {
      const float* brow = bp + k * ldb;
      for (std::size_t r = 0; r < kMr; ++r) {
        const float av = a[r * rsa + k * csa];
        for (std::size_t n = 0; n < kNr; ++n) acc[r][n] += av * brow[n];
      }
    }
    for (std::size_t r = 0; r < kMr; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t n = 0; n < kNr; ++n) crow[n] += acc[r][n];
    }
    return;
  }
  // Ragged edge tile.
  float acc[kMr][kNr] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const float* brow = bp + k * ldb;
    for (std::size_t r = 0; r < mr; ++r) {
      const float av = a[r * rsa + k * csa];
      for (std::size_t n = 0; n < nr; ++n) acc[r][n] += av * brow[n];
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (std::size_t n = 0; n < nr; ++n) crow[n] += acc[r][n];
  }
}

}  // namespace

void gemm_nn(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N) {
  obs::Span span("gemm_nn");
  count_flops(M, K, N);
  parallel_chunks(
      0, M,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t kb = 0; kb < K; kb += kKc) {
          const std::size_t kc = std::min(kKc, K - kb);
          for (std::size_t nb = 0; nb < N; nb += kNr) {
            const std::size_t nr = std::min(kNr, N - nb);
            for (std::size_t m = lo; m < hi; m += kMr) {
              const std::size_t mr = std::min(kMr, hi - m);
              micro_kernel(kc, A + m * K + kb, K, 1, B + kb * N + nb, N,
                           C + m * N + nb, N, mr, nr);
            }
          }
        }
      },
      kMr);
}

void gemm_nt(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N) {
  obs::Span span("gemm_nt");
  count_flops(M, K, N);
  parallel_chunks(
      0, M,
      [&](std::size_t lo, std::size_t hi) {
        // Pack B^T panels so the micro-kernel sees contiguous rows; the
        // pack cost amortizes over all row tiles of this stripe.
        std::vector<float> bt(kKc * kNr);
        for (std::size_t kb = 0; kb < K; kb += kKc) {
          const std::size_t kc = std::min(kKc, K - kb);
          for (std::size_t nb = 0; nb < N; nb += kNr) {
            const std::size_t nr = std::min(kNr, N - nb);
            for (std::size_t j = 0; j < nr; ++j) {
              const float* src = B + (nb + j) * K + kb;
              for (std::size_t k = 0; k < kc; ++k) bt[k * kNr + j] = src[k];
            }
            for (std::size_t m = lo; m < hi; m += kMr) {
              const std::size_t mr = std::min(kMr, hi - m);
              micro_kernel(kc, A + m * K + kb, K, 1, bt.data(), kNr,
                           C + m * N + nb, N, mr, nr);
            }
          }
        }
      },
      kMr);
}

void gemm_tn(const float* A, const float* B, float* C, std::size_t K,
             std::size_t M, std::size_t N) {
  obs::Span span("gemm_tn");
  count_flops(K, M, N);
  // Column-stripe partition: each thread owns C[:, n0:n1) and reduces
  // over all of K for it, so concurrent accumulation never races.
  parallel_chunks(
      0, N,
      [&](std::size_t n0, std::size_t n1) {
        for (std::size_t kb = 0; kb < K; kb += kKc) {
          const std::size_t kc = std::min(kKc, K - kb);
          for (std::size_t nb = n0; nb < n1; nb += kNr) {
            const std::size_t nr = std::min(kNr, n1 - nb);
            for (std::size_t m = 0; m < M; m += kMr) {
              const std::size_t mr = std::min(kMr, M - m);
              micro_kernel(kc, A + kb * M + m, 1, M, B + kb * N + nb, N,
                           C + m * N + nb, N, mr, nr);
            }
          }
        }
      },
      kNr);
}

void gemv(const float* x, const float* w, const float* bias, float* y,
          std::size_t in, std::size_t out) {
  // No span here: gemv runs several times per generated token and a
  // trace event each would swamp the buffers; the flop counter is one
  // relaxed add.
  count_flops(1, in, out);
  // One-row variant of the micro-kernel. The strip is wider than kNr
  // because a single row has no row-reuse to feed: 64 floats per strip
  // covers the whole output of the d_model-sized inference linears in
  // one pass and each cache line of W is still fetched exactly once.
  constexpr std::size_t kVNr = 64;
  for (std::size_t nb = 0; nb < out; nb += kVNr) {
    const std::size_t nr = std::min(kVNr, out - nb);
    float acc[kVNr] = {};
    if (nr == kVNr) {
      for (std::size_t k = 0; k < in; ++k) {
        const float xv = x[k];
        const float* wrow = w + k * out + nb;
        for (std::size_t n = 0; n < kVNr; ++n) acc[n] += xv * wrow[n];
      }
    } else {
      for (std::size_t k = 0; k < in; ++k) {
        const float xv = x[k];
        const float* wrow = w + k * out + nb;
        for (std::size_t n = 0; n < nr; ++n) acc[n] += xv * wrow[n];
      }
    }
    if (bias != nullptr) {
      for (std::size_t n = 0; n < nr; ++n) y[nb + n] = bias[nb + n] + acc[n];
    } else {
      for (std::size_t n = 0; n < nr; ++n) y[nb + n] = acc[n];
    }
  }
}

// ---------------------------------------------------------------------------
// Quantized inference family (weight-only bf16/int8)
// ---------------------------------------------------------------------------
//
// On AVX-512 VNNI + BF16 hardware these kernels run reduced-precision
// multiplies natively: int8 quantizes each activation row to u8 (zero
// point 128) and accumulates exact int32 dot products with vpdpbusd
// (4 MACs/lane/instruction); bf16 rounds the activation row to bf16
// pairs and drives vdpbf16ps (2 MACs/lane/instruction). Both read the
// K-grouped packed payloads built at quantize() time. Elsewhere a
// portable fallback dequantizes panels and reuses the f32 micro-kernel
// (f32 activations — cross-platform results differ, within the same
// documented tolerance vs f32).
//
// Determinism contract shared by every path: the work a given output
// element (row r, column j) sees — activation quantization of row r,
// reduction order over K, epilogue arithmetic — depends only on the
// shapes, never on the batch size n or which tile the row landed in.
// Rows are processed by one 8-row tile kernel plus a 1-row remainder
// kernel whose per-row instruction sequence is identical, and qgemv is
// exactly the 1-row kernel, which is what keeps batched and per-sequence
// decode FLOAT_EQ-identical and sampled tokens width-invariant.

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VNNI__) && defined(__AVX512BF16__)
#define EVA_QKERNELS_AVX512 1
#include <immintrin.h>
#endif

namespace {

/// Output strip width of the quantized kernels (= packed column pad).
constexpr std::size_t kQNr = kQuantColPad;

#ifndef EVA_QKERNELS_AVX512

/// Quantize one activation row to u8 with zero point 128, padding to K4
/// (the vpdpbusd group-of-4 bound; padded lanes multiply zero weights).
/// Returns the row scale; all-zero / non-finite rows get scale 0, which
/// annihilates the output in the epilogue.
inline float quantize_row_u8(const float* x, std::size_t K, std::size_t K4,
                             std::uint8_t* xu) {
  float amax = 0.0f;
  for (std::size_t k = 0; k < K; ++k) amax = std::max(amax, std::fabs(x[k]));
  if (!(amax > 0.0f) || !std::isfinite(amax)) {
    std::fill_n(xu, K4, std::uint8_t{128});
    return 0.0f;
  }
  const float inv = 127.0f / amax;
  for (std::size_t k = 0; k < K; ++k) {
    // NaN elements slip past the amax reduction (std::max discards NaN),
    // so guard the cast: non-finite q maps to -127, the value cvtps2dq +
    // clamp produces in the AVX-512 kernels, keeping builds in agreement.
    const float q = std::clamp(std::nearbyint(x[k] * inv), -127.0f, 127.0f);
    const int qi = std::isfinite(q) ? static_cast<int>(q) : -127;
    xu[k] = static_cast<std::uint8_t>(qi + 128);
  }
  std::fill(xu + K, xu + K4, std::uint8_t{128});
  return amax / 127.0f;
}

/// int8 epilogue: undo the zero point (128 * colsum), apply the two
/// scales, then bias/GELU. Shared by full strips, ragged tails, the
/// 8-row tile path and qgemv, so all produce bit-identical values per
/// column.
__attribute__((noinline)) void store_strip_i8(const std::int32_t* acc, float ascale,
                           const float* wscale, const std::int32_t* colsum,
                           const float* bias, Epilogue ep, float* y,
                           std::size_t nr) {
  const bool add_bias = ep != Epilogue::kNone && bias != nullptr;
  for (std::size_t j = 0; j < nr; ++j) {
    float v = ascale *
              (wscale[j] * static_cast<float>(acc[j] - 128 * colsum[j]));
    if (add_bias) v += bias[j];
    if (ep == Epilogue::kBiasGelu) v = gelu_approx(v);
    y[j] = v;
  }
}

/// f32-accumulator epilogue (bf16 and the portable fallback). `wscale`
/// is null except for the fallback int8 path, where the raw x.q dot
/// still needs the per-column rescale.
__attribute__((noinline)) void store_strip_f32(const float* acc, const float* wscale,
                            const float* bias, Epilogue ep, float* y,
                            std::size_t nr) {
  const bool add_bias = ep != Epilogue::kNone && bias != nullptr;
  for (std::size_t j = 0; j < nr; ++j) {
    float v = wscale != nullptr ? wscale[j] * acc[j] : acc[j];
    if (add_bias) v += bias[j];
    if (ep == Epilogue::kBiasGelu) v = gelu_approx(v);
    y[j] = v;
  }
}

#else  // EVA_QKERNELS_AVX512

inline std::uint32_t load_u32(const void* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Vectorized u8 activation quantization (see the scalar variant above
/// for the contract). vcvtps2dq under default MXCSR is round-to-
/// nearest-even, the same rounding as the scalar nearbyint, so the
/// 16-lane body and the scalar tail agree element for element; the
/// split point depends only on K, never on the batch, preserving
/// width-invariance.
inline float quantize_row_u8(const float* x, std::size_t K, std::size_t K4,
                             std::uint8_t* xu) {
  __m512 vmax = _mm512_setzero_ps();
  std::size_t k = 0;
  for (; k + 16 <= K; k += 16) {
    vmax = _mm512_max_ps(vmax, _mm512_abs_ps(_mm512_loadu_ps(x + k)));
  }
  float amax = _mm512_reduce_max_ps(vmax);
  for (; k < K; ++k) amax = std::max(amax, std::fabs(x[k]));
  if (!(amax > 0.0f) || !std::isfinite(amax)) {
    std::fill_n(xu, K4, std::uint8_t{128});
    return 0.0f;
  }
  const float inv = 127.0f / amax;
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512i lo = _mm512_set1_epi32(-127);
  const __m512i hi = _mm512_set1_epi32(127);
  const __m512i off = _mm512_set1_epi32(128);
  k = 0;
  for (; k + 16 <= K; k += 16) {
    __m512i q = _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(x + k), vinv));
    q = _mm512_add_epi32(_mm512_min_epi32(_mm512_max_epi32(q, lo), hi), off);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(xu + k),
                     _mm512_cvtepi32_epi8(q));
  }
  for (; k < K; ++k) {
    // A NaN element in the tail slips past the amax reduction (std::max
    // discards NaN), and casting NaN to int is UB. Map non-finite q to
    // -127 — exactly what the 16-lane body computes (cvtps2dq yields
    // INT_MIN, then the epi32 clamp) — so tail and body lanes agree.
    const float q = std::clamp(std::nearbyint(x[k] * inv), -127.0f, 127.0f);
    const int qi = std::isfinite(q) ? static_cast<int>(q) : -127;
    xu[k] = static_cast<std::uint8_t>(qi + 128);
  }
  std::fill(xu + K, xu + K4, std::uint8_t{128});
  return amax / 127.0f;
}

/// int8 epilogue, vectorized: identical arithmetic and association as
/// the scalar tail (`ascale * (wscale * float(acc - 128*colsum))`,
/// then bias) — every op is elementwise, so lanes match scalar IEEE
/// exactly. GELU runs as a second scalar pass over the stored strip
/// (same input values, same gelu_approx).
__attribute__((noinline)) void store_strip_i8(const std::int32_t* acc, float ascale,
                           const float* wscale, const std::int32_t* colsum,
                           const float* bias, Epilogue ep, float* y,
                           std::size_t nr) {
  const bool add_bias = ep != Epilogue::kNone && bias != nullptr;
  const __m512 va = _mm512_set1_ps(ascale);
  std::size_t j = 0;
  for (; j + 16 <= nr; j += 16) {
    const __m512i cs = _mm512_loadu_si512(colsum + j);
    const __m512i ai =
        _mm512_sub_epi32(_mm512_load_si512(acc + j), _mm512_slli_epi32(cs, 7));
    __m512 v = _mm512_mul_ps(
        va, _mm512_mul_ps(_mm512_loadu_ps(wscale + j), _mm512_cvtepi32_ps(ai)));
    if (add_bias) v = _mm512_add_ps(v, _mm512_loadu_ps(bias + j));
    _mm512_storeu_ps(y + j, v);
  }
  for (; j < nr; ++j) {
    float v = ascale *
              (wscale[j] * static_cast<float>(acc[j] - 128 * colsum[j]));
    if (add_bias) v += bias[j];
    y[j] = v;
  }
  if (ep == Epilogue::kBiasGelu) {
    for (j = 0; j < nr; ++j) y[j] = gelu_approx(y[j]);
  }
}

/// f32-accumulator epilogue (bf16 path), vectorized like the int8 one.
/// `wscale` is unused on this platform (no fallback rescale) but kept
/// for signature parity with the portable build.
__attribute__((noinline)) void store_strip_f32(const float* acc, const float* wscale,
                            const float* bias, Epilogue ep, float* y,
                            std::size_t nr) {
  const bool add_bias = ep != Epilogue::kNone && bias != nullptr;
  std::size_t j = 0;
  for (; j + 16 <= nr; j += 16) {
    __m512 v = _mm512_load_ps(acc + j);
    if (wscale != nullptr) v = _mm512_mul_ps(_mm512_loadu_ps(wscale + j), v);
    if (add_bias) v = _mm512_add_ps(v, _mm512_loadu_ps(bias + j));
    _mm512_storeu_ps(y + j, v);
  }
  for (; j < nr; ++j) {
    float v = wscale != nullptr ? wscale[j] * acc[j] : acc[j];
    if (add_bias) v += bias[j];
    y[j] = v;
  }
  if (ep == Epilogue::kBiasGelu) {
    for (j = 0; j < nr; ++j) y[j] = gelu_approx(y[j]);
  }
}

/// Round one activation row to packed bf16 pairs (low half = even k),
/// padding to kp pairs with zero. vcvtneps2bf16 is the same round-to-
/// nearest-even as f32_to_bf16 (the scalar tail); the 16-lane split
/// depends only on K, preserving width-invariance.
inline void convert_row_bf16(const float* x, std::size_t K, std::size_t kp,
                             std::uint32_t* xb) {
  std::size_t k = 0;
  for (; k + 16 <= K; k += 16) {
    const __m256bh bh = _mm512_cvtneps_pbh(_mm512_loadu_ps(x + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(xb + k / 2),
                        reinterpret_cast<__m256i>(bh));
  }
  const std::size_t full = K / 2;
  for (std::size_t p = k / 2; p < full; ++p) {
    xb[p] = static_cast<std::uint32_t>(f32_to_bf16(x[2 * p])) |
            (static_cast<std::uint32_t>(f32_to_bf16(x[2 * p + 1])) << 16);
  }
  std::size_t p = full;
  if (K % 2 != 0) xb[p++] = f32_to_bf16(x[K - 1]);
  for (; p < kp; ++p) xb[p] = 0;
}

/// MR rows x 32 cols of int32 accumulators over all K groups. `wp` is
/// the packed q8p base offset to the strip ([kg][Np][4] layout, 64-byte
/// aligned loads yield 16 cols x 4 K-steps); `wstride` = Np*4 bytes.
template <int MR>
inline void qtile_i8(const std::uint8_t* xu, std::size_t xstride,
                     std::size_t kg, const std::int8_t* wp,
                     std::size_t wstride, std::int32_t* acc) {
  __m512i a[MR][2];
  for (int r = 0; r < MR; ++r) {
    a[r][0] = _mm512_setzero_si512();
    a[r][1] = _mm512_setzero_si512();
  }
  for (std::size_t q = 0; q < kg; ++q) {
    const __m512i w0 = _mm512_load_si512(wp + q * wstride);
    const __m512i w1 = _mm512_load_si512(wp + q * wstride + 64);
    for (int r = 0; r < MR; ++r) {
      const __m512i av = _mm512_set1_epi32(
          static_cast<int>(load_u32(xu + r * xstride + q * 4)));
      a[r][0] = _mm512_dpbusd_epi32(a[r][0], av, w0);
      a[r][1] = _mm512_dpbusd_epi32(a[r][1], av, w1);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm512_store_si512(acc + r * kQNr, a[r][0]);
    _mm512_store_si512(acc + r * kQNr + 16, a[r][1]);
  }
}

/// MR rows x 32 cols of f32 accumulators via vdpbf16ps. `wp` is the
/// packed bf16p strip base in uint16 units ([kp][Np][2] layout);
/// `wstride` = Np*2 uint16s.
template <int MR>
inline void qtile_bf16(const std::uint32_t* xb, std::size_t xstride,
                       std::size_t kp, const std::uint16_t* wp,
                       std::size_t wstride, float* acc) {
  __m512 a[MR][2];
  for (int r = 0; r < MR; ++r) {
    a[r][0] = _mm512_setzero_ps();
    a[r][1] = _mm512_setzero_ps();
  }
  for (std::size_t p = 0; p < kp; ++p) {
    const __m512i w0 = _mm512_load_si512(wp + p * wstride);
    const __m512i w1 = _mm512_load_si512(wp + p * wstride + 32);
    for (int r = 0; r < MR; ++r) {
      const __m512i av =
          _mm512_set1_epi32(static_cast<int>(xb[r * xstride + p]));
      a[r][0] = _mm512_dpbf16_ps(a[r][0], reinterpret_cast<__m512bh>(av),
                                 reinterpret_cast<__m512bh>(w0));
      a[r][1] = _mm512_dpbf16_ps(a[r][1], reinterpret_cast<__m512bh>(av),
                                 reinterpret_cast<__m512bh>(w1));
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm512_store_ps(acc + r * kQNr, a[r][0]);
    _mm512_store_ps(acc + r * kQNr + 16, a[r][1]);
  }
}

#endif  // EVA_QKERNELS_AVX512

#ifndef EVA_QKERNELS_AVX512

/// Portable fallback: decode one kc x nr weight panel to raw f32 codes
/// (leading dimension kNr) so the register-tiled micro-kernel can run
/// unmodified on top; the int8 per-column rescale happens once in the
/// epilogue.
void decode_panel(const QuantMatrix& W, std::size_t kb, std::size_t kc,
                  std::size_t nb, std::size_t nr, float* panel) {
  const std::size_t N = W.cols;
  if (W.kind == QuantKind::kBf16) {
    for (std::size_t k = 0; k < kc; ++k) {
      const std::uint16_t* src = W.bf16.data() + (kb + k) * N + nb;
      float* dst = panel + k * kNr;
      for (std::size_t j = 0; j < nr; ++j) dst[j] = bf16_to_f32(src[j]);
    }
    return;
  }
  for (std::size_t k = 0; k < kc; ++k) {
    const std::int8_t* src = W.q8.data() + (kb + k) * N + nb;
    float* dst = panel + k * kNr;
    for (std::size_t j = 0; j < nr; ++j) dst[j] = static_cast<float>(src[j]);
  }
}

#endif  // EVA_QKERNELS_AVX512

}  // namespace

void qgemm(const float* X, const QuantMatrix& W, const float* bias, float* Y,
           std::size_t n, Epilogue ep) {
  obs::Span span("qgemm");
  const std::size_t K = W.rows;
  const std::size_t N = W.cols;
  count_flops(n, K, N);
  if (W.empty() || n == 0) return;
#ifdef EVA_QKERNELS_AVX512
  const std::size_t Np = W.padded_cols;
  const std::size_t strips = Np / kQNr;
  if (W.kind == QuantKind::kInt8) {
    const std::size_t kg = (K + 3) / 4;
    const std::size_t K4 = kg * 4;
    // thread_local: qgemm runs per decode step from the (serial) batched
    // inference loop; reusing the activation scratch across steps keeps
    // the hot path allocation-free after warmup.
    static thread_local AlignedVec<std::uint8_t> xu;
    static thread_local std::vector<float> ascale;
    xu.resize(n * K4);
    ascale.resize(n);
    for (std::size_t r = 0; r < n; ++r) {
      ascale[r] = quantize_row_u8(X + r * K, K, K4, xu.data() + r * K4);
    }
    // Snapshot the scratch as plain pointers before the parallel region:
    // thread_local names inside the lambda resolve to each pool worker's
    // *own* (empty) vectors, not this thread's filled ones.
    const std::uint8_t* xu_p = xu.data();
    const float* as_p = ascale.data();
    parallel_chunks(
        0, strips,
        [&](std::size_t s0, std::size_t s1) {
          alignas(64) std::int32_t acc[kMr * kQNr];
          for (std::size_t s = s0; s < s1; ++s) {
            const std::size_t nb = s * kQNr;
            const std::size_t nr = std::min(kQNr, N - nb);
            const std::int8_t* wp = W.q8p.data() + nb * 4;
            const float* bp = bias != nullptr ? bias + nb : nullptr;
            std::size_t m = 0;
            for (; m + kMr <= n; m += kMr) {
              qtile_i8<8>(xu_p + m * K4, K4, kg, wp, Np * 4, acc);
              for (std::size_t r = 0; r < kMr; ++r) {
                store_strip_i8(acc + r * kQNr, as_p[m + r],
                               W.scale.data() + nb, W.colsum.data() + nb, bp,
                               ep, Y + (m + r) * N + nb, nr);
              }
            }
            for (; m < n; ++m) {
              qtile_i8<1>(xu_p + m * K4, K4, kg, wp, Np * 4, acc);
              store_strip_i8(acc, as_p[m], W.scale.data() + nb,
                             W.colsum.data() + nb, bp, ep, Y + m * N + nb, nr);
            }
          }
        },
        1);
    return;
  }
  const std::size_t kp = (K + 1) / 2;
  static thread_local AlignedVec<std::uint32_t> xb;
  xb.resize(n * kp);
  for (std::size_t r = 0; r < n; ++r) {
    convert_row_bf16(X + r * K, K, kp, xb.data() + r * kp);
  }
  // Same thread_local snapshot as the int8 path above.
  const std::uint32_t* xb_p = xb.data();
  parallel_chunks(
      0, strips,
      [&](std::size_t s0, std::size_t s1) {
        alignas(64) float acc[kMr * kQNr];
        for (std::size_t s = s0; s < s1; ++s) {
          const std::size_t nb = s * kQNr;
          const std::size_t nr = std::min(kQNr, N - nb);
          const std::uint16_t* wp = W.bf16p.data() + nb * 2;
          const float* bp = bias != nullptr ? bias + nb : nullptr;
          std::size_t m = 0;
          for (; m + kMr <= n; m += kMr) {
            qtile_bf16<8>(xb_p + m * kp, kp, kp, wp, Np * 2, acc);
            for (std::size_t r = 0; r < kMr; ++r) {
              store_strip_f32(acc + r * kQNr, nullptr, bp, ep,
                              Y + (m + r) * N + nb, nr);
            }
          }
          for (; m < n; ++m) {
            qtile_bf16<1>(xb_p + m * kp, kp, kp, wp, Np * 2, acc);
            store_strip_f32(acc, nullptr, bp, ep, Y + m * N + nb, nr);
          }
        }
      },
      1);
#else   // !EVA_QKERNELS_AVX512
  parallel_chunks(
      0, N,
      [&](std::size_t n0, std::size_t n1) {
        static thread_local std::vector<float> panel;
        panel.resize(kKc * kNr);
        for (std::size_t nb = n0; nb < n1; nb += kNr) {
          const std::size_t nr = std::min(kNr, n1 - nb);
          for (std::size_t r = 0; r < n; ++r) {
            std::fill_n(Y + r * N + nb, nr, 0.0f);
          }
          for (std::size_t kb = 0; kb < K; kb += kKc) {
            const std::size_t kc = std::min(kKc, K - kb);
            decode_panel(W, kb, kc, nb, nr, panel.data());
            for (std::size_t m = 0; m < n; m += kMr) {
              const std::size_t mr = std::min(kMr, n - m);
              micro_kernel(kc, X + m * K + kb, K, 1, panel.data(), kNr,
                           Y + m * N + nb, N, mr, nr);
            }
          }
          const float* ws =
              W.kind == QuantKind::kInt8 ? W.scale.data() + nb : nullptr;
          for (std::size_t r = 0; r < n; ++r) {
            float* yrow = Y + r * N + nb;
            store_strip_f32(yrow, ws, bias != nullptr ? bias + nb : nullptr,
                            ep, yrow, nr);
          }
        }
      },
      kNr);
#endif  // EVA_QKERNELS_AVX512
}

void qgemv(const float* x, const QuantMatrix& W, const float* bias, float* y,
           Epilogue ep) {
  const std::size_t K = W.rows;
  const std::size_t N = W.cols;
  count_flops(1, K, N);
  if (W.empty()) return;
#ifdef EVA_QKERNELS_AVX512
  // Exactly the 1-row tile of qgemm, strip by strip: identical
  // activation quantization, reduction and epilogue arithmetic keep the
  // per-sequence and batched decode paths FLOAT_EQ-identical.
  const std::size_t Np = W.padded_cols;
  const std::size_t strips = Np / kQNr;
  if (W.kind == QuantKind::kInt8) {
    const std::size_t kg = (K + 3) / 4;
    const std::size_t K4 = kg * 4;
    static thread_local AlignedVec<std::uint8_t> xu;
    xu.resize(K4);
    const float ascale = quantize_row_u8(x, K, K4, xu.data());
    alignas(64) std::int32_t acc[kQNr];
    for (std::size_t s = 0; s < strips; ++s) {
      const std::size_t nb = s * kQNr;
      const std::size_t nr = std::min(kQNr, N - nb);
      qtile_i8<1>(xu.data(), K4, kg, W.q8p.data() + nb * 4, Np * 4, acc);
      store_strip_i8(acc, ascale, W.scale.data() + nb, W.colsum.data() + nb,
                     bias != nullptr ? bias + nb : nullptr, ep, y + nb, nr);
    }
    return;
  }
  const std::size_t kp = (K + 1) / 2;
  static thread_local AlignedVec<std::uint32_t> xb;
  xb.resize(kp);
  convert_row_bf16(x, K, kp, xb.data());
  alignas(64) float facc[kQNr];
  for (std::size_t s = 0; s < strips; ++s) {
    const std::size_t nb = s * kQNr;
    const std::size_t nr = std::min(kQNr, N - nb);
    qtile_bf16<1>(xb.data(), kp, kp, W.bf16p.data() + nb * 2, Np * 2, facc);
    store_strip_f32(facc, nullptr, bias != nullptr ? bias + nb : nullptr, ep,
                    y + nb, nr);
  }
#else   // !EVA_QKERNELS_AVX512
  // Portable path: strip accumulation in the same per-column K order as
  // the fallback qgemm's micro-kernel, then the shared epilogue.
  for (std::size_t nb = 0; nb < N; nb += kNr) {
    const std::size_t nr = std::min(kNr, N - nb);
    float acc[kNr] = {};
    if (W.kind == QuantKind::kBf16) {
      for (std::size_t k = 0; k < K; ++k) {
        const float av = x[k];
        const std::uint16_t* wrow = W.bf16.data() + k * N + nb;
        for (std::size_t j = 0; j < nr; ++j) {
          acc[j] += av * bf16_to_f32(wrow[j]);
        }
      }
    } else {
      for (std::size_t k = 0; k < K; ++k) {
        const float av = x[k];
        const std::int8_t* wrow = W.q8.data() + k * N + nb;
        for (std::size_t j = 0; j < nr; ++j) {
          acc[j] += av * static_cast<float>(wrow[j]);
        }
      }
    }
    const float* ws =
        W.kind == QuantKind::kInt8 ? W.scale.data() + nb : nullptr;
    store_strip_f32(acc, ws, bias != nullptr ? bias + nb : nullptr, ep,
                    y + nb, nr);
  }
#endif  // EVA_QKERNELS_AVX512
}

}  // namespace eva::tensor::cpu
