// Internal: the built-in CPU kernel family implemented in gemm.cpp,
// declared here so gemm_backend.cpp can register them as the "cpu"
// backend. Call sites use the dispatch entry points in tensor/gemm.hpp,
// never these directly.
#pragma once

#include <cstddef>

#include "tensor/quant.hpp"

namespace eva::tensor::cpu {

void gemm_nn(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N);
void gemm_nt(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N);
void gemm_tn(const float* A, const float* B, float* C, std::size_t K,
             std::size_t M, std::size_t N);
void gemv(const float* x, const float* w, const float* bias, float* y,
          std::size_t in, std::size_t out);
void qgemm(const float* X, const QuantMatrix& W, const float* bias, float* Y,
           std::size_t n, Epilogue ep);
void qgemv(const float* x, const QuantMatrix& W, const float* bias, float* y,
           Epilogue ep);

}  // namespace eva::tensor::cpu
