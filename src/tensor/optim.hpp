// Gradient-descent optimizers over parameter lists, plus global-norm
// gradient clipping. Used by LM pretraining, reward-model training, PPO
// and DPO fine-tuning.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace eva::tensor {

/// Zero the gradient buffers of every parameter.
void zero_grads(std::vector<Tensor>& params);

/// Clip gradients so the global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
double clip_grad_norm(std::vector<Tensor>& params, double max_norm);

/// Plain SGD with optional momentum.
class Sgd {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void step();
  void zero_grad() { zero_grads(params_); }
  void set_lr(float lr) { lr_ = lr; }
  [[nodiscard]] float lr() const { return lr_; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> velocity_;
  float lr_;
  float momentum_;
};

/// AdamW (decoupled weight decay), the paper-standard transformer optimizer.
class AdamW {
 public:
  struct Config {
    float lr = 3e-4f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  AdamW(std::vector<Tensor> params, Config cfg);

  void step();
  void zero_grad() { zero_grads(params_); }
  void set_lr(float lr) { cfg_.lr = lr; }
  [[nodiscard]] float lr() const { return cfg_.lr; }
  [[nodiscard]] long steps_taken() const { return t_; }

  /// Full optimizer state (step count + first/second moments), in the
  /// parameter order given at construction. Checkpointing an AdamW run
  /// without this would silently reset the moment estimates on resume.
  struct State {
    long t = 0;
    std::vector<std::vector<float>> m;
    std::vector<std::vector<float>> v;
  };
  [[nodiscard]] State export_state() const;
  /// Restore state from export_state(). Throws eva::Error when the
  /// moment buffer layout does not match this optimizer's parameters.
  void import_state(const State& st);

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  Config cfg_;
  long t_ = 0;
};

}  // namespace eva::tensor
