// Backend registry + the dispatch wrappers behind tensor/gemm.hpp.
#include "tensor/gemm_backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_cpu.hpp"

namespace eva::tensor {

namespace {

/// One registered backend: its kernel table plus the cached dispatch
/// counter (tensor.gemm_backend_dispatch.<name>), looked up once at
/// registration so the per-call cost is a single relaxed add.
struct Entry {
  GemmBackendOps ops;
  obs::Counter* dispatches = nullptr;
};

struct Registry {
  std::mutex mu;
  // Deque-like stability: entries are pointers so `active` stays valid
  // across later registrations.
  std::vector<Entry*> entries;
  std::atomic<Entry*> active{nullptr};

  Entry* find_locked(std::string_view name) {
    for (Entry* e : entries) {
      if (e->ops.name == name) return e;
    }
    return nullptr;
  }
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    GemmBackendOps cpu;
    cpu.name = "cpu";
    cpu.nn = &cpu::gemm_nn;
    cpu.nt = &cpu::gemm_nt;
    cpu.tn = &cpu::gemm_tn;
    cpu.gemv = &cpu::gemv;
    cpu.qgemm = &cpu::qgemm;
    cpu.qgemv = &cpu::qgemv;
    auto* e = new Entry{std::move(cpu),
                        &obs::counter("tensor.gemm_backend_dispatch.cpu")};
    reg->entries.push_back(e);

    Entry* active = e;
    if (const char* want = std::getenv("EVA_GEMM_BACKEND");
        want != nullptr && *want != '\0' && e->ops.name != want) {
      // Backends registered later can still be selected with
      // set_gemm_backend(); at static-init time only "cpu" exists, so an
      // env naming anything else warns and falls back rather than abort.
      std::fprintf(stderr,
                   "[eva] EVA_GEMM_BACKEND=%s is not registered; "
                   "falling back to cpu\n",
                   want);
    }
    reg->active.store(active, std::memory_order_release);
    return reg;
  }();
  return *r;
}

Entry& active() {
  Registry& reg = registry();
  return *reg.active.load(std::memory_order_acquire);
}

}  // namespace

bool register_gemm_backend(GemmBackendOps ops) {
  if (ops.name.empty() || ops.nn == nullptr || ops.nt == nullptr ||
      ops.tn == nullptr || ops.gemv == nullptr) {
    return false;
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.find_locked(ops.name) != nullptr) return false;
  obs::Counter* c =
      &obs::counter("tensor.gemm_backend_dispatch." + ops.name);
  reg.entries.push_back(new Entry{std::move(ops), c});
  // If the env asked for this backend before it existed, activate it now.
  Entry* added = reg.entries.back();
  if (const char* want = std::getenv("EVA_GEMM_BACKEND");
      want != nullptr && added->ops.name == want) {
    reg.active.store(added, std::memory_order_release);
  }
  return true;
}

bool set_gemm_backend(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  Entry* e = reg.find_locked(name);
  if (e == nullptr) return false;
  reg.active.store(e, std::memory_order_release);
  return true;
}

std::string_view gemm_backend_name() { return active().ops.name; }

std::vector<std::string> gemm_backend_names() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.entries.size());
  for (const Entry* e : reg.entries) names.push_back(e->ops.name);
  return names;
}

// ---------------------------------------------------------------------------
// Dispatch wrappers (the tensor/gemm.hpp entry points)
// ---------------------------------------------------------------------------

void gemm_nn(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N) {
  Entry& e = active();
  e.dispatches->add(1);
  e.ops.nn(A, B, C, M, K, N);
}

void gemm_nt(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N) {
  Entry& e = active();
  e.dispatches->add(1);
  e.ops.nt(A, B, C, M, K, N);
}

void gemm_tn(const float* A, const float* B, float* C, std::size_t K,
             std::size_t M, std::size_t N) {
  Entry& e = active();
  e.dispatches->add(1);
  e.ops.tn(A, B, C, K, M, N);
}

void gemv(const float* x, const float* w, const float* bias, float* y,
          std::size_t in, std::size_t out) {
  Entry& e = active();
  e.dispatches->add(1);
  e.ops.gemv(x, w, bias, y, in, out);
}

void qgemm(const float* X, const QuantMatrix& W, const float* bias, float* Y,
           std::size_t n, Epilogue ep) {
  Entry& e = active();
  e.dispatches->add(1);
  if (e.ops.qgemm != nullptr) {
    e.ops.qgemm(X, W, bias, Y, n, ep);
    return;
  }
  // Dequant fallback: a backend without quantized kernels still serves
  // quantized models through its own f32 GEMM. Slow path (materializes
  // the full f32 weight matrix) — the counter above still attributes the
  // work to this backend.
  static thread_local std::vector<float> wf;
  wf.resize(W.rows * W.cols);
  W.dequantize(wf.data());
  const std::size_t N = W.cols;
  for (std::size_t r = 0; r < n; ++r) {
    float* yrow = Y + r * N;
    if (ep == Epilogue::kNone || bias == nullptr) {
      std::fill_n(yrow, N, 0.0f);
    } else {
      std::copy_n(bias, N, yrow);
    }
  }
  e.ops.nn(X, wf.data(), Y, n, W.rows, N);
  if (ep == Epilogue::kBiasGelu) {
    for (std::size_t i = 0; i < n * N; ++i) Y[i] = gelu_approx(Y[i]);
  }
}

void qgemv(const float* x, const QuantMatrix& W, const float* bias, float* y,
           Epilogue ep) {
  Entry& e = active();
  e.dispatches->add(1);
  if (e.ops.qgemv != nullptr) {
    e.ops.qgemv(x, W, bias, y, ep);
    return;
  }
  static thread_local std::vector<float> wf;
  wf.resize(W.rows * W.cols);
  W.dequantize(wf.data());
  e.ops.gemv(x, wf.data(), ep == Epilogue::kNone ? nullptr : bias, y, W.rows,
             W.cols);
  if (ep == Epilogue::kBiasGelu) {
    for (std::size_t i = 0; i < W.cols; ++i) y[i] = gelu_approx(y[i]);
  }
}

}  // namespace eva::tensor
