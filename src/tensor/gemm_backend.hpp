// Runtime GEMM backend dispatch (DESIGN.md "Kernel backends & quantized
// inference").
//
// Every public kernel entry point in tensor/gemm.hpp routes through one
// active GemmBackendOps table, so an accelerator backend (GPU, AMX, a
// vendor BLAS) is a registration plus an env var away — no call-site
// changes anywhere in the engine. The shape mirrors the CPU/CUDA compile
// seam in SNIPPETS.md snippet 1, but resolved at runtime:
//
//   * register_gemm_backend() adds a named kernel table (the built-in
//     "cpu" table is registered on first use);
//   * the active backend resolves once from EVA_GEMM_BACKEND (unknown
//     names fall back to "cpu" with a warning) and can be switched
//     per-call-site with set_gemm_backend();
//   * each dispatched kernel call bumps the per-backend counter
//     tensor.gemm_backend_dispatch.<name>, so operators can see which
//     kernel tier actually served a workload.
//
// The table carries both the f32 training family (gemm_nn/nt/tn, gemv)
// and the quantized inference family (qgemm/qgemv with fused
// dequant+bias+activation epilogues). The quantized entries may be null:
// dispatch then falls back to dequantize-into-scratch + the backend's
// own f32 kernels, so a minimal backend still serves quantized models
// (slowly) rather than aborting.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/quant.hpp"

namespace eva::tensor {

/// Kernel table for one backend. All f32 entries are required; the
/// GEMM trio accumulates into C, gemv/qgemm/qgemv overwrite their
/// output (inference semantics).
struct GemmBackendOps {
  std::string name;

  /// C(M,N) += A(M,K) @ B(K,N).
  void (*nn)(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N) = nullptr;
  /// C(M,N) += A(M,K) @ B(N,K)^T.
  void (*nt)(const float* A, const float* B, float* C, std::size_t M,
             std::size_t K, std::size_t N) = nullptr;
  /// C(M,N) += A(K,M)^T @ B(K,N).
  void (*tn)(const float* A, const float* B, float* C, std::size_t K,
             std::size_t M, std::size_t N) = nullptr;
  /// y(out) = x(in) @ W(in,out) + bias (bias nullable).
  void (*gemv)(const float* x, const float* w, const float* bias, float* y,
               std::size_t in, std::size_t out) = nullptr;

  /// Y(n,out) = epilogue(X(n,in) @ dequant(W) [+ bias]). Overwrites Y.
  void (*qgemm)(const float* X, const QuantMatrix& W, const float* bias,
                float* Y, std::size_t n, Epilogue ep) = nullptr;
  /// One-row variant of qgemm.
  void (*qgemv)(const float* x, const QuantMatrix& W, const float* bias,
                float* y, Epilogue ep) = nullptr;
};

/// Register a backend under ops.name. Returns false (and ignores the
/// table) when the name is already taken or any required f32 entry is
/// null. Registered tables live for the process lifetime.
bool register_gemm_backend(GemmBackendOps ops);

/// Switch the active backend. Returns false (leaving the current backend
/// active) when no backend of that name is registered.
bool set_gemm_backend(std::string_view name);

/// Name of the backend dispatch currently routes to.
[[nodiscard]] std::string_view gemm_backend_name();

/// All registered backend names, registration order ("cpu" first).
[[nodiscard]] std::vector<std::string> gemm_backend_names();

}  // namespace eva::tensor
