#include "tensor/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/io.hpp"

namespace eva::tensor {

namespace {
constexpr std::uint32_t kMagic = 0x45564131;  // "EVA1"

// Sanity bounds for untrusted header fields. A garbage or truncated file
// can claim absurd ranks/dims/counts; rejecting them here turns a
// would-be multi-gigabyte allocation (or a bogus loop) into a specific
// error message.
constexpr std::uint32_t kMaxTensors = 1u << 20;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::uint32_t kMaxDim = 1u << 28;

template <class T>
bool read_pod(std::istream& f, T& out) {
  f.read(reinterpret_cast<char*>(&out), sizeof(T));
  return f.gcount() == static_cast<std::streamsize>(sizeof(T));
}

}  // namespace

void save_params(const std::vector<Tensor>& params, const std::string& path) {
  std::ostringstream buf;
  const std::uint32_t magic = kMagic;
  const auto count = static_cast<std::uint32_t>(params.size());
  buf.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  buf.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const auto rank = static_cast<std::uint32_t>(p.shape().size());
    buf.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d : p.shape()) {
      const auto dd = static_cast<std::uint32_t>(d);
      buf.write(reinterpret_cast<const char*>(&dd), sizeof(dd));
    }
    auto data = p.data();
    buf.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!atomic_write_file(path, buf.str())) {
    throw ConfigError("write failed for checkpoint: " + path);
  }
}

void load_params(std::vector<Tensor>& params, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw ConfigError("cannot open checkpoint for reading: " + path);
  std::uint32_t magic = 0;
  std::uint32_t count = 0;
  if (!read_pod(f, magic) || !read_pod(f, count)) {
    throw ConfigError("checkpoint header truncated: " + path);
  }
  if (magic != kMagic) {
    throw ConfigError("bad checkpoint magic (not an EVA1 parameter file): " +
                      path);
  }
  if (count > kMaxTensors) {
    throw ConfigError("implausible tensor count " + std::to_string(count) +
                      " in checkpoint (corrupt header?): " + path);
  }
  if (count != params.size()) {
    throw ConfigError("checkpoint parameter count mismatch (file has " +
                      std::to_string(count) + ", model expects " +
                      std::to_string(params.size()) + "): " + path);
  }
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto& p = params[pi];
    const std::string where =
        " (tensor " + std::to_string(pi) + "): " + path;
    std::uint32_t rank = 0;
    if (!read_pod(f, rank)) {
      throw ConfigError("checkpoint truncated in tensor header" + where);
    }
    if (rank > kMaxRank) {
      throw ConfigError("implausible tensor rank " + std::to_string(rank) +
                        where);
    }
    if (rank != p.shape().size()) {
      throw ConfigError("checkpoint rank mismatch" + where);
    }
    for (int d : p.shape()) {
      std::uint32_t dd = 0;
      if (!read_pod(f, dd)) {
        throw ConfigError("checkpoint truncated in tensor shape" + where);
      }
      if (dd == 0 || dd > kMaxDim) {
        throw ConfigError("implausible tensor dimension " +
                          std::to_string(dd) + where);
      }
      if (dd != static_cast<std::uint32_t>(d)) {
        throw ConfigError("checkpoint shape mismatch" + where);
      }
    }
    auto data = p.data();
    const auto want =
        static_cast<std::streamsize>(data.size() * sizeof(float));
    f.read(reinterpret_cast<char*>(data.data()), want);
    if (f.gcount() != want) {
      throw ConfigError("checkpoint payload truncated (got " +
                        std::to_string(f.gcount()) + " of " +
                        std::to_string(want) + " bytes)" + where);
    }
  }
  if (f.peek() != std::ifstream::traits_type::eof()) {
    throw ConfigError("trailing garbage after checkpoint payload: " + path);
  }
}

void copy_params(const std::vector<Tensor>& src, std::vector<Tensor>& dst) {
  EVA_REQUIRE(src.size() == dst.size(), "copy_params count mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    EVA_REQUIRE(src[i].numel() == dst[i].numel(),
                "copy_params shape mismatch");
    auto s = src[i].data();
    auto d = dst[i].data();
    std::copy(s.begin(), s.end(), d.begin());
  }
}

std::size_t count_params(const std::vector<Tensor>& params) {
  std::size_t n = 0;
  for (const auto& p : params) n += p.numel();
  return n;
}

}  // namespace eva::tensor
