#include "tensor/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace eva::tensor {

namespace {
constexpr std::uint32_t kMagic = 0x45564131;  // "EVA1"
}

void save_params(const std::vector<Tensor>& params, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw ConfigError("cannot open checkpoint for writing: " + path);
  const std::uint32_t magic = kMagic;
  const auto count = static_cast<std::uint32_t>(params.size());
  f.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const auto rank = static_cast<std::uint32_t>(p.shape().size());
    f.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d : p.shape()) {
      const auto dd = static_cast<std::uint32_t>(d);
      f.write(reinterpret_cast<const char*>(&dd), sizeof(dd));
    }
    auto data = p.data();
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!f) throw ConfigError("write failed for checkpoint: " + path);
}

void load_params(std::vector<Tensor>& params, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw ConfigError("cannot open checkpoint for reading: " + path);
  std::uint32_t magic = 0;
  std::uint32_t count = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!f || magic != kMagic) {
    throw ConfigError("bad checkpoint header: " + path);
  }
  if (count != params.size()) {
    throw ConfigError("checkpoint parameter count mismatch: " + path);
  }
  for (auto& p : params) {
    std::uint32_t rank = 0;
    f.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!f || rank != p.shape().size()) {
      throw ConfigError("checkpoint rank mismatch: " + path);
    }
    for (int d : p.shape()) {
      std::uint32_t dd = 0;
      f.read(reinterpret_cast<char*>(&dd), sizeof(dd));
      if (!f || dd != static_cast<std::uint32_t>(d)) {
        throw ConfigError("checkpoint shape mismatch: " + path);
      }
    }
    auto data = p.data();
    f.read(reinterpret_cast<char*>(data.data()),
           static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!f) throw ConfigError("checkpoint payload truncated: " + path);
  }
}

void copy_params(const std::vector<Tensor>& src, std::vector<Tensor>& dst) {
  EVA_REQUIRE(src.size() == dst.size(), "copy_params count mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    EVA_REQUIRE(src[i].numel() == dst[i].numel(),
                "copy_params shape mismatch");
    auto s = src[i].data();
    auto d = dst[i].data();
    std::copy(s.begin(), s.end(), d.begin());
  }
}

std::size_t count_params(const std::vector<Tensor>& params) {
  std::size_t n = 0;
  for (const auto& p : params) n += p.numel();
  return n;
}

}  // namespace eva::tensor
