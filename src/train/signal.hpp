// Graceful SIGINT/SIGTERM shutdown for long training runs.
//
// The handler only sets an atomic flag; trainers poll stop_requested()
// once per step, finish the step in flight, write a final checkpoint,
// flush the obs sinks, and return with `interrupted = true` — so a
// `kill` (or Ctrl-C) costs at most one step of work instead of the run.
//
// Tests drive the same path with request_stop()/clear_stop(), which is
// also how a supervisor embedding the library can stop a trainer.
#pragma once

namespace eva::train {

/// Install SIGINT + SIGTERM handlers that request a graceful stop.
/// Idempotent; the previous handlers are replaced.
void install_signal_handlers();

/// True once a stop has been requested (signal or request_stop()).
[[nodiscard]] bool stop_requested() noexcept;

/// Programmatic stop request — what the signal handler calls.
void request_stop() noexcept;

/// Re-arm after a handled stop (tests; supervisors running several
/// trainers in sequence).
void clear_stop() noexcept;

}  // namespace eva::train
