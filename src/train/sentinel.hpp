// Divergence sentinel: per-step finite-ness and loss-spike watchdog for
// the training loops.
//
// A single NaN gradient (bad batch, numerical blow-up, injected fault)
// poisons AdamW's moment buffers permanently — every later step then
// multiplies NaNs into the weights and the run is unrecoverable. The
// sentinel sits between backward() and optimizer.step():
//
//   * non-finite loss or gradient norm, or a loss above EMA x factor
//     (after warmup), trips the sentinel -> the trainer SKIPS the update
//     and backs off its LR scale;
//   * `rollback_after` consecutive trips escalate to a ROLLBACK -> the
//     trainer restores the last-good snapshot (RollbackSlot / on-disk
//     checkpoint) and continues from there;
//   * healthy steps decay the trip streak and let the LR scale recover.
//
// Every action is counted (`train.sentinel.trips`, `.skipped_batches`,
// `.rollbacks`) and logged with the offending values.
#pragma once

namespace eva::train {

struct SentinelConfig {
  bool enabled = true;
  double spike_factor = 10.0;  // trip when loss > EMA * spike_factor
  double ema_alpha = 0.1;      // loss EMA smoothing
  int warmup_steps = 10;       // spike detection off for the first steps
  int rollback_after = 3;      // consecutive trips before rollback
  float lr_backoff = 0.5f;     // LR scale multiplier per trip
  float min_lr_scale = 1e-3f;
  float lr_recover = 1.05f;    // healthy-step LR scale recovery factor
};

enum class SentinelAction {
  kProceed,   // healthy step: apply the update
  kSkip,      // tripped: drop this batch, back off LR
  kRollback,  // tripped rollback_after times in a row: restore last-good
};

class DivergenceSentinel {
 public:
  explicit DivergenceSentinel(SentinelConfig cfg = {}) : cfg_(cfg) {}

  /// Judge one step from its loss and pre-clip gradient norm. Call
  /// before the optimizer step; on kSkip/kRollback do not apply it.
  SentinelAction observe(double loss, double grad_norm);

  /// Tell the sentinel a rollback was performed (clears the trip streak
  /// and the EMA so the restored region re-warms).
  void notify_rollback();

  /// Multiplicative LR backoff factor in (0, 1]; trainers apply it on
  /// top of their schedule.
  [[nodiscard]] float lr_scale() const { return lr_scale_; }
  [[nodiscard]] int consecutive_trips() const { return trips_; }

 private:
  SentinelConfig cfg_;
  double ema_ = 0.0;
  long healthy_steps_ = 0;
  int trips_ = 0;
  float lr_scale_ = 1.0f;
};

}  // namespace eva::train
