#include "train/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace eva::train {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x45564132;  // "EVA2"
constexpr std::uint32_t kVersion = 1;

// Section tags.
constexpr std::uint32_t kSecMeta = 1;    // fingerprint + step
constexpr std::uint32_t kSecParams = 2;  // tensor shapes + payloads
constexpr std::uint32_t kSecOpt = 3;     // AdamW t + moments
constexpr std::uint32_t kSecRng = 4;     // xoshiro state + BM cache

constexpr std::uint32_t kMaxSections = 16;
constexpr std::uint64_t kMaxSectionBytes = 1ull << 34;  // 16 GiB
constexpr std::uint32_t kMaxTensors = 1u << 20;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::uint32_t kMaxDim = 1u << 28;

template <class T>
void put(std::string& out, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

void put_bytes(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

/// Bounds-checked reader over a loaded byte buffer.
class Reader {
 public:
  Reader(const char* p, std::size_t n) : p_(p), n_(n) {}

  template <class T>
  T get(const char* what) {
    T v{};
    take(&v, sizeof(T), what);
    return v;
  }

  void take(void* dst, std::size_t n, const char* what) {
    if (pos_ + n > n_) {
      throw ConfigError(std::string("checkpoint truncated reading ") + what);
    }
    std::memcpy(dst, p_ + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return n_ - pos_; }

 private:
  const char* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

void append_section(std::string& out, std::uint32_t tag,
                    const std::string& payload) {
  put(out, tag);
  put(out, static_cast<std::uint64_t>(payload.size()));
  out += payload;
  put(out, crc32(payload.data(), payload.size()));
}

std::string snapshot_name(long step) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt_%010ld.eva2", step);
  return buf;
}

/// Parse the step out of "ckpt_<step>.eva2"; -1 for anything else.
long parse_step(const std::string& name) {
  if (name.size() < 11 || name.rfind("ckpt_", 0) != 0 ||
      name.substr(name.size() - 5) != ".eva2") {
    return -1;
  }
  long step = 0;
  for (std::size_t i = 5; i < name.size() - 5; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    step = step * 10 + (name[i] - '0');
  }
  return step;
}

std::string serialize_state(const TrainState& state,
                            std::uint64_t fingerprint) {
  std::string out;
  std::uint32_t sections = 2;  // meta + params always present
  sections += state.opt != nullptr;
  sections += state.rng != nullptr;
  put(out, kMagic);
  put(out, kVersion);
  put(out, sections);

  {
    std::string meta;
    put(meta, fingerprint);
    put(meta, static_cast<std::int64_t>(state.step));
    append_section(out, kSecMeta, meta);
  }
  {
    std::string sec;
    put(sec, static_cast<std::uint32_t>(state.params.size()));
    for (const auto& p : state.params) {
      put(sec, static_cast<std::uint32_t>(p.shape().size()));
      for (int d : p.shape()) put(sec, static_cast<std::uint32_t>(d));
      auto data = p.data();
      put_bytes(sec, data.data(), data.size() * sizeof(float));
    }
    append_section(out, kSecParams, sec);
  }
  if (state.opt) {
    const auto st = state.opt->export_state();
    std::string sec;
    put(sec, static_cast<std::int64_t>(st.t));
    put(sec, static_cast<std::uint32_t>(st.m.size()));
    for (std::size_t i = 0; i < st.m.size(); ++i) {
      put(sec, static_cast<std::uint64_t>(st.m[i].size()));
      put_bytes(sec, st.m[i].data(), st.m[i].size() * sizeof(float));
      put_bytes(sec, st.v[i].data(), st.v[i].size() * sizeof(float));
    }
    append_section(out, kSecOpt, sec);
  }
  if (state.rng) {
    const auto st = state.rng->save_state();
    std::string sec;
    for (std::uint64_t s : st.s) put(sec, s);
    put(sec, st.cached);
    put(sec, static_cast<std::uint8_t>(st.has_cached));
    append_section(out, kSecRng, sec);
  }
  return out;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointOptions opts)
    : opts_(std::move(opts)) {
  EVA_REQUIRE(!opts_.dir.empty(), "CheckpointManager needs a directory");
  EVA_REQUIRE(opts_.keep_last >= 1, "keep_last must be >= 1");
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  if (ec) {
    throw ConfigError("cannot create checkpoint directory " + opts_.dir +
                      ": " + ec.message());
  }
}

void CheckpointManager::save(const TrainState& state) {
  static obs::Counter& saves = obs::counter("train.ckpt.saves");
  static obs::Counter& failures = obs::counter("train.ckpt.write_failures");

  std::string bytes = serialize_state(state, opts_.config_fingerprint);
  if (fault::enabled()) {
    if (fault::should_fire("ckpt_write")) {
      failures.add();
      throw ConfigError("injected checkpoint write failure");
    }
    if (fault::should_fire("ckpt_bitflip") && !bytes.empty()) {
      // Deterministic single-bit corruption in the middle of the
      // payload; the per-section CRC must catch it at load time.
      bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    }
  }

  const std::string name = snapshot_name(state.step);
  const std::string path = opts_.dir + "/" + name;
  if (!atomic_write_file(path, bytes)) {
    failures.add();
    throw ConfigError("checkpoint write failed: " + path);
  }
  if (!atomic_write_file(opts_.dir + "/latest", name + "\n")) {
    failures.add();
    throw ConfigError("checkpoint manifest write failed: " + opts_.dir +
                      "/latest");
  }
  saves.add();
  obs::log_info("train.ckpt.saved",
                {{"path", path}, {"step", static_cast<std::int64_t>(state.step)}});
  prune();
}

long CheckpointManager::load_file(const std::string& path,
                                  TrainState& state) const {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw ConfigError("cannot open checkpoint: " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string bytes = ss.str();
  Reader r(bytes.data(), bytes.size());

  if (r.get<std::uint32_t>("magic") != kMagic) {
    throw ConfigError("bad checkpoint magic (not an EVA2 snapshot): " + path);
  }
  const auto version = r.get<std::uint32_t>("version");
  if (version != kVersion) {
    throw ConfigError("unsupported EVA2 version " + std::to_string(version) +
                      ": " + path);
  }
  const auto sections = r.get<std::uint32_t>("section count");
  if (sections > kMaxSections) {
    throw ConfigError("implausible section count in checkpoint: " + path);
  }

  bool saw_meta = false, saw_params = false;
  long step = 0;
  for (std::uint32_t s = 0; s < sections; ++s) {
    const auto tag = r.get<std::uint32_t>("section tag");
    const auto size = r.get<std::uint64_t>("section size");
    if (size > kMaxSectionBytes || size > r.remaining()) {
      throw ConfigError("checkpoint section overruns file: " + path);
    }
    std::string payload(size, '\0');
    r.take(payload.data(), size, "section payload");
    const auto want_crc = r.get<std::uint32_t>("section crc");
    if (crc32(payload.data(), payload.size()) != want_crc) {
      throw ConfigError("checkpoint section checksum mismatch (tag " +
                        std::to_string(tag) + "): " + path);
    }
    Reader sec(payload.data(), payload.size());
    switch (tag) {
      case kSecMeta: {
        const auto fp = sec.get<std::uint64_t>("fingerprint");
        if (opts_.config_fingerprint != 0 && fp != opts_.config_fingerprint) {
          throw ConfigError("checkpoint config fingerprint mismatch: " + path);
        }
        step = static_cast<long>(sec.get<std::int64_t>("step"));
        if (step < 0) throw ConfigError("negative step in checkpoint: " + path);
        saw_meta = true;
        break;
      }
      case kSecParams: {
        const auto count = sec.get<std::uint32_t>("tensor count");
        if (count > kMaxTensors) {
          throw ConfigError("implausible tensor count in checkpoint: " + path);
        }
        if (count != state.params.size()) {
          throw ConfigError("checkpoint parameter count mismatch (file has " +
                            std::to_string(count) + ", trainer expects " +
                            std::to_string(state.params.size()) + "): " + path);
        }
        for (auto& p : state.params) {
          const auto rank = sec.get<std::uint32_t>("tensor rank");
          if (rank > kMaxRank || rank != p.shape().size()) {
            throw ConfigError("checkpoint tensor rank mismatch: " + path);
          }
          for (int d : p.shape()) {
            const auto dd = sec.get<std::uint32_t>("tensor dim");
            if (dd == 0 || dd > kMaxDim ||
                dd != static_cast<std::uint32_t>(d)) {
              throw ConfigError("checkpoint tensor shape mismatch: " + path);
            }
          }
          auto data = p.data();
          sec.take(data.data(), data.size() * sizeof(float),
                   "tensor payload");
        }
        saw_params = true;
        break;
      }
      case kSecOpt: {
        if (!state.opt) break;  // trainer does not want optimizer state
        tensor::AdamW::State st;
        st.t = static_cast<long>(sec.get<std::int64_t>("optimizer step"));
        const auto count = sec.get<std::uint32_t>("moment tensor count");
        if (count > kMaxTensors) {
          throw ConfigError("implausible moment count in checkpoint: " + path);
        }
        st.m.resize(count);
        st.v.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto n = sec.get<std::uint64_t>("moment size");
          if (n > kMaxSectionBytes / sizeof(float)) {
            throw ConfigError("implausible moment size in checkpoint: " + path);
          }
          st.m[i].resize(n);
          st.v[i].resize(n);
          sec.take(st.m[i].data(), n * sizeof(float), "first moment");
          sec.take(st.v[i].data(), n * sizeof(float), "second moment");
        }
        state.opt->import_state(st);  // throws on layout mismatch
        break;
      }
      case kSecRng: {
        if (!state.rng) break;
        Rng::State st;
        for (auto& word : st.s) word = sec.get<std::uint64_t>("rng state");
        st.cached = sec.get<double>("rng cached normal");
        st.has_cached = sec.get<std::uint8_t>("rng cache flag") != 0;
        state.rng->restore_state(st);
        break;
      }
      default:
        // Unknown section: forward-compatible skip (already CRC-checked).
        break;
    }
  }
  if (!saw_meta || !saw_params) {
    throw ConfigError("checkpoint missing required sections: " + path);
  }
  state.step = step;
  return step;
}

std::optional<long> CheckpointManager::load_latest(TrainState& state) const {
  static obs::Counter& fallbacks = obs::counter("train.ckpt.fallbacks");
  static obs::Counter& corrupt = obs::counter("train.ckpt.corrupt");

  // Candidate order: manifest target first, then every retained snapshot
  // newest-first (dedup'd).
  std::vector<std::string> candidates;
  {
    std::ifstream mf(opts_.dir + "/latest");
    std::string name;
    if (mf && std::getline(mf, name) && parse_step(name) >= 0) {
      candidates.push_back(opts_.dir + "/" + name);
    }
  }
  for (const auto& p : list_snapshots()) {
    if (std::find(candidates.begin(), candidates.end(), p) ==
        candidates.end()) {
      candidates.push_back(p);
    }
  }

  bool fell_back = false;
  for (const auto& path : candidates) {
    try {
      const long step = load_file(path, state);
      if (fell_back) fallbacks.add();
      obs::log_info("train.ckpt.restored",
                    {{"path", path},
                     {"step", static_cast<std::int64_t>(step)},
                     {"fallback", fell_back ? 1 : 0}});
      return step;
    } catch (const Error& e) {
      corrupt.add();
      obs::log_warn("train.ckpt.invalid",
                    {{"path", path}, {"error", e.what()}});
      fell_back = true;
    }
  }
  return std::nullopt;
}

std::vector<std::string> CheckpointManager::list_snapshots() const {
  std::vector<std::pair<long, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opts_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    const long step = parse_step(name);
    if (step >= 0) found.emplace_back(step, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [step, path] : found) out.push_back(std::move(path));
  return out;
}

void CheckpointManager::prune() const {
  const auto snaps = list_snapshots();
  for (std::size_t i = static_cast<std::size_t>(opts_.keep_last);
       i < snaps.size(); ++i) {
    std::error_code ec;
    fs::remove(snaps[i], ec);
  }
}

void RollbackSlot::capture(const TrainState& state,
                           std::size_t progress_size) {
  params_.clear();
  params_.reserve(state.params.size());
  for (const auto& p : state.params) {
    auto d = p.data();
    params_.emplace_back(d.begin(), d.end());
  }
  opt_ = state.opt ? std::optional(state.opt->export_state()) : std::nullopt;
  rng_ = state.rng ? std::optional(state.rng->save_state()) : std::nullopt;
  step_ = state.step;
  progress_size_ = progress_size;
  armed_ = true;
}

long RollbackSlot::restore(TrainState& state) const {
  EVA_REQUIRE(armed_, "RollbackSlot::restore before capture");
  EVA_REQUIRE(state.params.size() == params_.size(),
              "rollback parameter layout mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto d = state.params[i].data();
    EVA_REQUIRE(d.size() == params_[i].size(),
                "rollback parameter size mismatch");
    std::copy(params_[i].begin(), params_[i].end(), d.begin());
  }
  if (state.opt && opt_) state.opt->import_state(*opt_);
  if (state.rng && rng_) state.rng->restore_state(*rng_);
  state.step = step_;
  return step_;
}

}  // namespace eva::train
