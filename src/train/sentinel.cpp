#include "train/sentinel.hpp"

#include <algorithm>
#include <cmath>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace eva::train {

SentinelAction DivergenceSentinel::observe(double loss, double grad_norm) {
  if (!cfg_.enabled) return SentinelAction::kProceed;
  static obs::Counter& trips_c = obs::counter("train.sentinel.trips");
  static obs::Counter& skips_c = obs::counter("train.sentinel.skipped_batches");
  static obs::Counter& rollbacks_c = obs::counter("train.sentinel.rollbacks");

  const bool finite = std::isfinite(loss) && std::isfinite(grad_norm);
  const bool spiking = finite && healthy_steps_ >= cfg_.warmup_steps &&
                       ema_ > 0.0 && loss > ema_ * cfg_.spike_factor;
  if (finite && !spiking) {
    ema_ = healthy_steps_ == 0 ? loss
                               : (1.0 - cfg_.ema_alpha) * ema_ +
                                     cfg_.ema_alpha * loss;
    ++healthy_steps_;
    trips_ = 0;
    lr_scale_ = std::min(1.0f, lr_scale_ * cfg_.lr_recover);
    return SentinelAction::kProceed;
  }

  ++trips_;
  trips_c.add();
  skips_c.add();
  lr_scale_ = std::max(cfg_.min_lr_scale, lr_scale_ * cfg_.lr_backoff);
  obs::gauge("train.sentinel.lr_scale").set(lr_scale_);
  const char* reason = !finite ? "non_finite" : "loss_spike";
  obs::log_warn("train.sentinel.trip", {{"reason", reason},
                                        {"loss", loss},
                                        {"grad_norm", grad_norm},
                                        {"ema", ema_},
                                        {"consecutive", trips_},
                                        {"lr_scale", lr_scale_}});
  if (trips_ >= cfg_.rollback_after) {
    rollbacks_c.add();
    obs::log_warn("train.sentinel.rollback", {{"consecutive", trips_}});
    return SentinelAction::kRollback;
  }
  return SentinelAction::kSkip;
}

void DivergenceSentinel::notify_rollback() {
  trips_ = 0;
  ema_ = 0.0;
  healthy_steps_ = 0;
}

}  // namespace eva::train
