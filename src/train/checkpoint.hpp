// Crash-safe training checkpoints: the versioned EVA2 snapshot format and
// the CheckpointManager that writes / restores / retains them.
//
// A snapshot carries everything a trainer needs to continue bit-for-bit:
// model parameters, AdamW optimizer moments + step count, RNG state, the
// trainer step counter, and a config fingerprint that rejects resumes
// against a different model/run configuration.
//
// On-disk format (little-endian, see checkpoint.cpp):
//
//   u32 magic "EVA2" | u32 version | u32 section_count
//   per section: u32 tag | u64 payload_bytes | payload | u32 crc32(payload)
//
// Every write goes through the temp-file + fsync + atomic-rename helper
// (util/io), then a `latest` manifest is updated the same way, and
// snapshots beyond `keep_last` are pruned. Loading walks from the
// manifest backwards through the retained files and returns the newest
// snapshot whose checksums, shapes and fingerprint all validate — so a
// torn or bit-flipped latest snapshot costs one checkpoint interval, not
// the run. Fault sites: `ckpt_write` (injected write failure) and
// `ckpt_bitflip` (corrupt one byte of the serialized snapshot).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tensor/optim.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace eva::train {

/// FNV-1a accumulator for config fingerprints. Trainers fold in every
/// semantically relevant config field; a resumed run with a different
/// fingerprint is rejected instead of silently diverging.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFFu;
      h_ *= 0x100000001B3ULL;
    }
    return *this;
  }
  Fingerprint& mix(long v) { return mix(static_cast<std::uint64_t>(v)); }
  Fingerprint& mix(int v) { return mix(static_cast<std::uint64_t>(v)); }
  Fingerprint& mix(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return mix(bits);
  }
  Fingerprint& mix(float v) { return mix(static_cast<double>(v)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

/// Everything one snapshot covers. `params` are aliases of the live
/// training tensors (cheap shared handles); `opt` and `rng` are optional
/// — sections are only written/required for the pieces supplied.
struct TrainState {
  std::vector<tensor::Tensor> params;
  tensor::AdamW* opt = nullptr;
  Rng* rng = nullptr;
  long step = 0;  // completed steps (resume continues at `step`)
};

struct CheckpointOptions {
  std::string dir;
  int keep_last = 3;
  std::uint64_t config_fingerprint = 0;
};

class CheckpointManager {
 public:
  /// Creates `opts.dir` (recursively) if needed.
  explicit CheckpointManager(CheckpointOptions opts);

  /// Serialize `state` to ckpt_<step>.eva2 (atomic), update the `latest`
  /// manifest, and prune beyond keep_last. Throws eva::ConfigError on
  /// I/O failure — callers treat that as non-fatal and keep training.
  void save(const TrainState& state);

  /// Restore the newest snapshot that validates end-to-end, falling
  /// back across retained files when the latest is corrupt (counted in
  /// `train.ckpt.fallbacks`). Returns the restored step count, or
  /// nullopt when no usable snapshot exists.
  std::optional<long> load_latest(TrainState& state) const;

  /// Restore one specific snapshot file. Throws eva::ConfigError when it
  /// fails validation (bad magic/CRC/fingerprint/shape mismatch).
  long load_file(const std::string& path, TrainState& state) const;

  /// Retained snapshot paths, newest step first.
  [[nodiscard]] std::vector<std::string> list_snapshots() const;
  [[nodiscard]] const std::string& dir() const { return opts_.dir; }

 private:
  void prune() const;

  CheckpointOptions opts_;
};

/// Deep in-memory copy of a TrainState, for divergence-sentinel rollback
/// without a round trip through disk. capture() snapshots the live
/// state; restore() writes it back into the same tensors/optimizer/RNG.
class RollbackSlot {
 public:
  void capture(const TrainState& state, std::size_t progress_size = 0);
  /// Restore into `state` (same layout as captured). Returns the step
  /// the snapshot was taken at.
  long restore(TrainState& state) const;
  [[nodiscard]] bool armed() const { return armed_; }
  /// Size of the trainer's progress vector at capture time, so rollback
  /// can truncate per-step histories consistently.
  [[nodiscard]] std::size_t progress_size() const { return progress_size_; }

 private:
  bool armed_ = false;
  std::vector<std::vector<float>> params_;
  std::optional<tensor::AdamW::State> opt_;
  std::optional<Rng::State> rng_;
  long step_ = 0;
  std::size_t progress_size_ = 0;
};

}  // namespace eva::train
