#include "train/signal.hpp"

#include <csignal>

#include <atomic>

namespace eva::train {

namespace {

std::atomic<bool> g_stop{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler needs a lock-free flag");

extern "C" void eva_stop_handler(int) { g_stop.store(true); }

}  // namespace

void install_signal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = eva_stop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking calls promptly
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool stop_requested() noexcept {
  return g_stop.load(std::memory_order_relaxed);
}

void request_stop() noexcept { g_stop.store(true); }

void clear_stop() noexcept { g_stop.store(false); }

}  // namespace eva::train
