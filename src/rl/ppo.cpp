#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "tensor/optim.hpp"
#include "train/checkpoint.hpp"
#include "train/signal.hpp"
#include "util/fault.hpp"

namespace eva::rl {

using namespace eva::tensor;

namespace {

nn::SampleOptions rollout_options(const PpoConfig& cfg) {
  nn::SampleOptions opts;
  opts.temperature = cfg.temperature;
  opts.max_len = cfg.max_len;
  opts.batch_width = cfg.batch_width;
  return opts;
}

}  // namespace

PpoTrainer::PpoTrainer(nn::TransformerLM& policy, const nn::Tokenizer& tok,
                       const RewardModel& reward_model, PpoConfig cfg,
                       Rng& rng)
    : policy_(&policy),
      ref_(policy.config(), rng),
      tok_(&tok),
      rm_(&reward_model),
      cfg_(cfg),
      rng_(cfg.seed),
      decoder_(policy, tok, std::max(1, cfg.batch_width),
               rollout_options(cfg)) {
  ref_.load_from(policy);  // frozen snapshot: pi_theta_ref
  value_w_ = Tensor::randn({policy.config().d_model, 1}, rng, 0.02f, true);
  value_b_ = Tensor::zeros({1}, true);
}

void PpoTrainer::collect_rollouts(std::vector<Rollout>& out) {
  static obs::Counter& rollouts_c = obs::counter("ppo.rollouts");
  static obs::Counter& rollouts_valid_c = obs::counter("ppo.rollouts_valid");
  obs::Span span("ppo.collect_rollouts");

  out.clear();
  // One batched forward per decode step across all D rollouts (the
  // continuous-batching engine); the decoder's KV slab is reused across
  // epochs.
  const auto samples = decoder_.decode(rng_, cfg_.rollouts);

  // Validity here = "decodes to a netlist at all"; the reward model grades
  // everything beyond that.
  int valid = 0;
  for (const auto& s : samples) {
    if (nn::ids_to_netlist(*tok_, s.ids).has_value()) ++valid;
  }
  rollouts_c.add(static_cast<std::int64_t>(samples.size()));
  rollouts_valid_c.add(valid);
  if (!samples.empty()) {
    obs::gauge("ppo.rollout_validity_rate")
        .set(static_cast<double>(valid) / static_cast<double>(samples.size()));
  }

  // Surrogate pre-filter (DESIGN.md §15): score the whole batch once,
  // keep the true reward-model pass (Mini-SPICE inside) for the top
  // surrogate_keep fraction only. The rest take the surrogate score
  // itself as the sequence reward — dense enough to learn from, three
  // orders of magnitude cheaper than an AC sweep.
  std::vector<float> sur_scores;
  std::vector<char> spice_reward(samples.size(), 1);
  if (cfg_.surrogate && !samples.empty()) {
    static obs::Counter& sur_scored_c = obs::counter("ppo.surrogate.scored");
    static obs::Counter& sur_spice_c =
        obs::counter("ppo.surrogate.spice_rewards");
    static obs::Counter& sur_skip_c =
        obs::counter("ppo.surrogate.skipped_spice");
    std::vector<const std::vector<int>*> ptrs;
    ptrs.reserve(samples.size());
    for (const auto& s : samples) ptrs.push_back(&s.ids);
    sur_scores = cfg_.surrogate->score_batch(ptrs);
    sur_scored_c.add(static_cast<std::int64_t>(samples.size()));

    std::vector<std::size_t> order(samples.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const bool fa = std::isfinite(sur_scores[a]);
                const bool fb = std::isfinite(sur_scores[b]);
                if (fa != fb) return fa;
                if (fa && sur_scores[a] != sur_scores[b]) {
                  return sur_scores[a] > sur_scores[b];
                }
                return a < b;
              });
    const double keep = cfg_.surrogate_keep;
    std::size_t n_keep = samples.size();
    if (keep <= 0.0) {
      n_keep = 0;
    } else if (keep < 1.0) {
      n_keep = std::clamp<std::size_t>(
          static_cast<std::size_t>(
              std::ceil(keep * static_cast<double>(samples.size()))),
          1, samples.size());
    }
    std::fill(spice_reward.begin(), spice_reward.end(), char{0});
    for (std::size_t k = 0; k < n_keep; ++k) spice_reward[order[k]] = 1;
    sur_spice_c.add(static_cast<std::int64_t>(n_keep));
    sur_skip_c.add(static_cast<std::int64_t>(samples.size() - n_keep));
  }

  for (std::size_t si = 0; si < samples.size(); ++si) {
    const auto& s = samples[si];
    Rollout r;
    r.tokens = s.ids;
    if (s.hit_eos) r.tokens.push_back(nn::Tokenizer::kEos);
    r.n_actions = static_cast<int>(r.tokens.size()) - 1;
    if (r.n_actions < 1) continue;
    if (spice_reward[si]) {
      r.seq_reward = rm_->reward(s.ids);
    } else {
      // Filtered rollout: surrogate score stands in for the reward model.
      // Undecodable sequences keep the reward model's -1 verdict (the
      // rule-based check is free; only SPICE is expensive).
      const float sc = sur_scores[si];
      r.seq_reward = nn::ids_to_netlist(*tok_, s.ids).has_value()
                         ? (std::isfinite(sc) ? static_cast<double>(sc) : 0.0)
                         : -1.0;
    }
    if (cfg_.surrogate && cfg_.surrogate_dense_beta != 0.0f) {
      // Potential-based shaping from prefix scores: phi(t) is the
      // surrogate score of the first t+1 tokens, so the per-action term
      // beta * (gamma * phi(t+1) - phi(t)) telescopes under gamma = 1
      // and cannot change the optimal policy.
      const auto phi = cfg_.surrogate->score_prefixes(r.tokens);
      r.dense.resize(static_cast<std::size_t>(r.n_actions), 0.0f);
      for (int t = 0; t < r.n_actions; ++t) {
        const float p0 = phi[static_cast<std::size_t>(t)];
        const float p1 = phi[static_cast<std::size_t>(t) + 1];
        if (std::isfinite(p0) && std::isfinite(p1)) {
          r.dense[static_cast<std::size_t>(t)] =
              cfg_.surrogate_dense_beta * (cfg_.gamma * p1 - p0);
        }
      }
    }

    // NOTE: s.logprobs (one entry per action, EOS included — the
    // SampleResult invariant) are probabilities under the *sampling*
    // distribution (temperature / top-k / legality mask), so they cannot
    // serve as pi_old in the PPO ratio. The teacher-forced passes below
    // recompute the unmasked model log-probs for the same action
    // sequence; s.logprobs only pins down which actions were taken.
    // Teacher-forced passes for old log-probs, reference log-probs and
    // value estimates. (Values come from the policy's value head.)
    const int K = r.n_actions;
    const std::vector<int> inputs(r.tokens.begin(), r.tokens.end() - 1);
    const std::vector<int> actions(r.tokens.begin() + 1, r.tokens.end());

    Tensor hidden = policy_->forward_hidden(inputs, 1, K, false);
    Tensor logits = policy_->lm_logits(hidden);
    Tensor lsm = log_softmax_lastdim(logits);
    Tensor logp = gather_lastdim(lsm, actions);
    Tensor values = reshape(add(matmul(hidden, value_w_), value_b_), {K});

    Tensor ref_logits = ref_.forward(inputs, 1, K, false);
    Tensor ref_lsm = log_softmax_lastdim(ref_logits);
    Tensor ref_logp = gather_lastdim(ref_lsm, actions);

    r.old_logp.assign(logp.data().begin(), logp.data().end());
    r.ref_logp.assign(ref_logp.data().begin(), ref_logp.data().end());
    r.values.assign(values.data().begin(), values.data().end());
    compute_gae(r);
    out.push_back(std::move(r));
  }
}

void PpoTrainer::compute_gae(Rollout& r) const {
  const int K = r.n_actions;
  // Per-token reward (Eq. 2): KL penalty everywhere, sequence reward from
  // the reward model on the final action.
  std::vector<float> rew(static_cast<std::size_t>(K));
  for (int t = 0; t < K; ++t) {
    rew[static_cast<std::size_t>(t)] =
        -cfg_.kl_beta * (r.old_logp[static_cast<std::size_t>(t)] -
                         r.ref_logp[static_cast<std::size_t>(t)]);
  }
  rew[static_cast<std::size_t>(K - 1)] += static_cast<float>(r.seq_reward);
  // Dense surrogate shaping (potential-based; empty unless a surrogate
  // is configured with a non-zero dense beta).
  for (std::size_t t = 0; t < r.dense.size(); ++t) rew[t] += r.dense[t];

  r.advantages.assign(static_cast<std::size_t>(K), 0.0f);
  r.returns.assign(static_cast<std::size_t>(K), 0.0f);
  float next_adv = 0.0f;
  for (int t = K - 1; t >= 0; --t) {
    const float v_next =
        (t + 1 < K) ? r.values[static_cast<std::size_t>(t + 1)] : 0.0f;
    const float delta = rew[static_cast<std::size_t>(t)] +
                        cfg_.gamma * v_next -
                        r.values[static_cast<std::size_t>(t)];
    next_adv = delta + cfg_.gamma * cfg_.lam * next_adv;
    r.advantages[static_cast<std::size_t>(t)] = next_adv;
    r.returns[static_cast<std::size_t>(t)] =
        next_adv + r.values[static_cast<std::size_t>(t)];
  }
}

PpoStats PpoTrainer::train(const std::function<void(int, double)>& on_epoch) {
  auto params = policy_->parameters();
  params.push_back(value_w_);
  params.push_back(value_b_);
  AdamW opt(params, {.lr = cfg_.lr});

  // Snapshots also carry the frozen reference model: on resume the policy
  // has already moved, so pi_theta_ref cannot be re-derived from it.
  train::TrainState ts;
  ts.params = params;
  for (const auto& p : ref_.parameters()) ts.params.push_back(p);
  ts.opt = &opt;
  ts.rng = &rng_;

  std::unique_ptr<train::CheckpointManager> ckpt;
  if (!cfg_.checkpoint_dir.empty()) {
    const auto& mc = policy_->config();
    train::Fingerprint fp;
    fp.mix(mc.vocab).mix(mc.d_model).mix(mc.n_layers).mix(mc.n_heads)
        .mix(mc.d_ff).mix(mc.max_seq);
    fp.mix(cfg_.epochs).mix(cfg_.rollouts).mix(cfg_.ppo_epochs)
        .mix(cfg_.minibatch).mix(cfg_.clip_eps).mix(cfg_.gamma).mix(cfg_.lam)
        .mix(cfg_.vc).mix(cfg_.kl_beta).mix(cfg_.lr).mix(cfg_.seed);
    ckpt = std::make_unique<train::CheckpointManager>(train::CheckpointOptions{
        cfg_.checkpoint_dir, cfg_.keep_checkpoints, fp.value()});
  }

  PpoStats stats;
  if (ckpt && cfg_.resume) {
    if (auto restored = ckpt->load_latest(ts)) {
      stats.start_epoch = static_cast<int>(*restored);
    }
  }

  train::DivergenceSentinel sentinel(cfg_.sentinel);
  train::RollbackSlot last_good;
  int rollbacks_left = 5;  // give up instead of thrashing forever
  struct Progress {
    std::size_t mr = 0, pl = 0, vl = 0, tl = 0;
  } mark;
  auto capture = [&](long epochs_done) {
    ts.step = epochs_done;
    mark = {stats.mean_reward.size(), stats.policy_loss.size(),
            stats.value_loss.size(), stats.total_loss.size()};
    last_good.capture(ts, stats.total_loss.size());
  };
  capture(stats.start_epoch);

  std::vector<Rollout> rollouts;
  for (int epoch = stats.start_epoch; epoch < cfg_.epochs; ++epoch) {
    obs::Span epoch_span("ppo.epoch");
    collect_rollouts(rollouts);
    if (rollouts.empty()) continue;

    double mean_r = 0;
    for (const auto& r : rollouts) mean_r += r.seq_reward;
    mean_r /= static_cast<double>(rollouts.size());
    stats.mean_reward.push_back(mean_r);
    obs::gauge("ppo.mean_reward").set(mean_r);
    if (on_epoch) {
      on_epoch(epoch, mean_r);
    } else {
      obs::log_info(
          "ppo.epoch",
          {{"epoch", epoch},
           {"mean_reward", mean_r},
           {"rollouts", static_cast<std::int64_t>(rollouts.size())},
           {"validity_rate", obs::gauge("ppo.rollout_validity_rate").value()}});
    }

    // Advantage normalization across the whole rollout batch.
    {
      double s = 0, s2 = 0;
      std::size_t n = 0;
      for (const auto& r : rollouts) {
        for (float a : r.advantages) {
          s += a;
          s2 += static_cast<double>(a) * a;
          ++n;
        }
      }
      const double mu = s / static_cast<double>(n);
      const double sd =
          std::sqrt(std::max(s2 / static_cast<double>(n) - mu * mu, 1e-8));
      for (auto& r : rollouts) {
        for (auto& a : r.advantages) {
          a = static_cast<float>((a - mu) / sd);
        }
      }
    }

    bool rolled_back = false;
    for (int pe = 0; pe < cfg_.ppo_epochs && !rolled_back; ++pe) {
      // Shuffle rollout order, then walk minibatches.
      std::vector<std::size_t> order(rollouts.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng_.shuffle(order);

      for (std::size_t start = 0; start < order.size();
           start += static_cast<std::size_t>(cfg_.minibatch)) {
        const std::size_t end = std::min(
            order.size(), start + static_cast<std::size_t>(cfg_.minibatch));
        opt.zero_grad();
        Tensor pol_sum, val_sum;
        int n_tok = 0;
        for (std::size_t oi = start; oi < end; ++oi) {
          const Rollout& r = rollouts[order[oi]];
          const int K = r.n_actions;
          const std::vector<int> inputs(r.tokens.begin(), r.tokens.end() - 1);
          const std::vector<int> actions(r.tokens.begin() + 1,
                                         r.tokens.end());
          Tensor hidden = policy_->forward_hidden(inputs, 1, K, true);
          Tensor lsm = log_softmax_lastdim(policy_->lm_logits(hidden));
          Tensor new_logp = gather_lastdim(lsm, actions);
          Tensor old_logp = Tensor::from({K}, std::vector<float>(
                                                  r.old_logp.begin(),
                                                  r.old_logp.end()));
          Tensor ratio = exp_t(sub(new_logp, old_logp));
          Tensor adv = Tensor::from({K}, std::vector<float>(
                                             r.advantages.begin(),
                                             r.advantages.end()));
          Tensor unclipped = mul(ratio, adv);
          Tensor clipped =
              mul(clamp_t(ratio, 1.0f - cfg_.clip_eps, 1.0f + cfg_.clip_eps),
                  adv);
          Tensor pol = sum_all(min_t(unclipped, clipped));
          pol_sum = pol_sum.defined() ? add(pol_sum, pol) : pol;

          Tensor v_new =
              reshape(add(matmul(hidden, value_w_), value_b_), {K});
          Tensor ret = Tensor::from({K}, std::vector<float>(
                                             r.returns.begin(),
                                             r.returns.end()));
          Tensor vl = sum_all(square(sub(v_new, ret)));
          val_sum = val_sum.defined() ? add(val_sum, vl) : vl;
          n_tok += K;
        }
        if (!pol_sum.defined() || n_tok == 0) continue;
        const float inv = 1.0f / static_cast<float>(n_tok);
        Tensor l_policy = mul_scalar(pol_sum, inv);
        Tensor l_value = mul_scalar(val_sum, 0.5f * inv);
        // L_PPO = -L_policy + vc * L_value (Algorithm 1, line 8).
        Tensor loss = add(neg(l_policy), mul_scalar(l_value, cfg_.vc));
        loss.backward();
        if (fault::enabled() && fault::should_fire("nan_grad")) {
          params[0].grad()[0] = std::numeric_limits<float>::quiet_NaN();
        }
        const double grad_norm = clip_grad_norm(params, cfg_.clip_grad);

        const auto action = sentinel.observe(loss.item(), grad_norm);
        if (action == train::SentinelAction::kRollback) {
          if (last_good.armed() && rollbacks_left > 0) {
            --rollbacks_left;
            const long back = last_good.restore(ts);
            stats.mean_reward.resize(mark.mr);
            stats.policy_loss.resize(mark.pl);
            stats.value_loss.resize(mark.vl);
            stats.total_loss.resize(mark.tl);
            sentinel.notify_rollback();
            epoch = static_cast<int>(back) - 1;  // ++ resumes at `back`
          } else {
            obs::log_error("ppo.diverged",
                           {{"epoch", epoch}, {"loss", loss.item()}});
            stats.interrupted = true;
            epoch = cfg_.epochs;  // abort the run
          }
          rolled_back = true;
          break;
        }
        if (action == train::SentinelAction::kSkip) continue;
        opt.set_lr(cfg_.lr * sentinel.lr_scale());
        opt.step();

        stats.policy_loss.push_back(l_policy.item());
        stats.value_loss.push_back(l_value.item());
        stats.total_loss.push_back(loss.item());
        obs::histogram("ppo.policy_loss").record(l_policy.item());
        obs::histogram("ppo.value_loss").record(l_value.item());
      }
    }
    if (rolled_back) continue;

    const long done = epoch + 1;
    const bool stopping = train::stop_requested();
    const bool at_cadence =
        cfg_.checkpoint_every > 0 && done % cfg_.checkpoint_every == 0;
    if (at_cadence || stopping || done == static_cast<long>(cfg_.epochs)) {
      ts.step = done;
      if (ckpt) {
        try {
          ckpt->save(ts);
        } catch (const Error& e) {
          obs::log_error("ppo.ckpt_failed", {{"error", e.what()}});
        }
      }
      capture(done);
    }
    if (stopping) {
      obs::log_info("ppo.interrupted", {{"epoch", done}});
      stats.interrupted = true;
      break;
    }
  }
  obs::flush();
  return stats;
}

double PpoTrainer::evaluate_mean_reward(int n) {
  const auto samples = decoder_.decode(rng_, n);
  double total = 0;
  for (const auto& s : samples) total += rm_->reward(s.ids);
  return samples.empty() ? 0.0 : total / static_cast<double>(samples.size());
}

}  // namespace eva::rl
