#include "rl/reward_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "circuit/pingraph.hpp"
#include "circuit/validity.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "spice/engine.hpp"
#include "spice/fom.hpp"
#include "tensor/optim.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"

namespace eva::rl {

using namespace eva::tensor;
using circuit::CircuitType;

double rank_reward(RankClass c) {
  switch (c) {
    case RankClass::HighRelevant: return 1.0;
    case RankClass::LowRelevant: return 0.5;
    case RankClass::IrrelevantValid: return -0.5;
    case RankClass::Invalid: return -1.0;
  }
  return -1.0;
}

LabelingResult label_dataset(const data::Dataset& ds, const nn::Tokenizer& tok,
                             const LabelingConfig& cfg) {
  Rng rng(cfg.seed);
  LabelingResult out;

  // FoM of every relevant topology (failed evaluations count as low).
  struct Pending {
    std::vector<int> ids;
    bool relevant = false;
    double fom = 0.0;
    bool fom_ok = false;
  };
  std::vector<Pending> pending;
  std::vector<double> foms;
  for (const auto& e : ds.entries()) {
    if (cfg.skip_unencodable) {
      bool fits = true;
      for (const auto& [kind, count] : e.netlist.kind_counts()) {
        if (count > tok.limits()[static_cast<std::size_t>(kind)]) {
          fits = false;
          break;
        }
      }
      if (!fits) {
        ++out.skipped_unencodable;
        continue;
      }
    }
    Pending p;
    const auto tour = circuit::encode_tour(e.netlist, rng);
    auto ids = tok.encode_tour(tour);
    ids.pop_back();  // drop EOS: RankedExample stores the raw tour
    p.ids = std::move(ids);
    p.relevant = e.type == cfg.target;
    if (p.relevant) {
      const auto perf = spice::evaluate_default(e.netlist, cfg.target);
      p.fom_ok = perf.ok;
      p.fom = perf.fom;
      if (perf.ok) foms.push_back(perf.fom);
    }
    pending.push_back(std::move(p));
  }
  out.fom_threshold = foms.empty() ? 0.0 : otsu_threshold(foms);

  int n_high = 0;
  for (auto& p : pending) {
    RankClass rank = RankClass::IrrelevantValid;
    if (p.relevant) {
      rank = (p.fom_ok && p.fom >= out.fom_threshold)
                 ? RankClass::HighRelevant
                 : RankClass::LowRelevant;
      n_high += rank == RankClass::HighRelevant;
    }
    out.examples.push_back(RankedExample{std::move(p.ids), rank});
  }
  // Degenerate Otsu split (tiny or flat FoM sample): promote the best
  // relevant topology so every rank class is populated.
  if (n_high == 0 && !foms.empty()) {
    double best = -1.0;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].relevant && pending[i].fom_ok && pending[i].fom > best) {
        best = pending[i].fom;
        best_i = i;
      }
    }
    out.examples[best_i].rank = RankClass::HighRelevant;
    out.fom_threshold = best;
  }

  // Synthesize invalid sequences by corrupting valid tours: truncation or
  // random token substitution breaks the Euler-tour structure.
  const auto n_invalid = static_cast<std::size_t>(
      cfg.invalid_fraction * static_cast<double>(out.examples.size()));
  const std::size_t n_valid = out.examples.size();
  for (std::size_t i = 0; i < n_invalid; ++i) {
    auto ids = out.examples[rng.index(n_valid)].ids;
    if (ids.size() < 6) continue;
    if (rng.chance(0.5)) {
      ids.resize(ids.size() / 2 + rng.index(ids.size() / 4 + 1));
    } else {
      const std::size_t pos = 1 + rng.index(ids.size() - 2);
      ids[pos] = 2 + static_cast<int>(
          rng.index(static_cast<std::size_t>(tok.vocab_size() - 2)));
    }
    // Keep only genuinely invalid corruptions.
    const auto netlist = [&]() -> bool {
      try {
        const auto tour = tok.decode_ids(ids);
        const auto res = circuit::decode_tour(tour);
        return res.ok && circuit::structurally_valid(res.netlist);
      } catch (const Error&) {
        return false;
      }
    }();
    if (!netlist) {
      out.examples.push_back(RankedExample{std::move(ids), RankClass::Invalid});
    }
  }

  out.labeled_count = static_cast<int>(out.examples.size());
  return out;
}

RewardModel::RewardModel(const nn::TransformerLM& pretrained,
                         const nn::Tokenizer& tok, Rng& rng)
    : tok_(&tok), trunk_(pretrained.config(), rng) {
  trunk_.load_from(pretrained);
  head_w_ = Tensor::randn({pretrained.config().d_model, 3}, rng, 0.02f, true);
  head_b_ = Tensor::zeros({3}, true);
}

Tensor RewardModel::class_logits(const std::vector<int>& ids) const {
  EVA_REQUIRE(!ids.empty(), "class_logits: empty sequence");
  const int T = std::min<int>(static_cast<int>(ids.size()),
                              trunk_.config().max_seq);
  const std::vector<int> tokens(ids.begin(), ids.begin() + T);
  Tensor hidden = trunk_.forward_hidden(tokens, 1, T, /*training=*/false);
  // Mean-pool over positions: (1,T,C) -> (T,C) -> (C,1) via matmul with a
  // uniform weight column, then project with the head.
  Tensor h2 = reshape(hidden, {T, trunk_.config().d_model});
  Tensor pool_w = Tensor::full({T, 1}, 1.0f / static_cast<float>(T));
  Tensor pooled = reshape(matmul(transpose_last(h2), pool_w),
                          {1, trunk_.config().d_model});
  return add(matmul(pooled, head_w_), head_b_);  // (1,3)
}

std::vector<float> RewardModel::classify(const std::vector<int>& ids) const {
  Tensor probs = softmax_lastdim(class_logits(ids));
  return {probs.data()[0], probs.data()[1], probs.data()[2]};
}

double RewardModel::score(const std::vector<int>& ids) const {
  const auto p = classify(ids);
  return p[0] * 1.0 + p[1] * 0.5 + p[2] * -0.5;
}

double RewardModel::reward(const std::vector<int>& ids) const {
  // Rule-based checker: decodable + structurally valid + simulatable.
  try {
    const auto tour = tok_->decode_ids(ids);
    const auto res = circuit::decode_tour(tour);
    if (!res.ok || !spice::simulatable(res.netlist)) {
      return rank_reward(RankClass::Invalid);
    }
  } catch (const Error&) {
    return rank_reward(RankClass::Invalid);
  }
  double s = score(ids);
  if (fault::enabled() && fault::should_fire("reward_nan")) {
    s = std::numeric_limits<double>::quiet_NaN();
  }
  if (!std::isfinite(s)) {
    // A non-finite score must grade as an invalid circuit: one NaN reward
    // otherwise poisons the whole epoch's advantage normalization.
    obs::counter("rl.reward_nonfinite").add();
    obs::log_every_n(obs::LogLevel::kWarn, "rl.reward_nonfinite", 64, {});
    return rank_reward(RankClass::Invalid);
  }
  return s;
}

double RewardModel::accuracy(
    const std::vector<RankedExample>& examples) const {
  int correct = 0;
  int total = 0;
  for (const auto& e : examples) {
    if (e.rank == RankClass::Invalid) continue;
    const auto p = classify(e.ids);
    const int pred = static_cast<int>(
        std::max_element(p.begin(), p.end()) - p.begin());
    correct += pred == static_cast<int>(e.rank);
    ++total;
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

std::vector<double> RewardModel::train(
    const std::vector<RankedExample>& examples, const RewardModelConfig& cfg) {
  // Partition by class.
  std::vector<std::vector<const RankedExample*>> by_class(3);
  for (const auto& e : examples) {
    if (e.rank == RankClass::Invalid) continue;
    by_class[static_cast<std::size_t>(e.rank)].push_back(&e);
  }
  EVA_REQUIRE(!by_class[0].empty() && !by_class[1].empty() &&
                  !by_class[2].empty(),
              "reward model training needs all three valid rank classes");

  Rng rng(cfg.seed);
  auto params = trunk_.parameters();
  params.push_back(head_w_);
  params.push_back(head_b_);
  AdamW opt(params, {.lr = cfg.lr});

  const float class_scores[3] = {1.0f, 0.5f, -0.5f};
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(cfg.steps));

  for (int step = 0; step < cfg.steps; ++step) {
    opt.zero_grad();
    // One group: an example from each class, best rank first.
    std::vector<Tensor> scores;   // scalar expected-reward per item
    Tensor ce_total;              // auxiliary CE
    for (int c = 0; c < 3; ++c) {
      const auto& pool = by_class[static_cast<std::size_t>(c)];
      const RankedExample* ex = pool[rng.index(pool.size())];
      Tensor logits = class_logits(ex->ids);  // (1,3)
      Tensor probs = softmax_lastdim(logits);
      Tensor weights = Tensor::from({3}, {class_scores[0], class_scores[1],
                                          class_scores[2]});
      scores.push_back(sum_all(mul(probs, weights)));
      Tensor ce = cross_entropy(logits, {c});
      ce_total = ce_total.defined() ? add(ce_total, ce) : ce;
    }
    // Plackett–Luce: -sum_i [ s_i - log sum_{j>=i} exp(s_j) ] over the
    // true ranking (scores[0] should beat scores[1] beat scores[2]).
    Tensor pl_loss;
    for (int i = 0; i < 3; ++i) {
      Tensor denom;
      for (int j = i; j < 3; ++j) {
        Tensor e = exp_t(scores[static_cast<std::size_t>(j)]);
        denom = denom.defined() ? add(denom, e) : e;
      }
      Tensor term = sub(log_t(denom), scores[static_cast<std::size_t>(i)]);
      pl_loss = pl_loss.defined() ? add(pl_loss, term) : term;
    }
    Tensor loss = add(pl_loss, mul_scalar(ce_total, cfg.ce_weight / 3.0f));
    loss.backward();
    clip_grad_norm(params, cfg.clip);
    opt.step();
    losses.push_back(loss.item());
  }
  return losses;
}

}  // namespace eva::rl
