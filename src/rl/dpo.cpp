#include "rl/dpo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "tensor/optim.hpp"
#include "train/checkpoint.hpp"
#include "train/signal.hpp"
#include "util/fault.hpp"

namespace eva::rl {

using namespace eva::tensor;

std::vector<PreferencePair> build_preference_pairs(
    const std::vector<RankedExample>& examples, int per_combo, Rng& rng) {
  std::vector<std::vector<const RankedExample*>> by_class(4);
  for (const auto& e : examples) {
    by_class[static_cast<std::size_t>(e.rank)].push_back(&e);
  }
  std::vector<PreferencePair> pairs;
  for (int w = 0; w < 4; ++w) {
    for (int l = w + 1; l < 4; ++l) {
      const auto& winners = by_class[static_cast<std::size_t>(w)];
      const auto& losers = by_class[static_cast<std::size_t>(l)];
      if (winners.empty() || losers.empty()) continue;
      for (int i = 0; i < per_combo; ++i) {
        pairs.push_back(PreferencePair{
            winners[rng.index(winners.size())]->ids,
            losers[rng.index(losers.size())]->ids});
      }
    }
  }
  EVA_REQUIRE(!pairs.empty(), "no preference pairs could be built");
  rng.shuffle(pairs);
  return pairs;
}

DpoTrainer::DpoTrainer(nn::TransformerLM& policy, const nn::Tokenizer& tok,
                       DpoConfig cfg)
    : policy_(&policy),
      ref_(policy.config(), init_rng_),
      tok_(&tok),
      cfg_(cfg) {
  ref_.load_from(policy);
}

Tensor DpoTrainer::seq_logprob(const nn::TransformerLM& model,
                               const std::vector<int>& ids) const {
  EVA_REQUIRE(ids.size() >= 2, "sequence too short for log-prob");
  const int max_t = model.config().max_seq;
  // Teacher forcing: predict ids[1..] (plus EOS) from ids[..n-1].
  std::vector<int> full = ids;
  full.push_back(nn::Tokenizer::kEos);
  if (static_cast<int>(full.size()) > max_t + 1) {
    full.resize(static_cast<std::size_t>(max_t) + 1);
  }
  const int K = static_cast<int>(full.size()) - 1;
  const std::vector<int> inputs(full.begin(), full.end() - 1);
  const std::vector<int> targets(full.begin() + 1, full.end());
  Tensor logits = model.forward(inputs, 1, K, false);
  Tensor lsm = log_softmax_lastdim(logits);
  return sum_all(gather_lastdim(lsm, targets));
}

DpoStats DpoTrainer::train(const std::vector<PreferencePair>& pairs,
                           const std::function<void(int, double)>& on_step) {
  EVA_REQUIRE(!pairs.empty(), "DPO needs preference pairs");
  Rng rng(cfg_.seed);
  auto params = policy_->parameters();
  AdamW opt(params, {.lr = cfg_.lr});

  // Fixed probe sequences for the Fig. 4 degeneration curves.
  std::vector<const std::vector<int>*> probe_win, probe_lose;
  for (int i = 0; i < cfg_.logprob_probe &&
                  i < static_cast<int>(pairs.size());
       ++i) {
    probe_win.push_back(&pairs[static_cast<std::size_t>(i)].win);
    probe_lose.push_back(&pairs[static_cast<std::size_t>(i)].lose);
  }

  static obs::Counter& steps_c = obs::counter("dpo.steps");
  static obs::Histogram& loss_h = obs::histogram("dpo.loss");

  // Snapshots also carry the frozen reference model: on resume the policy
  // has already moved, so the reference cannot be re-derived from it.
  train::TrainState ts;
  ts.params = params;
  for (const auto& p : ref_.parameters()) ts.params.push_back(p);
  ts.opt = &opt;
  ts.rng = &rng;

  std::unique_ptr<train::CheckpointManager> ckpt;
  if (!cfg_.checkpoint_dir.empty()) {
    const auto& mc = policy_->config();
    train::Fingerprint fp;
    fp.mix(mc.vocab).mix(mc.d_model).mix(mc.n_layers).mix(mc.n_heads)
        .mix(mc.d_ff).mix(mc.max_seq);
    fp.mix(cfg_.steps).mix(cfg_.pairs_per_step).mix(cfg_.beta).mix(cfg_.lr)
        .mix(cfg_.clip_grad).mix(cfg_.seed);
    ckpt = std::make_unique<train::CheckpointManager>(train::CheckpointOptions{
        cfg_.checkpoint_dir, cfg_.keep_checkpoints, fp.value()});
  }

  DpoStats stats;
  if (ckpt && cfg_.resume) {
    if (auto restored = ckpt->load_latest(ts)) {
      stats.start_step = static_cast<int>(*restored);
    }
  }

  train::DivergenceSentinel sentinel(cfg_.sentinel);
  train::RollbackSlot last_good;
  int rollbacks_left = 5;  // give up instead of thrashing forever
  ts.step = stats.start_step;
  last_good.capture(ts, 0);

  for (int step = stats.start_step; step < cfg_.steps; ++step) {
    obs::Span step_span("dpo.step");
    opt.zero_grad();
    Tensor loss_sum;
    double acc = 0;
    for (int p = 0; p < cfg_.pairs_per_step; ++p) {
      const auto& pair = pairs[rng.index(pairs.size())];
      Tensor lw = seq_logprob(*policy_, pair.win);
      Tensor ll = seq_logprob(*policy_, pair.lose);
      const float lw_ref = seq_logprob(ref_, pair.win).item();
      const float ll_ref = seq_logprob(ref_, pair.lose).item();

      // margin = (lw - lw_ref) - (ll - ll_ref)
      Tensor margin = add_scalar(sub(lw, ll), -(lw_ref - ll_ref));
      Tensor loss = neg(log_t(sigmoid(mul_scalar(margin, cfg_.beta))));
      loss_sum = loss_sum.defined() ? add(loss_sum, loss) : loss;

      acc += margin.item() > 0.0f ? 1.0 : 0.0;
    }
    Tensor loss =
        mul_scalar(loss_sum, 1.0f / static_cast<float>(cfg_.pairs_per_step));
    loss.backward();
    if (fault::enabled() && fault::should_fire("nan_grad")) {
      params[0].grad()[0] = std::numeric_limits<float>::quiet_NaN();
    }
    const double grad_norm = clip_grad_norm(params, cfg_.clip_grad);

    switch (sentinel.observe(loss.item(), grad_norm)) {
      case train::SentinelAction::kRollback:
        if (last_good.armed() && rollbacks_left > 0) {
          --rollbacks_left;
          const long back = last_good.restore(ts);
          stats.loss.resize(last_good.progress_size());
          stats.reward_acc.resize(last_good.progress_size());
          if (!probe_win.empty()) {
            stats.logp_win.resize(last_good.progress_size());
            stats.logp_lose.resize(last_good.progress_size());
          }
          sentinel.notify_rollback();
          step = static_cast<int>(back) - 1;  // ++ resumes at `back`
          continue;
        }
        obs::log_error("dpo.diverged",
                       {{"step", step}, {"loss", loss.item()}});
        stats.interrupted = true;
        step = cfg_.steps;  // abort the run
        continue;
      case train::SentinelAction::kSkip:
        continue;  // drop the batch; no optimizer step
      case train::SentinelAction::kProceed:
        break;
    }
    opt.set_lr(cfg_.lr * sentinel.lr_scale());
    opt.step();
    ts.step = step + 1;

    stats.loss.push_back(loss.item());
    stats.reward_acc.push_back(acc / cfg_.pairs_per_step);
    steps_c.add();
    loss_h.record(loss.item());
    obs::gauge("dpo.loss").set(loss.item());
    obs::gauge("dpo.reward_acc").set(stats.reward_acc.back());
    if (!probe_win.empty()) {
      stats.logp_win.push_back(mean_logprob(probe_win));
      stats.logp_lose.push_back(mean_logprob(probe_lose));
    }
    if (on_step) {
      on_step(step, stats.loss.back());
    } else if (step % 10 == 0 || step + 1 == cfg_.steps) {
      obs::log_info("dpo.step", {{"step", step},
                                 {"loss", stats.loss.back()},
                                 {"reward_acc", stats.reward_acc.back()}});
    }

    const bool stopping = train::stop_requested();
    const bool at_cadence =
        cfg_.checkpoint_every > 0 && ts.step % cfg_.checkpoint_every == 0;
    if (at_cadence || stopping || ts.step == static_cast<long>(cfg_.steps)) {
      if (ckpt) {
        try {
          ckpt->save(ts);
        } catch (const Error& e) {
          obs::log_error("dpo.ckpt_failed", {{"error", e.what()}});
        }
      }
      last_good.capture(ts, stats.loss.size());
    }
    if (stopping) {
      obs::log_info("dpo.interrupted", {{"step", ts.step}});
      stats.interrupted = true;
      break;
    }
  }
  obs::flush();
  return stats;
}

double DpoTrainer::reward_accuracy(
    const std::vector<PreferencePair>& pairs) const {
  if (pairs.empty()) return 0.0;
  double acc = 0;
  for (const auto& pair : pairs) {
    const float lw = seq_logprob(*policy_, pair.win).item();
    const float ll = seq_logprob(*policy_, pair.lose).item();
    const float lw_ref = seq_logprob(ref_, pair.win).item();
    const float ll_ref = seq_logprob(ref_, pair.lose).item();
    acc += ((lw - lw_ref) - (ll - ll_ref)) > 0.0f ? 1.0 : 0.0;
  }
  return acc / static_cast<double>(pairs.size());
}

double DpoTrainer::mean_logprob(
    const std::vector<const std::vector<int>*>& seqs) const {
  if (seqs.empty()) return 0.0;
  double total = 0;
  for (const auto* s : seqs) total += seq_logprob(*policy_, *s).item();
  return total / static_cast<double>(seqs.size());
}

}  // namespace eva::rl
