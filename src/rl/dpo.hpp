// DPO fine-tuning (paper §III-C2, Eq. 5).
//
// Offline preference optimization: no reward model, no rollouts. Expert-
// labeled topologies ranked by the Table I classes are transformed into
// win/lose pairs ("for any four data points where each belongs to a unique
// class, EVA transforms these into six unique win-lose pairs") and the
// policy maximizes the Bradley-Terry log-likelihood margin over the frozen
// reference model:
//   L = -E log sigmoid( beta * [ (log pi_w - log ref_w)
//                              - (log pi_l - log ref_l) ] ).
#pragma once

#include <functional>
#include <vector>

#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "rl/reward_model.hpp"
#include "train/sentinel.hpp"

namespace eva::rl {

struct DpoConfig {
  int steps = 60;
  int pairs_per_step = 4;
  float beta = 0.1f;
  float lr = 1e-4f;   // DPO degenerates at high LR (paper §IV-C)
  float clip_grad = 1.0f;
  std::uint64_t seed = 123;
  /// When > 0, evaluate mean log pi over a FIXED probe of this many
  /// win/lose sequences at every step (the Fig. 4 degeneration curves).
  /// 0 disables the (costly) probe.
  int logprob_probe = 0;

  // Fault tolerance (train/): empty checkpoint_dir disables snapshots.
  // Snapshots cover policy + reference + optimizer + RNG at step
  // granularity.
  std::string checkpoint_dir;
  int checkpoint_every = 20;   // steps between snapshots
  int keep_checkpoints = 3;
  bool resume = false;
  train::SentinelConfig sentinel;
};

struct DpoStats {
  std::vector<double> loss;         // per-step L_DPO
  std::vector<double> reward_acc;   // per-step implicit-reward accuracy
  std::vector<double> logp_win;     // probe mean log pi(y_w) (Fig. 4)
  std::vector<double> logp_lose;    // probe mean log pi(y_l) (Fig. 4)
  int start_step = 0;               // > 0 when resumed from a checkpoint
  bool interrupted = false;         // stopped early via SIGINT/SIGTERM
};

/// A preference pair of token sequences (without EOS).
struct PreferencePair {
  std::vector<int> win;
  std::vector<int> lose;
};

/// Build all win/lose pairs implied by the rank classes: every example of
/// a strictly better class beats every example of a worse class. To keep
/// the pair set balanced, `per_combo` pairs are sampled for each of the 6
/// class combinations (High>Low, High>Irr, High>Inv, Low>Irr, Low>Inv,
/// Irr>Inv).
[[nodiscard]] std::vector<PreferencePair> build_preference_pairs(
    const std::vector<RankedExample>& examples, int per_combo, Rng& rng);

class DpoTrainer {
 public:
  /// `policy` is fine-tuned in place; a frozen copy is the reference.
  DpoTrainer(nn::TransformerLM& policy, const nn::Tokenizer& tok,
             DpoConfig cfg);

  DpoStats train(const std::vector<PreferencePair>& pairs,
                 const std::function<void(int, double)>& on_step = nullptr);

  /// Implicit-reward accuracy on a pair set: fraction where the policy's
  /// margin over the reference prefers the winner.
  [[nodiscard]] double reward_accuracy(
      const std::vector<PreferencePair>& pairs) const;

  /// Mean sequence log-probability under the current policy.
  [[nodiscard]] double mean_logprob(
      const std::vector<const std::vector<int>*>& seqs) const;

 private:
  /// Sequence log-prob as an autograd scalar (policy) or constant (ref).
  [[nodiscard]] tensor::Tensor seq_logprob(const nn::TransformerLM& model,
                                           const std::vector<int>& ids) const;

  nn::TransformerLM* policy_;
  Rng init_rng_{0};    // consumed by ref_'s construction (weights are then
                       // overwritten by the policy snapshot)
  nn::TransformerLM ref_;
  const nn::Tokenizer* tok_;
  DpoConfig cfg_;
};

}  // namespace eva::rl
