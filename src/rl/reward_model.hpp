// Reward model for PPO fine-tuning (paper §III-C1, Table I).
//
// The reward model combines
//  * a rule-based checker: is the generated sequence a decodable,
//    structurally valid, simulatable topology? (reward -1.0 otherwise), and
//  * a multiclass classifier: pretrained transformer trunk + a three-output
//    linear head distinguishing {high-performance relevant, low-performance
//    relevant, irrelevant} circuits (rewards 1.0 / 0.5 / -0.5).
//
// Performance labels come from the FoM of each relevant topology with
// Otsu's method choosing the high/low threshold. Training maximizes a
// Plackett–Luce ranking likelihood over groups of differently-ranked
// sequences (plus an auxiliary cross-entropy term).
#pragma once

#include <functional>
#include <vector>

#include "circuit/classify.hpp"
#include "data/dataset.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"

namespace eva::rl {

/// Table I rank classes.
enum class RankClass : std::uint8_t {
  HighRelevant = 0,   // reward 1.0
  LowRelevant = 1,    // reward 0.5
  IrrelevantValid = 2,  // reward -0.5
  Invalid = 3,        // reward -1.0 (assigned by the rule-based checker)
};

/// Table I reward values.
[[nodiscard]] double rank_reward(RankClass c);

/// One performance-labeled training sequence.
struct RankedExample {
  std::vector<int> ids;  // token ids, VSS-first, no EOS
  RankClass rank = RankClass::IrrelevantValid;
};

struct LabelingResult {
  std::vector<RankedExample> examples;
  double fom_threshold = 0.0;  // Otsu threshold over relevant FoMs
  int labeled_count = 0;       // paper metric: "# of labeled topology"
  int skipped_unencodable = 0;  // entries outside the tokenizer's limits
};

struct LabelingConfig {
  circuit::CircuitType target = circuit::CircuitType::OpAmp;
  double invalid_fraction = 0.15;  // synthesized invalid examples
  std::uint64_t seed = 77;
  /// Skip dataset entries whose device counts exceed the tokenizer's
  /// limits instead of throwing. Off by default (a from_dataset tokenizer
  /// always fits its own dataset, and an encode failure there is a bug);
  /// labeling against a fixed serving vocabulary opts in — the surrogate
  /// trainer must produce examples a serving head can represent.
  bool skip_unencodable = false;
};

/// Label the dataset for a target circuit type: relevance from the type
/// tag, performance from mini-SPICE FoM + Otsu split, plus synthesized
/// invalid sequences (corrupted tours) for the Invalid rank.
[[nodiscard]] LabelingResult label_dataset(const data::Dataset& ds,
                                           const nn::Tokenizer& tok,
                                           const LabelingConfig& cfg);

struct RewardModelConfig {
  int steps = 150;
  int group = 3;        // Plackett–Luce group size (one per valid class)
  float lr = 1e-3f;
  float ce_weight = 1.0f;  // auxiliary cross-entropy weight
  float clip = 1.0f;
  std::uint64_t seed = 55;
};

/// Transformer classifier + rule-based checker.
class RewardModel {
 public:
  /// Initializes the trunk from the pretrained model (weight copy).
  RewardModel(const nn::TransformerLM& pretrained, const nn::Tokenizer& tok,
              Rng& rng);

  /// Train on the valid-ranked examples (Invalid examples are ignored —
  /// the rule-based checker covers them). Returns per-step losses.
  std::vector<double> train(const std::vector<RankedExample>& examples,
                            const RewardModelConfig& cfg);

  /// Class probabilities {high, low, irrelevant} for a sequence.
  [[nodiscard]] std::vector<float> classify(const std::vector<int>& ids) const;

  /// Expected rank score of a sequence under the classifier (in
  /// [-0.5, 1.0]); does NOT apply the validity rule.
  [[nodiscard]] double score(const std::vector<int>& ids) const;

  /// Full Table I reward: rule-based validity check first (-1.0 when the
  /// sequence does not decode to a simulatable topology), classifier
  /// expected score otherwise.
  [[nodiscard]] double reward(const std::vector<int>& ids) const;

  /// Classification accuracy over a labeled set (validation metric).
  [[nodiscard]] double accuracy(
      const std::vector<RankedExample>& examples) const;

 private:
  [[nodiscard]] tensor::Tensor class_logits(const std::vector<int>& ids) const;

  const nn::Tokenizer* tok_;
  nn::TransformerLM trunk_;
  tensor::Tensor head_w_;  // (C, 3)
  tensor::Tensor head_b_;  // (3)
};

}  // namespace eva::rl
