// PPO RLHF fine-tuning (paper §III-C1, Algorithm 1, Eqs. 2-4).
//
// The agent is the pretrained policy πθ with an added value head (a linear
// layer mapping hidden states to one scalar per token). The environment is
// the reward model. Each epoch the policy generates a batch of D sequences
// (rollouts); rewards combine the reward model's sequence score with a
// per-token KL penalty against the frozen reference model (Eq. 2); GAE
// computes advantages; then N_ppo minibatch passes optimize the clipped
// surrogate (Eq. 3) plus the value loss (Eq. 4):
//     L_PPO = -L_policy + vc * L_value.
#pragma once

#include <functional>
#include <vector>

#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "rl/reward_model.hpp"
#include "surrogate/scorer.hpp"
#include "train/sentinel.hpp"

namespace eva::rl {

struct PpoConfig {
  int epochs = 20;           // N_epochs
  int rollouts = 16;         // D (batch of generated sequences per epoch)
  int ppo_epochs = 2;        // N_ppo
  int minibatch = 4;         // B
  float clip_eps = 0.2f;     // epsilon in Eq. 3
  float gamma = 1.0f;        // episodic task: undiscounted
  float lam = 0.95f;         // GAE lambda
  float vc = 0.5f;           // value loss coefficient
  float kl_beta = 0.05f;     // beta in Eq. 2
  float lr = 5e-4f;
  float clip_grad = 1.0f;
  int max_len = 0;           // rollout length cap (0 = model max)
  float temperature = 1.0f;
  /// Slot count of the rollout BatchedDecoder (throughput only; rollout
  /// contents are width-invariant, see DESIGN.md "Batched KV-cache
  /// decoding").
  int batch_width = 8;
  std::uint64_t seed = 99;

  /// Learned FoM surrogate (DESIGN.md §15). When set, every rollout gets
  /// a surrogate score; only the top surrogate_keep fraction of each
  /// epoch's batch runs the full reward model (Mini-SPICE inside), the
  /// rest take the surrogate score itself as the sequence reward
  /// (decodable sequences) or the standard -1 (undecodable). Null keeps
  /// the reward-model-everywhere path bit-identical to before.
  const surrogate::SurrogateScorer* surrogate = nullptr;
  /// Fraction of rollouts that keep the true SPICE-backed reward
  /// (ceil(keep * D), at least 1 while keep > 0; >= 1 or NaN keeps all).
  float surrogate_keep = 0.25f;
  /// Weight of the dense potential-based shaping reward derived from the
  /// surrogate's prefix scores: rew[t] += beta * (gamma * phi(t+1) -
  /// phi(t)). Potential-based shaping preserves the optimal policy; 0
  /// disables the dense term.
  float surrogate_dense_beta = 0.1f;

  // Fault tolerance (train/): empty checkpoint_dir disables snapshots.
  // Snapshots cover policy + value head + optimizer + RNG + the frozen
  // reference model, at epoch granularity.
  std::string checkpoint_dir;
  int checkpoint_every = 5;    // epochs between snapshots
  int keep_checkpoints = 3;
  bool resume = false;
  train::SentinelConfig sentinel;
};

struct PpoStats {
  std::vector<double> mean_reward;   // per-epoch mean sequence reward
  std::vector<double> policy_loss;   // per-update L_policy
  std::vector<double> value_loss;    // per-update L_value
  std::vector<double> total_loss;    // per-update L_PPO
  int start_epoch = 0;               // > 0 when resumed from a checkpoint
  bool interrupted = false;          // stopped early via SIGINT/SIGTERM
};

class PpoTrainer {
 public:
  /// `policy` is fine-tuned in place; a frozen copy taken at construction
  /// serves as the reference model pi_theta_ref.
  PpoTrainer(nn::TransformerLM& policy, const nn::Tokenizer& tok,
             const RewardModel& reward_model, PpoConfig cfg, Rng& rng);

  /// Run the full Algorithm 1 loop. `on_epoch(epoch, mean_reward)` is an
  /// optional progress hook.
  PpoStats train(const std::function<void(int, double)>& on_epoch = nullptr);

  /// Mean reward of a freshly generated batch (evaluation only).
  [[nodiscard]] double evaluate_mean_reward(int n);

 private:
  struct Rollout {
    std::vector<int> tokens;       // VSS + sampled actions (incl. EOS)
    int n_actions = 0;
    double seq_reward = 0.0;
    std::vector<float> old_logp;   // per action, at rollout time
    std::vector<float> ref_logp;   // per action, reference model
    std::vector<float> values;     // V(x_t) per action position
    std::vector<float> advantages;
    std::vector<float> returns;    // G_t
    std::vector<float> dense;      // per-action shaping reward (may be empty)
  };

  void collect_rollouts(std::vector<Rollout>& out);
  void compute_gae(Rollout& r) const;

  nn::TransformerLM* policy_;
  nn::TransformerLM ref_;
  const nn::Tokenizer* tok_;
  const RewardModel* rm_;
  tensor::Tensor value_w_;  // (C,1)
  tensor::Tensor value_b_;  // (1)
  PpoConfig cfg_;
  Rng rng_;
  nn::BatchedDecoder decoder_;  // rollout engine; KV slab reused per epoch
};

}  // namespace eva::rl
