// Parametric topology generators for the 11 circuit types of the paper's
// dataset (§IV-A): Op-Amps, LDOs, Bandgap references, Comparators, PLLs,
// LNAs, PAs, Mixers, VCOs, Power converters, Switched-capacitor samplers.
//
// Each generator draws structural variants (input polarity, load style,
// cascoding, extra stages, ...) from its Rng, so repeated calls yield many
// distinct-but-realistic topologies of the same family. Together with the
// validity-preserving mutations in data/mutate.hpp this is the substitute
// for the paper's 3470 textbook topologies (DESIGN.md §4).
#pragma once

#include "circuit/classify.hpp"
#include "circuit/netlist.hpp"
#include "util/rng.hpp"

namespace eva::data {

[[nodiscard]] circuit::Netlist gen_opamp(Rng& rng);
[[nodiscard]] circuit::Netlist gen_ldo(Rng& rng);
[[nodiscard]] circuit::Netlist gen_bandgap(Rng& rng);
[[nodiscard]] circuit::Netlist gen_comparator(Rng& rng);
[[nodiscard]] circuit::Netlist gen_pll(Rng& rng);
[[nodiscard]] circuit::Netlist gen_lna(Rng& rng);
[[nodiscard]] circuit::Netlist gen_pa(Rng& rng);
[[nodiscard]] circuit::Netlist gen_mixer(Rng& rng);
[[nodiscard]] circuit::Netlist gen_vco(Rng& rng);
[[nodiscard]] circuit::Netlist gen_power_converter(Rng& rng);
[[nodiscard]] circuit::Netlist gen_sc_sampler(Rng& rng);

/// Dispatch by type. Throws eva::Error for CircuitType::Unknown.
[[nodiscard]] circuit::Netlist generate(circuit::CircuitType type, Rng& rng);

}  // namespace eva::data
