#include "data/builder.hpp"

namespace eva::data {

using circuit::DeviceKind;
using circuit::IoPin;

int NetBuilder::net(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const int id = nl_.add_net({});
  by_name_.emplace(name, id);
  return id;
}

void NetBuilder::io(const std::string& name, IoPin pin) {
  const int id = net(name);
  if (const auto existing = nl_.net_of(circuit::io_ref(pin))) {
    // The IO pin is one physical node: a second binding means `name` and
    // the earlier net are the same electrical net. Merge and re-alias.
    if (*existing == id) return;
    nl_.merge_nets(*existing, id);
    for (auto& [n, nid] : by_name_) {
      if (nid == id) nid = *existing;
    }
    return;
  }
  nl_.connect(id, circuit::io_ref(pin));
}

void NetBuilder::rails() {
  io("VSS", IoPin::Vss);
  io("VDD", IoPin::Vdd);
}

int NetBuilder::mos(DeviceKind kind, const std::string& g,
                    const std::string& d, const std::string& s,
                    const std::string& b) {
  EVA_ASSERT(kind == DeviceKind::Nmos || kind == DeviceKind::Pmos,
             "mos() requires a MOS kind");
  const int dev = nl_.add_device(kind);
  const std::string bulk =
      b.empty() ? (kind == DeviceKind::Nmos ? "VSS" : "VDD") : b;
  nl_.connect(net(g), circuit::dev_ref(dev, circuit::mos::G));
  nl_.connect(net(d), circuit::dev_ref(dev, circuit::mos::D));
  nl_.connect(net(s), circuit::dev_ref(dev, circuit::mos::S));
  nl_.connect(net(bulk), circuit::dev_ref(dev, circuit::mos::B));
  return dev;
}

int NetBuilder::bjt(DeviceKind kind, const std::string& c,
                    const std::string& b, const std::string& e) {
  EVA_ASSERT(kind == DeviceKind::Npn || kind == DeviceKind::Pnp,
             "bjt() requires a BJT kind");
  const int dev = nl_.add_device(kind);
  nl_.connect(net(c), circuit::dev_ref(dev, circuit::bjt::C));
  nl_.connect(net(b), circuit::dev_ref(dev, circuit::bjt::B));
  nl_.connect(net(e), circuit::dev_ref(dev, circuit::bjt::E));
  return dev;
}

int NetBuilder::two(DeviceKind kind, const std::string& p,
                    const std::string& n) {
  EVA_ASSERT(pin_count(kind) == 2, "two() requires a 2-pin kind");
  const int dev = nl_.add_device(kind);
  nl_.connect(net(p), circuit::dev_ref(dev, 0));
  nl_.connect(net(n), circuit::dev_ref(dev, 1));
  return dev;
}

circuit::Netlist NetBuilder::take() {
  nl_.prune_degenerate_nets();
  return std::move(nl_);
}

}  // namespace eva::data
