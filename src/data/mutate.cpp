#include "data/mutate.hpp"

#include <optional>
#include <vector>

namespace eva::data {

using circuit::DeviceKind;
using circuit::IoPin;
using circuit::Netlist;
using circuit::PinRef;

namespace {

bool is_mos(DeviceKind k) {
  return k == DeviceKind::Nmos || k == DeviceKind::Pmos;
}

std::optional<int> net_with_io(const Netlist& nl, IoPin io) {
  for (std::size_t i = 0; i < nl.nets().size(); ++i) {
    for (const auto& p : nl.nets()[i]) {
      if (p.is_io() && p.io == io) return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

std::vector<int> devices_of(const Netlist& nl, bool (*pred)(DeviceKind)) {
  std::vector<int> out;
  for (int d = 0; d < nl.num_devices(); ++d) {
    if (pred(nl.devices()[static_cast<std::size_t>(d)].kind)) out.push_back(d);
  }
  return out;
}

bool parallel_device(Netlist& nl, Rng& rng) {
  if (nl.num_devices() == 0) return false;
  const int d = static_cast<int>(rng.index(
      static_cast<std::size_t>(nl.num_devices())));
  const DeviceKind kind = nl.devices()[static_cast<std::size_t>(d)].kind;
  // Resolve nets first (adding the device must not invalidate them).
  std::vector<int> nets;
  for (int p = 0; p < pin_count(kind); ++p) {
    const auto id = nl.net_of(circuit::dev_ref(d, p));
    if (!id) return false;
    nets.push_back(*id);
  }
  const int nd = nl.add_device(kind);
  for (int p = 0; p < pin_count(kind); ++p) {
    nl.connect(nets[static_cast<std::size_t>(p)], circuit::dev_ref(nd, p));
  }
  return true;
}

/// Split pin `target` off its net, inserting a resistor between the pin's
/// new private net and the original net.
bool insert_series_resistor(Netlist& nl, const PinRef& target) {
  const auto old_net = nl.net_of(target);
  if (!old_net) return false;
  nl.disconnect(target);
  const int res = nl.add_device(DeviceKind::Resistor);
  const int fresh = nl.add_net({target, circuit::dev_ref(res, circuit::two::P)});
  (void)fresh;
  nl.connect(*old_net, circuit::dev_ref(res, circuit::two::N));
  return true;
}

bool series_resistor(Netlist& nl, Rng& rng) {
  const auto twos = devices_of(nl, [](DeviceKind k) {
    return pin_count(k) == 2 && k != DeviceKind::Capacitor;
  });
  if (twos.empty()) return false;
  const int d = rng.choice(twos);
  const int p = rng.range(0, 1);
  return insert_series_resistor(nl, circuit::dev_ref(d, p));
}

bool source_degeneration(Netlist& nl, Rng& rng) {
  const auto mos = devices_of(nl, is_mos);
  if (mos.empty()) return false;
  const int d = rng.choice(mos);
  return insert_series_resistor(nl, circuit::dev_ref(d, circuit::mos::S));
}

bool cascode(Netlist& nl, Rng& rng) {
  const auto mos = devices_of(nl, is_mos);
  if (mos.empty()) return false;
  const int d = rng.choice(mos);
  const DeviceKind kind = nl.devices()[static_cast<std::size_t>(d)].kind;
  const PinRef drain = circuit::dev_ref(d, circuit::mos::D);
  const auto old_net = nl.net_of(drain);
  const auto bulk_net = nl.net_of(circuit::dev_ref(d, circuit::mos::B));
  if (!old_net || !bulk_net) return false;
  // Gate bias for the cascode: reuse an existing bias pin net, or the
  // device's own gate net (self-cascode) as fallback.
  std::optional<int> gate_net = net_with_io(nl, IoPin::Vb2);
  if (!gate_net) gate_net = net_with_io(nl, IoPin::Vb1);
  if (!gate_net) gate_net = nl.net_of(circuit::dev_ref(d, circuit::mos::G));
  if (!gate_net) return false;

  nl.disconnect(drain);
  const int casc = nl.add_device(kind);
  nl.add_net({drain, circuit::dev_ref(casc, circuit::mos::S)});
  nl.connect(*old_net, circuit::dev_ref(casc, circuit::mos::D));
  nl.connect(*gate_net, circuit::dev_ref(casc, circuit::mos::G));
  nl.connect(*bulk_net, circuit::dev_ref(casc, circuit::mos::B));
  return true;
}

bool cap_to_vss(Netlist& nl, int from_net) {
  const auto vss = net_with_io(nl, IoPin::Vss);
  if (!vss || *vss == from_net) return false;
  const int cap = nl.add_device(DeviceKind::Capacitor);
  nl.connect(from_net, circuit::dev_ref(cap, circuit::two::P));
  nl.connect(*vss, circuit::dev_ref(cap, circuit::two::N));
  return true;
}

bool load_cap(Netlist& nl, Rng& rng) {
  const auto out = net_with_io(
      nl, rng.chance(0.5) ? IoPin::Vout1 : IoPin::Vout2);
  if (!out) return false;
  return cap_to_vss(nl, *out);
}

bool bypass_cap(Netlist& nl, Rng& rng) {
  if (nl.nets().empty()) return false;
  const int net = static_cast<int>(rng.index(nl.nets().size()));
  if (nl.nets()[static_cast<std::size_t>(net)].size() < 2) return false;
  return cap_to_vss(nl, net);
}

}  // namespace

bool apply_mutation(Netlist& nl, MutationKind kind, Rng& rng) {
  switch (kind) {
    case MutationKind::ParallelDevice: return parallel_device(nl, rng);
    case MutationKind::SeriesResistor: return series_resistor(nl, rng);
    case MutationKind::SourceDegeneration: return source_degeneration(nl, rng);
    case MutationKind::Cascode: return cascode(nl, rng);
    case MutationKind::LoadCap: return load_cap(nl, rng);
    case MutationKind::BypassCap: return bypass_cap(nl, rng);
  }
  return false;
}

bool mutate(Netlist& nl, Rng& rng) {
  const auto kind = static_cast<MutationKind>(rng.index(6));
  return apply_mutation(nl, kind, rng);
}

}  // namespace eva::data
