// Topology dataset assembly (paper §IV-A "Datasets").
//
// Builds the pretraining corpus: unique (by canonical hash), structurally
// valid, simulatable topologies across all 11 circuit types. Stands in
// for the paper's 3470 textbook topologies; the per-type count and the
// mutation budget are knobs, so the corpus scales from test-size to
// paper-scale.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "circuit/classify.hpp"
#include "circuit/netlist.hpp"
#include "util/rng.hpp"

namespace eva::data {

struct TopologyEntry {
  circuit::Netlist netlist;
  circuit::CircuitType type = circuit::CircuitType::Unknown;
  std::uint64_t hash = 0;
};

struct DatasetConfig {
  int per_type = 40;        // unique topologies per circuit type
  int max_mutations = 3;    // mutation budget per sample
  std::uint64_t seed = 42;
  bool require_simulatable = true;  // DC-converges with default sizing
  int max_attempts_factor = 60;     // attempts per requested topology
};

class Dataset {
 public:
  /// Generate the corpus. Throws eva::Error if some type cannot reach at
  /// least a handful of unique topologies (indicates a generator bug).
  [[nodiscard]] static Dataset build(const DatasetConfig& cfg);

  [[nodiscard]] const std::vector<TopologyEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool contains_hash(std::uint64_t h) const {
    return hashes_.count(h) > 0;
  }
  [[nodiscard]] std::vector<const TopologyEntry*> of_type(
      circuit::CircuitType t) const;

  /// Deterministic 9:1 train/validation split of entry indices
  /// (paper §IV-A: validation topologies unseen during training).
  struct Split {
    std::vector<std::size_t> train;
    std::vector<std::size_t> val;
  };
  [[nodiscard]] Split split(double train_fraction = 0.9,
                            std::uint64_t seed = 7) const;

 private:
  std::vector<TopologyEntry> entries_;
  std::unordered_set<std::uint64_t> hashes_;
};

}  // namespace eva::data
