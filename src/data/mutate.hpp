// Validity-preserving structural mutations.
//
// The dataset generators produce family archetypes; mutations multiply
// them into the thousands of distinct topologies the pretraining corpus
// needs (paper: 3470 unique real-world topologies). Each mutation is a
// small designer-plausible edit — parallel device, series degeneration,
// cascoding, extra filter caps — and callers re-validate and re-classify
// afterwards, dropping mutants that break validity or change type.
#pragma once

#include "circuit/netlist.hpp"
#include "util/rng.hpp"

namespace eva::data {

/// Kinds of structural edits mutate() can apply.
enum class MutationKind : std::uint8_t {
  ParallelDevice,     // duplicate a device onto the same nets
  SeriesResistor,     // split a 2-pin-device connection with a resistor
  SourceDegeneration, // resistor under a MOS source
  Cascode,            // stack a same-kind MOS over a MOS drain
  LoadCap,            // capacitor from an output net to VSS
  BypassCap,          // capacitor from an internal net to VSS
};

/// Apply one random mutation in place. Returns false when no applicable
/// site exists (netlist unchanged in that case).
bool mutate(circuit::Netlist& nl, Rng& rng);

/// Apply a specific mutation kind; returns false if inapplicable.
bool apply_mutation(circuit::Netlist& nl, MutationKind kind, Rng& rng);

}  // namespace eva::data
