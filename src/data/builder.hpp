// Named-net netlist builder used by the topology generators.
//
// Generators describe circuits the way a designer would — "gate of M1 on
// net 'inp', drain on 'out1'" — and the builder handles net creation and
// pin bookkeeping.
#pragma once

#include <map>
#include <string>

#include "circuit/netlist.hpp"

namespace eva::data {

class NetBuilder {
 public:
  NetBuilder() = default;

  /// Net id for `name`, creating an empty net on first use.
  int net(const std::string& name);

  /// Attach an IO pin to a named net.
  void io(const std::string& name, circuit::IoPin pin);

  /// Add a MOS with its four pins on the given nets. Bulk defaults to the
  /// matching rail when empty ("" -> VSS net for NMOS, VDD net for PMOS,
  /// which must exist as nets named "VSS"/"VDD").
  int mos(circuit::DeviceKind kind, const std::string& g,
          const std::string& d, const std::string& s,
          const std::string& b = "");

  /// Add a BJT (Npn/Pnp) with C/B/E on the given nets.
  int bjt(circuit::DeviceKind kind, const std::string& c,
          const std::string& b, const std::string& e);

  /// Add a two-pin device (R/C/L/Diode) between two nets (P/A first).
  int two(circuit::DeviceKind kind, const std::string& p,
          const std::string& n);

  /// Standard rails: creates nets "VSS"/"VDD" bound to the supply pins.
  void rails();

  /// Finish: drops empty nets and returns the netlist.
  [[nodiscard]] circuit::Netlist take();

  [[nodiscard]] circuit::Netlist& netlist() { return nl_; }

 private:
  circuit::Netlist nl_;
  std::map<std::string, int> by_name_;
};

}  // namespace eva::data
