#include "data/dataset.hpp"

#include <numeric>

#include "circuit/canon.hpp"
#include "circuit/validity.hpp"
#include "data/generators.hpp"
#include "data/mutate.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spice/engine.hpp"

namespace eva::data {

using circuit::CircuitType;

namespace {
constexpr CircuitType kAllTypes[] = {
    CircuitType::OpAmp,     CircuitType::Ldo,
    CircuitType::Bandgap,   CircuitType::Comparator,
    CircuitType::Pll,       CircuitType::Lna,
    CircuitType::Pa,        CircuitType::Mixer,
    CircuitType::Vco,       CircuitType::PowerConverter,
    CircuitType::ScSampler,
};
}  // namespace

Dataset Dataset::build(const DatasetConfig& cfg) {
  EVA_REQUIRE(cfg.per_type > 0, "per_type must be positive");
  // Rejection-funnel accounting: attempts minus each reject cause equals
  // accepted, so a starved generator shows where candidates die.
  static obs::Counter& attempts_c = obs::counter("data.gen.attempts");
  static obs::Counter& invalid_c = obs::counter("data.gen.structurally_invalid");
  static obs::Counter& wrong_type_c = obs::counter("data.gen.wrong_type");
  static obs::Counter& dup_c = obs::counter("data.gen.duplicates");
  static obs::Counter& nonsim_c = obs::counter("data.gen.not_simulatable");
  static obs::Counter& accepted_c = obs::counter("data.gen.accepted");
  obs::Span span("data.build");

  Dataset ds;
  Rng rng(cfg.seed);

  for (const CircuitType type : kAllTypes) {
    int found = 0;
    const int max_attempts = cfg.per_type * cfg.max_attempts_factor;
    int attempt = 0;
    for (; attempt < max_attempts && found < cfg.per_type; ++attempt) {
      attempts_c.add();
      circuit::Netlist nl = generate(type, rng);
      const int n_mut = cfg.max_mutations > 0
                            ? rng.range(0, cfg.max_mutations)
                            : 0;
      for (int m = 0; m < n_mut; ++m) mutate(nl, rng);

      if (!circuit::structurally_valid(nl)) {
        invalid_c.add();
        continue;
      }
      if (circuit::classify(nl) != type) {
        wrong_type_c.add();
        continue;
      }
      const std::uint64_t h = circuit::canonical_hash(nl);
      if (ds.hashes_.count(h)) {
        dup_c.add();
        continue;
      }
      if (cfg.require_simulatable && !spice::simulatable(nl)) {
        nonsim_c.add();
        continue;
      }

      ds.hashes_.insert(h);
      ds.entries_.push_back(TopologyEntry{std::move(nl), type, h});
      accepted_c.add();
      ++found;
    }
    obs::log_debug("data.type_done", {{"type", circuit::type_name(type)},
                                      {"found", found},
                                      {"attempts", attempt}});
    EVA_REQUIRE(found >= std::min(cfg.per_type, 5),
                std::string("dataset generator starved for type ") +
                    std::string{circuit::type_name(type)});
  }
  obs::log_info("data.build_done",
                {{"topologies", static_cast<std::int64_t>(ds.entries_.size())},
                 {"types", static_cast<std::int64_t>(std::size(kAllTypes))}});
  return ds;
}

std::vector<const TopologyEntry*> Dataset::of_type(CircuitType t) const {
  std::vector<const TopologyEntry*> out;
  for (const auto& e : entries_) {
    if (e.type == t) out.push_back(&e);
  }
  return out;
}

Dataset::Split Dataset::split(double train_fraction,
                              std::uint64_t seed) const {
  EVA_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
              "train_fraction must be in (0,1)");
  std::vector<std::size_t> idx(entries_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Rng rng(seed);
  rng.shuffle(idx);
  const auto cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(idx.size()));
  Split s;
  s.train.assign(idx.begin(), idx.begin() + static_cast<long>(cut));
  s.val.assign(idx.begin() + static_cast<long>(cut), idx.end());
  return s;
}

}  // namespace eva::data
