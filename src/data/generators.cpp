#include "data/generators.hpp"

#include <string>

#include "data/builder.hpp"

namespace eva::data {

using circuit::CircuitType;
using circuit::DeviceKind;
using circuit::IoPin;
using circuit::Netlist;

namespace {
constexpr DeviceKind N = DeviceKind::Nmos;
constexpr DeviceKind P = DeviceKind::Pmos;
constexpr DeviceKind R = DeviceKind::Resistor;
constexpr DeviceKind C = DeviceKind::Capacitor;
constexpr DeviceKind L = DeviceKind::Inductor;
constexpr DeviceKind D = DeviceKind::Diode;

/// Bias network for a tail/mirror gate net `bias`: either a plain VB pin
/// or a diode-connected reference device fed from IREF.
void bias_net(NetBuilder& b, Rng& rng, const std::string& bias,
              DeviceKind kind) {
  if (rng.chance(0.5)) {
    b.io(bias, rng.chance(0.5) ? IoPin::Vb1 : IoPin::Vb2);
  } else {
    b.io(bias, IoPin::Iref);
    if (kind == N) {
      b.mos(N, bias, bias, "VSS");  // diode-connected reference
    } else {
      b.mos(P, bias, bias, "VDD");
    }
  }
}

}  // namespace

Netlist gen_opamp(Rng& rng) {
  NetBuilder b;
  b.rails();
  const bool nmos_in = rng.chance(0.6);
  const DeviceKind IK = nmos_in ? N : P;   // input pair kind
  const DeviceKind LK = nmos_in ? P : N;   // load kind
  const std::string irail = nmos_in ? "VSS" : "VDD";  // input-side rail
  const std::string lrail = nmos_in ? "VDD" : "VSS";  // load-side rail

  b.io("inp", IoPin::Vin1);
  b.io("inn", IoPin::Vin2);

  // Optional cascode between pair drains and the load.
  const bool casc_in = rng.chance(0.3);
  const std::string d1 = casc_in ? "c1" : "d1";
  const std::string d2 = casc_in ? "c2" : "d2";
  b.mos(IK, "inp", d1, "tail");
  b.mos(IK, "inn", d2, "tail");
  if (casc_in) {
    b.io("vcas", nmos_in ? IoPin::Vb2 : IoPin::Vb1);
    b.mos(IK, "vcas", "d1", "c1");
    b.mos(IK, "vcas", "d2", "c2");
  }

  // Tail current source.
  bias_net(b, rng, "bt", IK);
  b.mos(IK, "bt", "tail", irail);

  // First-stage load.
  const int load_style = rng.range(0, 2);
  if (load_style == 0) {
    // Current-mirror load (diode-connected on d1).
    b.mos(LK, "d1", "d1", lrail);
    b.mos(LK, "d1", "d2", lrail);
  } else if (load_style == 1) {
    // Cascoded mirror load.
    b.mos(LK, "m1", "m1", lrail);
    b.mos(LK, "m1", "m2", lrail);
    b.io("vcl", nmos_in ? IoPin::Vb2 : IoPin::Vb1);
    b.mos(LK, "vcl", "d1", "m1");
    b.mos(LK, "vcl", "d2", "m2");
    // Keep the diode reference defined by tying the mirror input branch.
    b.two(R, "d1", "m1");
  } else {
    // Resistor loads.
    b.two(R, lrail, "d1");
    b.two(R, lrail, "d2");
  }

  // Optional second stage (common source + Miller compensation).
  const bool stage2 = rng.chance(0.55);
  std::string out = "d2";
  if (stage2) {
    out = "out";
    b.mos(LK, "d2", "out", lrail);
    // Second-stage current source / resistor bias.
    if (rng.chance(0.6)) {
      bias_net(b, rng, "b2", IK);
      b.mos(IK, "b2", "out", irail);
    } else {
      b.two(R, "out", irail);
    }
    b.two(C, "d2", "out");  // Miller cap
    if (rng.chance(0.4)) b.two(R, "d2", "out");  // zero-nulling resistor
  }
  b.io(out, IoPin::Vout1);
  if (!stage2 && rng.chance(0.3)) b.io("d1", IoPin::Vout2);  // pseudo-diff
  if (rng.chance(0.5)) b.two(C, out, "VSS");  // load cap
  return b.take();
}

Netlist gen_ldo(Rng& rng) {
  NetBuilder b;
  b.rails();
  // Error amplifier: NMOS pair, gates on reference (VB1) and feedback.
  b.io("ref", IoPin::Vb1);
  b.mos(N, "ref", "d1", "tail");
  b.mos(N, "fb", "d2", "tail");
  b.io("bt", IoPin::Vb2);
  b.mos(N, "bt", "tail", "VSS");
  b.mos(P, "d1", "d1", "VDD");
  b.mos(P, "d1", "d2", "VDD");

  // Pass device.
  if (rng.chance(0.75)) {
    b.mos(P, "d2", "out", "VDD");  // PMOS pass (common source)
  } else {
    b.mos(N, "d2", "VDD", "out");  // NMOS follower pass
  }
  // Feedback divider.
  b.two(R, "out", "fb");
  b.two(R, "fb", "VSS");
  if (rng.chance(0.5)) b.two(R, "out", "fb");  // parallel trim leg
  b.io("out", IoPin::Vout1);
  if (rng.chance(0.7)) b.two(C, "out", "VSS");     // load cap
  if (rng.chance(0.4)) b.two(C, "d2", "out");      // compensation
  if (rng.chance(0.3)) b.two(C, "fb", "VSS");      // feedback filter
  return b.take();
}

Netlist gen_bandgap(Rng& rng) {
  NetBuilder b;
  b.rails();
  const bool use_bjt = rng.chance(0.5);
  // PMOS mirror with 2-3 branches; first branch diode-connected.
  b.mos(P, "pg", "pg", "VDD");
  b.mos(P, "pg", "n2", "VDD");
  const bool third = rng.chance(0.7);
  if (third) b.mos(P, "pg", "out", "VDD");

  auto junction = [&](const std::string& top) {
    if (use_bjt) {
      b.bjt(DeviceKind::Pnp, "VSS", "VSS", top);  // diode-connected PNP
    } else {
      b.two(D, top, "VSS");
    }
  };
  // Branch 1: junction directly.
  junction("pg");
  // Branch 2: resistor + junction (delta-VBE leg).
  b.two(R, "n2", "j2");
  junction("j2");
  if (rng.chance(0.5)) junction("j2");  // area-ratio as parallel junctions

  const std::string out = third ? "out" : "n2";
  if (third) b.two(R, "out", "VSS");
  b.io(out, IoPin::Vout1);
  if (rng.chance(0.4)) b.two(R, "VDD", "pg");  // startup leg
  if (rng.chance(0.4)) b.two(C, out, "VSS");   // output filter
  return b.take();
}

Netlist gen_comparator(Rng& rng) {
  NetBuilder b;
  b.rails();
  b.io("inp", IoPin::Vin1);
  b.io("inn", IoPin::Vin2);
  b.io("clk", IoPin::Clk1);
  // Clocked tail.
  b.mos(N, "clk", "tail", "VSS");
  b.mos(N, "inp", "d1", "tail");
  b.mos(N, "inn", "d2", "tail");
  // Cross-coupled load (latch).
  b.mos(P, "d2", "d1", "VDD");
  b.mos(P, "d1", "d2", "VDD");
  if (rng.chance(0.6)) {
    // NMOS latch half for a full latch.
    b.mos(N, "d2", "d1", "tail");
    b.mos(N, "d1", "d2", "tail");
  }
  // Reset switches on the complementary phase.
  if (rng.chance(0.7)) {
    b.io("clkb", IoPin::Clk2);
    b.mos(P, "clkb", "d1", "VDD");
    b.mos(P, "clkb", "d2", "VDD");
  }
  b.io("d2", IoPin::Vout1);
  if (rng.chance(0.5)) b.io("d1", IoPin::Vout2);
  if (rng.chance(0.3)) b.two(C, "d2", "VSS");
  return b.take();
}

Netlist gen_pll(Rng& rng) {
  NetBuilder b;
  b.rails();
  // Charge pump driven by the reference clock phases.
  b.io("clk", IoPin::Clk1);
  b.io("clkb", IoPin::Clk2);
  b.mos(P, "clk", "ctrl", "VDD");   // pump up
  b.mos(N, "clkb", "ctrl", "VSS");  // pump down
  // Loop filter.
  b.two(R, "ctrl", "cf");
  b.two(C, "cf", "VSS");
  if (rng.chance(0.5)) b.two(C, "ctrl", "VSS");  // second pole cap

  // Ring oscillator (3 or 5 stages) with control coupling.
  const int stages = rng.chance(0.5) ? 3 : 5;
  for (int i = 0; i < stages; ++i) {
    const std::string in = "r" + std::to_string(i);
    const std::string out = "r" + std::to_string((i + 1) % stages);
    b.mos(N, in, out, "VSS");
    b.mos(P, in, out, "VDD");
  }
  b.two(R, "ctrl", "r0");  // VCO control coupling
  b.io("r" + std::to_string(stages - 1), IoPin::Vout1);
  return b.take();
}

Netlist gen_lna(Rng& rng) {
  NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);
  // Inductively degenerated common-source stage.
  b.two(L, "in", "g1");            // gate matching inductor
  b.mos(N, "g1", "d1", "s1");
  b.two(L, "s1", "VSS");           // source degeneration
  const bool cascode = rng.chance(0.6);
  const std::string top = cascode ? "d2" : "d1";
  if (cascode) {
    b.io("vc", IoPin::Vb2);
    b.mos(N, "vc", "d2", "d1");
  }
  b.two(L, "VDD", top);            // load inductor
  b.two(C, top, "out");            // output coupling
  b.io("out", IoPin::Vout1);
  b.io("gb", IoPin::Vb1);
  b.two(R, "gb", "g1");            // gate bias through resistor
  if (rng.chance(0.4)) b.two(C, top, "VSS");  // tank tuning cap
  if (rng.chance(0.3)) b.two(R, "out", "VSS");  // termination
  return b.take();
}

Netlist gen_pa(Rng& rng) {
  NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);
  // Driver stage.
  const bool driver = rng.chance(0.6);
  std::string stage_in = "in";
  if (driver) {
    b.mos(N, "in", "m1", "VSS");
    b.two(R, "VDD", "m1");
    b.two(C, "m1", "g2");  // interstage coupling
    b.io("gb", IoPin::Vb1);
    b.two(R, "gb", "g2");
    stage_in = "g2";
  }
  // Output stage: parallel power devices with RF choke + matching L.
  const int fingers = rng.range(2, 4);
  for (int i = 0; i < fingers; ++i) b.mos(N, stage_in, "d2", "VSS");
  b.two(L, "VDD", "d2");   // choke
  b.two(L, "d2", "out");   // series matching inductor
  b.two(C, "out", "VSS");  // shunt matching cap
  b.io("out", IoPin::Vout1);
  if (!driver) {
    b.io("gb", IoPin::Vb1);
    b.two(R, "gb", stage_in == "in" ? "in" : stage_in);
  }
  return b.take();
}

Netlist gen_mixer(Rng& rng) {
  NetBuilder b;
  b.rails();
  // Gilbert cell: RF pair under an LO switching quad.
  b.io("rf", IoPin::Vin1);
  b.io("rfb", IoPin::Vb1);
  b.io("lo", IoPin::Vin2);
  b.io("lob", IoPin::Vb2);
  bias_net(b, rng, "bt", N);
  b.mos(N, "bt", "tail", "VSS");
  b.mos(N, "rf", "sq1", "tail");
  b.mos(N, "rfb", "sq2", "tail");
  b.mos(N, "lo", "o1", "sq1");
  b.mos(N, "lob", "o2", "sq1");
  b.mos(N, "lob", "o1", "sq2");
  b.mos(N, "lo", "o2", "sq2");
  // Loads.
  if (rng.chance(0.7)) {
    b.two(R, "VDD", "o1");
    b.two(R, "VDD", "o2");
  } else {
    b.mos(P, "pb", "o1", "VDD");
    b.mos(P, "pb", "o2", "VDD");
    b.io("pb", IoPin::Vb2);
  }
  b.io("o1", IoPin::Vout1);
  if (rng.chance(0.6)) b.io("o2", IoPin::Vout2);
  if (rng.chance(0.4)) {
    b.two(C, "o1", "VSS");
    b.two(C, "o2", "VSS");
  }
  return b.take();
}

Netlist gen_vco(Rng& rng) {
  NetBuilder b;
  b.rails();
  if (rng.chance(0.6)) {
    // LC cross-coupled VCO.
    const bool nmos_core = rng.chance(0.7);
    if (nmos_core) {
      b.mos(N, "o2", "o1", "tail");
      b.mos(N, "o1", "o2", "tail");
      bias_net(b, rng, "bt", N);
      b.mos(N, "bt", "tail", "VSS");
      b.two(L, "VDD", "o1");
      b.two(L, "VDD", "o2");
    } else {
      b.mos(P, "o2", "o1", "tail");
      b.mos(P, "o1", "o2", "tail");
      bias_net(b, rng, "bt", P);
      b.mos(P, "bt", "tail", "VDD");
      b.two(L, "o1", "VSS");
      b.two(L, "o2", "VSS");
    }
    b.two(C, "o1", "o2");  // tank cap
    if (rng.chance(0.5)) {
      // Varactor-style tuning caps to a bias node.
      b.io("vt", IoPin::Vb1);
      b.two(C, "o1", "vt");
      b.two(C, "o2", "vt");
    }
    b.io("o1", IoPin::Vout1);
    if (rng.chance(0.6)) b.io("o2", IoPin::Vout2);
  } else {
    // Free-running ring oscillator.
    const int stages = rng.chance(0.5) ? 3 : 5;
    for (int i = 0; i < stages; ++i) {
      const std::string in = "r" + std::to_string(i);
      const std::string out = "r" + std::to_string((i + 1) % stages);
      b.mos(N, in, out, "VSS");
      b.mos(P, in, out, "VDD");
    }
    if (rng.chance(0.5)) b.two(C, "r0", "VSS");  // slowing cap
    b.io("r0", IoPin::Vout1);
  }
  return b.take();
}

Netlist gen_power_converter(Rng& rng) {
  NetBuilder b;
  b.rails();
  b.io("clk", IoPin::Clk1);
  const int topo = rng.range(0, 3);
  const bool sync = rng.chance(0.4);  // synchronous rectification
  switch (topo) {
    case 0: {  // buck
      b.mos(P, "clk", "sw", "VDD");
      if (sync) {
        b.io("clkb", IoPin::Clk2);
        b.mos(N, "clkb", "sw", "VSS");
      } else {
        b.two(D, "VSS", "sw");  // freewheel diode (A=VSS, K=sw)
      }
      b.two(L, "sw", "out");
      break;
    }
    case 1: {  // boost
      b.two(L, "VDD", "sw");
      b.mos(N, "clk", "sw", "VSS");
      if (sync) {
        b.io("clkb", IoPin::Clk2);
        b.mos(P, "clkb", "sw", "out");
      } else {
        b.two(D, "sw", "out");
      }
      break;
    }
    case 2: {  // buck-boost
      b.mos(P, "clk", "sw", "VDD");
      b.two(L, "sw", "VSS");
      b.two(D, "out", "sw");  // inverting output
      break;
    }
    default: {  // SEPIC-like
      b.two(L, "VDD", "sw");
      b.mos(N, "clk", "sw", "VSS");
      b.two(C, "sw", "mid");  // coupling cap
      b.two(L, "mid", "VSS");
      b.two(D, "mid", "out");
      break;
    }
  }
  b.two(C, "out", "VSS");  // output filter
  if (rng.chance(0.3)) b.two(C, "out", "VSS");  // second filter cap
  if (rng.chance(0.3)) b.two(C, "VDD", "VSS");  // input decoupling
  b.io("out", IoPin::Vout1);
  return b.take();
}

Netlist gen_sc_sampler(Rng& rng) {
  NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);
  b.io("clk", IoPin::Clk1);
  b.io("clkb", IoPin::Clk2);
  const bool tgate = rng.chance(0.4);
  // Sampling switch.
  b.mos(N, "clk", "in", "top");
  if (tgate) {
    b.mos(P, "clkb", "in", "top");
  } else {
    b.two(C, "VDD", "VSS");  // supply decoupling keeps VDD connected
  }
  // Hold cap.
  b.two(C, "top", "VSS");
  if (rng.chance(0.4)) b.two(C, "top", "VSS");  // split sampling cap
  // Transfer switch.
  b.mos(N, "clkb", "top", "out");
  if (tgate && rng.chance(0.5)) b.mos(P, "clk", "top", "out");
  if (rng.chance(0.5)) b.two(C, "out", "VSS");  // output hold cap
  if (rng.chance(0.3)) b.mos(N, "clk", "out", "VSS");  // reset switch
  b.io("out", IoPin::Vout1);
  return b.take();
}

Netlist generate(CircuitType type, Rng& rng) {
  switch (type) {
    case CircuitType::OpAmp: return gen_opamp(rng);
    case CircuitType::Ldo: return gen_ldo(rng);
    case CircuitType::Bandgap: return gen_bandgap(rng);
    case CircuitType::Comparator: return gen_comparator(rng);
    case CircuitType::Pll: return gen_pll(rng);
    case CircuitType::Lna: return gen_lna(rng);
    case CircuitType::Pa: return gen_pa(rng);
    case CircuitType::Mixer: return gen_mixer(rng);
    case CircuitType::Vco: return gen_vco(rng);
    case CircuitType::PowerConverter: return gen_power_converter(rng);
    case CircuitType::ScSampler: return gen_sc_sampler(rng);
    case CircuitType::Unknown: break;
  }
  throw Error("generate: cannot generate Unknown circuit type");
}

}  // namespace eva::data
