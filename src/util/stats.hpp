// Small statistics toolkit: summary stats, histograms, Otsu's threshold
// (used by the reward model to split relevant circuits into high / low
// performance classes, paper §III-C1), and distribution distances used by
// the MMD novelty metric.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace eva {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance; 0 for spans shorter than 2.
[[nodiscard]] double variance(std::span<const double> xs);

[[nodiscard]] double stddev(std::span<const double> xs);

/// p-th percentile (p in [0,100]) with linear interpolation. Requires
/// a non-empty span; input need not be sorted.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range clamp to the edge buckets. Returned counts are normalized to
/// sum to 1 when normalize is true (all-zero if xs is empty).
[[nodiscard]] std::vector<double> histogram(std::span<const double> xs,
                                            double lo, double hi,
                                            std::size_t bins,
                                            bool normalize = true);

/// Otsu's method: the threshold that maximizes inter-class variance of the
/// sample histogram. Used to split FoM values into "high performance" vs
/// "low performance" (paper §III-C1). Requires a non-empty span; if all
/// values are equal, returns that value.
[[nodiscard]] double otsu_threshold(std::span<const double> xs,
                                    std::size_t bins = 64);

/// Exponential moving average of a series (smoothing for loss curves).
[[nodiscard]] std::vector<double> ema(std::span<const double> xs,
                                      double alpha);

}  // namespace eva
