// Data-parallel helpers used by the tensor engine and the evaluation
// harnesses, backed by a lazily-started persistent thread pool.
//
// The pool spawns its workers on the first parallel call and keeps them
// alive for the process lifetime (hundreds of tensor ops per training
// step would otherwise pay a thread spawn+join each). Dispatch is
// work-sharing: the calling thread and the workers pull fixed-size
// chunks off a shared atomic cursor until the range is exhausted, so
// uneven chunks (e.g. ragged tails, per-circuit evals of varying cost)
// self-balance. Exceptions thrown by any chunk are captured and the
// first one is rethrown on the calling thread after the region drains.
//
// Nested parallel calls (a parallel region issued from inside another
// region, on any thread) run inline on the issuing thread — this keeps
// call sites composable without deadlock and bounds total parallelism.
#pragma once

#include <cstddef>
#include <functional>

namespace eva {

/// Number of worker threads used by parallel_for (hardware_concurrency,
/// clamped to [1, 16]). Overridable for tests via set_num_threads.
[[nodiscard]] std::size_t num_threads();

/// Override the worker count (0 restores the hardware default).
/// set_num_threads(1) makes every parallel_* call run inline on the
/// caller, giving bitwise-deterministic execution order.
void set_num_threads(std::size_t n);

/// Run fn(i) for i in [begin, end), split into contiguous chunks across
/// pool workers. Runs inline when the range is small or workers == 1.
/// fn must be safe to invoke concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// Chunked variant: fn(chunk_begin, chunk_end) per dispatch. Lower
/// overhead for very fine-grained loops (tensor elementwise ops).
/// Chunk boundaries depend only on the range, min_chunk, and the worker
/// count — not on runtime scheduling — so results are reproducible for a
/// fixed set_num_threads value.
void parallel_chunks(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t, std::size_t)>& fn,
                     std::size_t min_chunk = 1024);

}  // namespace eva
