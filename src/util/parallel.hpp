// Minimal data-parallel helpers used by the tensor engine and the
// evaluation harnesses. Plain std::thread fan-out; no work stealing —
// workloads here are uniform (matmul row blocks, per-circuit evals).
#pragma once

#include <cstddef>
#include <functional>

namespace eva {

/// Number of worker threads used by parallel_for (hardware_concurrency,
/// clamped to [1, 16]). Overridable for tests via set_num_threads.
[[nodiscard]] std::size_t num_threads();

/// Override the worker count (0 restores the hardware default).
void set_num_threads(std::size_t n);

/// Run fn(i) for i in [begin, end), split into contiguous chunks across
/// worker threads. Runs inline when the range is small or workers == 1.
/// fn must be safe to invoke concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// Chunked variant: fn(chunk_begin, chunk_end) per worker. Lower overhead
/// for very fine-grained loops (tensor elementwise ops).
void parallel_chunks(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t, std::size_t)>& fn,
                     std::size_t min_chunk = 1024);

}  // namespace eva
