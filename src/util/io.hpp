// Output helpers used by benchmarks and examples: CSV writing for curves,
// fixed-width console tables that mirror the paper's table layout, and the
// crash-safe atomic file writer shared by every on-disk artifact (CSV
// curves, obs JSON exports, EVA2 checkpoints).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace eva {

/// Write `contents` to `path` crash-safely: the bytes go to a sibling
/// temp file which is fsync'd and then atomically renamed over `path`,
/// so readers observe either the old file or the complete new one —
/// never a half-written artifact. Returns false on any I/O failure (the
/// destination is left untouched). Fault site: `io_write`.
bool atomic_write_file(const std::string& path, std::string_view contents);

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// commas/quotes/newlines). Used to dump loss curves and sweep results.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void add_row(const std::vector<double>& row);

  /// Write header + rows to a stream.
  void write(std::ostream& os) const;
  /// Write to a file path; throws eva::ConfigError on failure.
  void save(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-width console table with a title, used by the bench harnesses to
/// print paper-style tables.
class ConsoleTable {
 public:
  ConsoleTable(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` significant decimals, trimming trailing zeros.
[[nodiscard]] std::string fmt(double v, int prec = 4);

/// Render a numeric series as a compact ASCII sparkline-style curve block
/// (used by the figure benches to show loss/score trends in the console).
[[nodiscard]] std::string ascii_curve(const std::vector<double>& ys,
                                      const std::string& label,
                                      int width = 72, int height = 10);

}  // namespace eva
