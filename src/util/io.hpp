// Output helpers used by benchmarks and examples: CSV writing for curves,
// and fixed-width console tables that mirror the paper's table layout.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace eva {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// commas/quotes/newlines). Used to dump loss curves and sweep results.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void add_row(const std::vector<double>& row);

  /// Write header + rows to a stream.
  void write(std::ostream& os) const;
  /// Write to a file path; throws eva::ConfigError on failure.
  void save(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-width console table with a title, used by the bench harnesses to
/// print paper-style tables.
class ConsoleTable {
 public:
  ConsoleTable(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` significant decimals, trimming trailing zeros.
[[nodiscard]] std::string fmt(double v, int prec = 4);

/// Render a numeric series as a compact ASCII sparkline-style curve block
/// (used by the figure benches to show loss/score trends in the console).
[[nodiscard]] std::string ascii_curve(const std::vector<double>& ys,
                                      const std::string& label,
                                      int width = 72, int height = 10);

}  // namespace eva
