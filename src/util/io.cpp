#include "util/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace eva {

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

bool atomic_write_file(const std::string& path, std::string_view contents) {
  if (fault::enabled() && fault::should_fire("io_write")) return false;
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  bool ok = true;
  while (ok && written < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      ok = false;
    } else {
      written += static_cast<std::size_t>(n);
    }
  }
  // fsync before rename: the rename must never become visible ahead of
  // the data it points at, or a crash could expose an empty file.
  ok = ok && ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  ok = ok && ::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Best-effort directory fsync so the rename itself is durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  EVA_ASSERT(!header_.empty(), "CSV header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  EVA_ASSERT(row.size() == header_.size(), "CSV row width mismatch");
  rows_.push_back(std::move(row));
}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> s;
  s.reserve(row.size());
  for (double v : row) s.push_back(fmt(v, 6));
  add_row(std::move(s));
}

void CsvWriter::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  }
}

void CsvWriter::save(const std::string& path) const {
  std::ostringstream buf;
  write(buf);
  if (!atomic_write_file(path, buf.str())) {
    throw ConfigError("cannot write CSV output file: " + path);
  }
}

ConsoleTable::ConsoleTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  EVA_ASSERT(!columns_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> row) {
  EVA_ASSERT(row.size() == columns_.size(), "table row width mismatch");
  rows_.push_back(std::move(row));
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> w(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) w[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      w[i] = std::max(w[i], row[i].size());
    }
  }
  std::size_t total = 1;
  for (std::size_t x : w) total += x + 3;

  os << '\n' << title_ << '\n' << std::string(total, '-') << '\n';
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << ' ' << row[i] << std::string(w[i] - row[i].size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  print_row(columns_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << std::string(total, '-') << '\n';
}

std::string fmt(double v, int prec) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  std::string s{buf};
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string ascii_curve(const std::vector<double>& ys, const std::string& label,
                        int width, int height) {
  std::ostringstream os;
  os << label << '\n';
  if (ys.empty()) {
    os << "  (no data)\n";
    return os.str();
  }
  const auto [mn_it, mx_it] = std::minmax_element(ys.begin(), ys.end());
  double mn = *mn_it;
  double mx = *mx_it;
  if (mx - mn < 1e-12) {
    mn -= 0.5;
    mx += 0.5;
  }
  // Resample to `width` columns.
  std::vector<double> cols(static_cast<std::size_t>(width));
  for (int c = 0; c < width; ++c) {
    const double pos = static_cast<double>(c) * static_cast<double>(ys.size() - 1) /
                       std::max(1, width - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, ys.size() - 1);
    const double f = pos - static_cast<double>(lo);
    cols[static_cast<std::size_t>(c)] = ys[lo] * (1 - f) + ys[hi] * f;
  }
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (int c = 0; c < width; ++c) {
    const double norm = (cols[static_cast<std::size_t>(c)] - mn) / (mx - mn);
    int r = height - 1 - static_cast<int>(std::lround(norm * (height - 1)));
    r = std::clamp(r, 0, height - 1);
    grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = '*';
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.4g |", mx);
  os << buf << grid[0] << '\n';
  for (int r = 1; r + 1 < height; ++r) {
    os << "           |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  std::snprintf(buf, sizeof(buf), "%10.4g |", mn);
  os << buf << grid[static_cast<std::size_t>(height - 1)] << '\n';
  os << "            " << std::string(static_cast<std::size_t>(width), '-')
     << "  (" << ys.size() << " points)\n";
  return os.str();
}

}  // namespace eva
