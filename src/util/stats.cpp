#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace eva {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  EVA_ASSERT(!xs.empty(), "percentile of empty span");
  EVA_ASSERT(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double idx = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> histogram(std::span<const double> xs, double lo, double hi,
                              std::size_t bins, bool normalize) {
  EVA_ASSERT(bins > 0, "histogram needs at least one bin");
  EVA_ASSERT(hi > lo, "histogram range must be non-empty");
  std::vector<double> counts(bins, 0.0);
  if (xs.empty()) return counts;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto b = static_cast<long>((x - lo) / width);
    b = std::clamp<long>(b, 0, static_cast<long>(bins) - 1);
    counts[static_cast<std::size_t>(b)] += 1.0;
  }
  if (normalize) {
    const double total = static_cast<double>(xs.size());
    for (double& c : counts) c /= total;
  }
  return counts;
}

double otsu_threshold(std::span<const double> xs, std::size_t bins) {
  EVA_ASSERT(!xs.empty(), "otsu_threshold of empty span");
  const auto [mn_it, mx_it] = std::minmax_element(xs.begin(), xs.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  if (mx - mn < 1e-300) return mn;

  const std::vector<double> h = histogram(xs, mn, mx, bins, true);
  // Cumulative class probability / mean scans.
  double total_mean = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    total_mean += (static_cast<double>(i) + 0.5) * h[i];
  }
  double w0 = 0.0;       // probability mass of class 0 (below threshold)
  double mu0_sum = 0.0;  // unnormalized mean of class 0
  double best_sigma = -1.0;
  std::size_t best_bin = 0;
  for (std::size_t t = 0; t + 1 < bins; ++t) {
    w0 += h[t];
    mu0_sum += (static_cast<double>(t) + 0.5) * h[t];
    const double w1 = 1.0 - w0;
    if (w0 < 1e-12 || w1 < 1e-12) continue;
    const double mu0 = mu0_sum / w0;
    const double mu1 = (total_mean - mu0_sum) / w1;
    const double sigma = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    if (sigma > best_sigma) {
      best_sigma = sigma;
      best_bin = t;
    }
  }
  const double width = (mx - mn) / static_cast<double>(bins);
  return mn + (static_cast<double>(best_bin) + 1.0) * width;
}

std::vector<double> ema(std::span<const double> xs, double alpha) {
  EVA_ASSERT(alpha > 0.0 && alpha <= 1.0, "ema alpha in (0,1]");
  std::vector<double> out;
  out.reserve(xs.size());
  double acc = 0.0;
  bool first = true;
  for (double x : xs) {
    acc = first ? x : alpha * x + (1.0 - alpha) * acc;
    first = false;
    out.push_back(acc);
  }
  return out;
}

}  // namespace eva
