// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
//
// Used by the EVA2 checkpoint format to checksum every section so a
// truncated, bit-flipped or torn snapshot is detected at load time
// instead of silently corrupting a resumed run.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace eva {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `n` bytes. Pass a previous result as `seed` to chain blocks.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n,
                                         std::uint32_t seed = 0) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace eva
