#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace eva {

namespace {
std::atomic<std::size_t> g_override{0};

std::size_t hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hc == 0 ? 1 : hc, 1, 16);
}
}  // namespace

std::size_t num_threads() {
  const std::size_t o = g_override.load(std::memory_order_relaxed);
  return o == 0 ? hardware_threads() : o;
}

void set_num_threads(std::size_t n) {
  g_override.store(n, std::memory_order_relaxed);
}

void parallel_chunks(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t, std::size_t)>& fn,
                     std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  std::size_t workers = std::min(num_threads(), (n + min_chunk - 1) / min_chunk);
  if (workers <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t b = begin + w * chunk;
    const std::size_t e = std::min(end, b + chunk);
    if (b >= e) break;
    pool.emplace_back([&fn, b, e] { fn(b, e); });
  }
  for (auto& t : pool) t.join();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_chunks(
      begin, end,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      grain);
}

}  // namespace eva
