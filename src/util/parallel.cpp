#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace eva {

namespace {

std::atomic<std::size_t> g_override{0};

// Upper bound on pool size; matches the historical clamp on
// hardware_concurrency so set_num_threads(huge) cannot fork-bomb.
constexpr std::size_t kMaxPoolThreads = 16;

std::size_t hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hc == 0 ? 1 : hc, 1, kMaxPoolThreads);
}

// True while this thread is executing chunks of some parallel region
// (worker or caller). Nested parallel calls check it and run inline.
thread_local bool t_in_parallel = false;

/// One parallel region: a chunked [begin,end) range executed
/// cooperatively by pool workers and the submitting thread.
struct Region {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  // Execution tickets: only `tickets` threads actually process chunks,
  // so set_num_threads bounds parallelism even when more workers are
  // alive in the pool.
  std::atomic<int> tickets{0};
  std::exception_ptr error;
  std::mutex error_mu;

  void run() noexcept {
    const bool prev = t_in_parallel;
    t_in_parallel = true;
    for (;;) {
      const std::size_t b = next.fetch_add(chunk, std::memory_order_relaxed);
      if (b >= end) break;
      const std::size_t e = std::min(end, b + chunk);
      try {
        (*fn)(b, e);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(error_mu);
          if (!error) error = std::current_exception();
        }
        // Abandon undispatched chunks: the caller is going to throw.
        next.store(end, std::memory_order_relaxed);
      }
    }
    t_in_parallel = prev;
  }
};

/// Lazily-started persistent worker pool (singleton). Workers block on a
/// condition variable between regions; a generation counter hands the
/// current region to every worker, and a completion count releases the
/// submitter once all workers have checked back in (which also
/// guarantees no worker still holds a pointer to the stack-allocated
/// Region). One region is in flight at a time; concurrent submitters
/// from distinct threads serialize on submit_mu_.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t begin, std::size_t end,
           const std::function<void(std::size_t, std::size_t)>& fn,
           std::size_t chunk, std::size_t want_threads) {
    Region region;
    region.fn = &fn;
    region.end = end;
    region.chunk = std::max<std::size_t>(chunk, 1);
    region.next.store(begin, std::memory_order_relaxed);

    std::unique_lock<std::mutex> submit(submit_mu_);
    if (shutting_down_.load(std::memory_order_acquire)) {
      submit.unlock();
      region.run();
      if (region.error) std::rethrow_exception(region.error);
      return;
    }
    ensure_workers(want_threads - 1);
    region.tickets.store(static_cast<int>(want_threads) - 1,
                         std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      region_ = &region;
      completed_ = 0;
      ++generation_;
    }
    cv_.notify_all();
    region.run();  // the submitting thread is worker #0
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return completed_ == workers_.size(); });
      region_ = nullptr;
    }
    if (region.error) std::rethrow_exception(region.error);
  }

 private:
  Pool() = default;

  ~Pool() {
    shutting_down_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  // Grow the pool to at least `n` workers (capped). Called under
  // submit_mu_, so no region is being handed out concurrently.
  void ensure_workers(std::size_t n) {
    n = std::min(n, kMaxPoolThreads);
    std::lock_guard<std::mutex> lk(mu_);
    while (workers_.size() < n) {
      // Late-spawned workers must not mistake an already-finished
      // generation for fresh work (region_ may be null by then).
      workers_.emplace_back([this, g = generation_] { worker_loop(g); });
    }
  }

  void worker_loop(std::uint64_t seen) {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      Region* r = region_;
      lk.unlock();
      // Every live worker checks in (completion barrier), but only
      // ticket holders execute chunks — extras go straight back to bed.
      if (r->tickets.fetch_sub(1, std::memory_order_relaxed) > 0) r->run();
      lk.lock();
      if (++completed_ == workers_.size()) done_cv_.notify_one();
    }
  }

  std::mutex submit_mu_;  // one region in flight at a time

  std::mutex mu_;  // guards everything below
  std::condition_variable cv_;       // workers wait for a new generation
  std::condition_variable done_cv_;  // submitter waits for completion
  std::vector<std::thread> workers_;
  Region* region_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t completed_ = 0;
  bool stop_ = false;
  std::atomic<bool> shutting_down_{false};
};

}  // namespace

std::size_t num_threads() {
  const std::size_t o = g_override.load(std::memory_order_relaxed);
  return o == 0 ? hardware_threads() : o;
}

void set_num_threads(std::size_t n) {
  g_override.store(n, std::memory_order_relaxed);
}

void parallel_chunks(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t, std::size_t)>& fn,
                     std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  min_chunk = std::max<std::size_t>(min_chunk, 1);
  const std::size_t workers =
      std::min(num_threads(), (n + min_chunk - 1) / min_chunk);
  if (workers <= 1 || t_in_parallel) {
    fn(begin, end);
    return;
  }
  // Chunk layout depends only on (n, workers): ceil-split so reduction
  // orders are reproducible for a fixed thread setting regardless of
  // which worker executes which chunk.
  const std::size_t chunk = (n + workers - 1) / workers;
  // Span covers submit -> drain of the whole region on the submitting
  // thread (worker-side time shows up as the gaps between regions).
  obs::Span span("parallel_region");
  Pool::instance().run(begin, end, fn, chunk, workers);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_chunks(
      begin, end,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      grain);
}

}  // namespace eva
