// Cache-line-aligned vector storage for kernel-facing buffers.
//
// The GEMM micro-kernels and the fused attention step stream rows of the
// KV slabs and step workspace with vector loads; 64-byte alignment keeps
// every row load on the fast path (no cache-line-straddling accesses) on
// AVX2/AVX-512 and makes the alignment assumption checkable instead of
// accidental. AlignedVec is a std::vector with a 64-byte-aligned
// allocator, so all the usual vector idioms (resize, assign, data())
// keep working at call sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace eva {

inline constexpr std::size_t kKernelAlign = 64;  // one cache line

template <typename T, std::size_t Align = kKernelAlign>
struct AlignedAlloc {
  using value_type = T;

  // Explicit rebind: allocator_traits cannot synthesize one because
  // Align is a non-type template parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };

  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAlloc<U, Align>&) const noexcept {
    return true;
  }
};

template <typename T>
using AlignedVec = std::vector<T, AlignedAlloc<T>>;

/// True when `p` sits on an `align`-byte boundary (null counts as
/// aligned: an empty buffer has no rows to misload).
[[nodiscard]] inline bool is_kernel_aligned(const void* p,
                                            std::size_t align = kKernelAlign) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

}  // namespace eva
