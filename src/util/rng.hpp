// Deterministic, locally-owned random number generation.
//
// EVA never uses global RNG state: every stochastic component (dataset
// generator, tokenizer augmentation, transformer init, PPO rollouts, GA)
// owns an eva::Rng seeded explicitly, so whole-pipeline runs are
// reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace eva {

/// xoshiro256** PRNG with splitmix64 seeding. Small, fast, high quality.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Derive an independent child stream (for per-thread / per-sample use).
  [[nodiscard]] Rng fork() { return Rng{next() ^ 0xA5A5A5A5DEADBEEFULL}; }

  /// Complete generator state — the 256-bit xoshiro state plus the cached
  /// Box–Muller half — so checkpointed training runs resume bit-for-bit.
  struct State {
    std::uint64_t s[4] = {};
    double cached = 0.0;
    bool has_cached = false;
  };

  [[nodiscard]] State save_state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.cached = cached_;
    st.has_cached = has_cached_;
    return st;
  }

  void restore_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    cached_ = st.cached;
    has_cached_ = st.has_cached;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    EVA_ASSERT(n > 0, "Rng::index requires n > 0");
    // Lemire's multiply-shift bounded rejection.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - static_cast<std::uint64_t>(n)) % n;
      while (lo < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::size_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int range(int lo, int hi) {
    EVA_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo) + 1));
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    EVA_ASSERT(!v.empty(), "Rng::choice on empty vector");
    return v[index(v.size())];
  }

  /// Sample an index proportionally to non-negative weights (sum > 0).
  std::size_t weighted(const std::vector<double>& weights) {
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    EVA_ASSERT(total > 0.0, "Rng::weighted requires positive total weight");
    double u = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher–Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace eva
