// Deterministic fault injection for exercising recovery paths.
//
// Production code sprinkles named *sites* at the places that can fail in
// the wild (checkpoint writes, gradient buffers, SPICE solves, exporter
// I/O). Each call to should_fire(site) increments a per-site occurrence
// counter; a fault fires when the current occurrence matches the active
// spec, so injected failures are reproducible run-to-run — tests assert
// on the recovery behaviour instead of trusting it on faith.
//
// Spec syntax (EVA_FAULT or set_spec): comma-separated `site:occurrence`
// entries, 1-based, plus `site:*` for every occurrence:
//
//   EVA_FAULT=nan_grad:12                 poison gradients on the 12th step
//   EVA_FAULT=ckpt_bitflip:2,io_write:1   corrupt snapshot 2, fail write 1
//   EVA_FAULT=spice_dc:*                  every DC solve gives up
//
// Sites in use: io_write (util/io atomic writer), ckpt_write /
// ckpt_bitflip (train/checkpoint), nan_grad (all three trainers),
// spice_dc (spice/engine), fom_nan (spice/fom), reward_nan
// (rl/reward_model), serve_accept / serve_slow_client / serve_conn_drop /
// serve_partial_write / serve_stall / replica_crash (serve/server — the
// network-failure family the router's failover and the chaos gate are
// tested against; replica_crash _Exit()s the whole process).
//
// With no spec active, should_fire is one relaxed atomic load.
#pragma once

#include <cstdint>
#include <string_view>

namespace eva::fault {

/// True when any fault spec is active (cheap fast-path check).
[[nodiscard]] bool enabled() noexcept;

/// Count one occurrence of `site` and report whether the active spec
/// fires for it. Fired faults are logged (warn) and counted in the
/// `fault.injected` metric.
[[nodiscard]] bool should_fire(std::string_view site);

/// Install a spec programmatically (tests). Resets all occurrence
/// counters; an empty spec disables injection entirely.
void set_spec(std::string_view spec);

/// Re-read EVA_FAULT from the environment (also resets counters).
void reload_env();

/// Occurrences seen so far for a site (tests / diagnostics).
[[nodiscard]] std::uint64_t occurrences(std::string_view site);

}  // namespace eva::fault
