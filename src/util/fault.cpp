#include "util/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace eva::fault {

namespace {

struct SiteRule {
  std::vector<std::uint64_t> occurrences;  // 1-based trigger points
  bool every = false;                      // `site:*`
};

struct FaultState {
  std::atomic<bool> enabled{false};
  std::mutex mu;
  std::map<std::string, SiteRule, std::less<>> rules;
  std::map<std::string, std::uint64_t, std::less<>> counts;
};

void parse_spec_locked(FaultState& st, std::string_view spec);

FaultState& state() {
  static FaultState* s = [] {
    auto* st = new FaultState();  // leaked: sites may run during atexit
    const char* spec = std::getenv("EVA_FAULT");
    if (spec && *spec) parse_spec_locked(*st, spec);
    return st;
  }();
  return *s;
}

void parse_spec_locked(FaultState& st, std::string_view spec) {
  st.rules.clear();
  st.counts.clear();
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos || colon == 0) continue;
    const std::string site(entry.substr(0, colon));
    const std::string_view when = entry.substr(colon + 1);
    SiteRule& rule = st.rules[site];
    if (when == "*") {
      rule.every = true;
    } else {
      std::uint64_t n = 0;
      for (char c : when) {
        if (c < '0' || c > '9') {
          n = 0;
          break;
        }
        n = n * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (n > 0) rule.occurrences.push_back(n);
    }
  }
  st.enabled.store(!st.rules.empty(), std::memory_order_relaxed);
}

}  // namespace

bool enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

bool should_fire(std::string_view site) {
  FaultState& st = state();
  if (!st.enabled.load(std::memory_order_relaxed)) return false;
  std::uint64_t occurrence = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    const auto it = st.rules.find(site);
    if (it == st.rules.end()) return false;
    occurrence = ++st.counts[std::string(site)];
    fire = it->second.every;
    for (std::uint64_t o : it->second.occurrences) fire |= o == occurrence;
  }
  if (fire) {
    obs::counter("fault.injected").add();
    obs::log_warn("fault.injected",
                  {{"site", site},
                   {"occurrence", static_cast<std::int64_t>(occurrence)}});
  }
  return fire;
}

void set_spec(std::string_view spec) {
  FaultState& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  parse_spec_locked(st, spec);
}

void reload_env() {
  const char* spec = std::getenv("EVA_FAULT");
  set_spec(spec ? spec : "");
}

std::uint64_t occurrences(std::string_view site) {
  FaultState& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  const auto it = st.counts.find(site);
  return it == st.counts.end() ? 0 : it->second;
}

}  // namespace eva::fault
