// Error handling primitives shared across the EVA library.
//
// Policy (per C++ Core Guidelines E.2/E.3): recoverable errors throw
// eva::Error; contract violations (programmer bugs) abort via EVA_ASSERT,
// which stays active in release builds because the cost is negligible
// relative to the numerical work this library does.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace eva {

/// Base exception for all recoverable EVA errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a netlist / sequence / topology is structurally malformed.
class CircuitError : public Error {
 public:
  explicit CircuitError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge or hits a singularity.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed configuration or I/O.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "EVA_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}
}  // namespace detail

}  // namespace eva

/// Contract check: active in all build types. Use for preconditions and
/// invariants whose violation indicates a bug, not bad input.
#define EVA_ASSERT(expr, msg)                                        \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::eva::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                \
  } while (false)

/// Input validation: throws eva::Error on failure. Use for conditions that
/// depend on user-supplied data (files, generated sequences, configs).
#define EVA_REQUIRE(expr, msg)                  \
  do {                                          \
    if (!(expr)) {                              \
      throw ::eva::Error(std::string("requirement failed: ") + (msg)); \
    }                                           \
  } while (false)
