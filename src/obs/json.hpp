// Minimal JSON *emission* helpers shared by the obs sinks (logger JSONL
// lines, metrics export, chrome-trace writer). Emission only — nothing in
// the obs layer parses JSON.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace eva::obs {

/// Append `s` as a quoted, escaped JSON string.
inline void json_string_into(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Append a double as a JSON number. Non-finite values (which JSON cannot
/// represent) become null.
inline void json_number_into(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out += buf;
}

inline void json_number_into(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

}  // namespace eva::obs
