// Structured, thread-safe logging for the EVA engine.
//
// Every call site emits an *event* (a short dotted name like
// "pretrain.step") plus typed key=value fields — no printf-style format
// strings, so the same call renders both as a human-readable stderr line
//
//   [eva 12.431s] INFO  pretrain.step step=25 loss=2.314 tok_s=18234
//
// and, when EVA_LOG_FILE is set, as one JSON object per line (JSONL)
//
//   {"ts_s":12.431,"level":"info","event":"pretrain.step","step":25,...}
//
// Environment control (read once at first use; reload_log_env() re-reads
// for tests):
//   EVA_LOG_LEVEL  trace|debug|info|warn|error|off   (default: info)
//   EVA_LOG_FILE   path of the JSONL sink            (default: none)
//
// Calls below the active level cost one relaxed atomic load. All sinks
// are serialized on an internal mutex, so concurrent workers (the
// parallel_for pool) can log without interleaving lines.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>

namespace eva::obs {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// One typed key=value pair attached to a log event. Implicitly
/// constructible from integral, floating-point and string-ish values so
/// call sites can write {{"step", step}, {"loss", loss}}.
struct LogField {
  enum class Kind { kInt, kFloat, kString };

  template <class T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  LogField(std::string_view k, T v)
      : key(k), kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}

  template <class T, std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  LogField(std::string_view k, T v)
      : key(k), kind(Kind::kFloat), f(static_cast<double>(v)) {}

  LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), s(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), s(v) {}

  std::string_view key;
  Kind kind;
  std::int64_t i = 0;
  double f = 0.0;
  std::string_view s{};
};

using LogFields = std::initializer_list<LogField>;

[[nodiscard]] LogLevel log_level();
void set_log_level(LogLevel lvl);
[[nodiscard]] bool log_enabled(LogLevel lvl);

[[nodiscard]] const char* level_name(LogLevel lvl);
/// Parse "debug", "WARN", ... ; returns `fallback` for anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view name,
                                       LogLevel fallback);

/// Emit one event. No-op (cheaply) below the active level.
void log(LogLevel lvl, std::string_view event, LogFields fields = {});

inline void log_debug(std::string_view event, LogFields fields = {}) {
  log(LogLevel::kDebug, event, fields);
}
inline void log_info(std::string_view event, LogFields fields = {}) {
  log(LogLevel::kInfo, event, fields);
}
inline void log_warn(std::string_view event, LogFields fields = {}) {
  log(LogLevel::kWarn, event, fields);
}
inline void log_error(std::string_view event, LogFields fields = {}) {
  log(LogLevel::kError, event, fields);
}

/// Rate-limited emission keyed by `event`: occurrence 1 is logged, then
/// every `every`-th. A "count" field carrying the total number of
/// occurrences so far is appended automatically. Use for per-item
/// failure paths (e.g. SPICE non-convergence) that would otherwise spam.
void log_every_n(LogLevel lvl, std::string_view event, std::uint64_t every,
                 LogFields fields = {});

/// Point the JSONL sink at `path` (append). An empty path closes it.
void set_log_file(const std::string& path);

/// Mirror-to-stderr control (on by default). Tests and benches that own
/// stdout/stderr formatting can turn the console sink off and keep the
/// JSONL sink.
void set_log_stderr(bool on);

/// Re-read EVA_LOG_LEVEL / EVA_LOG_FILE. For tests.
void reload_log_env();

}  // namespace eva::obs
