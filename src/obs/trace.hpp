// Scoped spans serialized to the chrome://tracing "trace event" JSON
// format, so a pretrain or PPO run can be opened in Perfetto / chrome
// tracing (load the file written to EVA_TRACE_FILE).
//
// Recording is per-thread: each thread appends complete-duration events
// ("ph":"X") to its own buffer (one short uncontended lock per span), and
// the writer stitches all buffers into one JSON object at flush. Buffers
// live for the process lifetime, so spans from pool workers that have
// already exited still reach the file.
//
// Cost model: when tracing is disabled (EVA_TRACE_FILE unset) a Span is
// one relaxed atomic load and a branch — cheap enough to leave in the
// GEMM dispatch and parallel-region hot paths. Span names must be string
// literals (they are stored as pointers, not copied).
#pragma once

#include <cstdint>
#include <string>

namespace eva::obs {

[[nodiscard]] bool trace_enabled() noexcept;
/// Programmatic override (tests, selective tracing of one phase).
void set_trace_enabled(bool on);
/// Re-read EVA_TRACE_FILE to decide the enabled default. For tests.
void reload_trace_env();

namespace detail {
[[nodiscard]] std::uint64_t trace_now_us() noexcept;
void trace_record(const char* name, std::uint64_t t0_us) noexcept;
/// Request-attributed event: serialized under the synthetic "requests"
/// process (pid 2) with tid = request_id, so Perfetto shows one lane per
/// in-flight request, and with {"request_id":N} in the event args.
void trace_record_request(const char* name, std::uint64_t t0_us,
                          std::uint64_t request_id) noexcept;
}  // namespace detail

/// RAII span: measures construction -> destruction as one trace event on
/// the current thread. `name` must outlive the program (string literal).
///
/// The two-argument form attributes the span to a request id: the event
/// lands on that request's own lane (pid 2, tid = id) instead of the
/// recording thread's, which is how the serving layer renders a
/// per-request stage waterfall (queue -> decode -> verify -> write).
class Span {
 public:
  explicit Span(const char* name) noexcept
      : name_(trace_enabled() ? name : nullptr),
        t0_(name_ ? detail::trace_now_us() : 0) {}
  Span(const char* name, std::uint64_t request_id) noexcept
      : name_(trace_enabled() ? name : nullptr),
        t0_(name_ ? detail::trace_now_us() : 0),
        request_id_(request_id),
        has_request_(true) {}
  ~Span() {
    if (!name_) return;
    if (has_request_) {
      detail::trace_record_request(name_, t0_, request_id_);
    } else {
      detail::trace_record(name_, t0_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_;
  std::uint64_t request_id_ = 0;
  bool has_request_ = false;
};

/// All recorded events as a chrome "trace event format" JSON object:
/// {"traceEvents":[{"name":...,"ph":"X","pid":1,"tid":N,"ts":...,
/// "dur":...},...],"displayTimeUnit":"ms"}.
[[nodiscard]] std::string trace_to_json();

/// Write trace_to_json() to `path`. Returns false on I/O failure.
bool write_trace(const std::string& path);

/// Write to $EVA_TRACE_FILE if set (also runs automatically at process
/// exit). Returns false when unset or on I/O failure.
bool write_trace_if_configured();

/// Drop all buffered events. For tests.
void clear_trace();

}  // namespace eva::obs
