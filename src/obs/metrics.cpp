#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>

#include "obs/trace.hpp"

#include "obs/json.hpp"
#include "util/io.hpp"
#include "util/stats.hpp"

namespace eva::obs {

namespace {

struct Registry {
  std::mutex mu;
  // std::map: stable addresses (values are unique_ptr) and sorted export.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<SlidingHistogram>, std::less<>>
      sliding;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();  // leaked: outlives late atexit users
    // Registered after construction, so the flush runs while the
    // registry is still alive even under static-destruction reordering.
    std::atexit([] { write_metrics_if_configured(); });
    return reg;
  }();
  return *r;
}

template <class T>
T& lookup(std::map<std::string, std::unique_ptr<T>, std::less<>>& m,
          std::mutex& mu, std::string_view name) {
  std::lock_guard<std::mutex> lk(mu);
  auto it = m.find(name);
  if (it == m.end()) {
    it = m.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

/// splitmix64: deterministic reservoir replacement index from the count.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t Counter::stripe() noexcept {
  static thread_local const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 7;
  return idx;
}

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lk(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
  if (reservoir_.size() < kReservoir) {
    reservoir_.push_back(v);
  } else {
    reservoir_[mix(count_) % kReservoir] = v;
  }
}

HistogramSnapshot Histogram::snapshot() const {
  std::vector<double> sample;
  HistogramSnapshot s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (count_ == 0) return s;
    s.count = count_;
    s.min = min_;
    s.max = max_;
    s.mean = sum_ / static_cast<double>(count_);
    sample = reservoir_;
  }
  s.p50 = percentile(sample, 50.0);
  s.p90 = percentile(sample, 90.0);
  s.p99 = percentile(sample, 99.0);
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  reservoir_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

SlidingHistogram::SlidingHistogram() : t0_(std::chrono::steady_clock::now()) {}

std::uint64_t SlidingHistogram::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

void SlidingHistogram::record(double v) { record_at(v, now_us()); }

void SlidingHistogram::record_at(double v, std::uint64_t now) {
  const std::uint64_t epoch = now / kBucketUs;
  std::lock_guard<std::mutex> lk(mu_);
  Bucket& b = buckets_[epoch % kBuckets];
  if (b.epoch != epoch) {
    // The bucket last held a window that rotated out >= kWindowUs ago.
    b.epoch = epoch;
    b.count = 0;
    b.sum = 0.0;
    b.samples.clear();
  }
  if (b.count == 0) {
    b.min = b.max = v;
  } else {
    b.min = std::min(b.min, v);
    b.max = std::max(b.max, v);
  }
  b.sum += v;
  ++b.count;
  if (b.samples.size() < kBucketSamples) {
    b.samples.push_back(v);
  } else {
    // Deterministic replacement, same scheme as Histogram's reservoir.
    b.samples[mix(b.count) % kBucketSamples] = v;
  }
  total_.record(v);
}

HistogramSnapshot SlidingHistogram::window_snapshot() const {
  return window_snapshot_at(now_us());
}

HistogramSnapshot SlidingHistogram::window_snapshot_at(
    std::uint64_t now) const {
  const std::uint64_t epoch = now / kBucketUs;
  HistogramSnapshot s;
  std::vector<double> sample;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const Bucket& b : buckets_) {
      // Live buckets cover epochs (epoch - kBuckets, epoch].
      if (b.epoch == ~0ull || b.count == 0) continue;
      if (b.epoch > epoch || b.epoch + kBuckets <= epoch) continue;
      if (s.count == 0) {
        s.min = b.min;
        s.max = b.max;
      } else {
        s.min = std::min(s.min, b.min);
        s.max = std::max(s.max, b.max);
      }
      s.mean += b.sum;  // sum for now; divided below
      s.count += b.count;
      sample.insert(sample.end(), b.samples.begin(), b.samples.end());
    }
  }
  if (s.count == 0) return HistogramSnapshot{};
  s.mean /= static_cast<double>(s.count);
  s.p50 = percentile(sample, 50.0);
  s.p90 = percentile(sample, 90.0);
  s.p99 = percentile(sample, 99.0);
  return s;
}

void SlidingHistogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (Bucket& b : buckets_) b = Bucket{};
  total_.reset();
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  return lookup(r.counters, r.mu, name);
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  return lookup(r.gauges, r.mu, name);
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  return lookup(r.histograms, r.mu, name);
}

SlidingHistogram& sliding_histogram(std::string_view name) {
  Registry& r = registry();
  return lookup(r.sliding, r.mu, name);
}

std::vector<std::pair<std::string, std::int64_t>> counters_with_prefix(
    std::string_view prefix) {
  Registry& r = registry();
  std::vector<std::pair<std::string, const Counter*>> view;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& [name, c] : r.counters) {
      if (name.size() >= prefix.size() &&
          std::string_view(name).substr(0, prefix.size()) == prefix) {
        view.emplace_back(name, c.get());
      }
    }
  }
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(view.size());
  for (const auto& [name, c] : view) out.emplace_back(name, c->value());
  return out;
}

namespace {

void snapshot_into(std::string& out, const HistogramSnapshot& s) {
  out += "{\"count\": " + std::to_string(s.count);
  out += ", \"min\": ";
  json_number_into(out, s.min);
  out += ", \"max\": ";
  json_number_into(out, s.max);
  out += ", \"mean\": ";
  json_number_into(out, s.mean);
  out += ", \"p50\": ";
  json_number_into(out, s.p50);
  out += ", \"p90\": ";
  json_number_into(out, s.p90);
  out += ", \"p99\": ";
  json_number_into(out, s.p99);
  out += "}";
}

}  // namespace

std::string metrics_to_json() {
  Registry& r = registry();
  std::string out = "{\n  \"counters\": {";
  // Snapshot the name->pointer views under the lock; metric reads
  // themselves are internally synchronized.
  std::vector<std::pair<std::string, const Counter*>> cs;
  std::vector<std::pair<std::string, const Gauge*>> gs;
  std::vector<std::pair<std::string, const Histogram*>> hs;
  std::vector<std::pair<std::string, const SlidingHistogram*>> ss;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& [k, v] : r.counters) cs.emplace_back(k, v.get());
    for (const auto& [k, v] : r.gauges) gs.emplace_back(k, v.get());
    for (const auto& [k, v] : r.histograms) hs.emplace_back(k, v.get());
    for (const auto& [k, v] : r.sliding) ss.emplace_back(k, v.get());
  }
  bool first = true;
  for (const auto& [name, c] : cs) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_string_into(out, name);
    out += ": ";
    json_number_into(out, c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gs) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_string_into(out, name);
    out += ": ";
    json_number_into(out, g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : hs) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_string_into(out, name);
    out += ": ";
    snapshot_into(out, h->snapshot());
  }
  out += "\n  },\n  \"sliding\": {";
  first = true;
  for (const auto& [name, h] : ss) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_string_into(out, name);
    out += ": {\"window\": ";
    snapshot_into(out, h->window_snapshot());
    out += ", \"total\": ";
    snapshot_into(out, h->total_snapshot());
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

bool write_metrics(const std::string& path) {
  // Temp + rename so a crash mid-export never leaves half-written JSON.
  return atomic_write_file(path, metrics_to_json());
}

bool write_metrics_if_configured() {
  const char* path = std::getenv("EVA_METRICS_FILE");
  if (!path || !*path) return false;
  return write_metrics(path);
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& [k, c] : r.counters) c->reset();
  for (auto& [k, g] : r.gauges) g->reset();
  for (auto& [k, h] : r.histograms) h->reset();
  for (auto& [k, h] : r.sliding) h->reset();
}

namespace {

std::mutex& export_mu() {
  static std::mutex mu;
  return mu;
}

/// Background exporter driven by EVA_METRICS_FLUSH_SEC. Held in a
/// function-local static so its destructor (stop + join) runs before the
/// atexit metrics flush of the leaked registry — the final snapshot is
/// written exactly once by the atexit hook, never raced by this thread.
class Flusher {
 public:
  ~Flusher() { stop(); }

  bool start(double interval_sec) {
    std::lock_guard<std::mutex> lk(mu_);
    if (running_) return true;
    if (!(interval_sec > 0.0)) return false;
    stop_ = false;
    interval_ = interval_sec;
    thread_ = std::thread([this] { loop(); });
    running_ = true;
    return true;
  }

  void stop() {
    std::thread t;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!running_) return;
      {
        std::lock_guard<std::mutex> wlk(wake_mu_);
        stop_ = true;
      }
      cv_.notify_all();
      t = std::move(thread_);
      running_ = false;
    }
    if (t.joinable()) t.join();
  }

 private:
  void loop() {
    const auto period = std::chrono::duration<double>(interval_);
    std::unique_lock<std::mutex> lk(wake_mu_);
    while (!stop_) {
      if (cv_.wait_for(lk, period, [this] { return stop_; })) break;
      lk.unlock();
      export_now();
      lk.lock();
    }
  }

  std::mutex mu_;        // guards start/stop state
  std::mutex wake_mu_;   // guards stop_ for the cv
  std::condition_variable cv_;
  std::thread thread_;
  double interval_ = 0.0;
  bool stop_ = false;
  bool running_ = false;
};

Flusher& flusher() {
  static Flusher f;
  return f;
}

}  // namespace

bool export_now() {
  // One exporter at a time: the periodic thread, atexit, and explicit
  // callers all funnel through here, and atomic_write_file makes each
  // write all-or-nothing, so readers always see a complete snapshot.
  std::lock_guard<std::mutex> lk(export_mu());
  const bool wrote = write_metrics_if_configured();
  write_trace_if_configured();
  return wrote;
}

bool start_periodic_flush() {
  const char* v = std::getenv("EVA_METRICS_FLUSH_SEC");
  if (!v || !*v) return false;
  char* end = nullptr;
  const double sec = std::strtod(v, &end);
  if (end == v || !(sec > 0.0)) return false;
  return flusher().start(sec);
}

void stop_periodic_flush() { flusher().stop(); }

}  // namespace eva::obs
