// Umbrella header for the observability layer (DESIGN.md "Observability"):
//   log.hpp      structured leveled logging (stderr + JSONL)
//   metrics.hpp  counters / gauges / histograms with JSON export
//   trace.hpp    scoped spans -> chrome://tracing JSON
//
// Environment reference:
//   EVA_LOG_LEVEL          trace|debug|info|warn|error|off (default info)
//   EVA_LOG_FILE           JSONL log sink path
//   EVA_METRICS_FILE       metrics JSON written here at exit / flush()
//   EVA_TRACE_FILE         chrome trace JSON written here at exit /
//                          flush(); setting it enables span recording
//   EVA_METRICS_FLUSH_SEC  periodic export interval for long-lived
//                          processes (see start_periodic_flush())
#pragma once

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace eva::obs {

/// Write the metrics and trace files now (if the env vars are set).
/// Also runs automatically at process exit; call mid-run to checkpoint
/// observability state from long jobs. Serialized against the periodic
/// flusher via export_now().
inline void flush() { export_now(); }

}  // namespace eva::obs
