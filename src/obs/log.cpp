#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/json.hpp"

namespace eva::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// Seconds since the first obs call in the process. Monotonic; shared
/// with the tracer so log timestamps and span timestamps line up.
Clock::time_point process_start() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

double now_s() {
  return std::chrono::duration<double>(Clock::now() - process_start()).count();
}

struct LogState {
  std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
  std::atomic<bool> to_stderr{true};
  std::mutex mu;                 // serializes sink writes + file swaps
  std::FILE* file = nullptr;     // JSONL sink (owned)
  std::map<std::string, std::uint64_t, std::less<>> rate_counts;

  LogState() { load_env(); }

  ~LogState() {
    std::lock_guard<std::mutex> lk(mu);
    if (file) std::fclose(file);
  }

  void load_env() {
    if (const char* lv = std::getenv("EVA_LOG_LEVEL")) {
      level.store(static_cast<int>(parse_log_level(lv, LogLevel::kInfo)),
                  std::memory_order_relaxed);
    }
    if (const char* lf = std::getenv("EVA_LOG_FILE")) {
      open_file(lf);
    }
  }

  void open_file(const std::string& path) {
    std::lock_guard<std::mutex> lk(mu);
    if (file) {
      std::fclose(file);
      file = nullptr;
    }
    if (!path.empty()) file = std::fopen(path.c_str(), "a");
  }
};

LogState& state() {
  static LogState s;
  return s;
}

void append_value_text(std::string& out, const LogField& f) {
  switch (f.kind) {
    case LogField::Kind::kInt: out += std::to_string(f.i); break;
    case LogField::Kind::kFloat: json_number_into(out, f.f); break;
    case LogField::Kind::kString: out.append(f.s); break;
  }
}

void append_value_json(std::string& out, const LogField& f) {
  switch (f.kind) {
    case LogField::Kind::kInt: json_number_into(out, f.i); break;
    case LogField::Kind::kFloat: json_number_into(out, f.f); break;
    case LogField::Kind::kString: json_string_into(out, f.s); break;
  }
}

void emit(LogLevel lvl, std::string_view event, LogFields fields,
          const std::uint64_t* rate_count) {
  const double ts = now_s();
  LogState& s = state();

  std::string line;
  if (s.to_stderr.load(std::memory_order_relaxed)) {
    char head[64];
    std::snprintf(head, sizeof head, "[eva %10.3fs] %-5s ", ts,
                  level_name(lvl));
    line += head;
    line.append(event);
    for (const auto& f : fields) {
      line += ' ';
      line.append(f.key);
      line += '=';
      append_value_text(line, f);
    }
    if (rate_count) line += " count=" + std::to_string(*rate_count);
    line += '\n';
  }

  std::string json;
  {
    // Build the JSONL record only when the file sink is open; checked
    // again under the lock before writing.
    json += "{\"ts_s\":";
    json_number_into(json, ts);
    json += ",\"level\":\"";
    json += level_name(lvl);
    json += "\",\"event\":";
    json_string_into(json, event);
    for (const auto& f : fields) {
      json += ',';
      json_string_into(json, f.key);
      json += ':';
      append_value_json(json, f);
    }
    if (rate_count) json += ",\"count\":" + std::to_string(*rate_count);
    json += "}\n";
  }

  std::lock_guard<std::mutex> lk(s.mu);
  if (!line.empty()) std::fwrite(line.data(), 1, line.size(), stderr);
  if (s.file) {
    std::fwrite(json.data(), 1, json.size(), s.file);
    std::fflush(s.file);
  }
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(state().level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel lvl) {
  state().level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

bool log_enabled(LogLevel lvl) {
  return static_cast<int>(lvl) >=
         state().level.load(std::memory_order_relaxed);
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

void log(LogLevel lvl, std::string_view event, LogFields fields) {
  if (lvl == LogLevel::kOff || !log_enabled(lvl)) return;
  emit(lvl, event, fields, nullptr);
}

void log_every_n(LogLevel lvl, std::string_view event, std::uint64_t every,
                 LogFields fields) {
  if (lvl == LogLevel::kOff || !log_enabled(lvl)) return;
  if (every == 0) every = 1;
  std::uint64_t count;
  {
    LogState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.rate_counts.find(event);
    if (it == s.rate_counts.end()) {
      it = s.rate_counts.emplace(std::string(event), 0).first;
    }
    count = ++it->second;
  }
  if (count != 1 && count % every != 0) return;
  emit(lvl, event, fields, &count);
}

void set_log_file(const std::string& path) { state().open_file(path); }

void set_log_stderr(bool on) {
  state().to_stderr.store(on, std::memory_order_relaxed);
}

void reload_log_env() { state().load_env(); }

}  // namespace eva::obs
