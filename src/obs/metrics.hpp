// Process-wide metrics registry: named counters, gauges, and histograms.
//
// Designed for the PR-1 thread pool: Counter::add is a relaxed atomic
// increment on one of 8 cache-line-sized stripes selected per thread, so
// pool workers never contend on a shared line; Gauge is a single relaxed
// atomic store; Histogram takes a per-instance mutex but is only used on
// per-step / per-solve granularity, never inside elementwise loops.
//
// Lookup by name (counter("x")) takes a registry mutex — hot paths cache
// the returned reference in a function-local static:
//
//   static obs::Counter& tokens = obs::counter("sampler.tokens");
//   tokens.add(n);
//
// References stay valid for the process lifetime; reset_metrics() (tests)
// zeroes values but never deallocates.
//
// Export: metrics_to_json() renders {"counters":{...},"gauges":{...},
// "histograms":{name:{count,min,max,mean,p50,p90,p99}}}; when
// EVA_METRICS_FILE is set the registry writes that JSON there at process
// exit (and on demand via write_metrics()). Percentiles come from
// util/stats over a bounded reservoir per histogram.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <utility>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eva::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    cells_[stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  static std::size_t stripe() noexcept;
  std::array<Cell, 8> cells_;
};

class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double min = 0.0, max = 0.0, mean = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};

/// Running min/max/mean over all recorded values plus percentile
/// estimates over a deterministic bounded reservoir (replacement index
/// derived from the running count, no RNG state).
class Histogram {
 public:
  void record(double v);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

 private:
  static constexpr std::size_t kReservoir = 4096;
  mutable std::mutex mu_;
  std::vector<double> reservoir_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram with a rolling time window next to the since-start totals:
/// the last kWindow seconds are covered by kBuckets rotating sub-second
/// buckets (each holding count/sum/min/max plus a bounded deterministic
/// sample set), so a long-lived server can answer "what is p99 *right
/// now*" without the since-start distribution flattening every spike.
///
/// All clock-facing methods have an `_at(now_us)` twin taking explicit
/// microseconds-since-construction, so tests drive window rotation
/// without sleeping. Thread-safe (one mutex; recorded on per-request
/// granularity, never inside elementwise loops).
class SlidingHistogram {
 public:
  static constexpr std::uint64_t kBuckets = 10;
  static constexpr std::uint64_t kBucketUs = 1'000'000;  // 1 s per bucket
  static constexpr std::uint64_t kWindowUs = kBuckets * kBucketUs;

  SlidingHistogram();

  void record(double v);
  void record_at(double v, std::uint64_t now_us);

  /// Distribution of the last kWindowUs (empty window -> zero snapshot).
  [[nodiscard]] HistogramSnapshot window_snapshot() const;
  [[nodiscard]] HistogramSnapshot window_snapshot_at(
      std::uint64_t now_us) const;

  /// Since-start distribution (same semantics as Histogram).
  [[nodiscard]] HistogramSnapshot total_snapshot() const {
    return total_.snapshot();
  }

  void reset();

 private:
  struct Bucket {
    std::uint64_t epoch = ~0ull;  // now_us / kBucketUs when last written
    std::uint64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0;
    std::vector<double> samples;  // bounded: kBucketSamples
  };
  static constexpr std::size_t kBucketSamples = 512;

  [[nodiscard]] std::uint64_t now_us() const;

  mutable std::mutex mu_;
  Bucket buckets_[kBuckets];
  Histogram total_;
  std::chrono::steady_clock::time_point t0_;
};

/// Registry lookup; creates on first use. Returned references are valid
/// for the process lifetime.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);
[[nodiscard]] SlidingHistogram& sliding_histogram(std::string_view name);

/// Name/value snapshot of every counter whose name starts with `prefix`
/// (sorted by name). For grouped exports like the per-backend GEMM
/// dispatch counts in the serve stats snapshot.
[[nodiscard]] std::vector<std::pair<std::string, std::int64_t>>
counters_with_prefix(std::string_view prefix);

/// Full registry as a JSON object (stable name order).
[[nodiscard]] std::string metrics_to_json();

/// Write metrics_to_json() to `path`. Returns false on I/O failure.
bool write_metrics(const std::string& path);

/// Write to $EVA_METRICS_FILE if set (also runs automatically at process
/// exit). Returns false when unset or on I/O failure.
bool write_metrics_if_configured();

/// Zero every registered metric (values only; objects stay alive so
/// cached references in hot paths never dangle). For tests.
void reset_metrics();

/// Export metrics + trace to their configured files right now.
/// Serialized against concurrent callers (the periodic flusher, the
/// atexit hook, and explicit calls may overlap), and safe to call any
/// number of times — each call overwrites atomically. Returns true when
/// a metrics file was actually written.
bool export_now();

/// Start the background flusher if EVA_METRICS_FLUSH_SEC is set to a
/// positive interval (seconds, fractional allowed): export_now() runs on
/// that cadence until stop_periodic_flush() or process exit. Idempotent;
/// long-lived processes (the serving binary, trainers) call this once at
/// startup. Returns true when a flusher is (now) running.
bool start_periodic_flush();

/// Stop the background flusher (joins its thread). Safe without a prior
/// start. The atexit export still runs, so stopping never loses the
/// final snapshot.
void stop_periodic_flush();

}  // namespace eva::obs
