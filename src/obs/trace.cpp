#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"
#include "util/io.hpp"

namespace eva::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct TraceEvent {
  const char* name;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
  std::uint64_t request_id;  // meaningful iff has_request
  bool has_request;
};

/// Per-thread event buffer. Owned by the global state (so it survives
/// thread exit); the thread keeps only a raw pointer. Bounded so a
/// traced long run cannot exhaust memory — overflow counts as dropped.
struct ThreadBuf {
  static constexpr std::size_t kMaxEvents = 1u << 18;
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  Clock::time_point t0 = Clock::now();
  std::mutex mu;  // guards bufs
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::atomic<std::uint32_t> next_tid{1};

  TraceState() {
    const char* path = std::getenv("EVA_TRACE_FILE");
    enabled.store(path && *path, std::memory_order_relaxed);
  }
};

TraceState& state() {
  static TraceState* s = [] {
    auto* st = new TraceState();  // leaked: spans may outlive static dtors
    std::atexit([] { write_trace_if_configured(); });
    return st;
  }();
  return *s;
}

ThreadBuf& thread_buf() {
  thread_local ThreadBuf* buf = [] {
    auto owned = std::make_unique<ThreadBuf>();
    TraceState& st = state();
    owned->tid = st.next_tid.fetch_add(1, std::memory_order_relaxed);
    ThreadBuf* raw = owned.get();
    std::lock_guard<std::mutex> lk(st.mu);
    st.bufs.push_back(std::move(owned));
    return raw;
  }();
  return *buf;
}

}  // namespace

bool trace_enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  state().enabled.store(on, std::memory_order_relaxed);
}

void reload_trace_env() {
  const char* path = std::getenv("EVA_TRACE_FILE");
  set_trace_enabled(path && *path);
}

namespace detail {

std::uint64_t trace_now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            state().t0)
          .count());
}

namespace {

void record_event(const TraceEvent& e) noexcept {
  ThreadBuf& buf = thread_buf();
  std::lock_guard<std::mutex> lk(buf.mu);
  if (buf.events.size() >= ThreadBuf::kMaxEvents) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(e);
}

}  // namespace

void trace_record(const char* name, std::uint64_t t0_us) noexcept {
  const std::uint64_t now = trace_now_us();
  record_event(TraceEvent{name, t0_us, now - t0_us, 0, false});
}

void trace_record_request(const char* name, std::uint64_t t0_us,
                          std::uint64_t request_id) noexcept {
  const std::uint64_t now = trace_now_us();
  record_event(TraceEvent{name, t0_us, now - t0_us, request_id, true});
}

}  // namespace detail

std::string trace_to_json() {
  TraceState& st = state();
  // Two synthetic processes: pid 1 carries thread-lane events, pid 2
  // carries request-lane events (tid = request id), so Perfetto groups
  // per-request stage waterfalls separately from the thread timelines.
  std::string out =
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"threads\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
      "\"args\":{\"name\":\"requests\"}}";
  bool first = false;
  std::uint64_t dropped = 0;
  std::lock_guard<std::mutex> lk(st.mu);
  for (const auto& buf : st.bufs) {
    std::lock_guard<std::mutex> blk(buf->mu);
    dropped += buf->dropped;
    for (const TraceEvent& e : buf->events) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\":";
      json_string_into(out, e.name);
      if (e.has_request) {
        out += ",\"ph\":\"X\",\"pid\":2,\"tid\":";
        out += std::to_string(e.request_id);
      } else {
        out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
        out += std::to_string(buf->tid);
      }
      out += ",\"ts\":";
      out += std::to_string(e.ts_us);
      out += ",\"dur\":";
      out += std::to_string(e.dur_us);
      if (e.has_request) {
        out += ",\"args\":{\"request_id\":";
        out += std::to_string(e.request_id);
        out += "}";
      }
      out += "}";
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"";
  if (dropped > 0) {
    out += ",\"otherData\":{\"dropped_events\":" + std::to_string(dropped) +
           "}";
  }
  out += "}\n";
  return out;
}

bool write_trace(const std::string& path) {
  // Temp + rename so a crash mid-export never leaves half-written JSON.
  return atomic_write_file(path, trace_to_json());
}

bool write_trace_if_configured() {
  const char* path = std::getenv("EVA_TRACE_FILE");
  if (!path || !*path) return false;
  return write_trace(path);
}

void clear_trace() {
  TraceState& st = state();
  std::lock_guard<std::mutex> lk(st.mu);
  for (auto& buf : st.bufs) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

}  // namespace eva::obs
