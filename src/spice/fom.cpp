#include "spice/fom.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "circuit/validity.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/fault.hpp"

namespace eva::spice {

using circuit::CircuitType;
using circuit::Netlist;

namespace {

/// Map any non-finite performance figure to a failed evaluation. A NaN or
/// Inf FoM must read as "invalid circuit" downstream, never leak into the
/// reward path (where it would poison advantage normalization and Otsu
/// thresholding). Fault site `fom_nan` forces the case.
Performance sanitize(Performance perf) {
  if (perf.ok && fault::enabled() && fault::should_fire("fom_nan")) {
    perf.fom = std::numeric_limits<double>::quiet_NaN();
  }
  const bool finite =
      std::isfinite(perf.fom) && std::isfinite(perf.gain) &&
      std::isfinite(perf.gain_db) && std::isfinite(perf.bw_hz) &&
      std::isfinite(perf.ugbw_hz) && std::isfinite(perf.power_w) &&
      std::isfinite(perf.ratio) && std::isfinite(perf.efficiency);
  if (perf.ok && !finite) {
    obs::counter("spice.fom_nonfinite").add();
    obs::log_every_n(obs::LogLevel::kWarn, "spice.fom_nonfinite", 64,
                     {{"fom", perf.fom}, {"gain", perf.gain}});
    perf = Performance{};  // ok = false, all figures zeroed
  }
  return perf;
}

Performance eval_smallsignal(const Netlist& nl, const Sizing& sz,
                             const SimOptions& base) {
  Performance perf;
  SimOptions opts = base;
  opts.converter_mode = false;
  try {
    Simulator sim(nl, sz, opts);
    if (!sim.solve_dc()) return perf;
    perf.power_w = std::max(sim.supply_power(), 1e-9);
    const auto sweep = sim.ac_sweep(1.0, 1e10, std::max(opts.ac_points, 2));
    if (sweep.empty()) return perf;

    const double a0 = std::abs(sweep.front().h);
    if (!std::isfinite(a0) || a0 > 1e6) {
      // A "gain" this large is a near-singular MNA artifact, not a
      // credible small-signal result: reject rather than reward it.
      return perf;
    }
    perf.gain = a0;
    perf.gain_db = 20.0 * std::log10(std::max(a0, 1e-12));
    // -3 dB bandwidth: first crossing below a0/sqrt(2).
    const double bw_level = a0 / std::sqrt(2.0);
    perf.bw_hz = sweep.back().freq_hz;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      if (std::abs(sweep[i].h) < bw_level) {
        perf.bw_hz = sweep[i - 1].freq_hz;
        break;
      }
    }
    // Unity-gain frequency: first crossing below 1 (0 dB).
    perf.ugbw_hz = 0.0;
    if (a0 > 1.0) {
      perf.ugbw_hz = sweep.back().freq_hz;
      for (std::size_t i = 1; i < sweep.size(); ++i) {
        if (std::abs(sweep[i].h) < 1.0) {
          // Log interpolation between the two sweep points.
          const double m0 = std::abs(sweep[i - 1].h);
          const double m1 = std::abs(sweep[i].h);
          const double t = std::log(m0) / std::max(std::log(m0 / m1), 1e-12);
          perf.ugbw_hz = sweep[i - 1].freq_hz *
                         std::pow(sweep[i].freq_hz / sweep[i - 1].freq_hz,
                                  std::clamp(t, 0.0, 1.0));
          break;
        }
      }
    }
    // FoM: gain * UGBW[MHz] / power[mW]; gain-only fallback keeps a weak
    // signal for circuits that never reach unity gain.
    const double ugbw_mhz = perf.ugbw_hz / 1e6;
    const double p_mw = perf.power_w * 1e3;
    perf.fom = perf.gain * std::max(ugbw_mhz, 1e-3) / std::max(p_mw, 1e-4);
    perf.ok = true;
  } catch (const Error&) {
    perf.ok = false;
  }
  return perf;
}

Performance eval_converter(const Netlist& nl, const Sizing& sz,
                           const SimOptions& base) {
  Performance perf;
  SimOptions opts = base;
  opts.converter_mode = true;
  try {
    double vout_sum = 0.0;
    double pin_sum = 0.0;
    for (const bool phase_a : {true, false}) {
      opts.phase_a = phase_a;
      Simulator sim(nl, sz, opts);
      if (!sim.solve_dc()) return perf;
      vout_sum += sim.io_voltage(nl.uses_io(circuit::IoPin::Vout1)
                                     ? circuit::IoPin::Vout1
                                     : circuit::IoPin::Vout2);
      pin_sum += sim.supply_power();
    }
    const double vout = vout_sum / 2.0;
    const double pin = std::max(pin_sum / 2.0, 1e-12);
    const double pout = vout * vout / opts.load_res;
    perf.ratio = vout / opts.vdd;
    perf.efficiency = std::clamp(pout / pin, 0.0, 1.0);
    perf.power_w = pin;
    perf.fom = std::abs(perf.ratio) * perf.efficiency * 4.0;
    perf.ok = true;
  } catch (const Error&) {
    perf.ok = false;
  }
  return perf;
}

}  // namespace

Performance evaluate(const Netlist& nl, const Sizing& sizing,
                     CircuitType type, const SimOptions& base) {
  if (!circuit::structurally_valid(nl)) return {};
  if (type == CircuitType::PowerConverter) {
    return sanitize(eval_converter(nl, sizing, base));
  }
  return sanitize(eval_smallsignal(nl, sizing, base));
}

Performance evaluate_default(const Netlist& nl, CircuitType type) {
  return evaluate(nl, default_sizing(nl), type);
}

}  // namespace eva::spice
