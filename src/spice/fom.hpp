// Figure-of-merit extraction (paper §IV-A, "Discovery efficiency").
//
// Op-Amps (and other small-signal types): FoM = A0 * UGBW[MHz] / P[mW],
// the classic gain-bandwidth-per-power merit the paper's Op-Amp numbers
// are consistent with (hundreds for simple OTAs, ~1e4 for optimized
// multi-stage designs).
//
// Power converters: two-phase quasi-static averaged analysis; FoM =
// |conversion ratio| * efficiency * 4, landing in the paper's 2-4 range
// for reasonable converters (substitution documented in DESIGN.md §4).
#pragma once

#include "circuit/classify.hpp"
#include "spice/engine.hpp"

namespace eva::spice {

/// Measured performance of one sized topology.
struct Performance {
  bool ok = false;        // simulation succeeded end to end
  double fom = 0.0;       // scalar figure of merit (>= 0)
  // Small-signal details (amplifier-like types):
  double gain = 0.0;      // |H| at low frequency (linear)
  double gain_db = 0.0;
  double bw_hz = 0.0;     // -3 dB bandwidth
  double ugbw_hz = 0.0;   // unity-gain frequency
  double power_w = 0.0;
  // Converter details:
  double ratio = 0.0;       // Vout / Vdd (two-phase average)
  double efficiency = 0.0;  // Pout / Pin
};

/// Evaluate a sized topology as circuit type `type`. Never throws on
/// non-convergence — returns ok = false.
[[nodiscard]] Performance evaluate(const circuit::Netlist& nl,
                                   const Sizing& sizing,
                                   circuit::CircuitType type,
                                   const SimOptions& base = {});

/// Evaluate with default sizing.
[[nodiscard]] Performance evaluate_default(const circuit::Netlist& nl,
                                           circuit::CircuitType type);

}  // namespace eva::spice
