// Dense linear algebra for modified nodal analysis (MNA).
//
// Circuits in this project are small (tens of nets), so a dense LU with
// partial pivoting is the right tool — no sparse machinery needed. The
// solver is templated over the scalar so the same code serves the real
// Newton DC solve and the complex AC solve.
#pragma once

#include <cmath>
#include <complex>
#include <vector>

#include "util/error.hpp"

namespace eva::spice {

/// Dense square matrix with row-major storage.
template <typename Scalar>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), a_(n * n, Scalar{}) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  Scalar& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
  [[nodiscard]] const Scalar& at(std::size_t r, std::size_t c) const {
    return a_[r * n_ + c];
  }
  void clear() { std::fill(a_.begin(), a_.end(), Scalar{}); }

 private:
  std::size_t n_ = 0;
  std::vector<Scalar> a_;
};

namespace detail {
inline double magnitude(double x) { return std::abs(x); }
inline double magnitude(const std::complex<double>& x) { return std::abs(x); }
}  // namespace detail

/// Solve A x = b in place via LU with partial pivoting.
/// Returns false if the matrix is numerically singular.
template <typename Scalar>
[[nodiscard]] bool lu_solve(DenseMatrix<Scalar> a, std::vector<Scalar>& b) {
  const std::size_t n = a.size();
  EVA_ASSERT(b.size() == n, "lu_solve dimension mismatch");
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Pivot selection.
    std::size_t pivot = col;
    double best = detail::magnitude(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = detail::magnitude(a.at(r, col));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best < 1e-18) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(col, c), a.at(pivot, c));
      }
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    const Scalar inv = Scalar{1} / a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const Scalar f = a.at(r, col) * inv;
      if (f == Scalar{}) continue;
      a.at(r, col) = Scalar{};
      for (std::size_t c = col + 1; c < n; ++c) {
        a.at(r, c) -= f * a.at(col, c);
      }
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    Scalar acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a.at(ri, c) * b[c];
    b[ri] = acc / a.at(ri, ri);
  }
  return true;
}

}  // namespace eva::spice
