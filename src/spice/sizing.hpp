// Device sizing: the continuous parameters attached to a fixed topology.
//
// The paper separates topology discovery (EVA's job) from sizing: FoM@10
// is measured "after sizing with a genetic algorithm and SPICE evaluation"
// (§IV-A), and validity is checked "with default sizing" (§III-C1). This
// module defines one primary size per device (MOS width, R/C/L value,
// junction area), the per-device bounds for the GA, and the default sizing.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace eva::spice {

/// One primary size value per device, aligned with Netlist::devices().
struct Sizing {
  std::vector<double> value;
};

/// Search bounds for one device's size. `log_scale` means GA interpolation
/// happens in log space (R/C/L span decades).
struct SizeBounds {
  double lo = 0.0;
  double hi = 0.0;
  double def = 0.0;  // default value (validity checks, initial guesses)
  bool log_scale = true;
};

/// Bounds per device for a netlist.
[[nodiscard]] std::vector<SizeBounds> sizing_space(const circuit::Netlist& nl);

/// The paper's "default sizing" used by the validity checker.
[[nodiscard]] Sizing default_sizing(const circuit::Netlist& nl);

/// Map a unit-cube point u in [0,1]^n to a concrete sizing (the GA's
/// genotype-to-phenotype decoding).
[[nodiscard]] Sizing sizing_from_unit(const circuit::Netlist& nl,
                                      const std::vector<double>& u);

}  // namespace eva::spice
