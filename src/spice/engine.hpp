// Mini-SPICE: nonlinear DC operating point (Newton-Raphson over MNA) and
// small-signal AC analysis.
//
// This is the substitute for the commercial SPICE simulator the paper
// evaluates with (DESIGN.md §4). It supports exactly the oracle signals
// the EVA pipeline needs:
//   * "is this topology simulatable?" — DC convergence with default sizing
//     (the rule-based half of the reward model, and the Validity metric),
//   * small-signal gain / bandwidth / power for FoM extraction,
//   * a two-phase quasi-static mode for switched power converters.
//
// Device models: square-law MOS with channel-length modulation (no body
// effect; the bulk pin participates structurally only), exponential diode,
// BJT as a base-emitter diode driving a beta-scaled VCCS, linear R/C/L.
// Newton uses voltage-step damping plus source stepping as fallback.
#pragma once

#include <chrono>
#include <complex>
#include <optional>
#include <vector>

#include "circuit/netlist.hpp"
#include "spice/mna.hpp"
#include "spice/sizing.hpp"

namespace eva::spice {

/// Global simulation constants and bias plan.
struct SimOptions {
  double vdd = 1.8;
  double vcm = 0.9;    // DC bias on VIN pins (common mode)
  double vb1 = 0.6;    // bias pins
  double vb2 = 1.2;
  double iref = 2e-5;  // reference current injected into the IREF net
  double gmin = 1e-9;  // convergence conductance from every node to ground
  double load_cap = 1e-12;   // AC load on outputs
  double load_res = 100.0;   // converter-mode load on outputs
  int max_newton_iter = 120;
  double newton_tol = 1e-7;
  double max_step = 0.5;     // Newton voltage damping
  /// Converter mode: clock-gated MOS become phase-dependent switches and
  /// a resistive load is attached to the output.
  bool converter_mode = false;
  /// Phase for converter mode: true = CLK1 high / CLK2 low.
  bool phase_a = true;
  /// Wall-clock budget for one solve_dc() across all Newton attempts,
  /// including the source-stepping ramp (<= 0 disables the deadline).
  /// Pathological topologies otherwise burn an unbounded slice of every
  /// RL epoch in the reward path.
  double dc_deadline_ms = 2000.0;
  /// Hard cap on Newton attempts per solve_dc() (initial solve plus
  /// source-stepping ramp stages).
  int max_dc_attempts = 16;
  /// Points in the log-spaced AC sweep FoM extraction runs (each point is
  /// one complex linear solve, so cost scales linearly). 61 resolves the
  /// -3 dB and unity-gain crossings to ~1/6 decade; deployments standing
  /// in for a commercial simulator raise it (EVA_AC_POINTS) to model
  /// SPICE-bound verification cost.
  int ac_points = 61;
};

/// One point of an AC transfer-function sweep.
struct AcPoint {
  double freq_hz = 0.0;
  std::complex<double> h;  // Vout / Vin
};

/// Outcome of a DC solve. Distinguishes "the solver gave up" from
/// "this circuit has no operating point worth reporting": a failed
/// Newton attempt that the source-stepping fallback rescues still
/// counts in failed_attempts, and a final non-convergence leaves
/// converged == false with the attempt trail intact.
struct SolveResult {
  bool converged = false;
  int iterations = 0;           // NR iterations summed over all attempts
  int failed_attempts = 0;      // attempts that hit the cap or a singular LU
  bool used_source_stepping = false;
  bool deadline_exceeded = false;  // gave up on the wall-clock/attempt caps
};

/// DC + AC simulation of one sized netlist.
///
/// Preconditions: the netlist must be structurally valid (all pins in
/// nets, VSS present). Construction performs the netlist -> MNA mapping;
/// solve_dc() runs Newton; ac_sweep() requires a converged DC point.
class Simulator {
 public:
  Simulator(const circuit::Netlist& nl, const Sizing& sizing,
            SimOptions opts = {});

  /// Newton DC solve (with source-stepping fallback). Returns success.
  /// Iteration counts, fallback use and failure detail are recorded in
  /// dc_result() and in the obs metrics (spice.nr_iters histogram,
  /// spice.dc_nonconverged counter).
  [[nodiscard]] bool solve_dc();

  /// Detail of the most recent solve_dc() call.
  [[nodiscard]] const SolveResult& dc_result() const { return dc_result_; }

  /// Voltage of the net containing the given IO pin at the DC point.
  /// Requires a converged DC solve. Returns 0 for the ground net.
  [[nodiscard]] double io_voltage(circuit::IoPin pin) const;

  /// Total supply power (VDD source power + IREF bias power), W.
  [[nodiscard]] double supply_power() const;

  /// Log-spaced AC transfer sweep Vout/Vin. Uses differential drive on
  /// VIN1/VIN2 when both exist, single-ended VIN otherwise. Output is
  /// VOUT1 (falling back to VOUT2).
  [[nodiscard]] std::vector<AcPoint> ac_sweep(double f_lo = 1.0,
                                              double f_hi = 1e10,
                                              int points = 61) const;

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] bool dc_converged() const { return dc_converged_; }

 private:
  struct DeviceCtx {
    circuit::DeviceKind kind{};
    double size = 0.0;
    int n[4] = {-1, -1, -1, -1};  // node per pin (-1 = ground)
    bool clk_gate = false;        // gate driven by a clock net
    bool clk_is_phase1 = false;   // ... by CLK1 (vs CLK2)
  };
  struct VSource {
    int node = -1;
    double dc = 0.0;
    std::complex<double> ac{0.0, 0.0};
  };

  [[nodiscard]] bool newton(double source_scale);
  /// True once the solve_dc() wall-clock deadline has passed (marks the
  /// result; checked once per Newton iteration).
  [[nodiscard]] bool dc_deadline_hit();
  void stamp_dc(DenseMatrix<double>& mat, std::vector<double>& rhs,
                const std::vector<double>& v, double source_scale) const;

  const circuit::Netlist* nl_;
  SimOptions opts_;
  std::chrono::steady_clock::time_point dc_deadline_{};
  bool dc_deadline_armed_ = false;
  int num_nodes_ = 0;   // non-ground nets
  int num_vsrc_ = 0;
  std::vector<DeviceCtx> devs_;
  std::vector<VSource> vsrcs_;
  // IREF attachments: node plus current direction (+1 injects into the
  // net — an NMOS-diode reference; -1 sinks out of it — a PMOS-diode
  // reference, which must pull current from the mirror).
  std::vector<std::pair<int, double>> iref_nodes_;
  std::vector<int> out_nodes_;  // nets carrying VOUT pins
  int in1_node_ = -1, in2_node_ = -1;
  int vdd_src_ = -1;  // index into vsrcs_ of the VDD source
  std::vector<double> v_;  // solution: node voltages then source currents
  bool dc_converged_ = false;
  SolveResult dc_result_;
};

/// Why a netlist failed (or passed) the validity predicate. Lets the
/// validity metrics separate "invalid circuit" from "solver gave up".
enum class SimVerdict {
  kOk,                   // structurally valid and DC-converged
  kStructurallyInvalid,  // failed circuit::structurally_valid
  kNonConverged,         // Newton + source stepping both gave up
  kError,                // netlist -> MNA mapping threw (malformed input)
};

[[nodiscard]] SimVerdict simulatable_verdict(const circuit::Netlist& nl);

/// The paper's validity predicate: structurally sound AND simulatable with
/// default sizing (DC operating point exists). Equivalent to
/// simulatable_verdict(nl) == SimVerdict::kOk.
[[nodiscard]] bool simulatable(const circuit::Netlist& nl);

}  // namespace eva::spice
