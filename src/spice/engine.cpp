#include "spice/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "circuit/validity.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"

namespace eva::spice {

using circuit::Device;
using circuit::DeviceKind;
using circuit::IoPin;
using circuit::Netlist;

namespace {

// Technology-like constants for the behavioural device models.
constexpr double kVthN = 0.5;
constexpr double kVthP = 0.5;
constexpr double kKpN = 2.0e-4;   // A/V^2 per W/L
constexpr double kKpP = 8.0e-5;
constexpr double kMosL = 1.0e-6;  // fixed channel length
constexpr double kLambda = 0.1;
constexpr double kDiodeIs = 1e-14;
constexpr double kVt = 0.02585;
constexpr double kBjtBeta = 100.0;
constexpr double kBjtVa = 50.0;
constexpr double kIndDcRes = 1.0;   // inductor DC series resistance
constexpr double kSwitchOn = 2.0;   // converter-mode switch on-resistance
constexpr double kSwitchOff = 1e8;  // ... off-resistance

/// Current into the drain of an NMOS-like device plus its partials with
/// respect to the gate/drain/source node voltages.
struct MosEval {
  double id = 0.0;
  double gg = 0.0, gd = 0.0, gs = 0.0;
};

void nmos_core(double vgs, double vds, double k, double vth, double& id,
               double& gm, double& go) {
  const double vov = vgs - vth;
  if (vov <= 0.0) {
    id = 0.0;
    gm = 0.0;
    go = 0.0;
    return;
  }
  if (vds < vov) {  // triode
    id = k * (vov * vds - 0.5 * vds * vds) * (1.0 + kLambda * vds);
    gm = k * vds * (1.0 + kLambda * vds);
    go = k * (vov - vds) * (1.0 + kLambda * vds) +
         k * (vov * vds - 0.5 * vds * vds) * kLambda;
  } else {  // saturation
    id = 0.5 * k * vov * vov * (1.0 + kLambda * vds);
    gm = k * vov * (1.0 + kLambda * vds);
    go = 0.5 * k * vov * vov * kLambda;
  }
}

MosEval eval_nmos_like(double vg, double vd, double vs, double k, double vth) {
  MosEval e;
  if (vd >= vs) {
    double id = 0, gm = 0, go = 0;
    nmos_core(vg - vs, vd - vs, k, vth, id, gm, go);
    e.id = id;
    e.gg = gm;
    e.gd = go;
    e.gs = -(gm + go);
  } else {
    // Conduction with drain/source roles swapped.
    double id = 0, gm = 0, go = 0;
    nmos_core(vg - vd, vs - vd, k, vth, id, gm, go);
    e.id = -id;
    e.gg = -gm;
    e.gd = gm + go;
    e.gs = -go;
  }
  return e;
}

MosEval eval_mos(double vg, double vd, double vs, double width, bool pmos) {
  const double wl = width / kMosL;
  if (!pmos) return eval_nmos_like(vg, vd, vs, kKpN * wl, kVthN);
  MosEval e = eval_nmos_like(-vg, -vd, -vs, kKpP * wl, kVthP);
  e.id = -e.id;  // partials keep their sign (see DESIGN notes)
  return e;
}

/// Diode current A->K and conductance, with exponent clamping.
void eval_diode(double v, double area, double& id, double& g) {
  const double x = std::clamp(v / kVt, -60.0, 40.0);
  const double ex = std::exp(x);
  id = kDiodeIs * area * (ex - 1.0);
  g = kDiodeIs * area * ex / kVt;
  if (x >= 40.0) {
    // Linear continuation beyond the clamp keeps Newton bounded.
    id += g * (v - 40.0 * kVt);
  }
}

}  // namespace

Simulator::Simulator(const Netlist& nl, const Sizing& sizing, SimOptions opts)
    : nl_(&nl), opts_(opts) {
  EVA_REQUIRE(sizing.value.size() == nl.devices().size(),
              "sizing does not match netlist");

  // Map nets to nodes. The net containing VSS is ground (-1).
  const auto& nets = nl.nets();
  std::vector<int> net_node(nets.size(), -1);
  int ground = -1;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    for (const auto& p : nets[i]) {
      if (p.is_io() && p.io == IoPin::Vss) {
        ground = static_cast<int>(i);
      }
    }
  }
  EVA_REQUIRE(ground >= 0, "netlist has no VSS net");
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (static_cast<int>(i) == ground) continue;
    net_node[i] = num_nodes_++;
  }

  // Bias plan: forced DC value per IO pin (priority order within a net:
  // VDD > CLK > VB > VIN; IREF and VOUT are not voltage-forced).
  auto forced_voltage = [&](const circuit::Net& net) -> std::optional<double> {
    std::optional<double> v;
    int prio = -1;
    for (const auto& p : net) {
      if (!p.is_io()) continue;
      int pr = -1;
      double val = 0.0;
      switch (p.io) {
        case IoPin::Vdd: pr = 3; val = opts_.vdd; break;
        case IoPin::Clk1: pr = 2; val = opts_.vdd; break;
        case IoPin::Clk2: pr = 2; val = 0.0; break;
        case IoPin::Vb1: pr = 1; val = opts_.vb1; break;
        case IoPin::Vb2: pr = 1; val = opts_.vb2; break;
        case IoPin::Vin1:
        case IoPin::Vin2: pr = 0; val = opts_.vcm; break;
        default: break;
      }
      if (pr > prio) {
        prio = pr;
        v = val;
      }
    }
    return v;
  };

  for (std::size_t i = 0; i < nets.size(); ++i) {
    const int node = net_node[i];
    bool has_vin1 = false, has_vin2 = false, has_vout = false, has_iref = false;
    bool has_vdd = false;
    for (const auto& p : nets[i]) {
      if (!p.is_io()) continue;
      has_vin1 |= p.io == IoPin::Vin1;
      has_vin2 |= p.io == IoPin::Vin2;
      has_vout |= p.io == IoPin::Vout1 || p.io == IoPin::Vout2;
      has_iref |= p.io == IoPin::Iref;
      has_vdd |= p.io == IoPin::Vdd;
    }
    if (node < 0) continue;  // ground net: no sources
    if (auto fv = forced_voltage(nets[i])) {
      if (has_vdd) vdd_src_ = static_cast<int>(vsrcs_.size());
      vsrcs_.push_back(VSource{node, *fv, {0.0, 0.0}});
    }
    if (has_vin1) in1_node_ = node;
    if (has_vin2) in2_node_ = node;
    if (has_vout) out_nodes_.push_back(node);
    if (has_iref) {
      // Direction heuristic: a reference net touching a PMOS is a
      // PMOS-diode mirror input and must sink current; otherwise inject.
      double sign = 1.0;
      for (const auto& p : nets[i]) {
        if (!p.is_io() &&
            nl.devices()[static_cast<std::size_t>(p.device)].kind ==
                DeviceKind::Pmos) {
          sign = -1.0;
        }
      }
      iref_nodes_.emplace_back(node, sign);
    }
  }
  num_vsrc_ = static_cast<int>(vsrcs_.size());

  // AC drive on the input sources.
  for (auto& src : vsrcs_) {
    if (src.node == in1_node_ && in1_node_ >= 0) {
      src.ac = (in2_node_ >= 0 && in2_node_ != in1_node_)
                   ? std::complex<double>{0.5, 0.0}
                   : std::complex<double>{1.0, 0.0};
    } else if (src.node == in2_node_ && in2_node_ >= 0 &&
               in2_node_ != in1_node_) {
      src.ac = {-0.5, 0.0};
    }
  }

  // Device contexts.
  devs_.reserve(nl.devices().size());
  for (int d = 0; d < nl.num_devices(); ++d) {
    const Device& dev = nl.devices()[static_cast<std::size_t>(d)];
    DeviceCtx ctx;
    ctx.kind = dev.kind;
    ctx.size = sizing.value[static_cast<std::size_t>(d)];
    for (int p = 0; p < pin_count(dev.kind); ++p) {
      const auto net = nl.net_of(circuit::dev_ref(d, p));
      EVA_REQUIRE(net.has_value(), "simulator requires all pins connected");
      ctx.n[p] = net_node[static_cast<std::size_t>(*net)];
    }
    if (dev.kind == DeviceKind::Nmos || dev.kind == DeviceKind::Pmos) {
      const auto gnet = nl.net_of(circuit::dev_ref(d, circuit::mos::G));
      for (const auto& p : nets[static_cast<std::size_t>(*gnet)]) {
        if (p.is_io() && (p.io == IoPin::Clk1 || p.io == IoPin::Clk2)) {
          ctx.clk_gate = true;
          ctx.clk_is_phase1 = p.io == IoPin::Clk1;
        }
      }
    }
    devs_.push_back(ctx);
  }
  v_.assign(static_cast<std::size_t>(num_nodes_ + num_vsrc_), 0.0);
}

void Simulator::stamp_dc(DenseMatrix<double>& a, std::vector<double>& rhs,
                         const std::vector<double>& v,
                         double source_scale) const {
  const auto K = static_cast<std::size_t>(num_nodes_);
  auto volt = [&](int n) { return n < 0 ? 0.0 : v[static_cast<std::size_t>(n)]; };
  // Conductance between two nodes (either may be ground).
  auto stamp_g = [&](int na, int nb, double g) {
    if (na >= 0) a.at(static_cast<std::size_t>(na), static_cast<std::size_t>(na)) += g;
    if (nb >= 0) a.at(static_cast<std::size_t>(nb), static_cast<std::size_t>(nb)) += g;
    if (na >= 0 && nb >= 0) {
      a.at(static_cast<std::size_t>(na), static_cast<std::size_t>(nb)) -= g;
      a.at(static_cast<std::size_t>(nb), static_cast<std::size_t>(na)) -= g;
    }
  };
  // Nonlinear current I flowing INTO node `into` and OUT of node `outof`,
  // with partials w.r.t. arbitrary controlling nodes.
  auto stamp_current = [&](int node, double current_into) {
    if (node >= 0) rhs[static_cast<std::size_t>(node)] += current_into;
  };
  auto stamp_partial = [&](int row, int col, double g) {
    if (row >= 0 && col >= 0) {
      a.at(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += g;
    }
  };

  // gmin from every node to ground.
  for (std::size_t n = 0; n < K; ++n) a.at(n, n) += opts_.gmin;

  for (const auto& d : devs_) {
    switch (d.kind) {
      case DeviceKind::Resistor:
        stamp_g(d.n[0], d.n[1], 1.0 / std::max(d.size, 1e-3));
        break;
      case DeviceKind::Capacitor:
        // Open at DC (gmin keeps the node anchored).
        stamp_g(d.n[0], d.n[1], opts_.gmin);
        break;
      case DeviceKind::Inductor:
        stamp_g(d.n[0], d.n[1], 1.0 / kIndDcRes);
        break;
      case DeviceKind::Diode: {
        const double vv = volt(d.n[0]) - volt(d.n[1]);
        double id = 0, g = 0;
        eval_diode(vv, d.size, id, g);
        stamp_g(d.n[0], d.n[1], g);
        const double ieq = id - g * vv;  // companion current A->K
        stamp_current(d.n[0], -ieq);
        stamp_current(d.n[1], ieq);
        break;
      }
      case DeviceKind::Nmos:
      case DeviceKind::Pmos: {
        if (opts_.converter_mode && d.clk_gate) {
          const bool on = d.clk_is_phase1 == opts_.phase_a;
          stamp_g(d.n[circuit::mos::D], d.n[circuit::mos::S],
                  1.0 / (on ? kSwitchOn : kSwitchOff));
          break;
        }
        const int ng = d.n[circuit::mos::G];
        const int nd = d.n[circuit::mos::D];
        const int ns = d.n[circuit::mos::S];
        const MosEval e = eval_mos(volt(ng), volt(nd), volt(ns), d.size,
                                   d.kind == DeviceKind::Pmos);
        // Rows: current e.id into the device at D, out at S.
        stamp_partial(nd, ng, e.gg);
        stamp_partial(nd, nd, e.gd);
        stamp_partial(nd, ns, e.gs);
        stamp_partial(ns, ng, -e.gg);
        stamp_partial(ns, nd, -e.gd);
        stamp_partial(ns, ns, -e.gs);
        const double ieq =
            e.id - e.gg * volt(ng) - e.gd * volt(nd) - e.gs * volt(ns);
        stamp_current(nd, -ieq);
        stamp_current(ns, ieq);
        // Small drain-source leak improves conditioning.
        stamp_g(nd, ns, opts_.gmin);
        break;
      }
      case DeviceKind::Npn:
      case DeviceKind::Pnp: {
        const bool pnp = d.kind == DeviceKind::Pnp;
        const int nc = d.n[circuit::bjt::C];
        const int nb = d.n[circuit::bjt::B];
        const int ne = d.n[circuit::bjt::E];
        const double sign = pnp ? -1.0 : 1.0;
        const double vbe = sign * (volt(nb) - volt(ne));
        const double vce = sign * (volt(nc) - volt(ne));
        double ibe = 0, gbe = 0;
        eval_diode(vbe, d.size / kBjtBeta, ibe, gbe);
        const double early = 1.0 + std::max(vce, 0.0) / kBjtVa;
        const double ic = kBjtBeta * ibe * early;
        const double gm = kBjtBeta * gbe * early;
        const double go = vce > 0.0 ? kBjtBeta * ibe / kBjtVa : opts_.gmin;
        // NPN currents: IC into C, IB into B, -(IC+IB) into E. For PNP all
        // currents and controlling voltages flip sign; partials w.r.t.
        // node voltages keep their sign (double negation).
        // Row C: ic = gm*vbe + go*vce (about the OP)
        stamp_partial(nc, nb, gm);
        stamp_partial(nc, ne, -gm - go);
        stamp_partial(nc, nc, go);
        // Row B: ibe = gbe*vbe
        stamp_partial(nb, nb, gbe);
        stamp_partial(nb, ne, -gbe);
        // Row E: -(ic + ibe)
        stamp_partial(ne, nb, -gm - gbe);
        stamp_partial(ne, ne, gm + go + gbe);
        stamp_partial(ne, nc, -go);
        const double ic_eq =
            sign * ic - gm * (volt(nb) - volt(ne)) - go * (volt(nc) - volt(ne));
        const double ib_eq = sign * ibe - gbe * (volt(nb) - volt(ne));
        stamp_current(nc, -ic_eq);
        stamp_current(nb, -ib_eq);
        stamp_current(ne, ic_eq + ib_eq);
        break;
      }
    }
  }

  // Converter-mode resistive load on the first output.
  if (opts_.converter_mode && !out_nodes_.empty()) {
    stamp_g(out_nodes_.front(), -1, 1.0 / opts_.load_res);
  }

  // IREF current injection / sinking.
  for (const auto& [n, sign] : iref_nodes_) {
    stamp_current(n, sign * opts_.iref * source_scale);
  }

  // Voltage sources (branch unknowns after the node block).
  for (std::size_t s = 0; s < vsrcs_.size(); ++s) {
    const std::size_t br = K + s;
    const int n = vsrcs_[s].node;
    if (n >= 0) {
      a.at(static_cast<std::size_t>(n), br) += 1.0;
      a.at(br, static_cast<std::size_t>(n)) += 1.0;
    }
    rhs[br] = vsrcs_[s].dc * source_scale;
  }
}

bool Simulator::dc_deadline_hit() {
  if (!dc_deadline_armed_ ||
      std::chrono::steady_clock::now() < dc_deadline_) {
    return false;
  }
  dc_result_.deadline_exceeded = true;
  return true;
}

bool Simulator::newton(double source_scale) {
  const auto total = static_cast<std::size_t>(num_nodes_ + num_vsrc_);
  for (int iter = 0; iter < opts_.max_newton_iter; ++iter) {
    if (dc_deadline_hit()) {
      ++dc_result_.failed_attempts;
      return false;
    }
    ++dc_result_.iterations;
    DenseMatrix<double> a(total);
    std::vector<double> rhs(total, 0.0);
    stamp_dc(a, rhs, v_, source_scale);
    std::vector<double> x = rhs;
    if (!lu_solve(std::move(a), x)) {
      ++dc_result_.failed_attempts;
      return false;
    }
    double max_dv = 0.0;
    for (std::size_t n = 0; n < static_cast<std::size_t>(num_nodes_); ++n) {
      double dv = x[n] - v_[n];
      max_dv = std::max(max_dv, std::abs(dv));
      dv = std::clamp(dv, -opts_.max_step, opts_.max_step);
      v_[n] += dv;
    }
    for (std::size_t b = static_cast<std::size_t>(num_nodes_); b < total; ++b) {
      v_[b] = x[b];
    }
    if (max_dv < opts_.newton_tol) return true;
  }
  ++dc_result_.failed_attempts;
  return false;
}

bool Simulator::solve_dc() {
  static obs::Counter& solves = obs::counter("spice.dc_solves");
  static obs::Counter& nonconverged = obs::counter("spice.dc_nonconverged");
  static obs::Histogram& iters_h = obs::histogram("spice.nr_iters");

  obs::Span span("spice.solve_dc");
  dc_converged_ = false;
  dc_result_ = SolveResult{};
  solves.add();

  if (fault::enabled() && fault::should_fire("spice_dc")) {
    nonconverged.add();
    obs::log_warn("spice.dc_fault_injected", {{"devices", nl_->num_devices()}});
    return false;
  }

  dc_deadline_armed_ = opts_.dc_deadline_ms > 0.0;
  if (dc_deadline_armed_) {
    dc_deadline_ = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           opts_.dc_deadline_ms));
  }
  int attempts = 0;
  auto attempt = [&](double scale) {
    ++attempts;
    if (attempts > opts_.max_dc_attempts) {
      dc_result_.deadline_exceeded = true;
      ++dc_result_.failed_attempts;
      return false;
    }
    return newton(scale);
  };

  std::fill(v_.begin(), v_.end(), 0.0);
  if (attempt(1.0)) {
    dc_converged_ = true;
  } else if (!dc_result_.deadline_exceeded) {
    // Source stepping: ramp supplies, reusing each solution as the guess.
    dc_result_.used_source_stepping = true;
    std::fill(v_.begin(), v_.end(), 0.0);
    dc_converged_ = true;
    for (double scale = 0.1; scale <= 1.0001; scale += 0.1) {
      if (!attempt(scale)) {
        dc_converged_ = false;
        break;
      }
    }
  }
  dc_result_.converged = dc_converged_;
  iters_h.record(static_cast<double>(dc_result_.iterations));
  if (dc_result_.deadline_exceeded) {
    static obs::Counter& deadline_c =
        obs::counter("spice.dc_deadline_exceeded");
    deadline_c.add();
    obs::log_every_n(obs::LogLevel::kWarn, "spice.dc_deadline_exceeded", 64,
                     {{"devices", nl_->num_devices()},
                      {"iterations", dc_result_.iterations},
                      {"deadline_ms", opts_.dc_deadline_ms}});
  }
  if (!dc_converged_) {
    // Previously this path returned without any signal; now every give-up
    // is counted and (rate-limited) logged with its attempt trail.
    nonconverged.add();
    obs::log_every_n(obs::LogLevel::kWarn, "spice.dc_nonconverged", 64,
                     {{"devices", nl_->num_devices()},
                      {"nodes", num_nodes_},
                      {"iterations", dc_result_.iterations},
                      {"failed_attempts", dc_result_.failed_attempts}});
  }
  return dc_converged_;
}

double Simulator::io_voltage(IoPin pin) const {
  EVA_ASSERT(dc_converged_, "io_voltage requires a converged DC solve");
  const auto& nets = nl_->nets();
  for (std::size_t i = 0; i < nets.size(); ++i) {
    for (const auto& p : nets[i]) {
      if (p.is_io() && p.io == pin) {
        // Re-derive node id: count non-ground nets before i.
        int ground = -1;
        for (std::size_t j = 0; j < nets.size(); ++j) {
          for (const auto& q : nets[j]) {
            if (q.is_io() && q.io == IoPin::Vss) ground = static_cast<int>(j);
          }
        }
        if (static_cast<int>(i) == ground) return 0.0;
        int node = 0;
        for (std::size_t j = 0; j < i; ++j) {
          if (static_cast<int>(j) != ground) ++node;
        }
        return v_[static_cast<std::size_t>(node)];
      }
    }
  }
  return 0.0;
}

double Simulator::supply_power() const {
  EVA_ASSERT(dc_converged_, "supply_power requires a converged DC solve");
  double p = opts_.vdd * opts_.iref * static_cast<double>(iref_nodes_.size());
  if (vdd_src_ >= 0) {
    const double i =
        v_[static_cast<std::size_t>(num_nodes_ + vdd_src_)];
    p += std::abs(i) * opts_.vdd;
  }
  return p;
}

std::vector<AcPoint> Simulator::ac_sweep(double f_lo, double f_hi,
                                         int points) const {
  EVA_ASSERT(dc_converged_, "ac_sweep requires a converged DC solve");
  EVA_REQUIRE(points >= 2 && f_hi > f_lo && f_lo > 0, "bad AC sweep range");
  const auto K = static_cast<std::size_t>(num_nodes_);
  const std::size_t total = K + vsrcs_.size();
  const int out = out_nodes_.empty() ? -1 : out_nodes_.front();

  auto volt = [&](int n) {
    return n < 0 ? 0.0 : v_[static_cast<std::size_t>(n)];
  };

  std::vector<AcPoint> sweep;
  sweep.reserve(static_cast<std::size_t>(points));
  for (int pt = 0; pt < points; ++pt) {
    const double f = f_lo * std::pow(f_hi / f_lo,
                                     static_cast<double>(pt) /
                                         static_cast<double>(points - 1));
    const double w = 2.0 * 3.141592653589793 * f;
    DenseMatrix<std::complex<double>> a(total);
    std::vector<std::complex<double>> rhs(total, {0.0, 0.0});

    auto stamp_y = [&](int na, int nb, std::complex<double> y) {
      if (na >= 0) a.at(static_cast<std::size_t>(na), static_cast<std::size_t>(na)) += y;
      if (nb >= 0) a.at(static_cast<std::size_t>(nb), static_cast<std::size_t>(nb)) += y;
      if (na >= 0 && nb >= 0) {
        a.at(static_cast<std::size_t>(na), static_cast<std::size_t>(nb)) -= y;
        a.at(static_cast<std::size_t>(nb), static_cast<std::size_t>(na)) -= y;
      }
    };
    auto stamp_partial = [&](int row, int col, double g) {
      if (row >= 0 && col >= 0) {
        a.at(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += g;
      }
    };

    for (std::size_t n = 0; n < K; ++n) a.at(n, n) += opts_.gmin;

    for (const auto& d : devs_) {
      switch (d.kind) {
        case DeviceKind::Resistor:
          stamp_y(d.n[0], d.n[1], 1.0 / std::max(d.size, 1e-3));
          break;
        case DeviceKind::Capacitor:
          stamp_y(d.n[0], d.n[1], std::complex<double>{0.0, w * d.size});
          break;
        case DeviceKind::Inductor:
          stamp_y(d.n[0], d.n[1],
                  1.0 / std::complex<double>{kIndDcRes, w * d.size});
          break;
        case DeviceKind::Diode: {
          double id = 0, g = 0;
          eval_diode(volt(d.n[0]) - volt(d.n[1]), d.size, id, g);
          stamp_y(d.n[0], d.n[1], g);
          break;
        }
        case DeviceKind::Nmos:
        case DeviceKind::Pmos: {
          if (opts_.converter_mode && d.clk_gate) {
            const bool on = d.clk_is_phase1 == opts_.phase_a;
            stamp_y(d.n[circuit::mos::D], d.n[circuit::mos::S],
                    1.0 / (on ? kSwitchOn : kSwitchOff));
            break;
          }
          const int ng = d.n[circuit::mos::G];
          const int nd = d.n[circuit::mos::D];
          const int ns = d.n[circuit::mos::S];
          const MosEval e = eval_mos(volt(ng), volt(nd), volt(ns), d.size,
                                     d.kind == DeviceKind::Pmos);
          stamp_partial(nd, ng, e.gg);
          stamp_partial(nd, nd, e.gd);
          stamp_partial(nd, ns, e.gs);
          stamp_partial(ns, ng, -e.gg);
          stamp_partial(ns, nd, -e.gd);
          stamp_partial(ns, ns, -e.gs);
          break;
        }
        case DeviceKind::Npn:
        case DeviceKind::Pnp: {
          const bool pnp = d.kind == DeviceKind::Pnp;
          const int nc = d.n[circuit::bjt::C];
          const int nb = d.n[circuit::bjt::B];
          const int ne = d.n[circuit::bjt::E];
          const double sign = pnp ? -1.0 : 1.0;
          const double vbe = sign * (volt(nb) - volt(ne));
          const double vce = sign * (volt(nc) - volt(ne));
          double ibe = 0, gbe = 0;
          eval_diode(vbe, d.size / kBjtBeta, ibe, gbe);
          const double early = 1.0 + std::max(vce, 0.0) / kBjtVa;
          const double gm = kBjtBeta * gbe * early;
          const double go =
              vce > 0.0 ? kBjtBeta * ibe / kBjtVa : opts_.gmin;
          stamp_partial(nc, nb, gm);
          stamp_partial(nc, ne, -gm - go);
          stamp_partial(nc, nc, go);
          stamp_partial(nb, nb, gbe);
          stamp_partial(nb, ne, -gbe);
          stamp_partial(ne, nb, -gm - gbe);
          stamp_partial(ne, ne, gm + go + gbe);
          stamp_partial(ne, nc, -go);
          break;
        }
      }
    }

    // Output load capacitance.
    for (int n : out_nodes_) {
      stamp_y(n, -1, std::complex<double>{0.0, w * opts_.load_cap});
    }
    if (opts_.converter_mode && !out_nodes_.empty()) {
      stamp_y(out_nodes_.front(), -1, 1.0 / opts_.load_res);
    }

    for (std::size_t s = 0; s < vsrcs_.size(); ++s) {
      const std::size_t br = K + s;
      const int n = vsrcs_[s].node;
      if (n >= 0) {
        a.at(static_cast<std::size_t>(n), br) += 1.0;
        a.at(br, static_cast<std::size_t>(n)) += 1.0;
      }
      rhs[br] = vsrcs_[s].ac;
    }

    std::vector<std::complex<double>> x = rhs;
    AcPoint apt;
    apt.freq_hz = f;
    if (lu_solve(std::move(a), x) && out >= 0) {
      apt.h = x[static_cast<std::size_t>(out)];
    } else {
      apt.h = {0.0, 0.0};
    }
    sweep.push_back(apt);
  }
  return sweep;
}

SimVerdict simulatable_verdict(const Netlist& nl) {
  if (!circuit::structurally_valid(nl)) {
    return SimVerdict::kStructurallyInvalid;
  }
  try {
    Simulator sim(nl, default_sizing(nl));
    return sim.solve_dc() ? SimVerdict::kOk : SimVerdict::kNonConverged;
  } catch (const Error&) {
    return SimVerdict::kError;
  }
}

bool simulatable(const Netlist& nl) {
  return simulatable_verdict(nl) == SimVerdict::kOk;
}

}  // namespace eva::spice
