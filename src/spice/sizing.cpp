#include "spice/sizing.hpp"

#include <algorithm>
#include <cmath>

namespace eva::spice {

using circuit::DeviceKind;

namespace {

SizeBounds bounds_for(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Nmos:
    case DeviceKind::Pmos:
      // Width in meters (L fixed inside the model).
      return {1e-6, 4e-4, 1e-5, true};
    case DeviceKind::Npn:
    case DeviceKind::Pnp:
    case DeviceKind::Diode:
      // Junction area multiplier.
      return {1.0, 32.0, 1.0, true};
    case DeviceKind::Resistor:
      return {1e2, 1e6, 1e4, true};
    case DeviceKind::Capacitor:
      return {1e-13, 5e-11, 1e-12, true};
    case DeviceKind::Inductor:
      return {1e-9, 1e-4, 1e-6, true};
  }
  return {1.0, 1.0, 1.0, false};
}

}  // namespace

std::vector<SizeBounds> sizing_space(const circuit::Netlist& nl) {
  std::vector<SizeBounds> out;
  out.reserve(nl.devices().size());
  for (const auto& d : nl.devices()) out.push_back(bounds_for(d.kind));
  return out;
}

Sizing default_sizing(const circuit::Netlist& nl) {
  Sizing s;
  s.value.reserve(nl.devices().size());
  for (const auto& d : nl.devices()) s.value.push_back(bounds_for(d.kind).def);
  return s;
}

Sizing sizing_from_unit(const circuit::Netlist& nl,
                        const std::vector<double>& u) {
  const auto space = sizing_space(nl);
  EVA_REQUIRE(u.size() == space.size(), "sizing_from_unit length mismatch");
  Sizing s;
  s.value.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    const double t = std::clamp(u[i], 0.0, 1.0);
    const auto& b = space[i];
    if (b.log_scale) {
      s.value.push_back(
          std::exp(std::log(b.lo) + t * (std::log(b.hi) - std::log(b.lo))));
    } else {
      s.value.push_back(b.lo + t * (b.hi - b.lo));
    }
  }
  return s;
}

}  // namespace eva::spice
