#include "serve/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

namespace eva::serve::net {

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

bool send_all(int fd, std::string_view data, int timeout_ms) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc > 0) continue;
      if (rc < 0 && errno == EINTR) continue;
      return false;  // timed out waiting for writability
    }
    return false;  // EPIPE / ECONNRESET / anything else: peer is gone
  }
  return true;
}

bool send_line(int fd, std::string_view line, int timeout_ms) {
  std::string out(line);
  out += '\n';
  return send_all(fd, out, timeout_ms);
}

int connect_with_deadline(const std::string& host, int port,
                          double timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking
  return fd;
}

LineReader::Result LineReader::read_line(std::string& line,
                                         Clock::time_point deadline) {
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return Result::kLine;
    }
    if (buf_.size() > max_line_) return Result::kTooLong;
    const auto now = Clock::now();
    if (now >= deadline) return Result::kTimeout;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(
                                       std::min<long long>(left + 1, 1000)));
    if (rc < 0 && errno != EINTR) return Result::kError;
    if (rc <= 0) continue;  // poll slice elapsed; re-check the deadline
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Result::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Result::kError;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace eva::serve::net
