// GenerationService: the serving layer's request scheduler (DESIGN.md
// §10).
//
// Owns one model + one persistent nn::BatchedDecoder and exposes an
// asynchronous API: submit(Request) returns a std::future<Response>
// immediately; a single scheduler thread pops admitted requests in
// priority order, decodes them through the batched engine, evaluates
// each decoded topology through the ResultCache (validity + SPICE FoM,
// memoized by WL canonical hash), and fulfills the promise.
//
// Admission control:
//  * bounded queue (queue_max across all priorities) — a full queue
//    rejects immediately with Status::kRejected and a retry_after_ms
//    hint (backpressure, never unbounded memory);
//  * three strict priorities (high before normal before low, FIFO within
//    a level);
//  * per-request deadlines — a request whose deadline passes while it is
//    still queued resolves to Status::kTimeout without doing any work;
//  * cancellation by ticket id;
//  * graceful drain — drain() (or a SIGTERM via train/signal, which the
//    scheduler polls) stops admission but completes every request
//    already admitted before the scheduler exits.
//
// Instrumentation: serve.queue_depth gauge, serve.latency_ms histogram
// (p50/p99 in the metrics export), serve.{submitted,completed,rejected,
// timeouts,cancelled} counters, serve.request spans, and the
// serve.cache_* family from ResultCache.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include <array>

#include "circuit/classify.hpp"
#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "serve/result_cache.hpp"
#include "serve/timeline.hpp"
#include "spice/engine.hpp"
#include "surrogate/scorer.hpp"

namespace eva::obs {
class Counter;
}

namespace eva::serve {

enum class Priority : int { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr int kNumPriorities = 3;

/// Terminal state of a request. Everything except kOk means no topology
/// work was done (the items vector is empty).
enum class Status {
  kOk,         // decoded + evaluated, items populated
  kTimeout,    // deadline passed before the scheduler reached the request
  kRejected,   // queue full at submit time; retry after retry_after_ms
  kCancelled,  // cancel(id) won the race against the scheduler
  kShutdown,   // submitted after drain()/SIGTERM — never admitted
};

[[nodiscard]] std::string_view status_name(Status s);

/// Parse EVA_SERVE_SLOW_MS (fractional milliseconds; unset/invalid ->
/// `fallback`). Exposed for the ServiceConfig default initializer.
[[nodiscard]] double slow_warn_ms_from_env(double fallback);

/// Parse EVA_SURROGATE_KEEP (fraction of cache-miss candidates that
/// still run Mini-SPICE when the surrogate pre-filter is active;
/// unset/invalid -> `fallback`). Exposed for the ServiceConfig default
/// initializer.
[[nodiscard]] double surrogate_keep_from_env(double fallback);

/// One generation request. `seed` selects a reproducible RNG stream for
/// the request (0 = draw from the service's own stream): identical
/// {seed, n, temperature} requests generate identical topologies, which
/// both makes requests idempotent and lets repeated workloads ride the
/// result cache.
struct Request {
  circuit::CircuitType type = circuit::CircuitType::OpAmp;
  int n = 1;                  // topologies to generate (clamped to >= 1)
  float temperature = 1.0f;
  Priority priority = Priority::kNormal;
  double deadline_ms = 0.0;   // admission-to-start budget; 0 = none
  std::uint64_t seed = 0;     // 0 = service stream
};

/// One generated topology.
struct Item {
  std::vector<int> ids;   // sampled token sequence (starts at VSS)
  std::string netlist;    // SPICE-like dump when decoded, else empty
  bool decoded = false;   // token sequence decoded to a netlist
  bool valid = false;     // simulatable (validity predicate)
  double fom = 0.0;       // figure of merit (0 when invalid)
  bool cached = false;    // evaluation came from the ResultCache
  /// The surrogate pre-filter dropped this candidate: SPICE never ran,
  /// so valid/fom are the unverified defaults (false/0). Clients use
  /// this to tell "verified invalid" from "filtered out".
  bool surrogate = false;
  /// Pre-filter score (expected rank reward) when a scorer ran on this
  /// item; 0 when the service has no surrogate or the item never
  /// decoded.
  float surrogate_score = 0.0f;
};

struct Response {
  Status status = Status::kOk;
  std::vector<Item> items;
  double retry_after_ms = 0.0;   // set when status == kRejected
  double latency_ms = 0.0;       // admission -> completion
  std::uint64_t finished_seq = 0;  // global completion order (1-based)
  /// Per-stage latency attribution. timeline.request_id equals the
  /// ticket id for every terminal status (including rejected/shutdown,
  /// whose stage values are all zero).
  RequestTimeline timeline;
};

struct ServiceConfig {
  std::size_t queue_max = 64;      // EVA_SERVE_QUEUE_MAX
  int batch_width = 8;             // decoder slots
  int max_n = 64;                  // per-request topology cap
  std::size_t cache_capacity = 4096;
  std::uint64_t seed = 7;          // service RNG stream
  bool evaluate_fom = true;        // run SPICE FoM on valid topologies
  double retry_after_ms = 50.0;    // backpressure hint
  nn::SampleOptions sample;        // temperature is overridden per request
  /// Inference weight tier the service repacks the model into at
  /// construction. Defaults to f32 — bit-identical tokens/logprobs to the
  /// pre-quantization serving path — so existing deployments see no
  /// silent output change. Opt into the reduced-precision tiers with
  /// EVA_QUANT=int8|bf16 (or set this field): decode throughput is
  /// weight-bandwidth-bound and the tolerance contract (DESIGN.md
  /// "Kernel backends & quantized inference") covers the FoM pipeline
  /// downstream.
  tensor::QuantKind quant = tensor::quant_kind_from_env(tensor::QuantKind::kF32);
  /// Latency budget for the serve.slow_request WARN log: a completed
  /// request slower than this (or one that finished past its own
  /// deadline) logs its id + per-stage breakdown, rate-limited. 0
  /// disables the budget check (deadline overruns still warn).
  /// EVA_SERVE_SLOW_MS overrides.
  double slow_warn_ms = slow_warn_ms_from_env(0.0);
  /// Learned FoM surrogate pre-filter (DESIGN.md §15). When set, every
  /// decoded candidate is scored in one batched pass and only the top
  /// `surrogate_keep` fraction of cache misses runs Newton DC + the AC
  /// sweep; the rest are answered unverified with Item::surrogate set.
  /// Null (the default) keeps the verify-everything path.
  std::shared_ptr<const surrogate::SurrogateScorer> surrogate;
  /// Fraction of cache-miss candidates that survive the pre-filter
  /// (ceil(keep * misses), at least 1 while keep > 0). <= 0 keeps none;
  /// >= 1 (or NaN) keeps all. EVA_SURROGATE_KEEP overrides.
  double surrogate_keep = surrogate_keep_from_env(0.25);
  /// Simulation options for the verify stage. sim.ac_points sets the AC
  /// sweep resolution (cost is linear in points); EVA_AC_POINTS raises it
  /// to model SPICE-bound verification, the regime the surrogate
  /// pre-filter targets.
  spice::SimOptions sim;
};

class GenerationService {
 public:
  /// The model and tokenizer must outlive the service. The decoder and
  /// its slotted KV cache are allocated once, here. The model reference
  /// is mutable because construction repacks its inference weights into
  /// cfg.quant (a one-time derived-state update; parameters are never
  /// touched).
  GenerationService(nn::TransformerLM& model, const nn::Tokenizer& tok,
                    ServiceConfig cfg = {});
  /// Drains (completes admitted work) if the scheduler is still running.
  ~GenerationService();

  GenerationService(const GenerationService&) = delete;
  GenerationService& operator=(const GenerationService&) = delete;

  struct Ticket {
    std::uint64_t id = 0;
    std::future<Response> response;
  };

  /// Admit a request (thread-safe). The returned future is always
  /// eventually fulfilled: with kOk after scheduling, or immediately
  /// with kRejected (queue full) / kShutdown (service draining).
  [[nodiscard]] Ticket submit(Request req);

  /// Best-effort cancellation of a queued request. Returns true when the
  /// request was still queued (its future resolves to kCancelled).
  bool cancel(std::uint64_t id);

  /// Start the scheduler thread. Requests submitted before start() queue
  /// up and are processed in priority order once it runs.
  void start();

  /// Stop admission, complete every admitted request, and join the
  /// scheduler. Idempotent; also triggered by train::stop_requested()
  /// (SIGTERM) for the processing side, in which case drain() just joins.
  void drain();

  [[nodiscard]] std::size_t queue_depth() const;
  /// Queued requests per priority level (index = Priority value), for
  /// the live stats snapshot.
  [[nodiscard]] std::array<std::size_t, kNumPriorities> queue_depths() const;
  /// Seconds since the service was constructed.
  [[nodiscard]] double uptime_s() const;
  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] const ResultCache& cache() const { return cache_; }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

 private:
  struct Pending {
    Request req;
    std::promise<Response> promise;
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point admitted;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::atomic<bool> cancelled{false};
    RequestTimeline timeline;  // request_id set at submit, stages filled
                               // as the request flows through the stages
  };

  void run();
  [[nodiscard]] Response execute(Pending& p, Rng& service_rng);
  void finish(Pending& p, Response&& r);
  [[nodiscard]] std::size_t depth_locked() const;

  const nn::TransformerLM* model_;
  const nn::Tokenizer* tok_;
  ServiceConfig cfg_;
  ResultCache cache_;
  nn::BatchedDecoder decoder_;
  obs::Counter* backend_c_;  // serve.backend.<tier>, bumped per request

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Pending>> queues_[kNumPriorities];
  std::unordered_map<std::uint64_t, std::weak_ptr<Pending>> queued_ids_;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  bool started_ = false;
  std::mutex join_mu_;
  std::thread scheduler_;
  std::atomic<std::uint64_t> finished_seq_{0};
  std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();
};

}  // namespace eva::serve
