#include "serve/timeline.hpp"

#include "obs/metrics.hpp"

namespace eva::serve {

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kQueue: return "queue";
    case Stage::kDecode: return "decode";
    case Stage::kCache: return "cache";
    case Stage::kSurrogate: return "surrogate";
    case Stage::kVerify: return "verify";
    case Stage::kWrite: return "write";
  }
  return "unknown";
}

void record_timeline_metrics(const RequestTimeline& t, bool all_stages) {
  // Cached references: one registry lookup per stage for the process
  // lifetime, then lock-free-ish records on per-request granularity.
  static obs::SlidingHistogram* stage_h[kNumStages] = {
      &obs::sliding_histogram("serve.stage.queue_ms"),
      &obs::sliding_histogram("serve.stage.decode_ms"),
      &obs::sliding_histogram("serve.stage.cache_ms"),
      &obs::sliding_histogram("serve.stage.surrogate_ms"),
      &obs::sliding_histogram("serve.stage.verify_ms"),
      &obs::sliding_histogram("serve.stage.write_ms"),
  };
  stage_h[static_cast<int>(Stage::kQueue)]->record(t.ms(Stage::kQueue));
  if (!all_stages) return;
  for (const Stage s : {Stage::kDecode, Stage::kCache, Stage::kSurrogate,
                        Stage::kVerify}) {
    stage_h[static_cast<int>(s)]->record(t.ms(s));
  }
  // kWrite is recorded by the TCP front end once the bytes are out; a
  // library consumer of GenerationService has no write stage at all.
}

}  // namespace eva::serve
