// Canonical-result cache for the serving layer (DESIGN.md §10).
//
// Repeated or isomorphic topologies dominate a generation service's
// downstream cost: the model happily re-emits the same op-amp with the
// devices renumbered, and every such duplicate would otherwise pay a full
// validity check plus SPICE FoM evaluation (solve_dc + AC sweep). The
// cache memoizes that evaluation keyed by the Weisfeiler–Leman canonical
// hash (src/circuit/canon.hpp), which is invariant to device renumbering
// and net ordering — so an isomorphic resubmission is a hit by
// construction, not by luck.
//
// Sharded to keep connection handlers and the scheduler from contending
// on one mutex; each shard is an independent bounded LRU. Hit/miss/
// eviction counts surface as serve.cache_* metrics.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace eva::serve {

/// Memoized downstream evaluation of one canonical topology (per target
/// circuit type — the FoM depends on how the topology is interpreted).
struct CachedEval {
  bool valid = false;  // structurally sound and DC-simulatable
  double fom = 0.0;    // figure of merit under default sizing (0 if !valid)
};

/// Sharded, bounded LRU map from canonical-topology key to CachedEval.
/// All methods are thread-safe; distinct keys on distinct shards never
/// contend.
class ResultCache {
 public:
  /// `capacity` entries total, split evenly across `shards` (rounded up
  /// to at least one entry per shard). Shard count is clamped to a power
  /// of two in [1, 64].
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  /// Look up a key; a hit refreshes its LRU position. Counts
  /// serve.cache_hits / serve.cache_misses.
  [[nodiscard]] std::optional<CachedEval> get(std::uint64_t key);

  /// Insert or overwrite a key (moves it to most-recent). Evicts the
  /// least-recently-used entry of the shard when full
  /// (serve.cache_evictions).
  void put(std::uint64_t key, const CachedEval& value);

  /// Entries currently resident (sums all shards).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drop every entry (bench cold-cache runs; keeps allocations).
  void clear();

  /// Combine a canonical topology hash with the evaluation context so
  /// e.g. OpAmp-vs-PowerConverter evaluations of one topology never
  /// alias.
  [[nodiscard]] static std::uint64_t key_for(std::uint64_t canon_hash,
                                             int type_tag) {
    std::uint64_t x =
        canon_hash ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(
                                                  type_tag) +
                                              1));
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<std::pair<std::uint64_t, CachedEval>> lru;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, CachedEval>>::iterator>
        index;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key) {
    // High bits: key_for has already mixed them well.
    return *shards_[(key >> 56) & shard_mask_];
  }

  std::size_t capacity_;
  std::size_t per_shard_;
  std::uint64_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace eva::serve
