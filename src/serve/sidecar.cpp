#include "serve/sidecar.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "train/signal.hpp"
#include "util/error.hpp"

namespace eva::serve {

namespace {

constexpr int kPollMs = 100;

// Responses echo the key so clients (the router) can parse them with the
// same parse_line grammar used for requests.
std::string hit_json(const std::string& key, const std::string& value) {
  std::string out =
      "{\"done\": true, \"status\": \"ok\", \"cmd\": \"cache_get\", "
      "\"hit\": true, \"key\": ";
  obs::json_string_into(out, key);
  out += ", \"value\": ";
  obs::json_string_into(out, value);
  out += "}";
  return out;
}

std::string miss_json(const std::string& key) {
  std::string out =
      "{\"done\": true, \"status\": \"ok\", \"cmd\": \"cache_get\", "
      "\"hit\": false, \"key\": ";
  obs::json_string_into(out, key);
  out += "}";
  return out;
}

std::string put_json(bool stored) {
  std::string out =
      "{\"done\": true, \"status\": \"ok\", \"cmd\": \"cache_put\", "
      "\"stored\": ";
  out += stored ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace

CacheSidecar::CacheSidecar(SidecarConfig cfg) : cfg_(std::move(cfg)) {}

CacheSidecar::~CacheSidecar() { stop(); }

int CacheSidecar::listen_and_start() {
  net::ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ConfigError(std::string("cache sidecar: socket() failed: ") +
                      std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError("cache sidecar: bad bind address: " + cfg_.bind_addr);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError("cache sidecar: cannot listen on " + cfg_.bind_addr +
                      ":" + std::to_string(cfg_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
  obs::log_info("cache.listening",
                {{"addr", cfg_.bind_addr}, {"port", bound_port_}});
  return bound_port_;
}

void CacheSidecar::run() {
  while (!stopping_.load() && !train::stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
  stop();
}

void CacheSidecar::stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true);
    if (acceptor_.joinable()) acceptor_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> handlers;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      handlers.swap(handlers_);
    }
    for (auto& t : handlers) {
      if (t.joinable()) t.join();
    }
    obs::log_info("cache.stopped");
  });
}

void CacheSidecar::accept_loop() {
  while (!stopping_.load() && !train::stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    obs::counter("cache.connections").add();
    std::lock_guard<std::mutex> lk(conn_mu_);
    open_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void CacheSidecar::handle_connection(int fd) {
  static obs::Counter& hits = obs::counter("cache.hits");
  static obs::Counter& misses = obs::counter("cache.misses");
  static obs::Counter& puts = obs::counter("cache.puts");
  static obs::Counter& refused = obs::counter("cache.put_refused");
  std::string buf;
  char chunk[4096];
  bool open = true;
  auto last_activity = std::chrono::steady_clock::now();
  while (open && !stopping_.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) {
      if (cfg_.idle_ms > 0.0 &&
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - last_activity)
                  .count() > cfg_.idle_ms) {
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    last_activity = std::chrono::steady_clock::now();
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > 1 << 20) break;

    std::size_t nl;
    while (open && (nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      std::string err;
      auto parsed = parse_line(line, &err);
      if (!parsed) {
        open = net::send_line(fd, bad_request_json(err));
        continue;
      }
      switch (parsed->kind) {
        case ParsedLine::Kind::kCacheGet: {
          std::string value;
          if (get(parsed->key, &value)) {
            hits.add();
            open = net::send_line(fd, hit_json(parsed->key, value));
          } else {
            misses.add();
            open = net::send_line(fd, miss_json(parsed->key));
          }
          break;
        }
        case ParsedLine::Kind::kCachePut: {
          const bool ok = parsed->value.size() <= cfg_.max_value_bytes;
          if (ok) {
            puts.add();
            put(parsed->key, std::move(parsed->value));
          } else {
            refused.add();
          }
          open = net::send_line(fd, put_json(ok));
          break;
        }
        case ParsedLine::Kind::kStats: {
          std::string out =
              "{\"done\": true, \"status\": \"ok\", \"cmd\": \"stats\", "
              "\"cache_sidecar\": {\"size\": " +
              std::to_string(size());
          out += ", \"capacity\": " + std::to_string(cfg_.max_entries);
          out += ", \"hits\": " + std::to_string(hits.value());
          out += ", \"misses\": " + std::to_string(misses.value());
          out += ", \"puts\": " + std::to_string(puts.value());
          out += ", \"put_refused\": " + std::to_string(refused.value());
          out += "}}";
          open = net::send_line(fd, out);
          break;
        }
        case ParsedLine::Kind::kGenerate:
          open = net::send_line(
              fd, bad_request_json(
                      "generation requests are answered by replicas"));
          break;
      }
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lk(conn_mu_);
  open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                  open_fds_.end());
}

bool CacheSidecar::get(const std::string& key, std::string* value) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  *value = it->second->second;
  return true;
}

void CacheSidecar::put(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (lru_.size() > std::max<std::size_t>(1, cfg_.max_entries)) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    obs::counter("cache.evictions").add();
  }
}

std::size_t CacheSidecar::size() const {
  std::lock_guard<std::mutex> lk(cache_mu_);
  return lru_.size();
}

}  // namespace eva::serve
