// Wire protocol of the serving front end (DESIGN.md §10): JSON-lines
// over a byte stream. One request object per line:
//
//   {"type":"OpAmp","n":4,"temperature":0.9,"deadline_ms":500,
//    "priority":"high","seed":42}
//
// (every field optional; defaults: OpAmp, n=1, T=1.0, no deadline,
// normal priority, service-stream seed). The server answers with one
// JSON line per generated topology
//
//   {"netlist":"M1 ...","decoded":true,"valid":true,"fom":231.8,
//    "cached":false}
//
// followed by exactly one terminator line carrying the request status:
//
//   {"done":true,"status":"ok","items":4,"latency_ms":12.7}
//   {"done":true,"status":"rejected","items":0,"retry_after_ms":50}
//
// Malformed request lines get {"done":true,"status":"bad_request",
// "error":"..."} and the connection stays open. The parser accepts only
// flat objects (no nesting) — the protocol never needs more, and a
// bounded grammar is the right posture for untrusted input.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace eva::serve {

/// Parse one request line. On failure returns nullopt and, when `error`
/// is non-null, a human-readable reason. Never throws.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line,
                                                   std::string* error);

/// One generated topology as a JSON line (no trailing newline).
[[nodiscard]] std::string item_to_json(const Item& item);

/// The request terminator as a JSON line (no trailing newline).
[[nodiscard]] std::string done_to_json(const Response& r);

/// Terminator for a request that never reached the service (parse
/// failure).
[[nodiscard]] std::string bad_request_json(std::string_view error);

}  // namespace eva::serve
