// Wire protocol of the serving front end (DESIGN.md §10): JSON-lines
// over a byte stream. One request object per line:
//
//   {"type":"OpAmp","n":4,"temperature":0.9,"deadline_ms":500,
//    "priority":"high","seed":42}
//
// (every field optional; defaults: OpAmp, n=1, T=1.0, no deadline,
// normal priority, service-stream seed). The server answers with one
// JSON line per generated topology, each echoing the request id
//
//   {"request_id":17,"netlist":"M1 ...","decoded":true,"valid":true,
//    "fom":231.8,"cached":false}
//
// followed by exactly one terminator line carrying the request status,
// id, and the per-stage latency attribution (RequestTimeline):
//
//   {"done":true,"status":"ok","request_id":17,"items":4,
//    "latency_ms":12.7,"tokens":188,
//    "stages":{"queue_ms":0.4,"decode_ms":10.9,"cache_ms":0.1,
//              "verify_ms":1.2}}
//   {"done":true,"status":"rejected","request_id":18,"items":0,
//    "latency_ms":0.0,"retry_after_ms":50}
//
// An introspection command {"cmd":"stats"} (serve/stats.hpp) answers
// with a single terminator line carrying the live metrics snapshot.
// Malformed request lines — including unknown "cmd" values — get
// {"done":true,"status":"bad_request","error":"..."} and the connection
// stays open. The parser accepts only flat objects (no nesting) — the
// protocol never needs more, and a bounded grammar is the right posture
// for untrusted input.
//
// The shared-cache tier (serve/sidecar.hpp) speaks the same JSON-lines
// grammar with two more commands, answered only by the sidecar process
// (a replica or the router answers them with bad_request):
//
//   {"cmd":"cache_get","key":"t0:n4:T1:s42"}
//   {"cmd":"cache_put","key":"t0:n4:T1:s42","value":"<escaped payload>"}
//
// The "value" string (a whole multi-line response payload, JSON-escaped)
// is the one protocol field allowed to exceed the 256-byte string cap —
// it is bounded by kMaxCacheValue instead.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace eva::serve {

/// Upper bound on a "value" field (cache_put payload). Anything larger
/// is a parse error; the sidecar additionally refuses to store values
/// near this bound (stored:false) instead of failing the connection.
inline constexpr std::size_t kMaxCacheValue = 1 << 18;

/// What one protocol line asks for: a generation request (the default),
/// a live stats snapshot ({"cmd":"stats"}), or a shared-cache operation
/// ({"cmd":"cache_get"/"cache_put"}, sidecar only).
struct ParsedLine {
  enum class Kind { kGenerate, kStats, kCacheGet, kCachePut };
  Kind kind = Kind::kGenerate;
  Request req;        // meaningful when kind == kGenerate
  std::string key;    // meaningful for cache commands
  std::string value;  // meaningful for kCachePut
};

/// Parse one protocol line. On failure returns nullopt and, when `error`
/// is non-null, a human-readable reason. Never throws.
[[nodiscard]] std::optional<ParsedLine> parse_line(std::string_view line,
                                                   std::string* error);

/// Parse one *generation* request line (parse_line restricted to
/// Kind::kGenerate; a stats command is reported as an error).
[[nodiscard]] std::optional<Request> parse_request(std::string_view line,
                                                   std::string* error);

/// One generated topology as a JSON line (no trailing newline). The
/// request id is echoed so interleaved readers can attribute items.
[[nodiscard]] std::string item_to_json(const Item& item,
                                       std::uint64_t request_id = 0);

/// The request terminator as a JSON line (no trailing newline),
/// carrying the request id and per-stage breakdown from r.timeline.
[[nodiscard]] std::string done_to_json(const Response& r);

/// Terminator for a request that never reached the service (parse
/// failure).
[[nodiscard]] std::string bad_request_json(std::string_view error);

}  // namespace eva::serve
