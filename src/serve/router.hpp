// Fault-tolerant multi-replica router (DESIGN.md §13).
//
// The router is the fleet's TCP front end: it speaks the same JSON-lines
// protocol as a single replica (clients cannot tell the difference) and
// consistent-hashes each generation request across N replica backends by
// its WL-relevant key — circuit type × seed bucket — so identical seeded
// requests land on the same replica and ride its local ResultCache.
//
// Robustness machinery, all deterministic enough to assert on in tests:
//
//  * Health: a prober thread round-trips {"cmd":"stats"} against every
//    replica each health_interval_ms; probe outcomes feed the same
//    per-replica circuit breaker as data-path failures.
//  * Circuit breaker per replica: `threshold` consecutive failures trip
//    it open; after cooldown_ms one half-open trial is allowed, whose
//    success closes it (router.breaker_trips / _recoveries counters).
//  * Failover + retry: connect/IO/timeout failures walk the hash ring's
//    preference order under a bounded attempt budget with exponential
//    backoff + deterministic jitter (serve/backoff.hpp). Whole-response
//    buffering means a replica dying mid-response is invisible to the
//    client: it either gets the complete response from a survivor or a
//    clean terminator — never a torn line.
//  * Hedging: a high-priority request whose primary has not answered
//    within hedge_delay_ms is dispatched again to the next replica on
//    the ring; the first complete response wins and the loser is
//    cancelled by shutting down its socket (router.hedges / _wins).
//  * Load shedding: above max_inflight client requests the router
//    answers {"status":"rejected","retry_after_ms":...} immediately —
//    fleet overload surfaces as clean backpressure before queues grow.
//  * Shared cache tier: when cache_addr names a sidecar (serve/
//    sidecar.hpp), idempotent requests (seed != 0) are looked up before
//    dispatch and filled after the first ok response, so a warm hit on
//    any replica warms the fleet. Cache failures are soft: a dead
//    sidecar degrades to a miss, never to a failed request.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/backoff.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace eva::serve {

/// Consistent hash ring over an arbitrary subset of replica indices.
/// Each member contributes `vnodes` pseudo-random points; a key is owned
/// by the first point clockwise from its hash. Because members hash
/// independently, removing one member remaps exactly the keys it owned
/// and no others — the property RouterRingRemap asserts.
class HashRing {
 public:
  HashRing(const std::vector<std::size_t>& members, int vnodes = 64);

  /// The member owning `key`.
  [[nodiscard]] std::size_t primary(std::uint64_t key) const;

  /// All members in failover order for `key`: the owner first, then ring
  /// successors, each member exactly once.
  [[nodiscard]] std::vector<std::size_t> preference(std::uint64_t key) const;

  [[nodiscard]] std::size_t member_count() const { return n_members_; }

 private:
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;  // sorted
  std::size_t n_members_;
};

/// The ring key of a generation request: circuit type × seed bucket.
/// Seeded requests (deterministic, cacheable) bucket by seed so repeats
/// stick to one replica's warm cache; `spread` substitutes for the
/// bucket when seed == 0 (the router uses a counter to spread those).
[[nodiscard]] std::uint64_t request_ring_key(int type_tag, std::uint64_t seed,
                                             std::uint64_t spread);

/// Per-replica circuit breaker: closed -> open after `threshold`
/// consecutive failures; open -> half-open after cooldown_ms (allow()
/// admits exactly one trial); half-open -> closed on success, back to
/// open on failure. Time is passed in, so tests run it on a fake clock.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(int threshold, double cooldown_ms)
      : threshold_(threshold), cooldown_ms_(cooldown_ms) {}

  /// May a request be sent now? In the open state this performs the
  /// open -> half-open transition once the cooldown has elapsed.
  [[nodiscard]] bool allow(std::chrono::steady_clock::time_point now);

  /// Returns true when this success *recovered* the breaker (it was not
  /// closed before).
  bool record_success();

  /// Returns true when this failure *tripped* the breaker open (it was
  /// closed or half-open before).
  bool record_failure(std::chrono::steady_clock::time_point now);

  [[nodiscard]] State state() const;
  [[nodiscard]] const char* state_name() const;

 private:
  mutable std::mutex mu_;
  int threshold_;
  double cooldown_ms_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool trial_inflight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};
};

struct RouterConfig {
  std::string bind_addr = "127.0.0.1";
  int port = 7070;                    // 0 = ephemeral
  std::vector<std::string> backends;  // "host:port" per replica
  std::string cache_addr;             // "host:port" sidecar; "" = no cache
  int vnodes = 64;
  double health_interval_ms = 250.0;  // EVA_ROUTER_HEALTH_MS
  double probe_timeout_ms = 500.0;    // stats-probe budget
  double replica_timeout_ms = 5000.0; // per-attempt budget EVA_ROUTER_TIMEOUT_MS
  int max_attempts = 4;               // dispatch attempts per request
  BackoffPolicy backoff{/*max_retries=*/3, /*base_ms=*/5.0, /*max_ms=*/100.0};
  int breaker_threshold = 3;          // consecutive failures -> open
  double breaker_cooldown_ms = 1000.0;
  double hedge_delay_ms = -1.0;       // <0 disables hedging (EVA_ROUTER_HEDGE_MS)
  std::size_t max_inflight = 256;     // shed above (EVA_ROUTER_MAX_INFLIGHT)
  double shed_retry_after_ms = 50.0;
  double idle_ms = 0.0;               // client-side idle read timeout; 0 = off
  std::uint64_t seed = 1;             // backoff jitter stream
};

class Router {
 public:
  explicit Router(RouterConfig cfg);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind + listen + start the acceptor and health-prober threads.
  /// Returns the bound port. Throws eva::ConfigError on a bad config or
  /// unbindable socket.
  int listen_and_start();

  /// Block until SIGTERM/SIGINT (train/signal) or stop().
  void run();

  /// Stop accepting, shut open connections, join all threads. Idempotent.
  void stop();

  [[nodiscard]] int port() const { return bound_port_; }

  /// Live per-replica view for tests and the stats command.
  struct ReplicaSnapshot {
    std::string addr;
    CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
    bool healthy = false;  // last probe round-tripped
    std::uint64_t failures = 0;
    std::uint64_t successes = 0;
  };
  [[nodiscard]] std::vector<ReplicaSnapshot> replica_snapshots() const;

 private:
  struct Replica {
    std::string host;
    int port = 0;
    std::string addr;
    CircuitBreaker breaker;
    std::atomic<bool> healthy{false};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> successes{0};
    Replica(std::string h, int p, std::string a, int threshold,
            double cooldown_ms)
        : host(std::move(h)), port(p), addr(std::move(a)),
          breaker(threshold, cooldown_ms) {}
  };

  /// One buffered replica exchange (see router.cpp).
  struct ForwardOutcome;
  struct CancelToken;

  void accept_loop();
  void health_loop();
  void handle_connection(int fd);
  /// Serve one parsed generation request end-to-end; returns the full
  /// multi-line payload to write to the client.
  [[nodiscard]] std::string dispatch(const ParsedLine& parsed,
                                     const std::string& line);
  [[nodiscard]] ForwardOutcome forward_once(Replica& r,
                                            const std::string& line,
                                            double timeout_ms,
                                            CancelToken* cancel);
  void note_success(Replica& r);
  void note_failure(Replica& r);
  [[nodiscard]] bool probe(Replica& r);
  [[nodiscard]] std::string stats_json() const;
  [[nodiscard]] std::string cache_key(const Request& req) const;
  [[nodiscard]] bool cache_get(const std::string& key, std::string* payload);
  void cache_put(const std::string& key, const std::string& payload);
  [[nodiscard]] bool cache_connect_locked();
  void cache_drop_locked();

  RouterConfig cfg_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<HashRing> ring_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> spread_{0};   // ring spread for unseeded requests
  std::atomic<long> inflight_{0};          // client requests being served
  std::thread acceptor_;
  std::thread prober_;
  std::mutex conn_mu_;
  std::vector<std::thread> handlers_;
  std::vector<int> open_fds_;
  std::once_flag stop_once_;

  // Sidecar client: one persistent connection, mutex-serialized (the
  // round trips are tiny loopback exchanges). Failures drop the
  // connection and degrade to a miss; the next op reconnects.
  std::mutex cache_mu_;
  int cache_fd_ = -1;
  std::unique_ptr<net::LineReader> cache_reader_;
};

/// Parse "host:port[,host:port...]" (EVA_ROUTER_BACKENDS). Entries
/// without a colon or with a bad port are dropped.
[[nodiscard]] std::vector<std::string> parse_backend_list(
    std::string_view spec);

}  // namespace eva::serve
