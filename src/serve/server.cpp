#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"
#include "serve/timeline.hpp"
#include "train/signal.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace eva::serve {

namespace {

constexpr int kPollMs = 100;  // stop-flag observation granularity

/// Write all of `data` (EINTR/EAGAIN/partial-write safe via
/// net::send_all). Under the serve_slow_client fault the payload
/// trickles out in tiny chunks with pauses, exercising client-side read
/// loops. Returns false when the peer went away.
bool write_all(int fd, std::string_view data, bool slow) {
  if (!slow) return net::send_all(fd, data);
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t want = std::min<std::size_t>(7, data.size() - off);
    if (!net::send_all(fd, data.substr(off, want))) return false;
    off += want;
    if (off < data.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return true;
}

bool send_line(int fd, std::string line, bool slow) {
  line += '\n';
  return write_all(fd, line, slow);
}

double env_ms(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double ms = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(ms >= 0.0)) return fallback;
  return ms;
}

}  // namespace

double idle_ms_from_env(double fallback) {
  return env_ms("EVA_SERVE_IDLE_MS", fallback);
}

JsonLineServer::JsonLineServer(GenerationService& service, ServerConfig cfg)
    : service_(&service), cfg_(std::move(cfg)) {}

JsonLineServer::~JsonLineServer() { stop(); }

int JsonLineServer::listen_and_start() {
  net::ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ConfigError(std::string("serve: socket() failed: ") +
                      std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError("serve: bad bind address: " + cfg_.bind_addr);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError("serve: cannot listen on " + cfg_.bind_addr + ":" +
                      std::to_string(cfg_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  service_->start();
  acceptor_ = std::thread([this] { accept_loop(); });
  obs::log_info("serve.listening",
                {{"addr", cfg_.bind_addr}, {"port", bound_port_}});
  return bound_port_;
}

void JsonLineServer::run() {
  while (!stopping_.load() && !train::stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
  stop();
}

void JsonLineServer::stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true);
    if (acceptor_.joinable()) acceptor_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Admitted work completes before the sockets carrying it are torn
    // down: drain first, then shut the remaining connections so their
    // handler threads observe EOF and exit.
    service_->drain();
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> handlers;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      handlers.swap(handlers_);
    }
    for (auto& t : handlers) {
      if (t.joinable()) t.join();
    }
    obs::log_info("serve.stopped");
  });
}

void JsonLineServer::accept_loop() {
  static obs::Counter& accepted = obs::counter("serve.connections");
  static obs::Counter& dropped = obs::counter("serve.accept_faults");
  while (!stopping_.load() && !train::stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc <= 0) continue;  // timeout or EINTR: re-check stop flags
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (fault::enabled() && fault::should_fire("serve_accept")) {
      // Injected accept failure: the client sees an immediate close and
      // must retry — exercises client reconnect paths.
      dropped.add();
      ::close(fd);
      continue;
    }
    accepted.add();
    std::lock_guard<std::mutex> lk(conn_mu_);
    open_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void JsonLineServer::handle_connection(int fd) {
  static obs::Counter& idle_c = obs::counter("serve.idle_timeouts");
  const bool slow =
      fault::enabled() && fault::should_fire("serve_slow_client");
  std::string buf;
  char chunk[4096];
  bool open = true;
  auto last_activity = std::chrono::steady_clock::now();
  while (open && !stopping_.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) {
      // A stalled client must not pin this handler thread forever: no
      // bytes for idle_ms closes the connection.
      if (cfg_.idle_ms > 0.0 &&
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - last_activity)
                  .count() > cfg_.idle_ms) {
        idle_c.add();
        obs::log_every_n(obs::LogLevel::kWarn, "serve.idle_timeout", 10,
                         {{"idle_ms", cfg_.idle_ms}});
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error: client is gone
    last_activity = std::chrono::steady_clock::now();
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > 1 << 20) break;  // pathological line: hang up

    std::size_t nl;
    while (open && (nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      std::string err;
      const auto parsed = parse_line(line, &err);
      if (!parsed) {
        open = send_line(fd, bad_request_json(err), slow);
        continue;
      }
      if (parsed->kind == ParsedLine::Kind::kStats) {
        // Introspection: answered inline from the metrics registry and
        // the service's live state — never queued behind generation.
        open = send_line(fd, stats_response_json(*service_), slow);
        continue;
      }
      if (parsed->kind != ParsedLine::Kind::kGenerate) {
        open = send_line(
            fd, bad_request_json("cache commands are answered by the sidecar"),
            slow);
        continue;
      }
      // Network fault sites, fired per generation request so occurrence
      // counting is deterministic (the router's failover, the chaos
      // gate, and test_router all key off these):
      //   replica_crash      the whole process dies, as under SIGKILL
      //   serve_conn_drop    hang up without answering
      //   serve_stall        sit on the request, then answer normally
      if (fault::enabled()) {
        if (fault::should_fire("replica_crash")) {
          obs::log_warn("fault.replica_crash_exit");
          std::_Exit(137);
        }
        if (fault::should_fire("serve_conn_drop")) {
          open = false;
          break;
        }
        if (fault::should_fire("serve_stall")) {
          const double stall_ms = env_ms("EVA_SERVE_STALL_FAULT_MS", 2000.0);
          const auto until =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(stall_ms));
          while (std::chrono::steady_clock::now() < until &&
                 !stopping_.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
        }
      }
      auto ticket = service_->submit(parsed->req);
      Response resp = ticket.response.get();
      // The response-write stage closes the request timeline: measured
      // here (the only place that sees the socket), recorded into the
      // serve.stage.write_ms window and the request's Perfetto lane.
      static obs::SlidingHistogram& write_h =
          obs::sliding_histogram("serve.stage.write_ms");
      const auto w0 = std::chrono::steady_clock::now();
      {
        obs::Span write_span("serve.request.write", ticket.id);
        // serve_partial_write: truncate the first response line mid-byte
        // and hang up — the reader must treat the torn line as a
        // transport failure, never as a parseable response.
        if (fault::enabled() && fault::should_fire("serve_partial_write")) {
          const std::string first = resp.items.empty()
                                        ? done_to_json(resp)
                                        : item_to_json(resp.items[0], ticket.id);
          (void)write_all(fd, std::string_view(first).substr(0, first.size() / 2),
                          slow);
          open = false;
        }
        if (open) {
          for (const Item& item : resp.items) {
            if (!send_line(fd, item_to_json(item, ticket.id), slow)) {
              open = false;
              break;
            }
          }
        }
        if (open) open = send_line(fd, done_to_json(resp), slow);
      }
      write_h.record(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - w0)
                         .count());
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lk(conn_mu_);
  open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                  open_fds_.end());
}

}  // namespace eva::serve
