#include "serve/protocol.hpp"

#include <cctype>
#include <cstdlib>

#include "obs/json.hpp"

namespace eva::serve {

namespace {

/// Minimal recursive-descent-free scanner for one flat JSON object.
/// Accepts string / number / true / false / null values only; nesting is
/// a parse error (the protocol is intentionally flat).
class FlatJsonScanner {
 public:
  explicit FlatJsonScanner(std::string_view s) : s_(s) {}

  struct Field {
    std::string key;
    enum class Kind { kString, kNumber, kBool, kNull } kind = Kind::kNull;
    std::string str;
    double num = 0.0;
    bool b = false;
  };

  /// Drives the scan; calls on_field for each key/value pair. Returns
  /// false with err_ set on malformed input.
  template <class Fn>
  bool scan(Fn on_field) {
    skip_ws();
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return finish();
    for (;;) {
      Field f;
      if (!parse_string(f.key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      if (!parse_value(f)) return false;
      on_field(f);
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return finish();
      return fail("expected ',' or '}'");
    }
  }

  [[nodiscard]] const std::string& error() const { return err_; }

 private:
  bool finish() {
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing bytes after object");
    return true;
  }

  bool fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out, std::size_t max_len = kMaxString) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("dangling escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Only BMP escapes; decoded to '?' — the protocol's string
            // fields are ASCII identifiers, not free text.
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            pos_ += 4;
            out += '?';
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
      if (out.size() > max_len) return fail("string too long");
    }
    return fail("unterminated string");
  }

  bool parse_value(Field& f) {
    if (pos_ >= s_.size()) return fail("missing value");
    const char c = s_[pos_];
    if (c == '"') {
      f.kind = Field::Kind::kString;
      // A cache_put payload is a whole response, not an identifier: it
      // gets the large bound, every other string keeps the tight one.
      return parse_string(f.str,
                          f.key == "value" ? kMaxCacheValue : kMaxString);
    }
    if (c == '{' || c == '[') return fail("nested values not allowed");
    if (s_.substr(pos_, 4) == "true") {
      f.kind = Field::Kind::kBool;
      f.b = true;
      pos_ += 4;
      return true;
    }
    if (s_.substr(pos_, 5) == "false") {
      f.kind = Field::Kind::kBool;
      f.b = false;
      pos_ += 5;
      return true;
    }
    if (s_.substr(pos_, 4) == "null") {
      f.kind = Field::Kind::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string num(s_.substr(start, pos_ - start));
    char* end = nullptr;
    f.num = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("malformed number");
    f.kind = Field::Kind::kNumber;
    return true;
  }

  static constexpr std::size_t kMaxString = 256;
  std::string_view s_;
  std::size_t pos_ = 0;
  std::string err_;
};

/// Lowercased alphanumerics only, so "Op-Amp", "opamp" and "OPAMP" all
/// name the same type over the wire.
std::string normalize_type(std::string_view name) {
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

std::optional<circuit::CircuitType> parse_type(std::string_view name) {
  const std::string want = normalize_type(name);
  if (want.empty()) return std::nullopt;
  for (int i = 0; i < circuit::kNumCircuitTypes; ++i) {
    const auto t = static_cast<circuit::CircuitType>(i);
    if (normalize_type(circuit::type_name(t)) == want) return t;
  }
  return std::nullopt;
}

std::optional<Priority> parse_priority(std::string_view name) {
  if (name == "high") return Priority::kHigh;
  if (name == "normal") return Priority::kNormal;
  if (name == "low") return Priority::kLow;
  return std::nullopt;
}

}  // namespace

std::optional<ParsedLine> parse_line(std::string_view line,
                                     std::string* error) {
  ParsedLine out;
  Request& req = out.req;
  std::string field_err;
  FlatJsonScanner scanner(line);
  const bool ok = scanner.scan([&](const FlatJsonScanner::Field& f) {
    using Kind = FlatJsonScanner::Field::Kind;
    if (f.key == "cmd" && f.kind == Kind::kString) {
      if (f.str == "stats") {
        out.kind = ParsedLine::Kind::kStats;
      } else if (f.str == "generate") {
        out.kind = ParsedLine::Kind::kGenerate;
      } else if (f.str == "cache_get") {
        out.kind = ParsedLine::Kind::kCacheGet;
      } else if (f.str == "cache_put") {
        out.kind = ParsedLine::Kind::kCachePut;
      } else if (field_err.empty()) {
        field_err = "unknown cmd: " + f.str;
      }
    } else if (f.key == "key" && f.kind == Kind::kString) {
      out.key = f.str;
    } else if (f.key == "value" && f.kind == Kind::kString) {
      out.value = f.str;
    } else if (f.key == "type" && f.kind == Kind::kString) {
      if (const auto t = parse_type(f.str)) {
        req.type = *t;
      } else if (field_err.empty()) {
        field_err = "unknown circuit type: " + f.str;
      }
    } else if (f.key == "n" && f.kind == Kind::kNumber) {
      req.n = static_cast<int>(f.num);
    } else if (f.key == "temperature" && f.kind == Kind::kNumber) {
      req.temperature = static_cast<float>(f.num);
    } else if (f.key == "deadline_ms" && f.kind == Kind::kNumber) {
      req.deadline_ms = f.num;
    } else if (f.key == "priority" && f.kind == Kind::kString) {
      if (const auto p = parse_priority(f.str)) {
        req.priority = *p;
      } else if (field_err.empty()) {
        field_err = "unknown priority: " + f.str;
      }
    } else if (f.key == "seed" && f.kind == Kind::kNumber) {
      req.seed = f.num < 0 ? 0 : static_cast<std::uint64_t>(f.num);
    }
    // Unknown keys are ignored (forward compatibility).
  });
  if (!ok || !field_err.empty()) {
    if (error) *error = field_err.empty() ? scanner.error() : field_err;
    return std::nullopt;
  }
  if (out.kind == ParsedLine::Kind::kGenerate && req.n < 1) {
    if (error) *error = "n must be >= 1";
    return std::nullopt;
  }
  if ((out.kind == ParsedLine::Kind::kCacheGet ||
       out.kind == ParsedLine::Kind::kCachePut) &&
      out.key.empty()) {
    if (error) *error = "cache command needs a key";
    return std::nullopt;
  }
  if (out.kind == ParsedLine::Kind::kCachePut && out.value.empty()) {
    if (error) *error = "cache_put needs a value";
    return std::nullopt;
  }
  return out;
}

std::optional<Request> parse_request(std::string_view line,
                                     std::string* error) {
  const auto parsed = parse_line(line, error);
  if (!parsed) return std::nullopt;
  if (parsed->kind != ParsedLine::Kind::kGenerate) {
    if (error) *error = "not a generation request";
    return std::nullopt;
  }
  return parsed->req;
}

std::string item_to_json(const Item& item, std::uint64_t request_id) {
  std::string out = "{\"request_id\": ";
  obs::json_number_into(out, static_cast<std::int64_t>(request_id));
  out += ", \"netlist\": ";
  obs::json_string_into(out, item.netlist);
  out += ", \"decoded\": ";
  out += item.decoded ? "true" : "false";
  out += ", \"valid\": ";
  out += item.valid ? "true" : "false";
  out += ", \"fom\": ";
  obs::json_number_into(out, item.fom);
  out += ", \"cached\": ";
  out += item.cached ? "true" : "false";
  // Surrogate-filtered items skipped SPICE entirely: valid/fom above are
  // unverified defaults, and clients must be able to tell.
  out += ", \"surrogate\": ";
  out += item.surrogate ? "true" : "false";
  out += "}";
  return out;
}

std::string done_to_json(const Response& r) {
  std::string out = "{\"done\": true, \"status\": ";
  obs::json_string_into(out, status_name(r.status));
  out += ", \"request_id\": ";
  obs::json_number_into(out,
                        static_cast<std::int64_t>(r.timeline.request_id));
  out += ", \"items\": ";
  obs::json_number_into(out, static_cast<std::int64_t>(r.items.size()));
  out += ", \"latency_ms\": ";
  obs::json_number_into(out, r.latency_ms);
  if (r.status == Status::kRejected) {
    out += ", \"retry_after_ms\": ";
    obs::json_number_into(out, r.retry_after_ms);
  }
  // Stage attribution travels on every scheduled terminator (ok: all
  // stages; timeout/cancelled: the queue wait that consumed the budget).
  // Rejected/shutdown never entered the queue — no stages to report.
  if (r.status == Status::kOk || r.status == Status::kTimeout ||
      r.status == Status::kCancelled) {
    out += ", \"tokens\": ";
    obs::json_number_into(out, r.timeline.tokens);
    out += ", \"stages\": {\"queue_ms\": ";
    obs::json_number_into(out, r.timeline.ms(Stage::kQueue));
    out += ", \"decode_ms\": ";
    obs::json_number_into(out, r.timeline.ms(Stage::kDecode));
    out += ", \"cache_ms\": ";
    obs::json_number_into(out, r.timeline.ms(Stage::kCache));
    out += ", \"surrogate_ms\": ";
    obs::json_number_into(out, r.timeline.ms(Stage::kSurrogate));
    out += ", \"verify_ms\": ";
    obs::json_number_into(out, r.timeline.ms(Stage::kVerify));
    out += "}";
  }
  out += "}";
  return out;
}

std::string bad_request_json(std::string_view error) {
  std::string out = "{\"done\": true, \"status\": \"bad_request\", \"error\": ";
  obs::json_string_into(out, error);
  out += "}";
  return out;
}

}  // namespace eva::serve
