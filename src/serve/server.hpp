// Minimal TCP JSON-lines front end for GenerationService (DESIGN.md
// §10).
//
// One acceptor thread polls the listening socket (100 ms granularity so
// a SIGTERM via train/signal is observed promptly); each accepted
// connection gets its own handler thread that reads request lines,
// submits them to the service, and streams the response items followed
// by a terminator line (see serve/protocol.hpp). Connections are served
// request-at-a-time — the concurrency story lives in the service queue,
// not in the socket layer.
//
// Shutdown: stop() (or SIGTERM observed by run()) closes the listener,
// wakes every handler, drains the service (completing all admitted
// requests), and joins all threads.
//
// Robustness: SIGPIPE is ignored process-wide (net::ignore_sigpipe), all
// socket writes absorb EINTR/EAGAIN and partial writes (net::send_all),
// and a connection that sends no bytes for idle_ms (EVA_SERVE_IDLE_MS)
// is closed so a stalled client cannot pin a handler thread forever.
//
// Fault sites (EVA_FAULT, util/fault.hpp): `serve_accept` drops a
// freshly accepted connection; `serve_slow_client` trickles a response
// out in tiny chunks; `serve_conn_drop` hangs up after reading a
// request without answering; `serve_partial_write` emits a truncated
// response line then hangs up; `serve_stall` sits on a request for
// EVA_SERVE_STALL_FAULT_MS before answering; `replica_crash` kills the
// whole process (_Exit — what a SIGKILL looks like to peers). The last
// four exist so the router's failover/retry/hedging paths are exercised
// deterministically in tests and in the chaos gate.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace eva::serve {

/// Parse EVA_SERVE_IDLE_MS (fractional milliseconds; unset/invalid ->
/// `fallback`). Exposed for the ServerConfig default initializer.
[[nodiscard]] double idle_ms_from_env(double fallback);

struct ServerConfig {
  std::string bind_addr = "127.0.0.1";
  int port = 7077;  // 0 = ephemeral (bound port returned by listen_and_start)
  /// Per-connection idle read timeout: a connection that delivers no
  /// bytes for this long is closed (serve.idle_timeouts counter). 0
  /// disables. EVA_SERVE_IDLE_MS overrides.
  double idle_ms = idle_ms_from_env(0.0);
};

class JsonLineServer {
 public:
  /// The service must outlive the server.
  JsonLineServer(GenerationService& service, ServerConfig cfg = {});
  ~JsonLineServer();

  JsonLineServer(const JsonLineServer&) = delete;
  JsonLineServer& operator=(const JsonLineServer&) = delete;

  /// Bind + listen + start the acceptor thread. Returns the bound port.
  /// Throws eva::ConfigError when the socket cannot be bound.
  int listen_and_start();

  /// Block until a stop is requested (SIGTERM/SIGINT via train/signal,
  /// or stop() from another thread), then shut down gracefully.
  void run();

  /// Programmatic shutdown: stop accepting, drain the service, join all
  /// threads. Idempotent and thread-safe.
  void stop();

  [[nodiscard]] int port() const { return bound_port_; }

 private:
  void accept_loop();
  void handle_connection(int fd);

  GenerationService* service_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<std::thread> handlers_;
  std::vector<int> open_fds_;
  std::once_flag stop_once_;
};

}  // namespace eva::serve
