// eva_serve_main: stand-alone circuit-generation server (DESIGN.md §10).
//
// Boots a bench-scale model + persistent batched decoder behind a
// GenerationService, binds the JSON-lines TCP front end, and runs until
// SIGTERM/SIGINT, draining admitted requests before exit.
//
// Environment:
//   EVA_SERVE_PORT          listen port (default 7077; 0 = ephemeral)
//   EVA_SERVE_QUEUE_MAX     admission queue bound (default 64)
//   EVA_QUANT               inference weight tier: f32 (default) | bf16 | int8
//   EVA_GEMM_BACKEND        kernel backend the GEMMs dispatch to (cpu)
//   EVA_SURROGATE           1 = enable the learned FoM pre-filter
//   EVA_SURROGATE_KEEP      fraction of cache misses that still run SPICE
//   EVA_SURROGATE_CKPT      checkpoint dir for a trained surrogate head
//                           (unset/unloadable = embedding-seeded fresh head)
//   EVA_AC_POINTS           AC sweep resolution for verify-stage FoM
//                           extraction (default 61; cost is linear)
//   EVA_METRICS_FLUSH_SEC   periodic metrics export interval
//   EVA_METRICS_FILE        metrics export target (obs layer)
//   EVA_FAULT               fault injection spec (serve_accept, ...)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <memory>

#include "nn/config.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "surrogate/scorer.hpp"
#include "surrogate/surrogate.hpp"
#include "train/signal.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eva;

  train::install_signal_handlers();
  obs::start_periodic_flush();

  serve::ServerConfig scfg;
  scfg.port = env_int("EVA_SERVE_PORT", 7077);
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") scfg.port = std::atoi(argv[i + 1]);
  }

  serve::ServiceConfig cfg;
  cfg.queue_max =
      static_cast<std::size_t>(std::max(1, env_int("EVA_SERVE_QUEUE_MAX", 64)));
  cfg.sim.ac_points =
      std::max(2, env_int("EVA_AC_POINTS", cfg.sim.ac_points));

  // Bench-scale model with fresh weights: the serving layer's contract is
  // about scheduling/caching, not sample quality. A trained checkpoint
  // can be swapped in once train_lm emits one.
  const nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  Rng rng(1234);
  const nn::ModelConfig mcfg = nn::ModelConfig::bench_scale(tok.vocab_size());
  // Non-const: GenerationService repacks the inference weights when a
  // quantized tier is selected (EVA_QUANT=int8|bf16; default f32 leaves
  // served output bit-identical to the unquantized path).
  nn::TransformerLM model(mcfg, rng);

  if (env_int("EVA_SURROGATE", 0) != 0) {
    // Seed the head from the LM's token embedding so even an untrained
    // filter ranks by token-composition structure rather than noise; a
    // trained checkpoint (EVA_SURROGATE_CKPT) replaces all of it.
    surrogate::SurrogateModel head =
        surrogate::SurrogateModel::from_lm(model, 32, rng);
    if (const char* dir = std::getenv("EVA_SURROGATE_CKPT");
        dir && *dir != '\0') {
      if (!head.load_checkpoint(dir)) {
        std::fprintf(stderr,
                     "eva_serve: no loadable surrogate checkpoint in %s, "
                     "serving with an untrained head\n",
                     dir);
      }
    }
    cfg.surrogate =
        std::make_shared<surrogate::SurrogateScorer>(head, cfg.quant);
  }

  try {
    serve::GenerationService service(model, tok, cfg);
    serve::JsonLineServer server(service, scfg);
    const int port = server.listen_and_start();
    // CI readiness probe scrapes this exact line.
    std::printf("eva_serve listening on port %d\n", port);
    std::fflush(stdout);
    server.run();
  } catch (const Error& e) {
    std::fprintf(stderr, "eva_serve: %s\n", e.what());
    return 1;
  }
  obs::export_now();
  std::printf("eva_serve drained, exiting\n");
  return 0;
}
