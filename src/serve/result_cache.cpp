#include "serve/result_cache.hpp"

#include "obs/metrics.hpp"

namespace eva::serve {

namespace {

std::size_t clamp_shards(std::size_t shards) {
  std::size_t p = 1;
  while (p * 2 <= shards && p < 64) p *= 2;
  return p;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  const std::size_t n = clamp_shards(shards == 0 ? 1 : shards);
  shard_mask_ = n - 1;
  per_shard_ = (capacity + n - 1) / n;
  if (per_shard_ == 0) per_shard_ = 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<CachedEval> ResultCache::get(std::uint64_t key) {
  static obs::Counter& hits = obs::counter("serve.cache_hits");
  static obs::Counter& misses = obs::counter("serve.cache_misses");
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    misses.add();
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  hits.add();
  return it->second->second;
}

void ResultCache::put(std::uint64_t key, const CachedEval& value) {
  static obs::Counter& evictions = obs::counter("serve.cache_evictions");
  static obs::Gauge& size_g = obs::gauge("serve.cache_size");
  std::size_t resident = 0;
  {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lk(s.mu);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      it->second->second = value;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    if (s.lru.size() >= per_shard_) {
      s.index.erase(s.lru.back().first);
      s.lru.pop_back();
      evictions.add();
    }
    s.lru.emplace_front(key, value);
    s.index.emplace(key, s.lru.begin());
  }
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    resident += sh->lru.size();
  }
  size_g.set(static_cast<double>(resident));
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    total += sh->lru.size();
  }
  return total;
}

void ResultCache::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->lru.clear();
    sh->index.clear();
  }
  obs::gauge("serve.cache_size").set(0.0);
}

}  // namespace eva::serve
