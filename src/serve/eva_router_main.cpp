// eva_router_main: fleet front end (DESIGN.md §13).
//
// Binds the router's TCP listener, consistent-hashes generation requests
// across the configured replica backends with health-checked failover,
// retry/backoff, optional hedging, load shedding, and an optional shared
// cache sidecar, and runs until SIGTERM/SIGINT.
//
// Environment:
//   EVA_ROUTER_PORT          listen port (default 7070; 0 = ephemeral)
//   EVA_ROUTER_BACKENDS      comma-separated replica host:port list
//                            (required unless --backends is given)
//   EVA_ROUTER_CACHE         cache sidecar host:port ("" = no shared cache)
//   EVA_ROUTER_HEALTH_MS     health-probe interval (default 250)
//   EVA_ROUTER_TIMEOUT_MS    per-attempt replica budget (default 5000)
//   EVA_ROUTER_MAX_ATTEMPTS  dispatch attempts per request (default 4)
//   EVA_ROUTER_HEDGE_MS      hedge delay for high-priority requests
//                            (default off; >= 0 enables)
//   EVA_ROUTER_MAX_INFLIGHT  shed above this many in-flight requests (256)
//   EVA_SERVE_IDLE_MS        per-connection idle read timeout
//   EVA_METRICS_FILE         metrics export target (obs layer)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "train/signal.hpp"
#include "util/error.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string env_str(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v && *v ? v : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eva;

  train::install_signal_handlers();
  obs::start_periodic_flush();

  serve::RouterConfig cfg;
  cfg.port = env_int("EVA_ROUTER_PORT", 7070);
  std::string backends = env_str("EVA_ROUTER_BACKENDS", "");
  cfg.cache_addr = env_str("EVA_ROUTER_CACHE", "");
  cfg.health_interval_ms = env_double("EVA_ROUTER_HEALTH_MS", 250.0);
  cfg.replica_timeout_ms = env_double("EVA_ROUTER_TIMEOUT_MS", 5000.0);
  cfg.max_attempts = env_int("EVA_ROUTER_MAX_ATTEMPTS", 4);
  cfg.hedge_delay_ms = env_double("EVA_ROUTER_HEDGE_MS", -1.0);
  cfg.max_inflight = static_cast<std::size_t>(
      std::max(1, env_int("EVA_ROUTER_MAX_INFLIGHT", 256)));
  cfg.idle_ms = serve::idle_ms_from_env(0.0);
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") cfg.port = std::atoi(argv[i + 1]);
    if (arg == "--backends") backends = argv[i + 1];
    if (arg == "--cache") cfg.cache_addr = argv[i + 1];
    if (arg == "--hedge-ms") cfg.hedge_delay_ms = std::atof(argv[i + 1]);
  }
  cfg.backends = serve::parse_backend_list(backends);

  try {
    serve::Router router(cfg);
    const int port = router.listen_and_start();
    // CI readiness probe scrapes this exact line.
    std::printf("eva_router listening on port %d\n", port);
    std::fflush(stdout);
    router.run();
  } catch (const Error& e) {
    std::fprintf(stderr, "eva_router: %s\n", e.what());
    return 1;
  }
  obs::export_now();
  std::printf("eva_router drained, exiting\n");
  return 0;
}
