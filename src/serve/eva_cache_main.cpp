// eva_cache_main: shared-cache sidecar process (DESIGN.md §13).
//
// Serves the fleet's second cache tier over the JSON-lines protocol
// (cache_get / cache_put / stats) until SIGTERM/SIGINT.
//
// Environment:
//   EVA_CACHE_PORT      listen port (default 7190; 0 = ephemeral)
//   EVA_CACHE_ENTRIES   LRU entry bound (default 4096)
//   EVA_SERVE_IDLE_MS   per-connection idle read timeout
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "serve/sidecar.hpp"
#include "train/signal.hpp"
#include "util/error.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eva;

  train::install_signal_handlers();
  obs::start_periodic_flush();

  serve::SidecarConfig cfg;
  cfg.port = env_int("EVA_CACHE_PORT", 7190);
  cfg.max_entries = static_cast<std::size_t>(
      std::max(1, env_int("EVA_CACHE_ENTRIES", 4096)));
  cfg.idle_ms = serve::idle_ms_from_env(0.0);
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") cfg.port = std::atoi(argv[i + 1]);
  }

  try {
    serve::CacheSidecar cache(cfg);
    const int port = cache.listen_and_start();
    // CI readiness probe scrapes this exact line.
    std::printf("eva_cache listening on port %d\n", port);
    std::fflush(stdout);
    cache.run();
  } catch (const Error& e) {
    std::fprintf(stderr, "eva_cache: %s\n", e.what());
    return 1;
  }
  obs::export_now();
  std::printf("eva_cache exiting\n");
  return 0;
}
