#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <type_traits>
#include <unordered_map>

#include "circuit/canon.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm_backend.hpp"
#include "spice/engine.hpp"
#include "spice/fom.hpp"
#include "train/signal.hpp"
#include "util/parallel.hpp"

namespace eva::serve {

std::string_view status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kTimeout: return "timeout";
    case Status::kRejected: return "rejected";
    case Status::kCancelled: return "cancelled";
    case Status::kShutdown: return "shutdown";
  }
  return "unknown";
}

double slow_warn_ms_from_env(double fallback) {
  const char* v = std::getenv("EVA_SERVE_SLOW_MS");
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double ms = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(ms >= 0.0)) return fallback;
  return ms;
}

double surrogate_keep_from_env(double fallback) {
  const char* v = std::getenv("EVA_SURROGATE_KEEP");
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double keep = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(keep >= 0.0)) return fallback;
  return keep;
}

namespace {

/// Milliseconds between two steady-clock points.
double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Wall-clock a callable into a timeline stage.
template <class Fn>
auto timed_stage(RequestTimeline& t, Stage s, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    t.add(s, ms_between(t0, std::chrono::steady_clock::now()));
  } else {
    auto r = fn();
    t.add(s, ms_between(t0, std::chrono::steady_clock::now()));
    return r;
  }
}

}  // namespace

namespace {

/// Repack the model into the configured inference tier before the
/// decoder is built, so every decode this service runs uses it. Returns
/// the model reference for use in the member initializer list.
nn::TransformerLM& repacked(nn::TransformerLM& model, const ServiceConfig& cfg) {
  if (model.inference_quant() != cfg.quant) {
    model.set_inference_quant(cfg.quant);
  }
  return model;
}

}  // namespace

GenerationService::GenerationService(nn::TransformerLM& model,
                                     const nn::Tokenizer& tok,
                                     ServiceConfig cfg)
    : model_(&repacked(model, cfg)),
      tok_(&tok),
      cfg_(cfg),
      cache_(cfg.cache_capacity),
      decoder_(model, tok, std::max(1, cfg.batch_width), cfg.sample),
      backend_c_(&obs::counter(
          std::string("serve.backend.") +
          tensor::quant_kind_name(cfg.quant))) {
  obs::log_info("serve.backend",
                {{"quant", tensor::quant_kind_name(cfg_.quant)},
                 {"gemm_backend", tensor::gemm_backend_name()}});
  if (cfg_.surrogate) {
    const double acc = cfg_.surrogate->ranking_accuracy();
    if (std::isfinite(acc)) {
      obs::gauge("surrogate.ranking_accuracy").set(acc);
    }
    obs::log_info(
        "serve.surrogate",
        {{"keep_frac", cfg_.surrogate_keep},
         {"quant", tensor::quant_kind_name(cfg_.surrogate->quant())},
         {"ranking_accuracy", acc}});
  }
}

GenerationService::~GenerationService() { drain(); }

std::size_t GenerationService::depth_locked() const {
  std::size_t d = 0;
  for (const auto& q : queues_) d += q.size();
  return d;
}

GenerationService::Ticket GenerationService::submit(Request req) {
  static obs::Counter& submitted = obs::counter("serve.submitted");
  static obs::Counter& rejected = obs::counter("serve.rejected");
  static obs::Gauge& depth_g = obs::gauge("serve.queue_depth");
  submitted.add();

  auto p = std::make_shared<Pending>();
  req.n = std::clamp(req.n, 1, std::max(1, cfg_.max_n));
  if (!(req.temperature > 0.0f)) req.temperature = 1.0f;
  const int pr = std::clamp(static_cast<int>(req.priority), 0,
                            kNumPriorities - 1);
  req.priority = static_cast<Priority>(pr);
  p->req = req;
  p->admitted = std::chrono::steady_clock::now();
  if (req.deadline_ms > 0.0) {
    p->has_deadline = true;
    p->deadline =
        p->admitted + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              req.deadline_ms));
  }

  Ticket t;
  t.response = p->promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    p->id = next_id_++;
    t.id = p->id;
    p->timeline.request_id = p->id;
    if (draining_ || train::stop_requested()) {
      Response r;
      r.status = Status::kShutdown;
      r.timeline.request_id = p->id;
      p->promise.set_value(std::move(r));
      return t;
    }
    if (depth_locked() >= cfg_.queue_max) {
      rejected.add();
      Response r;
      r.status = Status::kRejected;
      r.retry_after_ms = cfg_.retry_after_ms;
      r.timeline.request_id = p->id;
      p->promise.set_value(std::move(r));
      return t;
    }
    queues_[pr].push_back(p);
    queued_ids_[p->id] = p;
    depth_g.set(static_cast<double>(depth_locked()));
  }
  cv_.notify_one();
  return t;
}

bool GenerationService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = queued_ids_.find(id);
  if (it == queued_ids_.end()) return false;
  if (auto p = it->second.lock()) {
    p->cancelled.store(true);
    return true;
  }
  return false;
}

void GenerationService::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (started_) return;
  started_ = true;
  scheduler_ = std::thread([this] { run(); });
}

void GenerationService::drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  // A never-started service still owes completion to everything it
  // admitted: run the scheduler for the backlog.
  start();
  cv_.notify_all();
  // Serialize the join so concurrent drain() calls (explicit + dtor)
  // don't race on the thread handle.
  std::lock_guard<std::mutex> jlk(join_mu_);
  if (scheduler_.joinable()) scheduler_.join();
}

std::size_t GenerationService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return depth_locked();
}

std::array<std::size_t, kNumPriorities> GenerationService::queue_depths()
    const {
  std::array<std::size_t, kNumPriorities> d{};
  std::lock_guard<std::mutex> lk(mu_);
  for (int i = 0; i < kNumPriorities; ++i) d[static_cast<std::size_t>(i)] = queues_[i].size();
  return d;
}

double GenerationService::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

void GenerationService::run() {
  static obs::Gauge& depth_g = obs::gauge("serve.queue_depth");
  static obs::Counter& timeouts = obs::counter("serve.timeouts");
  static obs::Counter& cancels = obs::counter("serve.cancelled");
  Rng service_rng(cfg_.seed);
  for (;;) {
    std::shared_ptr<Pending> p;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // wait_for (not wait): train::stop_requested() flips from a signal
      // handler that cannot notify the cv, so the scheduler polls it.
      while (depth_locked() == 0 && !draining_ && !train::stop_requested()) {
        cv_.wait_for(lk, std::chrono::milliseconds(20));
      }
      if (depth_locked() == 0) break;  // drain complete
      for (auto& q : queues_) {
        if (!q.empty()) {
          p = std::move(q.front());
          q.pop_front();
          break;
        }
      }
      queued_ids_.erase(p->id);
      depth_g.set(static_cast<double>(depth_locked()));
    }
    // Queue wait ends at pickup, whatever the terminal status — a
    // timeout's timeline is pure queue wait, which is exactly what makes
    // it diagnosable.
    p->timeline.add(Stage::kQueue,
                    ms_between(p->admitted, std::chrono::steady_clock::now()));
    Response r;
    if (p->cancelled.load()) {
      r.status = Status::kCancelled;
      cancels.add();
    } else if (p->has_deadline &&
               std::chrono::steady_clock::now() > p->deadline) {
      r.status = Status::kTimeout;
      timeouts.add();
    } else {
      r = execute(*p, service_rng);
    }
    finish(*p, std::move(r));
  }
}

Response GenerationService::execute(Pending& p, Rng& service_rng) {
  // The request-attributed span puts this request's stage waterfall on
  // its own Perfetto lane (pid "requests", tid = request id).
  obs::Span span("serve.request", p.id);
  backend_c_->add();
  RequestTimeline& tl = p.timeline;
  Response r;
  nn::SampleOptions opts = cfg_.sample;
  opts.temperature = p.req.temperature;
  decoder_.set_options(opts);
  // Seeded requests are idempotent (and cache-friendly); unseeded ones
  // consume the service stream.
  Rng req_rng = p.req.seed != 0 ? Rng(p.req.seed) : service_rng.fork();
  std::vector<nn::SampleResult> results;
  {
    obs::Span decode_span("serve.request.decode", p.id);
    results = timed_stage(tl, Stage::kDecode,
                          [&] { return decoder_.decode(req_rng, p.req.n); });
  }
  const auto& dstats = decoder_.last_decode_stats();
  tl.tokens = dstats.tokens;
  tl.decode_steps = dstats.steps;

  // Verification is phased so the whole request can be batched: decode
  // every candidate, look them all up in the cache, run the surrogate
  // pre-filter (when configured) over the decoded set in one scoring
  // pass, then fan the surviving Mini-SPICE evaluations across the
  // thread pool instead of paying DC + AC serially per item.
  obs::Span verify_span("serve.request.verify", p.id);
  const std::size_t n_items = results.size();
  r.items.resize(n_items);
  std::vector<std::optional<circuit::Netlist>> netlists(n_items);
  std::vector<std::uint64_t> keys(n_items, 0);

  // Token->netlist decode and the SPICE-format dump are attributed to
  // the decode stage: they are per-token, model-output-shaped work.
  timed_stage(tl, Stage::kDecode, [&] {
    for (std::size_t i = 0; i < n_items; ++i) {
      Item& item = r.items[i];
      item.ids = std::move(results[i].ids);
      auto dec = nn::ids_to_netlist_checked(*tok_, item.ids);
      if (!dec.netlist) continue;
      item.decoded = true;
      item.netlist = dec.netlist->to_spice();
      keys[i] = ResultCache::key_for(circuit::canonical_hash(*dec.netlist),
                                     static_cast<int>(p.req.type));
      netlists[i] = std::move(*dec.netlist);
    }
  });

  // Cache pass. `misses` holds one index per *unique* uncached key, in
  // request order; duplicates of an earlier miss attach to it via
  // `dup_of` and share its verdict afterwards (marked cached, exactly
  // as the second serial lookup used to hit the fresh insert).
  std::vector<std::size_t> misses;
  std::vector<std::size_t> dup_of(n_items, SIZE_MAX);
  timed_stage(tl, Stage::kCache, [&] {
    std::unordered_map<std::uint64_t, std::size_t> first_miss;
    for (std::size_t i = 0; i < n_items; ++i) {
      if (!r.items[i].decoded) continue;
      if (const auto hit = cache_.get(keys[i])) {
        r.items[i].valid = hit->valid;
        r.items[i].fom = hit->fom;
        r.items[i].cached = true;
        continue;
      }
      const auto [it, inserted] = first_miss.emplace(keys[i], i);
      if (inserted) {
        misses.push_back(i);
      } else {
        dup_of[i] = it->second;
      }
    }
  });

  // Surrogate pre-filter: score every decoded candidate in one batched
  // pass, then keep only the top fraction of the unique misses for real
  // SPICE work. Cached items keep their verified verdicts regardless.
  std::vector<std::size_t> kept = misses;
  if (cfg_.surrogate && !misses.empty()) {
    static obs::Counter& scored_c = obs::counter("serve.surrogate.scored");
    static obs::Counter& kept_c = obs::counter("serve.surrogate.kept");
    static obs::Counter& skipped_c =
        obs::counter("serve.surrogate.skipped_spice");
    obs::Span surrogate_span("serve.request.surrogate", p.id);
    timed_stage(tl, Stage::kSurrogate, [&] {
      std::vector<const std::vector<int>*> seqs;
      std::vector<std::size_t> scored_idx;
      for (std::size_t i = 0; i < n_items; ++i) {
        if (!r.items[i].decoded) continue;
        seqs.push_back(&r.items[i].ids);
        scored_idx.push_back(i);
      }
      const auto scores = cfg_.surrogate->score_batch(seqs);
      scored_c.add(static_cast<std::int64_t>(seqs.size()));
      for (std::size_t k = 0; k < scored_idx.size(); ++k) {
        r.items[scored_idx[k]].surrogate_score = scores[k];
      }
      // Rank the unique misses by score, best first; non-finite scores
      // sort last (a NaN-scoring surrogate degrades to keeping the
      // request-order head, never crashes the comparator).
      std::sort(kept.begin(), kept.end(), [&](std::size_t a, std::size_t b) {
        const float sa = r.items[a].surrogate_score;
        const float sb = r.items[b].surrogate_score;
        const bool fa = std::isfinite(sa);
        const bool fb = std::isfinite(sb);
        if (fa != fb) return fa;
        if (fa && sa != sb) return sa > sb;
        return a < b;
      });
      const double keep = cfg_.surrogate_keep;
      std::size_t n_keep = misses.size();
      if (keep <= 0.0) {
        n_keep = 0;
      } else if (keep < 1.0) {
        n_keep = std::clamp<std::size_t>(
            static_cast<std::size_t>(
                std::ceil(keep * static_cast<double>(misses.size()))),
            1, misses.size());
      }  // keep >= 1 or NaN: verify everything
      kept.resize(n_keep);
      std::vector<bool> is_kept(n_items, false);
      for (const std::size_t i : kept) is_kept[i] = true;
      std::int64_t skipped = 0;
      for (const std::size_t i : misses) {
        if (!is_kept[i]) {
          r.items[i].surrogate = true;
          ++skipped;
        }
      }
      kept_c.add(static_cast<std::int64_t>(n_keep));
      skipped_c.add(skipped);
      // Restore request order so the verify fan-out and the cache
      // inserts below stay deterministic.
      std::sort(kept.begin(), kept.end());
    });
  }

  // Batched verify: the surviving evaluations (DC operating point + AC
  // sweep each) are independent per netlist, so they fan out across the
  // thread pool; obs counters inside the SPICE engine are atomic.
  if (!kept.empty()) {
    std::vector<CachedEval> evals(kept.size());
    timed_stage(tl, Stage::kVerify, [&] {
      parallel_for(0, kept.size(), [&](std::size_t k) {
        const circuit::Netlist& nl = *netlists[kept[k]];
        CachedEval ev;
        ev.valid = spice::simulatable(nl);
        if (ev.valid && cfg_.evaluate_fom) {
          const auto perf =
              spice::evaluate(nl, spice::default_sizing(nl), p.req.type,
                              cfg_.sim);
          if (perf.ok && std::isfinite(perf.fom)) ev.fom = perf.fom;
        }
        evals[k] = ev;
      });
    });
    timed_stage(tl, Stage::kCache, [&] {
      for (std::size_t k = 0; k < kept.size(); ++k) {
        const std::size_t i = kept[k];
        cache_.put(keys[i], evals[k]);
        r.items[i].valid = evals[k].valid;
        r.items[i].fom = evals[k].fom;
      }
    });
  }

  // Duplicates inherit their primary's outcome: a verified primary makes
  // them cache hits (the insert above), a filtered primary filters them
  // too — either way no extra SPICE runs.
  for (std::size_t i = 0; i < n_items; ++i) {
    if (dup_of[i] == SIZE_MAX) continue;
    const Item& primary = r.items[dup_of[i]];
    if (primary.surrogate) {
      r.items[i].surrogate = true;
    } else {
      r.items[i].valid = primary.valid;
      r.items[i].fom = primary.fom;
      r.items[i].cached = true;
    }
  }
  r.status = Status::kOk;
  return r;
}

void GenerationService::finish(Pending& p, Response&& r) {
  static obs::Histogram& lat_h = obs::histogram("serve.latency_ms");
  static obs::SlidingHistogram& e2e_h = obs::sliding_histogram("serve.e2e_ms");
  static obs::Counter& completed = obs::counter("serve.completed");
  static obs::Counter& deadline_c = obs::counter("serve.deadline_exceeded");
  r.latency_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - p.admitted)
                     .count();
  r.finished_seq = finished_seq_.fetch_add(1) + 1;
  r.timeline = p.timeline;
  const bool ok = r.status == Status::kOk;
  if (ok) {
    lat_h.record(r.latency_ms);
    e2e_h.record(r.latency_ms);
    completed.add();
  }
  record_timeline_metrics(r.timeline, /*all_stages=*/ok);

  // Slow-request diagnosis from the log alone: a request that finished
  // past its deadline, or past the configured p99 budget, warns with its
  // id and the full stage breakdown. Rate-limited (first, then every
  // 10th) so an overloaded server logs the shape of the problem, not a
  // line per request.
  const bool past_deadline =
      p.has_deadline && std::chrono::steady_clock::now() > p.deadline;
  const bool past_budget = cfg_.slow_warn_ms > 0.0 &&
                           ok && r.latency_ms > cfg_.slow_warn_ms;
  if (past_deadline) deadline_c.add();
  if (past_deadline || past_budget) {
    obs::log_every_n(
        obs::LogLevel::kWarn, "serve.slow_request", 10,
        {{"request_id", r.timeline.request_id},
         {"status", status_name(r.status)},
         {"latency_ms", r.latency_ms},
         {"deadline_ms", p.req.deadline_ms},
         {"budget_ms", cfg_.slow_warn_ms},
         {"queue_ms", r.timeline.ms(Stage::kQueue)},
         {"decode_ms", r.timeline.ms(Stage::kDecode)},
         {"cache_ms", r.timeline.ms(Stage::kCache)},
         {"surrogate_ms", r.timeline.ms(Stage::kSurrogate)},
         {"verify_ms", r.timeline.ms(Stage::kVerify)},
         {"tokens", r.timeline.tokens}});
  }
  p.promise.set_value(std::move(r));
}

}  // namespace eva::serve
