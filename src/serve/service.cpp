#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <type_traits>

#include "circuit/canon.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm_backend.hpp"
#include "spice/engine.hpp"
#include "spice/fom.hpp"
#include "train/signal.hpp"

namespace eva::serve {

std::string_view status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kTimeout: return "timeout";
    case Status::kRejected: return "rejected";
    case Status::kCancelled: return "cancelled";
    case Status::kShutdown: return "shutdown";
  }
  return "unknown";
}

double slow_warn_ms_from_env(double fallback) {
  const char* v = std::getenv("EVA_SERVE_SLOW_MS");
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double ms = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(ms >= 0.0)) return fallback;
  return ms;
}

namespace {

/// Milliseconds between two steady-clock points.
double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Wall-clock a callable into a timeline stage.
template <class Fn>
auto timed_stage(RequestTimeline& t, Stage s, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    t.add(s, ms_between(t0, std::chrono::steady_clock::now()));
  } else {
    auto r = fn();
    t.add(s, ms_between(t0, std::chrono::steady_clock::now()));
    return r;
  }
}

}  // namespace

namespace {

/// Repack the model into the configured inference tier before the
/// decoder is built, so every decode this service runs uses it. Returns
/// the model reference for use in the member initializer list.
nn::TransformerLM& repacked(nn::TransformerLM& model, const ServiceConfig& cfg) {
  if (model.inference_quant() != cfg.quant) {
    model.set_inference_quant(cfg.quant);
  }
  return model;
}

}  // namespace

GenerationService::GenerationService(nn::TransformerLM& model,
                                     const nn::Tokenizer& tok,
                                     ServiceConfig cfg)
    : model_(&repacked(model, cfg)),
      tok_(&tok),
      cfg_(cfg),
      cache_(cfg.cache_capacity),
      decoder_(model, tok, std::max(1, cfg.batch_width), cfg.sample),
      backend_c_(&obs::counter(
          std::string("serve.backend.") +
          tensor::quant_kind_name(cfg.quant))) {
  obs::log_info("serve.backend",
                {{"quant", tensor::quant_kind_name(cfg_.quant)},
                 {"gemm_backend", tensor::gemm_backend_name()}});
}

GenerationService::~GenerationService() { drain(); }

std::size_t GenerationService::depth_locked() const {
  std::size_t d = 0;
  for (const auto& q : queues_) d += q.size();
  return d;
}

GenerationService::Ticket GenerationService::submit(Request req) {
  static obs::Counter& submitted = obs::counter("serve.submitted");
  static obs::Counter& rejected = obs::counter("serve.rejected");
  static obs::Gauge& depth_g = obs::gauge("serve.queue_depth");
  submitted.add();

  auto p = std::make_shared<Pending>();
  req.n = std::clamp(req.n, 1, std::max(1, cfg_.max_n));
  if (!(req.temperature > 0.0f)) req.temperature = 1.0f;
  const int pr = std::clamp(static_cast<int>(req.priority), 0,
                            kNumPriorities - 1);
  req.priority = static_cast<Priority>(pr);
  p->req = req;
  p->admitted = std::chrono::steady_clock::now();
  if (req.deadline_ms > 0.0) {
    p->has_deadline = true;
    p->deadline =
        p->admitted + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              req.deadline_ms));
  }

  Ticket t;
  t.response = p->promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    p->id = next_id_++;
    t.id = p->id;
    p->timeline.request_id = p->id;
    if (draining_ || train::stop_requested()) {
      Response r;
      r.status = Status::kShutdown;
      r.timeline.request_id = p->id;
      p->promise.set_value(std::move(r));
      return t;
    }
    if (depth_locked() >= cfg_.queue_max) {
      rejected.add();
      Response r;
      r.status = Status::kRejected;
      r.retry_after_ms = cfg_.retry_after_ms;
      r.timeline.request_id = p->id;
      p->promise.set_value(std::move(r));
      return t;
    }
    queues_[pr].push_back(p);
    queued_ids_[p->id] = p;
    depth_g.set(static_cast<double>(depth_locked()));
  }
  cv_.notify_one();
  return t;
}

bool GenerationService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = queued_ids_.find(id);
  if (it == queued_ids_.end()) return false;
  if (auto p = it->second.lock()) {
    p->cancelled.store(true);
    return true;
  }
  return false;
}

void GenerationService::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (started_) return;
  started_ = true;
  scheduler_ = std::thread([this] { run(); });
}

void GenerationService::drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  // A never-started service still owes completion to everything it
  // admitted: run the scheduler for the backlog.
  start();
  cv_.notify_all();
  // Serialize the join so concurrent drain() calls (explicit + dtor)
  // don't race on the thread handle.
  std::lock_guard<std::mutex> jlk(join_mu_);
  if (scheduler_.joinable()) scheduler_.join();
}

std::size_t GenerationService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return depth_locked();
}

std::array<std::size_t, kNumPriorities> GenerationService::queue_depths()
    const {
  std::array<std::size_t, kNumPriorities> d{};
  std::lock_guard<std::mutex> lk(mu_);
  for (int i = 0; i < kNumPriorities; ++i) d[static_cast<std::size_t>(i)] = queues_[i].size();
  return d;
}

double GenerationService::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

void GenerationService::run() {
  static obs::Gauge& depth_g = obs::gauge("serve.queue_depth");
  static obs::Counter& timeouts = obs::counter("serve.timeouts");
  static obs::Counter& cancels = obs::counter("serve.cancelled");
  Rng service_rng(cfg_.seed);
  for (;;) {
    std::shared_ptr<Pending> p;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // wait_for (not wait): train::stop_requested() flips from a signal
      // handler that cannot notify the cv, so the scheduler polls it.
      while (depth_locked() == 0 && !draining_ && !train::stop_requested()) {
        cv_.wait_for(lk, std::chrono::milliseconds(20));
      }
      if (depth_locked() == 0) break;  // drain complete
      for (auto& q : queues_) {
        if (!q.empty()) {
          p = std::move(q.front());
          q.pop_front();
          break;
        }
      }
      queued_ids_.erase(p->id);
      depth_g.set(static_cast<double>(depth_locked()));
    }
    // Queue wait ends at pickup, whatever the terminal status — a
    // timeout's timeline is pure queue wait, which is exactly what makes
    // it diagnosable.
    p->timeline.add(Stage::kQueue,
                    ms_between(p->admitted, std::chrono::steady_clock::now()));
    Response r;
    if (p->cancelled.load()) {
      r.status = Status::kCancelled;
      cancels.add();
    } else if (p->has_deadline &&
               std::chrono::steady_clock::now() > p->deadline) {
      r.status = Status::kTimeout;
      timeouts.add();
    } else {
      r = execute(*p, service_rng);
    }
    finish(*p, std::move(r));
  }
}

Response GenerationService::execute(Pending& p, Rng& service_rng) {
  // The request-attributed span puts this request's stage waterfall on
  // its own Perfetto lane (pid "requests", tid = request id).
  obs::Span span("serve.request", p.id);
  backend_c_->add();
  RequestTimeline& tl = p.timeline;
  Response r;
  nn::SampleOptions opts = cfg_.sample;
  opts.temperature = p.req.temperature;
  decoder_.set_options(opts);
  // Seeded requests are idempotent (and cache-friendly); unseeded ones
  // consume the service stream.
  Rng req_rng = p.req.seed != 0 ? Rng(p.req.seed) : service_rng.fork();
  std::vector<nn::SampleResult> results;
  {
    obs::Span decode_span("serve.request.decode", p.id);
    results = timed_stage(tl, Stage::kDecode,
                          [&] { return decoder_.decode(req_rng, p.req.n); });
  }
  const auto& dstats = decoder_.last_decode_stats();
  tl.tokens = dstats.tokens;
  tl.decode_steps = dstats.steps;

  obs::Span verify_span("serve.request.verify", p.id);
  r.items.reserve(results.size());
  for (auto& res : results) {
    Item item;
    item.ids = std::move(res.ids);
    // Token->netlist decode and the SPICE-format dump are attributed to
    // the decode stage: they are per-token, model-output-shaped work.
    auto dec = timed_stage(tl, Stage::kDecode, [&] {
      return nn::ids_to_netlist_checked(*tok_, item.ids);
    });
    if (dec.netlist) {
      item.decoded = true;
      const circuit::Netlist& nl = *dec.netlist;
      std::uint64_t key = 0;
      timed_stage(tl, Stage::kDecode, [&] {
        item.netlist = nl.to_spice();
        key = ResultCache::key_for(circuit::canonical_hash(nl),
                                   static_cast<int>(p.req.type));
      });
      const auto hit =
          timed_stage(tl, Stage::kCache, [&] { return cache_.get(key); });
      if (hit) {
        item.valid = hit->valid;
        item.fom = hit->fom;
        item.cached = true;
      } else {
        CachedEval ev;
        timed_stage(tl, Stage::kVerify, [&] {
          ev.valid = spice::simulatable(nl);
          if (ev.valid && cfg_.evaluate_fom) {
            const auto perf = spice::evaluate_default(nl, p.req.type);
            if (perf.ok && std::isfinite(perf.fom)) ev.fom = perf.fom;
          }
        });
        timed_stage(tl, Stage::kCache, [&] { cache_.put(key, ev); });
        item.valid = ev.valid;
        item.fom = ev.fom;
      }
    }
    r.items.push_back(std::move(item));
  }
  r.status = Status::kOk;
  return r;
}

void GenerationService::finish(Pending& p, Response&& r) {
  static obs::Histogram& lat_h = obs::histogram("serve.latency_ms");
  static obs::SlidingHistogram& e2e_h = obs::sliding_histogram("serve.e2e_ms");
  static obs::Counter& completed = obs::counter("serve.completed");
  static obs::Counter& deadline_c = obs::counter("serve.deadline_exceeded");
  r.latency_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - p.admitted)
                     .count();
  r.finished_seq = finished_seq_.fetch_add(1) + 1;
  r.timeline = p.timeline;
  const bool ok = r.status == Status::kOk;
  if (ok) {
    lat_h.record(r.latency_ms);
    e2e_h.record(r.latency_ms);
    completed.add();
  }
  record_timeline_metrics(r.timeline, /*all_stages=*/ok);

  // Slow-request diagnosis from the log alone: a request that finished
  // past its deadline, or past the configured p99 budget, warns with its
  // id and the full stage breakdown. Rate-limited (first, then every
  // 10th) so an overloaded server logs the shape of the problem, not a
  // line per request.
  const bool past_deadline =
      p.has_deadline && std::chrono::steady_clock::now() > p.deadline;
  const bool past_budget = cfg_.slow_warn_ms > 0.0 &&
                           ok && r.latency_ms > cfg_.slow_warn_ms;
  if (past_deadline) deadline_c.add();
  if (past_deadline || past_budget) {
    obs::log_every_n(
        obs::LogLevel::kWarn, "serve.slow_request", 10,
        {{"request_id", r.timeline.request_id},
         {"status", status_name(r.status)},
         {"latency_ms", r.latency_ms},
         {"deadline_ms", p.req.deadline_ms},
         {"budget_ms", cfg_.slow_warn_ms},
         {"queue_ms", r.timeline.ms(Stage::kQueue)},
         {"decode_ms", r.timeline.ms(Stage::kDecode)},
         {"cache_ms", r.timeline.ms(Stage::kCache)},
         {"verify_ms", r.timeline.ms(Stage::kVerify)},
         {"tokens", r.timeline.tokens}});
  }
  p.promise.set_value(std::move(r));
}

}  // namespace eva::serve
