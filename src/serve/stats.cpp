#include "serve/stats.hpp"

#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "tensor/gemm_backend.hpp"
#include "tensor/quant.hpp"

namespace eva::serve {

namespace {

void snapshot_into(std::string& out, const obs::HistogramSnapshot& s) {
  out += "{\"count\": " + std::to_string(s.count);
  out += ", \"mean\": ";
  obs::json_number_into(out, s.mean);
  out += ", \"p50\": ";
  obs::json_number_into(out, s.p50);
  out += ", \"p90\": ";
  obs::json_number_into(out, s.p90);
  out += ", \"p99\": ";
  obs::json_number_into(out, s.p99);
  out += ", \"max\": ";
  obs::json_number_into(out, s.max);
  out += "}";
}

void sliding_into(std::string& out, std::string_view metric) {
  const obs::SlidingHistogram& h = obs::sliding_histogram(metric);
  out += "{\"window\": ";
  snapshot_into(out, h.window_snapshot());
  out += ", \"total\": ";
  snapshot_into(out, h.total_snapshot());
  out += "}";
}

void counter_field(std::string& out, std::string_view key,
                   std::string_view metric, bool* first) {
  out += *first ? "" : ", ";
  *first = false;
  obs::json_string_into(out, key);
  out += ": ";
  obs::json_number_into(out, obs::counter(metric).value());
}

}  // namespace

std::string stats_json(const GenerationService& svc) {
  std::string out = "{\"uptime_s\": ";
  obs::json_number_into(out, svc.uptime_s());

  // Per-stage and end-to-end latency distributions, rolling 10 s window
  // next to since-start. These are the same sliding histograms the
  // scheduler records into at finish(), so a loadgen run and a live
  // stats poll see one source of truth.
  out += ", \"stages\": {";
  bool first = true;
  for (int i = 0; i < kNumStages; ++i) {
    const auto s = static_cast<Stage>(i);
    out += first ? "" : ", ";
    first = false;
    obs::json_string_into(out, stage_name(s));
    out += ": ";
    sliding_into(out, std::string("serve.stage.") +
                          std::string(stage_name(s)) + "_ms");
  }
  out += ", \"e2e\": ";
  sliding_into(out, "serve.e2e_ms");
  out += "}";

  const auto depths = svc.queue_depths();
  out += ", \"queue_depth\": {\"high\": " + std::to_string(depths[0]);
  out += ", \"normal\": " + std::to_string(depths[1]);
  out += ", \"low\": " + std::to_string(depths[2]);
  out += ", \"total\": " +
         std::to_string(depths[0] + depths[1] + depths[2]) + "}";

  out += ", \"batch_occupancy\": ";
  obs::json_number_into(out, obs::gauge("sampler.batch_occupancy").value());
  out += ", \"tokens_per_sec\": ";
  obs::json_number_into(out, obs::gauge("sampler.tokens_per_sec").value());

  const std::int64_t hits = obs::counter("serve.cache_hits").value();
  const std::int64_t misses = obs::counter("serve.cache_misses").value();
  out += ", \"cache\": {\"hits\": " + std::to_string(hits);
  out += ", \"misses\": " + std::to_string(misses);
  out += ", \"hit_rate\": ";
  obs::json_number_into(out, hits + misses > 0
                                 ? static_cast<double>(hits) /
                                       static_cast<double>(hits + misses)
                                 : 0.0);
  out += ", \"size\": " + std::to_string(svc.cache().size());
  out += ", \"capacity\": " + std::to_string(svc.cache().capacity()) + "}";

  // Learned FoM surrogate pre-filter (DESIGN.md §15): whether it is
  // active, its keep fraction, the scored/kept/skipped counters, and
  // the ranking accuracy of the loaded head (0 until one is measured).
  out += ", \"surrogate\": {\"enabled\": ";
  out += svc.config().surrogate ? "true" : "false";
  out += ", \"keep_frac\": ";
  obs::json_number_into(out, svc.config().surrogate_keep);
  bool sfirst = false;
  counter_field(out, "scored", "serve.surrogate.scored", &sfirst);
  counter_field(out, "skipped_spice", "serve.surrogate.skipped_spice",
                &sfirst);
  counter_field(out, "kept", "serve.surrogate.kept", &sfirst);
  out += ", \"ranking_accuracy\": ";
  obs::json_number_into(out, obs::gauge("surrogate.ranking_accuracy").value());
  out += "}";

  out += ", \"requests\": {";
  first = true;
  counter_field(out, "submitted", "serve.submitted", &first);
  counter_field(out, "completed", "serve.completed", &first);
  counter_field(out, "rejected", "serve.rejected", &first);
  counter_field(out, "timeouts", "serve.timeouts", &first);
  counter_field(out, "cancelled", "serve.cancelled", &first);
  counter_field(out, "deadline_exceeded", "serve.deadline_exceeded", &first);
  out += "}";

  // Kernel-dispatch attribution: which backend and weight tier served
  // the traffic (tensor.gemm_backend_dispatch.* is bumped per GEMM call,
  // serve.backend.* once per request).
  out += ", \"quant\": ";
  obs::json_string_into(out, tensor::quant_kind_name(svc.config().quant));
  out += ", \"backends\": {";
  first = true;
  constexpr std::string_view kDispatchPrefix = "tensor.gemm_backend_dispatch.";
  for (const auto& [name, value] : obs::counters_with_prefix(kDispatchPrefix)) {
    out += first ? "" : ", ";
    first = false;
    obs::json_string_into(out, name.substr(kDispatchPrefix.size()));
    out += ": ";
    obs::json_number_into(out, value);
  }
  out += "}}";
  return out;
}

std::string stats_response_json(const GenerationService& svc) {
  std::string out = "{\"done\": true, \"status\": \"ok\", \"cmd\": \"stats\", "
                    "\"stats\": ";
  out += stats_json(svc);
  out += "}";
  return out;
}

}  // namespace eva::serve
