// Per-request latency attribution (DESIGN.md "Request timelines & load
// harness").
//
// Every request admitted by GenerationService carries one
// RequestTimeline: the monotonically unique request id plus wall-clock
// milliseconds spent in each stage of its life:
//
//   queue      admission -> scheduler pickup
//   decode     batched token generation + token->netlist decode + dump
//   cache      ResultCache lookups/inserts (WL-canonical-hash memoization)
//   surrogate  learned-FoM pre-filter: one batched scoring pass over the
//              decoded candidates + keep-fraction selection (zero unless
//              the service has a SurrogateScorer configured)
//   verify     SPICE validity check + FoM evaluation (cache misses that
//              survive the pre-filter only)
//   write      response serialization onto the client socket (recorded by
//              the TCP front end after the terminator line is sent, so it
//              reaches the metrics window but not the terminator itself)
//
// The service-side stages (everything but write) sum, within scheduler
// noise, to the end-to-end latency of an Status::kOk response — the
// invariant the load harness (tools/eva_loadgen) checks. Stage values
// feed the serve.stage.<name>_ms sliding-window histograms behind the
// {"cmd":"stats"} snapshot, the per-request stage breakdown echoed in
// the protocol terminator line, and the serve.slow_request WARN log.
#pragma once

#include <cstdint>
#include <string_view>

namespace eva::serve {

enum class Stage : int {
  kQueue = 0,
  kDecode,
  kCache,
  kSurrogate,
  kVerify,
  kWrite,
};
inline constexpr int kNumStages = 6;

[[nodiscard]] std::string_view stage_name(Stage s);

struct RequestTimeline {
  std::uint64_t request_id = 0;
  double stage_ms[kNumStages] = {};
  std::int64_t tokens = 0;        // sampled tokens across the request
  std::int64_t decode_steps = 0;  // batched transformer forwards

  [[nodiscard]] double ms(Stage s) const {
    return stage_ms[static_cast<int>(s)];
  }
  void add(Stage s, double ms) { stage_ms[static_cast<int>(s)] += ms; }

  /// Sum of the service-side stages (queue/decode/cache/surrogate/verify
  /// — the write stage happens after the response is assembled, on the
  /// socket thread). For an ok response this tracks Response::latency_ms.
  [[nodiscard]] double service_sum_ms() const {
    double total = 0.0;
    for (int s = 0; s < kNumStages; ++s) {
      if (s != static_cast<int>(Stage::kWrite)) total += stage_ms[s];
    }
    return total;
  }
};

/// Record one finished request's stages into the rolling-window metrics
/// (serve.stage.<name>_ms). Stages that never ran (0 ms and no tokens on
/// a timeout, say) are still recorded when `all_stages` is set — the
/// percentile sum should account for every ok request — while
/// terminal-before-work requests record only their queue wait.
void record_timeline_metrics(const RequestTimeline& t, bool all_stages);

}  // namespace eva::serve
