// Live serving introspection (DESIGN.md "Request timelines & load
// harness"): the JSON snapshot behind the {"cmd":"stats"} protocol
// request.
//
// The snapshot is assembled from the process metrics registry (sliding
// per-stage histograms, counters, gauges) plus the service's own live
// state (queue depths per priority, cache occupancy, uptime) — no
// locks are held across stages, so a stats request is cheap enough to
// poll at dashboard rates while the scheduler is saturated.
#pragma once

#include <string>

#include "serve/service.hpp"

namespace eva::serve {

/// The stats object: rolling-window (last 10 s) and since-start
/// count/mean/p50/p90/p99 for every request stage and the end-to-end
/// latency, queue depths per priority, batch occupancy, cache hit rate,
/// request status counters, and per-backend GEMM dispatch counts.
[[nodiscard]] std::string stats_json(const GenerationService& svc);

/// One protocol line answering {"cmd":"stats"}: a terminator object
/// ({"done":true,"status":"ok",...}) carrying the snapshot under
/// "stats". No trailing newline.
[[nodiscard]] std::string stats_response_json(const GenerationService& svc);

}  // namespace eva::serve
