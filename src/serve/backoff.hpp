// Bounded retry with exponential backoff and deterministic jitter.
//
// One policy object is shared by every layer that retries over the
// network: the router's per-attempt failover delays, eva_serve_client's
// --retry flag, and eva_loadgen's reject/transport retry loop. The
// jitter is a pure function of (seed, attempt) — splitmix64, no global
// RNG — so a retry schedule is reproducible run-to-run, which keeps the
// chaos gate's goodput numbers stable and lets tests assert exact
// bounds.
//
// Header-only and dependency-free on purpose: the standalone tools
// (tools/eva_serve_client, tools/eva_loadgen) include it without
// linking any eva library.
#pragma once

#include <algorithm>
#include <cstdint>

namespace eva::serve {

/// delay(k) = jitter * min(max_ms, base_ms * 2^(k-1)), with jitter drawn
/// deterministically from [0.5, 1.0). Attempt k is 1-based: the delay
/// *before* the k-th retry (i.e. after the k-th failure).
struct BackoffPolicy {
  int max_retries = 3;     // additional attempts after the first
  double base_ms = 10.0;   // delay scale for the first retry
  double max_ms = 500.0;   // exponential growth cap

  [[nodiscard]] static std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] double delay_ms(int retry, std::uint64_t seed) const {
    if (retry < 1) return 0.0;
    double exp = base_ms;
    for (int i = 1; i < retry && exp < max_ms; ++i) exp *= 2.0;
    exp = std::min(exp, max_ms);
    const std::uint64_t h =
        splitmix64(seed ^ (0xD1B54A32D192ED03ULL * static_cast<std::uint64_t>(retry)));
    const double unit =
        static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
    return exp * (0.5 + 0.5 * unit);
  }
};

}  // namespace eva::serve
