#include "serve/router.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "train/signal.hpp"
#include "util/error.hpp"

namespace eva::serve {

namespace {

constexpr int kPollMs = 100;  // stop-flag observation granularity
using Clock = std::chrono::steady_clock;

std::chrono::steady_clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// Sleep `ms`, waking every 20 ms to observe `stop`.
void interruptible_sleep(double ms, const std::atomic<bool>& stop) {
  const auto until = Clock::now() + ms_duration(ms);
  while (Clock::now() < until && !stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool split_addr(std::string_view addr, std::string* host, int* port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= addr.size()) {
    return false;
  }
  int p = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    const char c = addr[i];
    if (c < '0' || c > '9') return false;
    p = p * 10 + (c - '0');
    if (p > 65535) return false;
  }
  if (p < 1) return false;
  *host = std::string(addr.substr(0, colon));
  *port = p;
  return true;
}

/// Extract `"key": "<value>"` from a response line. Status values are
/// ASCII identifiers emitted by our own serializers — no escapes.
std::string json_field_string(const std::string& line, const char* key) {
  const std::string pat = std::string("\"") + key + "\": \"";
  const std::size_t p = line.find(pat);
  if (p == std::string::npos) return "";
  const std::size_t start = p + pat.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

double json_field_number(const std::string& line, const char* key,
                         double fallback) {
  const std::string pat = std::string("\"") + key + "\": ";
  const std::size_t p = line.find(pat);
  if (p == std::string::npos) return fallback;
  const char* s = line.c_str() + p + pat.size();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  return end == s ? fallback : v;
}

/// Terminator the router synthesizes when it sheds a request before
/// dispatch. Same shape as a replica rejection, attributed to the router.
std::string shed_json(double retry_after_ms) {
  std::string out =
      "{\"done\": true, \"status\": \"rejected\", \"request_id\": 0, "
      "\"items\": 0, \"latency_ms\": 0, \"retry_after_ms\": ";
  obs::json_number_into(out, retry_after_ms);
  out += ", \"shed_by\": \"router\"}";
  return out;
}

/// Terminator for a request whose attempt budget is exhausted: every
/// admitted request resolves with a clean line, never a hang or a tear.
std::string unavailable_json(int attempts, const std::string& error,
                             double retry_after_ms) {
  std::string out =
      "{\"done\": true, \"status\": \"unavailable\", \"request_id\": 0, "
      "\"items\": 0, \"latency_ms\": 0, \"attempts\": ";
  obs::json_number_into(out, static_cast<std::int64_t>(attempts));
  out += ", \"retry_after_ms\": ";
  obs::json_number_into(out, retry_after_ms);
  out += ", \"error\": ";
  obs::json_string_into(out, error);
  out += "}";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// HashRing

HashRing::HashRing(const std::vector<std::size_t>& members, int vnodes)
    : n_members_(members.size()) {
  const int vn = std::max(1, vnodes);
  points_.reserve(members.size() * static_cast<std::size_t>(vn));
  for (const std::size_t m : members) {
    // Each member's points depend only on its own identity, so removing
    // a member leaves every other member's points — and therefore every
    // other member's keys — exactly where they were.
    for (int v = 0; v < vn; ++v) {
      const std::uint64_t salt =
          (static_cast<std::uint64_t>(m) + 1) * 0x9E3779B97F4A7C15ULL +
          static_cast<std::uint64_t>(v);
      points_.emplace_back(BackoffPolicy::splitmix64(salt), m);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::primary(std::uint64_t key) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const auto& pt, std::uint64_t k) { return pt.first < k; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<std::size_t> HashRing::preference(std::uint64_t key) const {
  std::vector<std::size_t> order;
  order.reserve(n_members_);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const auto& pt, std::uint64_t k) { return pt.first < k; });
  std::size_t idx = static_cast<std::size_t>(it - points_.begin());
  for (std::size_t seen = 0;
       seen < points_.size() && order.size() < n_members_; ++seen) {
    const std::size_t m = points_[(idx + seen) % points_.size()].second;
    if (std::find(order.begin(), order.end(), m) == order.end()) {
      order.push_back(m);
    }
  }
  return order;
}

std::uint64_t request_ring_key(int type_tag, std::uint64_t seed,
                               std::uint64_t spread) {
  const std::uint64_t bucket = seed != 0 ? seed : ~spread;
  return BackoffPolicy::splitmix64(
      static_cast<std::uint64_t>(type_tag) * 0xBF58476D1CE4E5B9ULL ^
      BackoffPolicy::splitmix64(bucket));
}

// ---------------------------------------------------------------------------
// CircuitBreaker

bool CircuitBreaker::allow(std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lk(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      const double waited =
          std::chrono::duration<double, std::milli>(now - opened_at_).count();
      if (waited < cooldown_ms_) return false;
      state_ = State::kHalfOpen;
      trial_inflight_ = true;  // this caller is the trial
      return true;
    }
    case State::kHalfOpen:
      if (trial_inflight_) return false;
      trial_inflight_ = true;
      return true;
  }
  return false;  // unreachable
}

bool CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lk(mu_);
  const bool recovered = state_ != State::kClosed;
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  trial_inflight_ = false;
  return recovered;
}

bool CircuitBreaker::record_failure(std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lk(mu_);
  trial_inflight_ = false;
  if (state_ == State::kHalfOpen) {
    state_ = State::kOpen;
    opened_at_ = now;
    return true;  // the trial failed: back to open
  }
  if (state_ == State::kOpen) return false;  // already open (prober race)
  if (++consecutive_failures_ >= threshold_) {
    state_ = State::kOpen;
    opened_at_ = now;
    return true;
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_;
}

const char* CircuitBreaker::state_name() const {
  switch (state()) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Router

/// Outcome of one buffered replica exchange. kOk and kReject carry a
/// complete, relayable payload; everything else is retryable (the client
/// has seen none of it).
struct Router::ForwardOutcome {
  enum class Kind { kOk, kReject, kTransport, kTimeout, kCancelled, kSkipped };
  Kind kind = Kind::kSkipped;
  std::string payload;  // full multi-line response, each line '\n'-terminated
  double retry_after_ms = 0.0;
  std::string error;
};

/// Hedging cancel handle: cancel() shuts the armed socket down so the
/// loser's blocked read returns immediately. arm/disarm bracket the fd's
/// lifetime so a cancel never touches a closed (possibly reused) fd.
struct Router::CancelToken {
  std::mutex m;
  int fd = -1;
  bool cancelled = false;

  /// Returns false when cancel() already happened (don't bother sending).
  bool arm(int f) {
    std::lock_guard<std::mutex> lk(m);
    if (cancelled) return false;
    fd = f;
    return true;
  }
  void disarm() {
    std::lock_guard<std::mutex> lk(m);
    fd = -1;
  }
  void cancel() {
    std::lock_guard<std::mutex> lk(m);
    cancelled = true;
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  bool is_cancelled() {
    std::lock_guard<std::mutex> lk(m);
    return cancelled;
  }
};

Router::Router(RouterConfig cfg) : cfg_(std::move(cfg)) {
  std::vector<std::size_t> members;
  for (const std::string& b : cfg_.backends) {
    std::string host;
    int port = 0;
    if (!split_addr(b, &host, &port)) {
      throw ConfigError("router: bad backend address: " + b);
    }
    replicas_.push_back(std::make_unique<Replica>(
        std::move(host), port, b, cfg_.breaker_threshold,
        cfg_.breaker_cooldown_ms));
    members.push_back(replicas_.size() - 1);
  }
  if (replicas_.empty()) {
    throw ConfigError("router: no backends configured (EVA_ROUTER_BACKENDS)");
  }
  if (!cfg_.cache_addr.empty()) {
    std::string host;
    int port = 0;
    if (!split_addr(cfg_.cache_addr, &host, &port)) {
      throw ConfigError("router: bad cache address: " + cfg_.cache_addr);
    }
  }
  ring_ = std::make_unique<HashRing>(members, cfg_.vnodes);
}

Router::~Router() { stop(); }

int Router::listen_and_start() {
  net::ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ConfigError(std::string("router: socket() failed: ") +
                      std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError("router: bad bind address: " + cfg_.bind_addr);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError("router: cannot listen on " + cfg_.bind_addr + ":" +
                      std::to_string(cfg_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
  prober_ = std::thread([this] { health_loop(); });
  obs::log_info("router.listening",
                {{"addr", cfg_.bind_addr},
                 {"port", bound_port_},
                 {"backends", static_cast<std::int64_t>(replicas_.size())},
                 {"cache", cfg_.cache_addr}});
  return bound_port_;
}

void Router::run() {
  while (!stopping_.load() && !train::stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
  stop();
}

void Router::stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true);
    if (acceptor_.joinable()) acceptor_.join();
    if (prober_.joinable()) prober_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> handlers;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      handlers.swap(handlers_);
    }
    for (auto& t : handlers) {
      if (t.joinable()) t.join();
    }
    {
      std::lock_guard<std::mutex> lk(cache_mu_);
      cache_drop_locked();
    }
    obs::log_info("router.stopped");
  });
}

std::vector<Router::ReplicaSnapshot> Router::replica_snapshots() const {
  std::vector<ReplicaSnapshot> out;
  out.reserve(replicas_.size());
  for (const auto& r : replicas_) {
    ReplicaSnapshot s;
    s.addr = r->addr;
    s.breaker = r->breaker.state();
    s.healthy = r->healthy.load();
    s.failures = r->failures.load();
    s.successes = r->successes.load();
    out.push_back(std::move(s));
  }
  return out;
}

void Router::accept_loop() {
  static obs::Counter& accepted = obs::counter("router.connections");
  while (!stopping_.load() && !train::stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    accepted.add();
    std::lock_guard<std::mutex> lk(conn_mu_);
    open_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Router::health_loop() {
  while (!stopping_.load() && !train::stop_requested()) {
    for (auto& r : replicas_) {
      if (stopping_.load()) break;
      // allow() doubles as the open -> half-open transition: the prober
      // is the half-open trial, so a replica recovers without waiting
      // for data traffic to gamble on it.
      if (!r->breaker.allow(Clock::now())) {
        r->healthy.store(false);
        continue;
      }
      const bool ok = probe(*r);
      r->healthy.store(ok);
      if (ok) {
        note_success(*r);
      } else {
        note_failure(*r);
      }
    }
    interruptible_sleep(cfg_.health_interval_ms, stopping_);
  }
}

bool Router::probe(Replica& r) {
  const int fd =
      net::connect_with_deadline(r.host, r.port, cfg_.probe_timeout_ms);
  if (fd < 0) return false;
  bool ok = net::send_line(fd, "{\"cmd\": \"stats\"}");
  if (ok) {
    net::LineReader reader(fd);
    std::string line;
    const auto rc = reader.read_line(
        line, Clock::now() + ms_duration(cfg_.probe_timeout_ms));
    ok = rc == net::LineReader::Result::kLine &&
         line.find("\"done\"") != std::string::npos;
  }
  ::close(fd);
  return ok;
}

void Router::note_success(Replica& r) {
  r.successes.fetch_add(1);
  if (r.breaker.record_success()) {
    obs::counter("router.breaker_recoveries").add();
    obs::log_info("router.breaker_close", {{"replica", r.addr}});
  }
}

void Router::note_failure(Replica& r) {
  r.failures.fetch_add(1);
  if (r.breaker.record_failure(Clock::now())) {
    obs::counter("router.breaker_trips").add();
    obs::log_warn("router.breaker_open", {{"replica", r.addr}});
  }
}

void Router::handle_connection(int fd) {
  static obs::Counter& requests = obs::counter("router.requests");
  static obs::Counter& shed = obs::counter("router.shed");
  static obs::SlidingHistogram& dispatch_h =
      obs::sliding_histogram("router.dispatch_ms");
  std::string buf;
  char chunk[4096];
  bool open = true;
  auto last_activity = Clock::now();
  while (open && !stopping_.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollMs);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) {
      if (cfg_.idle_ms > 0.0 &&
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    last_activity)
                  .count() > cfg_.idle_ms) {
        obs::counter("router.idle_timeouts").add();
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    last_activity = Clock::now();
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > 1 << 20) break;

    std::size_t nl;
    while (open && (nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      std::string err;
      const auto parsed = parse_line(line, &err);
      if (!parsed) {
        open = net::send_line(fd, bad_request_json(err));
        continue;
      }
      if (parsed->kind == ParsedLine::Kind::kStats) {
        open = net::send_line(fd, stats_json());
        continue;
      }
      if (parsed->kind != ParsedLine::Kind::kGenerate) {
        open = net::send_line(
            fd, bad_request_json("cache commands are answered by the sidecar"));
        continue;
      }
      requests.add();
      // Load shedding: above max_inflight the router answers with clean
      // backpressure immediately instead of queueing behind a congested
      // fleet — the client's retry policy takes it from there.
      if (inflight_.load() >= static_cast<long>(cfg_.max_inflight)) {
        shed.add();
        open = net::send_line(fd, shed_json(cfg_.shed_retry_after_ms));
        continue;
      }
      inflight_.fetch_add(1);
      const auto t0 = Clock::now();
      std::string payload = dispatch(*parsed, line);
      dispatch_h.record(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
      inflight_.fetch_sub(1);
      open = net::send_all(fd, payload);
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lk(conn_mu_);
  open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                  open_fds_.end());
}

std::string Router::dispatch(const ParsedLine& parsed, const std::string& line) {
  static obs::Counter& retries = obs::counter("router.retries");
  static obs::Counter& hedges = obs::counter("router.hedges");
  static obs::Counter& hedge_wins = obs::counter("router.hedge_wins");
  static obs::Counter& cache_hits = obs::counter("router.cache_hits");
  static obs::Counter& cache_misses = obs::counter("router.cache_misses");
  static obs::Counter& cache_fills = obs::counter("router.cache_fills");
  static obs::Counter& unavailable = obs::counter("router.unavailable");

  const Request& req = parsed.req;
  const bool cacheable = !cfg_.cache_addr.empty() && req.seed != 0;
  std::string key;
  if (cacheable) {
    key = cache_key(req);
    std::string payload;
    if (cache_get(key, &payload)) {
      cache_hits.add();
      return payload;
    }
    cache_misses.add();
  }

  const std::uint64_t rk = request_ring_key(
      static_cast<int>(req.type), req.seed, spread_.fetch_add(1));
  const std::vector<std::size_t> pref = ring_->preference(rk);

  const auto complete = [](const ForwardOutcome& o) {
    return o.kind == ForwardOutcome::Kind::kOk ||
           o.kind == ForwardOutcome::Kind::kReject;
  };
  const auto try_replica = [&](std::size_t idx,
                               CancelToken* tok) -> ForwardOutcome {
    Replica& r = *replicas_[idx];
    if (!r.breaker.allow(Clock::now())) {
      ForwardOutcome o;
      o.kind = ForwardOutcome::Kind::kSkipped;
      o.error = "breaker open: " + r.addr;
      return o;
    }
    ForwardOutcome o = forward_once(r, line, cfg_.replica_timeout_ms, tok);
    switch (o.kind) {
      case ForwardOutcome::Kind::kOk:
      case ForwardOutcome::Kind::kReject:
        note_success(r);
        break;
      case ForwardOutcome::Kind::kTransport:
      case ForwardOutcome::Kind::kTimeout:
        note_failure(r);
        break;
      case ForwardOutcome::Kind::kCancelled:
      case ForwardOutcome::Kind::kSkipped:
        break;  // says nothing about the replica's health
    }
    return o;
  };
  const auto finalize = [&](ForwardOutcome& o) -> std::string {
    if (o.kind == ForwardOutcome::Kind::kOk && cacheable) {
      cache_fills.add();
      cache_put(key, o.payload);
    }
    return std::move(o.payload);
  };

  ForwardOutcome last;
  last.error = "no replica available";
  std::size_t cursor = 0;
  int attempt = 0;

  // Hedged first wave: a high-priority request whose primary is slow is
  // duplicated to the next ring replica after hedge_delay_ms; the first
  // complete response wins and the loser's socket is shut down. Only
  // worth it when the primary's breaker is closed — otherwise the
  // sequential path below fails over immediately anyway.
  if (req.priority == Priority::kHigh && cfg_.hedge_delay_ms >= 0.0 &&
      pref.size() >= 2 &&
      replicas_[pref[0]]->breaker.state() == CircuitBreaker::State::kClosed) {
    struct Shared {
      std::mutex m;
      std::condition_variable cv;
      bool done0 = false, done1 = false;
      ForwardOutcome o0, o1;
    } sh;
    CancelToken t0, t1;
    bool launched1 = false;
    std::thread th0([&] {
      ForwardOutcome o = try_replica(pref[0], &t0);
      std::lock_guard<std::mutex> lk(sh.m);
      sh.o0 = std::move(o);
      sh.done0 = true;
      sh.cv.notify_all();
    });
    std::thread th1;
    {
      std::unique_lock<std::mutex> lk(sh.m);
      sh.cv.wait_for(lk, ms_duration(cfg_.hedge_delay_ms),
                     [&] { return sh.done0; });
      if (!sh.done0) {
        hedges.add();
        launched1 = true;
        th1 = std::thread([&] {
          ForwardOutcome o = try_replica(pref[1], &t1);
          std::lock_guard<std::mutex> lk2(sh.m);
          sh.o1 = std::move(o);
          sh.done1 = true;
          sh.cv.notify_all();
        });
        sh.cv.wait(lk, [&] { return sh.done0 || sh.done1; });
      }
      // First finisher with a complete response cancels the other leg;
      // a failed first finisher waits for the second instead.
      const bool o0_first = sh.done0;
      if (complete(o0_first ? sh.o0 : sh.o1)) {
        (o0_first ? t1 : t0).cancel();
      } else if (launched1) {
        sh.cv.wait(lk, [&] { return sh.done0 && sh.done1; });
        if (complete(sh.o0) || complete(sh.o1)) {
          (complete(sh.o0) ? t1 : t0).cancel();
        }
      }
    }
    th0.join();
    if (th1.joinable()) th1.join();

    if (complete(sh.o0)) return finalize(sh.o0);
    if (launched1 && complete(sh.o1)) {
      hedge_wins.add();
      return finalize(sh.o1);
    }
    // Both legs failed: keep whichever error is most informative and
    // continue down the ring with the remaining attempt budget.
    last = sh.o0.kind == ForwardOutcome::Kind::kSkipped ? sh.o1
                                                        : std::move(sh.o0);
    attempt = launched1 ? 2 : 1;
    cursor = launched1 ? 2 : 1;
  }

  while (attempt < cfg_.max_attempts) {
    const std::size_t idx = pref[cursor % pref.size()];
    ++cursor;
    ForwardOutcome o = try_replica(idx, nullptr);
    if (o.kind == ForwardOutcome::Kind::kSkipped) {
      // Breaker open: move on without burning backoff time — when the
      // whole fleet is open this degrades to an immediate clean error.
      ++attempt;
      continue;
    }
    ++attempt;
    if (complete(o)) return finalize(o);
    last = std::move(o);
    if (attempt < cfg_.max_attempts) {
      retries.add();
      interruptible_sleep(
          cfg_.backoff.delay_ms(attempt, cfg_.seed ^ rk), stopping_);
    }
  }

  unavailable.add();
  obs::log_every_n(obs::LogLevel::kWarn, "router.unavailable", 10,
                   {{"error", last.error}});
  std::string out =
      unavailable_json(attempt, last.error, cfg_.shed_retry_after_ms);
  out += '\n';
  return out;
}

Router::ForwardOutcome Router::forward_once(Replica& r,
                                            const std::string& line,
                                            double timeout_ms,
                                            CancelToken* cancel) {
  ForwardOutcome out;
  out.kind = ForwardOutcome::Kind::kTransport;
  const auto deadline = Clock::now() + ms_duration(timeout_ms);
  const int fd = net::connect_with_deadline(
      r.host, r.port, std::min(timeout_ms, 1000.0));
  if (fd < 0) {
    out.error = "connect failed: " + r.addr;
    return out;
  }
  if (cancel && !cancel->arm(fd)) {
    ::close(fd);
    out.kind = ForwardOutcome::Kind::kCancelled;
    return out;
  }
  if (!net::send_line(fd, line)) {
    out.error = "write failed: " + r.addr;
  } else {
    net::LineReader reader(fd);
    std::string resp;
    for (;;) {
      const auto rc = reader.read_line(resp, deadline);
      if (rc == net::LineReader::Result::kLine) {
        if (resp.empty()) continue;
        // The whole response is buffered before the client sees one
        // byte, and every buffered line must look like a complete JSON
        // object — a replica dying mid-line (serve_partial_write) is a
        // transport failure here, never a torn line downstream.
        if (resp.front() != '{' || resp.back() != '}') {
          out.error = "malformed replica line: " + r.addr;
          break;
        }
        out.payload += resp;
        out.payload += '\n';
        if (resp.find("\"done\"") != std::string::npos) {
          const std::string status = json_field_string(resp, "status");
          if (status == "rejected") {
            out.kind = ForwardOutcome::Kind::kReject;
            out.retry_after_ms = json_field_number(
                resp, "retry_after_ms", cfg_.shed_retry_after_ms);
          } else if (status == "shutdown") {
            // The replica is draining and did no work: retryable.
            out.kind = ForwardOutcome::Kind::kTransport;
            out.error = "replica draining: " + r.addr;
            out.payload.clear();
          } else {
            out.kind = ForwardOutcome::Kind::kOk;
          }
          break;
        }
      } else if (rc == net::LineReader::Result::kTimeout) {
        out.kind = ForwardOutcome::Kind::kTimeout;
        out.error = "replica timeout: " + r.addr;
        break;
      } else {
        out.error = (rc == net::LineReader::Result::kEof
                         ? "connection closed mid-response: "
                         : "read error: ") +
                    r.addr;
        break;
      }
    }
  }
  if (cancel) {
    cancel->disarm();
    if (cancel->is_cancelled()) {
      out = ForwardOutcome{};
      out.kind = ForwardOutcome::Kind::kCancelled;
    }
  }
  if (out.kind != ForwardOutcome::Kind::kOk &&
      out.kind != ForwardOutcome::Kind::kReject) {
    out.payload.clear();  // partial responses never leave the router
  }
  ::close(fd);
  return out;
}

std::string Router::stats_json() const {
  std::string out =
      "{\"done\": true, \"status\": \"ok\", \"cmd\": \"stats\", "
      "\"router\": {\"backends\": ";
  obs::json_number_into(out, static_cast<std::int64_t>(replicas_.size()));
  out += ", \"inflight\": ";
  obs::json_number_into(out, static_cast<std::int64_t>(inflight_.load()));
  const auto emit_counter = [&out](const char* field, const char* name) {
    out += ", \"";
    out += field;
    out += "\": ";
    obs::json_number_into(out, obs::counter(name).value());
  };
  emit_counter("requests", "router.requests");
  emit_counter("shed", "router.shed");
  emit_counter("retries", "router.retries");
  emit_counter("hedges", "router.hedges");
  emit_counter("hedge_wins", "router.hedge_wins");
  emit_counter("breaker_trips", "router.breaker_trips");
  emit_counter("breaker_recoveries", "router.breaker_recoveries");
  emit_counter("cache_hits", "router.cache_hits");
  emit_counter("cache_misses", "router.cache_misses");
  emit_counter("unavailable", "router.unavailable");
  out += ", \"replicas\": [";
  bool first = true;
  for (const auto& snap : replica_snapshots()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"addr\": ";
    obs::json_string_into(out, snap.addr);
    out += ", \"breaker\": \"";
    switch (snap.breaker) {
      case CircuitBreaker::State::kClosed: out += "closed"; break;
      case CircuitBreaker::State::kOpen: out += "open"; break;
      case CircuitBreaker::State::kHalfOpen: out += "half_open"; break;
    }
    out += "\", \"healthy\": ";
    out += snap.healthy ? "true" : "false";
    out += ", \"failures\": ";
    obs::json_number_into(out, static_cast<std::int64_t>(snap.failures));
    out += ", \"successes\": ";
    obs::json_number_into(out, static_cast<std::int64_t>(snap.successes));
    out += "}";
  }
  out += "]}}";
  return out;
}

// ---------------------------------------------------------------------------
// Shared-cache client

std::string Router::cache_key(const Request& req) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "t%d:n%d:T%.6g:s%llu",
                static_cast<int>(req.type), req.n,
                static_cast<double>(req.temperature),
                static_cast<unsigned long long>(req.seed));
  return buf;
}

bool Router::cache_connect_locked() {
  if (cache_fd_ >= 0) return true;
  std::string host;
  int port = 0;
  if (!split_addr(cfg_.cache_addr, &host, &port)) return false;
  const int fd = net::connect_with_deadline(host, port, cfg_.probe_timeout_ms);
  if (fd < 0) {
    obs::log_every_n(obs::LogLevel::kWarn, "router.cache_unreachable", 20,
                     {{"addr", cfg_.cache_addr}});
    return false;
  }
  cache_fd_ = fd;
  cache_reader_ = std::make_unique<net::LineReader>(fd);
  return true;
}

void Router::cache_drop_locked() {
  if (cache_fd_ >= 0) {
    ::close(cache_fd_);
    cache_fd_ = -1;
  }
  cache_reader_.reset();
}

bool Router::cache_get(const std::string& key, std::string* payload) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  // One retry: the persistent connection may have gone stale (sidecar
  // restart) — reconnect once, then degrade to a miss.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!cache_connect_locked()) return false;
    std::string req = "{\"cmd\": \"cache_get\", \"key\": ";
    obs::json_string_into(req, key);
    req += "}";
    if (!net::send_line(cache_fd_, req)) {
      cache_drop_locked();
      continue;
    }
    std::string resp;
    const auto rc = cache_reader_->read_line(
        resp, Clock::now() + ms_duration(cfg_.probe_timeout_ms));
    if (rc != net::LineReader::Result::kLine) {
      cache_drop_locked();
      continue;
    }
    std::string err;
    auto parsed = parse_line(resp, &err);
    if (!parsed || parsed->kind != ParsedLine::Kind::kCacheGet) return false;
    if (parsed->value.empty()) return false;  // miss
    *payload = std::move(parsed->value);
    return true;
  }
  return false;
}

void Router::cache_put(const std::string& key, const std::string& payload) {
  if (payload.empty() || payload.size() >= kMaxCacheValue - 2048) return;
  std::lock_guard<std::mutex> lk(cache_mu_);
  if (!cache_connect_locked()) return;
  std::string req = "{\"cmd\": \"cache_put\", \"key\": ";
  obs::json_string_into(req, key);
  req += ", \"value\": ";
  obs::json_string_into(req, payload);
  req += "}";
  if (!net::send_line(cache_fd_, req)) {
    cache_drop_locked();
    return;
  }
  // Read-your-writes: the sidecar acks only once the entry is resident,
  // so waiting for the ack here means the next get (from any router
  // thread) hits.
  std::string resp;
  const auto rc = cache_reader_->read_line(
      resp, Clock::now() + ms_duration(cfg_.probe_timeout_ms));
  if (rc != net::LineReader::Result::kLine) cache_drop_locked();
}

std::vector<std::string> parse_backend_list(std::string_view spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view item = spec.substr(start, end - start);
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
      item.remove_prefix(1);
    }
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
      item.remove_suffix(1);
    }
    std::string host;
    int port = 0;
    if (!item.empty() && split_addr(item, &host, &port)) {
      out.emplace_back(item);
    }
    if (end == spec.size()) break;
    start = end + 1;
  }
  return out;
}

}  // namespace eva::serve
