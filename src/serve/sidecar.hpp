// Shared-cache sidecar: the fleet's second cache tier (DESIGN.md §13).
//
// Each replica's ResultCache memoizes WL-canonical evaluations *inside*
// one process; the sidecar promotes idempotent whole responses to a tier
// every replica's traffic shares. The router consults it before
// dispatch (keyed by type × n × temperature × seed — exactly the fields
// that make a seeded request deterministic) and fills it after the
// first ok response, so a warm hit produced on any replica warms the
// whole fleet, and a replica crash does not cool the cache.
//
// It is a separate process (eva_cache_main) speaking the same JSON-lines
// protocol as the replicas, extended with two commands
// (serve/protocol.hpp):
//
//   {"cmd":"cache_get","key":K}         -> {"done":true,...,"hit":true,
//                                           "value":"<escaped payload>"}
//                                          or "hit":false
//   {"cmd":"cache_put","key":K,"value":V} -> {"done":true,...,"stored":true}
//   {"cmd":"stats"}                     -> size/capacity/hit counters
//
// Consistency contract: read-your-writes. cache_put answers only after
// the entry is resident, so a router thread that observed "stored":true
// (or simply issued the put on the same connection) hits on its next
// get. Values near kMaxCacheValue are refused ("stored":false) rather
// than erroring the connection; the store is a bounded LRU, so the
// sidecar degrades by forgetting, never by growing without limit.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace eva::serve {

struct SidecarConfig {
  std::string bind_addr = "127.0.0.1";
  int port = 7190;               // 0 = ephemeral
  std::size_t max_entries = 4096;   // LRU bound (EVA_CACHE_ENTRIES)
  std::size_t max_value_bytes = (1 << 18) - 1024;  // refuse larger values
  double idle_ms = 0.0;          // per-connection idle read timeout; 0 = off
};

class CacheSidecar {
 public:
  explicit CacheSidecar(SidecarConfig cfg = {});
  ~CacheSidecar();

  CacheSidecar(const CacheSidecar&) = delete;
  CacheSidecar& operator=(const CacheSidecar&) = delete;

  /// Bind + listen + start the acceptor thread; returns the bound port.
  /// Throws eva::ConfigError when the socket cannot be bound.
  int listen_and_start();

  /// Block until SIGTERM/SIGINT (train/signal) or stop().
  void run();

  /// Stop accepting, close every connection, join all threads.
  void stop();

  [[nodiscard]] int port() const { return bound_port_; }
  [[nodiscard]] std::size_t size() const;

 private:
  void accept_loop();
  void handle_connection(int fd);
  [[nodiscard]] bool get(const std::string& key, std::string* value);
  void put(const std::string& key, std::string value);

  SidecarConfig cfg_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<std::thread> handlers_;
  std::vector<int> open_fds_;
  std::once_flag stop_once_;

  // Bounded LRU: front of lru_ = most recently used.
  mutable std::mutex cache_mu_;
  std::list<std::pair<std::string, std::string>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, std::string>>::iterator>
      index_;
};

}  // namespace eva::serve
