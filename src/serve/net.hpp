// Shared socket plumbing for the serving fleet (server, router, cache
// sidecar): hardened write/read helpers and deadline-aware client
// connects. Everything here is robust against the failure modes the
// chaos gate injects — partial writes, EINTR/EAGAIN, peers that vanish
// mid-line (EPIPE/ECONNRESET), and peers that stall forever.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

namespace eva::serve::net {

using Clock = std::chrono::steady_clock;

/// Ignore SIGPIPE process-wide. A write to a half-closed socket must
/// surface as EPIPE from send(), never as a process-killing signal —
/// every serving binary calls this before touching a socket. Idempotent.
void ignore_sigpipe();

/// Write all of `data`, absorbing EINTR and short writes; on
/// EAGAIN/EWOULDBLOCK waits for writability (bounded by `timeout_ms`
/// per poll, -1 = wait forever). Returns false when the peer is gone
/// (EPIPE/ECONNRESET/...) or the wait timed out.
[[nodiscard]] bool send_all(int fd, std::string_view data,
                            int timeout_ms = -1);

/// send_all of `line` + '\n'.
[[nodiscard]] bool send_line(int fd, std::string_view line,
                             int timeout_ms = -1);

/// Connect to host:port with a bounded wait (non-blocking connect +
/// poll). Returns the connected fd (blocking mode restored) or -1.
[[nodiscard]] int connect_with_deadline(const std::string& host, int port,
                                        double timeout_ms);

/// Buffered '\n'-framed line reader over one fd with an absolute
/// deadline per read_line call. A line longer than `max_line` bytes is
/// treated as a protocol error (the connection is unusable after it).
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line = 1 << 20)
      : fd_(fd), max_line_(max_line) {}

  enum class Result { kLine, kEof, kTimeout, kError, kTooLong };

  /// Block until one full line is available (stripped of '\n'/"\r\n"),
  /// EOF, an error, or `deadline` passes.
  [[nodiscard]] Result read_line(std::string& line, Clock::time_point deadline);

  /// Bytes buffered past the last returned line (diagnostics).
  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  int fd_;
  std::size_t max_line_;
  std::string buf_;
};

}  // namespace eva::serve::net
