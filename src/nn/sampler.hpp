// Autoregressive topology sampling (generation phase, paper §III-B):
// start from the single context token VSS and sample until EOS.
#pragma once

#include <optional>
#include <vector>

#include "circuit/pingraph.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"

namespace eva::nn {

struct SampleOptions {
  float temperature = 1.0f;
  int top_k = 0;        // 0 = full distribution
  int max_len = 0;      // 0 = model max_seq
  /// Walk-legality mask (DESIGN.md §4): bans pad tokens and immediate
  /// self-loops, and gates EOS on "walk is back at VSS with every
  /// mentioned device's cycle complete". This enforces Euler-walk
  /// well-formedness only — electrical validity (floating pins, shorts,
  /// DC solvability: the paper's stated invalidity modes) stays entirely
  /// up to the model and is what the Validity metric measures.
  bool legality_mask = true;
};

struct SampleResult {
  std::vector<int> ids;            // starts with VSS, excludes EOS
  std::vector<float> logprobs;     // log p of each sampled token (incl. EOS
                                   // as the last entry when emitted)
  bool hit_eos = false;
};

/// Sample one sequence with the KV-cache inference path.
[[nodiscard]] SampleResult sample_sequence(const TransformerLM& model,
                                           const Tokenizer& tok, Rng& rng,
                                           const SampleOptions& opts = {});

/// Sample `n` sequences, fanned out across worker threads (the model is
/// read-only during inference). Deterministic given the seed rng.
[[nodiscard]] std::vector<SampleResult> sample_batch(
    const TransformerLM& model, const Tokenizer& tok, Rng& rng, int n,
    const SampleOptions& opts = {});

/// Decode a sampled id sequence into a netlist (appends the implicit
/// return-to-VSS if absent is NOT done — the model must close the tour).
/// Returns nullopt when the sequence is not a decodable tour.
[[nodiscard]] std::optional<circuit::Netlist> ids_to_netlist(
    const Tokenizer& tok, const std::vector<int>& ids);

}  // namespace eva::nn
