// Autoregressive topology sampling (generation phase, paper §III-B):
// start from the single context token VSS and sample until EOS.
//
// Two engines produce identical sequences from identical seeds:
//
//  * the reference path — sample_sequence / sample_batch_reference, one
//    KV cache per sequence, thread-fanout parallelism;
//  * the batched engine — BatchedDecoder, which steps up to B in-flight
//    sequences through one batched transformer forward per token and
//    refills finished slots from a pending queue (continuous batching).
//    sample_batch routes through it.
//
// See DESIGN.md "Batched KV-cache decoding" for the slot lifecycle and
// the determinism contract.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/pingraph.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"

namespace eva::nn {

struct SampleOptions {
  float temperature = 1.0f;
  int top_k = 0;        // 0 = full distribution
  int max_len = 0;      // 0 = model max_seq
  /// Walk-legality mask (DESIGN.md §4): bans pad tokens and immediate
  /// self-loops, and gates EOS on "walk is back at VSS with every
  /// mentioned device's cycle complete". This enforces Euler-walk
  /// well-formedness only — electrical validity (floating pins, shorts,
  /// DC solvability: the paper's stated invalidity modes) stays entirely
  /// up to the model and is what the Validity metric measures.
  bool legality_mask = true;
  /// Slot count of the BatchedDecoder behind sample_batch (overridable
  /// at runtime with EVA_BATCH_WIDTH). Results never depend on it; only
  /// throughput does.
  int batch_width = 8;
};

struct SampleResult {
  std::vector<int> ids;            // starts with VSS, excludes EOS
  /// log p (under the sampling distribution) of every *accepted action*,
  /// in order: one entry per generated token in `ids` (i.e. ids[1:],
  /// the start token is given, not sampled) plus, when `hit_eos`, one
  /// final entry for the EOS action itself. Invariant:
  ///     logprobs.size() == ids.size() - 1 + (hit_eos ? 1 : 0)
  /// This matches PPO's action sequence exactly (rollout tokens =
  /// ids + EOS-if-hit, one action per transition); a malformed ending
  /// (pad sampled mid-sequence) contributes no entry. Forced guided-
  /// closure tokens carry log p = 0 (they are deterministic, not drawn).
  std::vector<float> logprobs;
  bool hit_eos = false;
};

/// Sample one sequence with the per-sequence KV-cache reference path.
[[nodiscard]] SampleResult sample_sequence(const TransformerLM& model,
                                           const Tokenizer& tok, Rng& rng,
                                           const SampleOptions& opts = {});

/// Sample `n` sequences through a BatchedDecoder of width
/// min(opts.batch_width, n) (EVA_BATCH_WIDTH overrides). Deterministic
/// given the seed rng; sequence i consumes the i-th fork of `rng`, the
/// same stream layout as sample_batch_reference.
[[nodiscard]] std::vector<SampleResult> sample_batch(
    const TransformerLM& model, const Tokenizer& tok, Rng& rng, int n,
    const SampleOptions& opts = {});

/// Reference implementation of sample_batch: `n` independent
/// single-sequence decodes fanned out across worker threads (the model
/// is read-only during inference). Kept as the equivalence baseline for
/// the batched engine and for ablation.
[[nodiscard]] std::vector<SampleResult> sample_batch_reference(
    const TransformerLM& model, const Tokenizer& tok, Rng& rng, int n,
    const SampleOptions& opts = {});

/// Continuous-batching decode engine. Holds a slotted KV cache
/// (TransformerLM::BatchedCache) that persists across decode() calls, so
/// long-lived owners (PPO rollouts, the Eva facade) allocate it once.
///
/// Determinism contract: sequence i is driven by the i-th fork of the
/// decode() rng and by logits rows that do not depend on which other
/// sequences share the step (see infer_step_batched), so the returned
/// results are identical for any batch width — and token-identical to
/// the reference path whenever the model's linears fit one gemm K-panel
/// (all shipped configs below paper_scale).
class BatchedDecoder {
 public:
  BatchedDecoder(const TransformerLM& model, const Tokenizer& tok,
                 int batch_width, SampleOptions opts = {});

  [[nodiscard]] int batch_width() const { return width_; }

  /// Replace the sampling options for subsequent decode() calls (the
  /// serving layer overrides temperature per request on one persistent
  /// decoder). Batch width is fixed at construction — the slotted KV
  /// cache is sized by it — so opts.batch_width is ignored here.
  void set_options(const SampleOptions& opts) { opts_ = opts; }
  [[nodiscard]] const SampleOptions& options() const { return opts_; }

  /// Decode `n` sequences; out[i] is the i-th requested sequence
  /// regardless of slot scheduling.
  [[nodiscard]] std::vector<SampleResult> decode(Rng& rng, int n);

  /// Per-decode() accounting, refreshed by every decode() call. The
  /// serving layer reads this to attribute the decode stage of a request
  /// timeline (token count, batched forward steps, mean slot occupancy)
  /// without re-deriving it from the results.
  struct DecodeStats {
    std::int64_t sequences = 0;  // sequences produced by the last decode()
    std::int64_t tokens = 0;     // sampled actions (logprob-bearing tokens)
    std::int64_t steps = 0;      // batched transformer forwards
    double occupancy = 0.0;      // mean filled-slot fraction per step
    double duration_ms = 0.0;    // wall clock of the last decode()
  };
  [[nodiscard]] const DecodeStats& last_decode_stats() const {
    return stats_;
  }

 private:
  const TransformerLM* model_;
  const Tokenizer* tok_;
  SampleOptions opts_;
  int width_;
  TransformerLM::BatchedCache cache_;
  // Step scratch, reused across decode() calls (a long-lived decoder
  // serving many batches never re-allocates per step): the per-slot
  // top-k buffers handed to each in-flight sequence, and the step's
  // slot/token/logits staging.
  std::vector<std::vector<float>> slot_scratch_;
  std::vector<int> slot_ids_, tokens_;
  std::vector<float> logits_;
  DecodeStats stats_;
};

/// Typed outcome of decoding a sampled id sequence. Token sequences
/// arriving from outside the sampler (wire protocol, checkpoints, fuzz
/// inputs) are adversarial: every id is bounds-checked against the
/// tokenizer's vocabulary before any table lookup, and structural
/// problems surface as a kind + message instead of an assertion.
struct NetlistDecode {
  enum class Fail {
    kNone,             // decoded successfully, netlist is set
    kEmpty,            // no pin tokens before EOS/pad
    kTokenOutOfRange,  // id outside [0, vocab) — adversarial/truncated input
    kBadStructure,     // in-vocab tokens that do not form a decodable tour
  };
  Fail fail = Fail::kNone;
  std::string message;                     // empty when ok
  std::optional<circuit::Netlist> netlist; // set iff fail == kNone
  [[nodiscard]] bool ok() const { return fail == Fail::kNone; }
};

/// Hardened decode of a sampled id sequence into a netlist (the tour
/// must already be closed — no implicit return-to-VSS is appended).
/// Never throws and never aborts, whatever the input bytes.
[[nodiscard]] NetlistDecode ids_to_netlist_checked(
    const Tokenizer& tok, const std::vector<int>& ids);

/// Convenience wrapper over ids_to_netlist_checked: nullopt on any
/// failure, for callers that don't care why.
[[nodiscard]] std::optional<circuit::Netlist> ids_to_netlist(
    const Tokenizer& tok, const std::vector<int>& ids);

}  // namespace eva::nn
