// Language-model pretraining (paper §III-B, Eq. 1).
//
// Builds the sequence corpus from the topology dataset (several randomized
// Euler tours per topology — the paper's DFS-permutation augmentation that
// expands 3470 topologies into 234k sequences) and maximizes the standard
// next-token objective. Unlike generic text pretraining, every training
// sequence is exactly one complete circuit topology.
#pragma once

#include <functional>
#include <vector>

#include "data/dataset.hpp"
#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "tensor/optim.hpp"
#include "train/sentinel.hpp"

namespace eva::nn {

/// Tokenized sequences, each one complete topology: [VSS ... VSS, EOS].
struct SequenceCorpus {
  std::vector<std::vector<int>> train;
  std::vector<std::vector<int>> val;
};

/// Build the corpus: `tours_per_topology` randomized Euler tours for each
/// training topology (sequence augmentation), one tour per validation
/// topology. Sequences longer than max_seq are dropped (counted).
[[nodiscard]] SequenceCorpus build_corpus(const data::Dataset& ds,
                                          const Tokenizer& tok,
                                          int tours_per_topology, int max_seq,
                                          Rng& rng);

struct PretrainConfig {
  int steps = 300;
  int batch = 8;
  float lr = 3e-3f;
  float lr_min_frac = 0.1f;   // cosine decay floor
  int warmup = 20;
  float clip = 1.0f;
  float weight_decay = 0.01f;
  std::uint64_t seed = 1234;
  int log_every = 25;

  // Fault tolerance (train/): empty checkpoint_dir disables snapshots.
  // With resume=true the newest valid snapshot is restored and the run
  // continues bit-compatibly (RNG + optimizer state, LR re-aligned).
  std::string checkpoint_dir;
  int checkpoint_every = 50;   // steps between snapshots
  int keep_checkpoints = 3;
  bool resume = false;
  train::SentinelConfig sentinel;
};

struct PretrainResult {
  std::vector<double> losses;      // per-step training loss (this run only)
  double final_val_loss = 0.0;
  int start_step = 0;              // > 0 when resumed from a checkpoint
  bool interrupted = false;        // stopped early via SIGINT/SIGTERM
};

/// Mean next-token cross-entropy of the model on a sequence set.
[[nodiscard]] double eval_lm_loss(const TransformerLM& model,
                                  const std::vector<std::vector<int>>& seqs,
                                  int batch = 8);

/// Run pretraining. `on_step(step, loss)` is an optional progress hook.
PretrainResult pretrain(
    TransformerLM& model, const SequenceCorpus& corpus,
    const PretrainConfig& cfg,
    const std::function<void(int, double)>& on_step = nullptr);

/// Assemble one padded next-token batch: inputs (B,T), targets with pad
/// positions set to ignore_index -1. Exposed for the RL fine-tuners.
struct TokenBatch {
  std::vector<int> inputs;
  std::vector<int> targets;
  int batch = 0;
  int seq_len = 0;
};
[[nodiscard]] TokenBatch make_batch(
    const std::vector<const std::vector<int>*>& seqs, int max_seq);

}  // namespace eva::nn
