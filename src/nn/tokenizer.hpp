// Domain-specific tokenizer (paper §III-B).
//
// Each token is a device pin (NM1_G, R2_P, ...) or a circuit-level IO pin
// (VSS, VDD, VIN1, ...), plus two specials: "Truncate" (the paper's pad
// token) and an end-of-sequence marker. Device-instance limits are
// data-driven: the tokenizer scans the dataset for the maximum number of
// instances of each device kind (optionally with headroom so fine-tuned
// models can exceed the dataset's largest circuits).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "circuit/pingraph.hpp"
#include "data/dataset.hpp"

namespace eva::nn {

class Tokenizer {
 public:
  /// Token ids of the special tokens.
  static constexpr int kPad = 0;  // "Truncate" in the paper
  static constexpr int kEos = 1;

  /// Build from explicit per-kind device limits.
  explicit Tokenizer(std::array<int, circuit::kNumDeviceKinds> limits);

  /// Data-driven construction: scan the dataset for per-kind maxima and
  /// multiply by `headroom` (>= 1.0).
  [[nodiscard]] static Tokenizer from_dataset(const data::Dataset& ds,
                                              double headroom = 1.25);

  [[nodiscard]] int vocab_size() const {
    return static_cast<int>(names_.size());
  }
  [[nodiscard]] const std::array<int, circuit::kNumDeviceKinds>& limits()
      const {
    return limits_;
  }

  /// Token id of a pin token. Throws eva::Error if outside the vocabulary
  /// (device index above the limit).
  [[nodiscard]] int encode(const circuit::PinToken& t) const;
  /// Token id of an IO pin.
  [[nodiscard]] int encode_io(circuit::IoPin p) const;
  /// Inverse of encode. Requires a non-special id.
  [[nodiscard]] circuit::PinToken decode(int id) const;
  [[nodiscard]] bool is_special(int id) const { return id < kFirstPin; }
  [[nodiscard]] const std::string& name(int id) const;

  /// Encode an Euler tour as ids, appending EOS.
  [[nodiscard]] std::vector<int> encode_tour(
      const std::vector<circuit::PinToken>& tour) const;
  /// Decode ids back to pin tokens, stopping at EOS/pad. Returns nullopt-
  /// like empty vector only for empty input; unknown ids throw.
  [[nodiscard]] std::vector<circuit::PinToken> decode_ids(
      const std::vector<int>& ids) const;

  /// Token id that every sequence starts with (VSS).
  [[nodiscard]] int start_token() const { return encode_io(circuit::IoPin::Vss); }

 private:
  static constexpr int kFirstPin = 2;  // after pad + eos

  std::array<int, circuit::kNumDeviceKinds> limits_{};
  // Per-kind base offset into the id space of that kind's pin tokens.
  std::array<int, circuit::kNumDeviceKinds> kind_base_{};
  int io_base_ = 0;
  std::vector<std::string> names_;
};

}  // namespace eva::nn
