#include "nn/lm_trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "circuit/pingraph.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "train/checkpoint.hpp"
#include "train/signal.hpp"
#include "util/fault.hpp"

namespace eva::nn {

using namespace eva::tensor;

SequenceCorpus build_corpus(const data::Dataset& ds, const Tokenizer& tok,
                            int tours_per_topology, int max_seq, Rng& rng) {
  EVA_REQUIRE(tours_per_topology >= 1, "need at least one tour per topology");
  SequenceCorpus corpus;
  const auto split = ds.split();
  auto encode_one = [&](std::size_t idx) -> std::vector<int> {
    const auto tour = circuit::encode_tour(ds.entries()[idx].netlist, rng);
    return tok.encode_tour(tour);
  };
  for (std::size_t idx : split.train) {
    for (int t = 0; t < tours_per_topology; ++t) {
      auto ids = encode_one(idx);
      if (static_cast<int>(ids.size()) <= max_seq) {
        corpus.train.push_back(std::move(ids));
      }
    }
  }
  for (std::size_t idx : split.val) {
    auto ids = encode_one(idx);
    if (static_cast<int>(ids.size()) <= max_seq) {
      corpus.val.push_back(std::move(ids));
    }
  }
  EVA_REQUIRE(!corpus.train.empty(), "corpus has no training sequences");
  return corpus;
}

TokenBatch make_batch(const std::vector<const std::vector<int>*>& seqs,
                      int max_seq) {
  EVA_REQUIRE(!seqs.empty(), "empty batch");
  TokenBatch b;
  b.batch = static_cast<int>(seqs.size());
  std::size_t longest = 0;
  for (const auto* s : seqs) longest = std::max(longest, s->size());
  // Inputs drop the last token, targets drop the first: T = longest - 1.
  b.seq_len = static_cast<int>(
      std::min<std::size_t>(longest - 1, static_cast<std::size_t>(max_seq)));
  const auto T = static_cast<std::size_t>(b.seq_len);
  b.inputs.assign(static_cast<std::size_t>(b.batch) * T, Tokenizer::kPad);
  b.targets.assign(static_cast<std::size_t>(b.batch) * T, -1);
  for (std::size_t r = 0; r < seqs.size(); ++r) {
    const auto& s = *seqs[r];
    const std::size_t n = std::min(s.size() - 1, T);
    for (std::size_t t = 0; t < n; ++t) {
      b.inputs[r * T + t] = s[t];
      b.targets[r * T + t] = s[t + 1];
    }
  }
  return b;
}

double eval_lm_loss(const TransformerLM& model,
                    const std::vector<std::vector<int>>& seqs, int batch) {
  if (seqs.empty()) return 0.0;
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t start = 0; start < seqs.size();
       start += static_cast<std::size_t>(batch)) {
    std::vector<const std::vector<int>*> ptrs;
    for (std::size_t i = start;
         i < std::min(seqs.size(), start + static_cast<std::size_t>(batch));
         ++i) {
      ptrs.push_back(&seqs[i]);
    }
    const TokenBatch b = make_batch(ptrs, model.config().max_seq);
    Tensor logits = model.forward(b.inputs, b.batch, b.seq_len,
                                  /*training=*/false);
    Tensor loss = cross_entropy(logits, b.targets, -1);
    total += loss.item() * static_cast<double>(ptrs.size());
    count += ptrs.size();
  }
  return total / static_cast<double>(count);
}

namespace {

// The LR schedule is a pure function of the step index, so a resumed run
// recomputes exactly the schedule the original run would have applied.
float schedule_lr(const PretrainConfig& cfg, int step) {
  if (step < cfg.warmup) {
    return cfg.lr * static_cast<float>(step + 1) /
           static_cast<float>(cfg.warmup);
  }
  if (cfg.steps > cfg.warmup) {
    const float t = static_cast<float>(step - cfg.warmup) /
                    static_cast<float>(cfg.steps - cfg.warmup);
    const float floor_lr = cfg.lr * cfg.lr_min_frac;
    return floor_lr + 0.5f * (cfg.lr - floor_lr) *
                          (1.0f + std::cos(3.14159265f * t));
  }
  return cfg.lr;
}

std::uint64_t pretrain_fingerprint(const TransformerLM& model,
                                   const PretrainConfig& cfg) {
  const auto& mc = model.config();
  train::Fingerprint fp;
  fp.mix(mc.vocab).mix(mc.d_model).mix(mc.n_layers).mix(mc.n_heads)
      .mix(mc.d_ff).mix(mc.max_seq).mix(mc.dropout);
  fp.mix(cfg.steps).mix(cfg.batch).mix(cfg.lr).mix(cfg.lr_min_frac)
      .mix(cfg.warmup).mix(cfg.clip).mix(cfg.weight_decay)
      .mix(cfg.seed);
  return fp.value();
}

}  // namespace

PretrainResult pretrain(TransformerLM& model, const SequenceCorpus& corpus,
                        const PretrainConfig& cfg,
                        const std::function<void(int, double)>& on_step) {
  Rng rng(cfg.seed);
  auto params = model.parameters();
  AdamW opt(params, {.lr = cfg.lr, .weight_decay = cfg.weight_decay});

  static obs::Counter& steps_c = obs::counter("pretrain.steps");
  static obs::Counter& tokens_c = obs::counter("pretrain.tokens");
  static obs::Histogram& loss_h = obs::histogram("pretrain.loss");
  static obs::Histogram& gnorm_h = obs::histogram("pretrain.grad_norm");
  // tokens/s over a sliding window of log_every steps (the whole run when
  // log_every exceeds it), so warmup steps do not dilute the figure.
  auto window_t0 = std::chrono::steady_clock::now();
  std::int64_t window_tokens = 0;

  train::TrainState ts;
  ts.params = params;
  ts.opt = &opt;
  ts.rng = &rng;

  std::unique_ptr<train::CheckpointManager> ckpt;
  if (!cfg.checkpoint_dir.empty()) {
    ckpt = std::make_unique<train::CheckpointManager>(train::CheckpointOptions{
        cfg.checkpoint_dir, cfg.keep_checkpoints,
        pretrain_fingerprint(model, cfg)});
  }

  PretrainResult result;
  if (ckpt && cfg.resume) {
    if (auto restored = ckpt->load_latest(ts)) {
      result.start_step = static_cast<int>(*restored);
    }
  }

  train::DivergenceSentinel sentinel(cfg.sentinel);
  train::RollbackSlot last_good;
  int rollbacks_left = 5;  // give up instead of thrashing forever

  ts.step = result.start_step;
  last_good.capture(ts, 0);

  result.losses.reserve(static_cast<std::size_t>(cfg.steps));
  for (int step = result.start_step; step < cfg.steps; ++step) {
    obs::Span step_span("pretrain.step");
    // LR schedule: linear warmup then cosine decay to lr_min_frac * lr,
    // scaled down while the divergence sentinel is backing off.
    const float lr = schedule_lr(cfg, step) * sentinel.lr_scale();
    opt.set_lr(lr);

    std::vector<const std::vector<int>*> ptrs;
    ptrs.reserve(static_cast<std::size_t>(cfg.batch));
    for (int i = 0; i < cfg.batch; ++i) {
      ptrs.push_back(&corpus.train[rng.index(corpus.train.size())]);
    }
    const TokenBatch b = make_batch(ptrs, model.config().max_seq);

    opt.zero_grad();
    Rng drop_rng = rng.fork();
    Tensor logits =
        model.forward(b.inputs, b.batch, b.seq_len, true, &drop_rng);
    Tensor loss = cross_entropy(logits, b.targets, -1);
    loss.backward();
    if (fault::enabled() && fault::should_fire("nan_grad")) {
      params[0].grad()[0] = std::numeric_limits<float>::quiet_NaN();
    }
    const double grad_norm = clip_grad_norm(params, cfg.clip);

    switch (sentinel.observe(loss.item(), grad_norm)) {
      case train::SentinelAction::kRollback:
        if (last_good.armed() && rollbacks_left > 0) {
          --rollbacks_left;
          const long back = last_good.restore(ts);
          result.losses.resize(last_good.progress_size());
          sentinel.notify_rollback();
          step = static_cast<int>(back) - 1;  // ++ resumes at `back`
          continue;
        }
        obs::log_error("pretrain.diverged",
                       {{"step", step}, {"loss", loss.item()}});
        result.interrupted = true;
        step = cfg.steps;  // abort the run
        continue;
      case train::SentinelAction::kSkip:
        continue;  // drop the batch; no optimizer step
      case train::SentinelAction::kProceed:
        break;
    }
    opt.step();
    ts.step = step + 1;

    const std::int64_t step_tokens =
        static_cast<std::int64_t>(b.batch) * b.seq_len;
    steps_c.add();
    tokens_c.add(step_tokens);
    window_tokens += step_tokens;
    loss_h.record(loss.item());
    gnorm_h.record(grad_norm);

    result.losses.push_back(loss.item());
    if (step % cfg.log_every == 0 || step + 1 == cfg.steps) {
      const auto now = std::chrono::steady_clock::now();
      const double dt = std::chrono::duration<double>(now - window_t0).count();
      const double tok_s = dt > 0 ? static_cast<double>(window_tokens) / dt : 0;
      obs::gauge("pretrain.loss").set(loss.item());
      obs::gauge("pretrain.tokens_per_sec").set(tok_s);
      if (on_step) {
        on_step(step, loss.item());
      } else {
        obs::log_info("pretrain.step", {{"step", step},
                                        {"loss", loss.item()},
                                        {"grad_norm", grad_norm},
                                        {"tok_s", tok_s},
                                        {"lr", lr}});
      }
      window_t0 = now;
      window_tokens = 0;
    }

    const bool stopping = train::stop_requested();
    const bool at_cadence =
        cfg.checkpoint_every > 0 && ts.step % cfg.checkpoint_every == 0;
    if (at_cadence || stopping || ts.step == static_cast<long>(cfg.steps)) {
      if (ckpt) {
        try {
          ckpt->save(ts);
        } catch (const Error& e) {
          obs::log_error("pretrain.ckpt_failed", {{"error", e.what()}});
        }
      }
      last_good.capture(ts, result.losses.size());
    }
    if (stopping) {
      obs::log_info("pretrain.interrupted", {{"step", ts.step}});
      result.interrupted = true;
      break;
    }
  }
  if (!result.interrupted) {
    result.final_val_loss = eval_lm_loss(model, corpus.val, cfg.batch);
    obs::log_info("pretrain.done",
                  {{"steps", cfg.steps}, {"val_loss", result.final_val_loss}});
  }
  obs::flush();
  return result;
}

}  // namespace eva::nn
