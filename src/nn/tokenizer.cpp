#include "nn/tokenizer.hpp"

#include <algorithm>
#include <cmath>

namespace eva::nn {

using circuit::DeviceKind;
using circuit::IoPin;
using circuit::PinToken;

Tokenizer::Tokenizer(std::array<int, circuit::kNumDeviceKinds> limits)
    : limits_(limits) {
  names_.push_back("Truncate");  // kPad
  names_.push_back("<EOS>");     // kEos

  io_base_ = static_cast<int>(names_.size());
  for (int i = 0; i < circuit::kNumIoPins; ++i) {
    names_.emplace_back(circuit::io_name(static_cast<IoPin>(i)));
  }
  for (int k = 0; k < circuit::kNumDeviceKinds; ++k) {
    const auto kind = static_cast<DeviceKind>(k);
    EVA_REQUIRE(limits_[static_cast<std::size_t>(k)] >= 0,
                "negative device limit");
    kind_base_[static_cast<std::size_t>(k)] = static_cast<int>(names_.size());
    for (int idx = 1; idx <= limits_[static_cast<std::size_t>(k)]; ++idx) {
      for (int p = 0; p < pin_count(kind); ++p) {
        names_.push_back(circuit::dev_token(kind, idx, p).name());
      }
    }
  }
}

Tokenizer Tokenizer::from_dataset(const data::Dataset& ds, double headroom) {
  EVA_REQUIRE(headroom >= 1.0, "headroom must be >= 1");
  std::array<int, circuit::kNumDeviceKinds> limits{};
  for (const auto& e : ds.entries()) {
    for (const auto& [kind, count] : e.netlist.kind_counts()) {
      auto& lim = limits[static_cast<std::size_t>(kind)];
      lim = std::max(lim, count);
    }
  }
  for (auto& lim : limits) {
    lim = static_cast<int>(std::ceil(lim * headroom));
  }
  return Tokenizer(limits);
}

int Tokenizer::encode(const PinToken& t) const {
  if (t.is_io) return encode_io(t.io);
  const auto k = static_cast<std::size_t>(t.kind);
  EVA_REQUIRE(t.index >= 1 && t.index <= limits_[k],
              "device index exceeds tokenizer limit: " + t.name());
  return kind_base_[k] + (t.index - 1) * pin_count(t.kind) + t.pin;
}

int Tokenizer::encode_io(IoPin p) const {
  return io_base_ + static_cast<int>(p);
}

PinToken Tokenizer::decode(int id) const {
  EVA_REQUIRE(id >= kFirstPin && id < vocab_size(),
              "decode: id out of range or special");
  if (id < io_base_ + circuit::kNumIoPins) {
    return circuit::io_token(static_cast<IoPin>(id - io_base_));
  }
  for (int k = circuit::kNumDeviceKinds - 1; k >= 0; --k) {
    const auto kind = static_cast<DeviceKind>(k);
    const int base = kind_base_[static_cast<std::size_t>(k)];
    if (limits_[static_cast<std::size_t>(k)] > 0 && id >= base) {
      const int off = id - base;
      const int pc = pin_count(kind);
      return circuit::dev_token(kind, off / pc + 1, off % pc);
    }
  }
  throw Error("decode: unmapped token id");
}

const std::string& Tokenizer::name(int id) const {
  EVA_REQUIRE(id >= 0 && id < vocab_size(), "name: id out of range");
  return names_[static_cast<std::size_t>(id)];
}

std::vector<int> Tokenizer::encode_tour(
    const std::vector<PinToken>& tour) const {
  std::vector<int> ids;
  ids.reserve(tour.size() + 1);
  for (const auto& t : tour) ids.push_back(encode(t));
  ids.push_back(kEos);
  return ids;
}

std::vector<PinToken> Tokenizer::decode_ids(const std::vector<int>& ids) const {
  std::vector<PinToken> tour;
  tour.reserve(ids.size());
  for (int id : ids) {
    if (id == kEos || id == kPad) break;
    tour.push_back(decode(id));
  }
  return tour;
}

}  // namespace eva::nn
