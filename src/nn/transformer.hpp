// EVA's decoder-only transformer (paper §III-B).
//
// GPT-style pre-norm architecture: token + learned positional embeddings,
// N blocks of (layernorm -> causal multi-head self-attention -> residual,
// layernorm -> GELU MLP -> residual), final layernorm, linear vocabulary
// head. Two execution paths:
//
//  * training path — builds the autograd graph (tensor engine), used by
//    pretraining, the reward model, PPO and DPO;
//  * inference path — plain float math with a per-sequence KV cache, used
//    by generation (sampling thousands of topologies for the metrics) and
//    PPO rollouts. O(d^2 + t*d) per generated token.
#pragma once

#include <vector>

#include "nn/config.hpp"
#include "tensor/tensor.hpp"

namespace eva::nn {

class TransformerLM {
 public:
  TransformerLM(ModelConfig cfg, Rng& rng);

  [[nodiscard]] const ModelConfig& config() const { return cfg_; }

  /// All trainable parameters (stable order; serializable).
  [[nodiscard]] std::vector<tensor::Tensor> parameters() const;
  [[nodiscard]] std::size_t num_params() const;

  /// Training path. `tokens` is row-major (B,T); returns logits (B*T, V).
  /// Position indices run 0..T-1 per row.
  [[nodiscard]] tensor::Tensor forward(const std::vector<int>& tokens, int B,
                                       int T, bool training = true,
                                       Rng* dropout_rng = nullptr) const;

  /// Training path returning the final hidden states (B,T,C) — the input
  /// to auxiliary heads (PPO value head, reward-model classifier head).
  [[nodiscard]] tensor::Tensor forward_hidden(const std::vector<int>& tokens,
                                              int B, int T,
                                              bool training = true,
                                              Rng* dropout_rng = nullptr) const;

  /// Project hidden states (B,T,C) to logits (B*T,V) with the LM head.
  [[nodiscard]] tensor::Tensor lm_logits(const tensor::Tensor& hidden) const;

  // --- KV-cache inference ------------------------------------------------
  struct Cache {
    // Per layer: keys/values appended per step, each step d_model floats
    // laid out head-major within the step.
    std::vector<std::vector<float>> k, v;
    int len = 0;
  };

  [[nodiscard]] Cache make_cache() const;

  /// Feed one token; returns logits over the vocabulary for the next
  /// position. Deterministic, no-grad, thread-safe for concurrent caches.
  void infer_step(Cache& cache, int token, std::vector<float>& logits) const;

  /// Copy all parameter values from another model of identical config
  /// (snapshotting the reference model for PPO/DPO).
  void load_from(const TransformerLM& other);

 private:
  struct Block {
    tensor::Tensor ln1_g, ln1_b;
    tensor::Tensor wq, bq, wk, bk, wv, bv, wo, bo;
    tensor::Tensor ln2_g, ln2_b;
    tensor::Tensor w1, b1, w2, b2;
  };

  [[nodiscard]] tensor::Tensor block_forward(const tensor::Tensor& x,
                                             const Block& blk, int T,
                                             bool training,
                                             Rng* dropout_rng) const;

  ModelConfig cfg_;
  tensor::Tensor tok_emb_;   // (V, C)
  tensor::Tensor pos_emb_;   // (max_seq, C)
  std::vector<Block> blocks_;
  tensor::Tensor lnf_g_, lnf_b_;
  tensor::Tensor lm_head_;   // (C, V)
};

}  // namespace eva::nn
