// EVA's decoder-only transformer (paper §III-B).
//
// GPT-style pre-norm architecture: token + learned positional embeddings,
// N blocks of (layernorm -> causal multi-head self-attention -> residual,
// layernorm -> GELU MLP -> residual), final layernorm, linear vocabulary
// head. Three execution paths:
//
//  * training path — builds the autograd graph (tensor engine), used by
//    pretraining, the reward model, PPO and DPO;
//  * reference inference path — plain float math with a per-sequence KV
//    cache (one gemv per linear per token). O(d^2 + t*d) per token.
//  * batched inference path — B in-flight sequences share one forward
//    per decode step: every linear becomes a single (B,in)x(in,out)
//    gemm call, so the weight matrices stream from memory once per
//    step instead of once per sequence. Attention stays per-slot (each
//    slot has its own cache length). This is the engine behind
//    nn::BatchedDecoder (DESIGN.md "Batched KV-cache decoding").
//
// Both inference paths can additionally run on weight-quantized kernels:
// set_inference_quant(kBf16 | kInt8) repacks every block linear and the
// LM head into tensor::QuantMatrix form and the per-step linears route
// through tensor::qgemm / qgemv with fused dequant+bias+GELU epilogues.
// Training always reads the f32 tensors — repacked copies are
// derived state, invalidated and rebuilt by load_from() and by calling
// set_inference_quant again after mutating parameters.
#pragma once

#include <vector>

#include "nn/config.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"
#include "util/aligned.hpp"

namespace eva::nn {

class TransformerLM {
 public:
  TransformerLM(ModelConfig cfg, Rng& rng);

  [[nodiscard]] const ModelConfig& config() const { return cfg_; }

  /// All trainable parameters (stable order; serializable).
  [[nodiscard]] std::vector<tensor::Tensor> parameters() const;
  [[nodiscard]] std::size_t num_params() const;

  /// Token-embedding table (V, C) — read-only view for auxiliary heads
  /// that pool over token identity (the FoM surrogate seeds from it).
  [[nodiscard]] const tensor::Tensor& token_embedding() const {
    return tok_emb_;
  }

  /// Training path. `tokens` is row-major (B,T); returns logits (B*T, V).
  /// Position indices run 0..T-1 per row.
  [[nodiscard]] tensor::Tensor forward(const std::vector<int>& tokens, int B,
                                       int T, bool training = true,
                                       Rng* dropout_rng = nullptr) const;

  /// Training path returning the final hidden states (B,T,C) — the input
  /// to auxiliary heads (PPO value head, reward-model classifier head).
  [[nodiscard]] tensor::Tensor forward_hidden(const std::vector<int>& tokens,
                                              int B, int T,
                                              bool training = true,
                                              Rng* dropout_rng = nullptr) const;

  /// Project hidden states (B,T,C) to logits (B*T,V) with the LM head.
  [[nodiscard]] tensor::Tensor lm_logits(const tensor::Tensor& hidden) const;

  // --- Quantized inference -----------------------------------------------
  /// One-time repack of the inference weights (every block linear + the
  /// LM head) into the given quantized tier; subsequent infer_step /
  /// infer_step_batched calls run on tensor::qgemv / qgemm with fused
  /// epilogues. kF32 drops the packed copies and restores the exact
  /// float path. Repacked weights are a snapshot: after mutating
  /// parameters (training step, load_from is handled automatically),
  /// call this again to refresh them. Not thread-safe against concurrent
  /// inference — repack before handing the model to decoders.
  void set_inference_quant(tensor::QuantKind kind);
  [[nodiscard]] tensor::QuantKind inference_quant() const { return qkind_; }

  // --- KV-cache inference ------------------------------------------------
  struct Cache {
    // Per layer: keys/values appended per step, each step d_model floats
    // laid out head-major within the step.
    std::vector<std::vector<float>> k, v;
    int len = 0;
  };

  [[nodiscard]] Cache make_cache() const;

  /// Feed one token; returns logits over the vocabulary for the next
  /// position. Deterministic, no-grad, thread-safe for concurrent caches.
  void infer_step(Cache& cache, int token, std::vector<float>& logits) const;

  // --- Batched KV-cache inference ----------------------------------------
  /// Fixed pool of `capacity` cache slots. Per layer, keys/values live in
  /// one contiguous (capacity, max_seq, d_model) slab; slot s's cached
  /// position t starts at (s * max_seq + t) * d_model, head-major within
  /// the position — the same per-position layout as Cache, so the
  /// attention inner loops are shared between the two paths. Slots are
  /// recycled by resetting their length (continuous batching). Slabs and
  /// the step workspace are 64-byte aligned (util/aligned.hpp) for the
  /// vectorized kernels; infer_step_batched asserts this.
  struct BatchedCache {
    int capacity = 0;
    int slot_stride = 0;                 // max_seq * d_model
    std::vector<AlignedVec<float>> k, v;  // per layer: capacity*slot_stride
    std::vector<int> len;                // cached positions per slot

    /// Recycle a slot for a fresh sequence (keeps the allocation).
    void reset_slot(int s) { len[static_cast<std::size_t>(s)] = 0; }

    // Step workspace, sized for `capacity` rows up front and reused
    // across infer_step_batched calls (the decode loop never allocates
    // after the cache is built).
    struct Workspace {
      AlignedVec<float> x, h, q, kv, ctx, att, ff;
    };
    Workspace ws;
  };

  [[nodiscard]] BatchedCache make_batched_cache(int capacity) const;

  /// One decode step for n = slots.size() in-flight sequences: row i
  /// feeds `tokens[i]` to cache slot `slots[i]` (at that slot's next
  /// position) and receives next-token logits in `logits[i*vocab ..)`.
  /// Slots must be distinct; n <= capacity.
  ///
  /// Numerics: each row's result is independent of which other slots are
  /// stepped alongside it (per-row reduction order in gemm_nn / qgemm is
  /// fixed by the shapes alone), which is what makes BatchedDecoder's
  /// output invariant to batch width — in both the f32 and quantized
  /// tiers. It also matches infer_step bitwise whenever every linear's
  /// K dimension fits a single gemm K-panel (K <= 256: all shipped
  /// configs except paper_scale, which drifts within float tolerance
  /// only).
  void infer_step_batched(BatchedCache& cache, const std::vector<int>& slots,
                          const std::vector<int>& tokens,
                          std::vector<float>& logits) const;

  /// Copy all parameter values from another model of identical config
  /// (snapshotting the reference model for PPO/DPO). Re-runs the
  /// inference repack when one is active, so quantized decoding tracks
  /// the new weights.
  void load_from(const TransformerLM& other);

 private:
  struct Block {
    tensor::Tensor ln1_g, ln1_b;
    tensor::Tensor wq, bq, wk, bk, wv, bv, wo, bo;
    tensor::Tensor ln2_g, ln2_b;
    tensor::Tensor w1, b1, w2, b2;
  };

  /// Quantized snapshots of one block's six linear weight matrices
  /// (biases and layernorm params stay f32 — they are O(d) per token).
  struct QuantBlock {
    tensor::QuantMatrix wq, wk, wv, wo, w1, w2;
  };

  [[nodiscard]] tensor::Tensor block_forward(const tensor::Tensor& x,
                                             const Block& blk, int T,
                                             bool training,
                                             Rng* dropout_rng) const;

  ModelConfig cfg_;
  tensor::Tensor tok_emb_;   // (V, C)
  tensor::Tensor pos_emb_;   // (max_seq, C)
  std::vector<Block> blocks_;
  tensor::Tensor lnf_g_, lnf_b_;
  tensor::Tensor lm_head_;   // (C, V)

  tensor::QuantKind qkind_ = tensor::QuantKind::kF32;
  std::vector<QuantBlock> qblocks_;  // empty unless qkind_ != kF32
  tensor::QuantMatrix qlm_head_;
};

}  // namespace eva::nn
