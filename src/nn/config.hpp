// Model hyperparameters for EVA's decoder-only transformer.
//
// The paper's model: 6 layers, 6 heads, 11.825M parameters, vocab 1029,
// max sequence length 1024 (§IV-A), trained on an A100. paper_scale()
// reproduces that configuration; bench_scale() is the CPU-sized default
// used by the reproduction benchmarks; tiny() is for unit tests.
#pragma once

namespace eva::nn {

struct ModelConfig {
  int vocab = 0;        // set from the tokenizer
  int d_model = 64;
  int n_layers = 2;
  int n_heads = 2;
  int d_ff = 256;       // MLP hidden width (4 * d_model by convention)
  int max_seq = 256;
  float dropout = 0.0f;

  [[nodiscard]] static ModelConfig tiny(int vocab) {
    return {vocab, 32, 1, 2, 128, 128, 0.0f};
  }
  [[nodiscard]] static ModelConfig bench_scale(int vocab) {
    return {vocab, 64, 2, 2, 256, 256, 0.0f};
  }
  [[nodiscard]] static ModelConfig paper_scale(int vocab) {
    return {vocab, 384, 6, 6, 1536, 1024, 0.1f};
  }
};

}  // namespace eva::nn
