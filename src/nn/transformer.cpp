#include "nn/transformer.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.hpp"

namespace eva::nn {

using namespace eva::tensor;

namespace {
/// GPT-2-style init scales.
Tensor init_weight(Shape shape, Rng& rng, float scale = 0.02f) {
  return Tensor::randn(std::move(shape), rng, scale, true);
}
Tensor init_zeros(Shape shape) { return Tensor::zeros(std::move(shape), true); }
Tensor init_ones(Shape shape) {
  return Tensor::full(std::move(shape), 1.0f, true);
}
}  // namespace

TransformerLM::TransformerLM(ModelConfig cfg, Rng& rng) : cfg_(cfg) {
  EVA_REQUIRE(cfg_.vocab > 2, "vocab must include specials");
  EVA_REQUIRE(cfg_.d_model % cfg_.n_heads == 0,
              "d_model must be divisible by n_heads");
  const int C = cfg_.d_model;
  tok_emb_ = init_weight({cfg_.vocab, C}, rng);
  pos_emb_ = init_weight({cfg_.max_seq, C}, rng, 0.01f);
  const float resid_scale =
      0.02f / std::sqrt(2.0f * static_cast<float>(cfg_.n_layers));
  for (int l = 0; l < cfg_.n_layers; ++l) {
    Block b;
    b.ln1_g = init_ones({C});
    b.ln1_b = init_zeros({C});
    b.wq = init_weight({C, C}, rng);
    b.bq = init_zeros({C});
    b.wk = init_weight({C, C}, rng);
    b.bk = init_zeros({C});
    b.wv = init_weight({C, C}, rng);
    b.bv = init_zeros({C});
    b.wo = init_weight({C, C}, rng, resid_scale);
    b.bo = init_zeros({C});
    b.ln2_g = init_ones({C});
    b.ln2_b = init_zeros({C});
    b.w1 = init_weight({C, cfg_.d_ff}, rng);
    b.b1 = init_zeros({cfg_.d_ff});
    b.w2 = init_weight({cfg_.d_ff, C}, rng, resid_scale);
    b.b2 = init_zeros({C});
    blocks_.push_back(std::move(b));
  }
  lnf_g_ = init_ones({C});
  lnf_b_ = init_zeros({C});
  lm_head_ = init_weight({C, cfg_.vocab}, rng);
}

std::vector<Tensor> TransformerLM::parameters() const {
  std::vector<Tensor> ps{tok_emb_, pos_emb_};
  for (const auto& b : blocks_) {
    for (const auto& t :
         {b.ln1_g, b.ln1_b, b.wq, b.bq, b.wk, b.bk, b.wv, b.bv, b.wo, b.bo,
          b.ln2_g, b.ln2_b, b.w1, b.b1, b.w2, b.b2}) {
      ps.push_back(t);
    }
  }
  ps.push_back(lnf_g_);
  ps.push_back(lnf_b_);
  ps.push_back(lm_head_);
  return ps;
}

std::size_t TransformerLM::num_params() const {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

void TransformerLM::load_from(const TransformerLM& other) {
  auto src = other.parameters();
  auto dst = parameters();
  EVA_REQUIRE(src.size() == dst.size(), "load_from: model shape mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    EVA_REQUIRE(src[i].numel() == dst[i].numel(),
                "load_from: tensor shape mismatch");
    auto s = src[i].data();
    auto d = dst[i].data();
    std::copy(s.begin(), s.end(), d.begin());
  }
  // Packed inference weights are a snapshot of the tensors just
  // overwritten — rebuild them so quantized decoding tracks the load.
  if (qkind_ != QuantKind::kF32) set_inference_quant(qkind_);
}

void TransformerLM::set_inference_quant(QuantKind kind) {
  qkind_ = kind;
  qblocks_.clear();
  qlm_head_ = QuantMatrix{};
  if (kind == QuantKind::kF32) return;
  const auto C = static_cast<std::size_t>(cfg_.d_model);
  const auto F = static_cast<std::size_t>(cfg_.d_ff);
  qblocks_.reserve(blocks_.size());
  for (const auto& b : blocks_) {
    QuantBlock qb;
    qb.wq = QuantMatrix::quantize(kind, b.wq.data().data(), C, C);
    qb.wk = QuantMatrix::quantize(kind, b.wk.data().data(), C, C);
    qb.wv = QuantMatrix::quantize(kind, b.wv.data().data(), C, C);
    qb.wo = QuantMatrix::quantize(kind, b.wo.data().data(), C, C);
    qb.w1 = QuantMatrix::quantize(kind, b.w1.data().data(), C, F);
    qb.w2 = QuantMatrix::quantize(kind, b.w2.data().data(), F, C);
    qblocks_.push_back(std::move(qb));
  }
  qlm_head_ = QuantMatrix::quantize(kind, lm_head_.data().data(), C,
                                    static_cast<std::size_t>(cfg_.vocab));
}

Tensor TransformerLM::block_forward(const Tensor& x, const Block& blk, int T,
                                    bool training, Rng* dropout_rng) const {
  const int H = cfg_.n_heads;
  const float scale =
      1.0f / std::sqrt(static_cast<float>(cfg_.d_model / cfg_.n_heads));

  // Attention sublayer.
  Tensor h = layernorm(x, blk.ln1_g, blk.ln1_b);
  Tensor q = add(matmul(h, blk.wq), blk.bq);
  Tensor k = add(matmul(h, blk.wk), blk.bk);
  Tensor v = add(matmul(h, blk.wv), blk.bv);
  Tensor qh = split_heads(q, H);
  Tensor kh = split_heads(k, H);
  Tensor vh = split_heads(v, H);
  Tensor scores = mul_scalar(matmul(qh, transpose_last(kh)), scale);
  Tensor probs = causal_softmax(scores, T);
  Tensor ctx = merge_heads(matmul(probs, vh), H);
  Tensor att = add(matmul(ctx, blk.wo), blk.bo);
  if (training && dropout_rng != nullptr && cfg_.dropout > 0.0f) {
    att = dropout(att, cfg_.dropout, *dropout_rng, true);
  }
  Tensor x1 = add(x, att);

  // MLP sublayer.
  Tensor m = layernorm(x1, blk.ln2_g, blk.ln2_b);
  Tensor ff = add(matmul(gelu(add(matmul(m, blk.w1), blk.b1)), blk.w2), blk.b2);
  if (training && dropout_rng != nullptr && cfg_.dropout > 0.0f) {
    ff = dropout(ff, cfg_.dropout, *dropout_rng, true);
  }
  return add(x1, ff);
}

Tensor TransformerLM::forward_hidden(const std::vector<int>& tokens, int B,
                                     int T, bool training,
                                     Rng* dropout_rng) const {
  EVA_REQUIRE(T <= cfg_.max_seq, "sequence longer than max_seq");
  EVA_REQUIRE(tokens.size() == static_cast<std::size_t>(B) *
                                   static_cast<std::size_t>(T),
              "token count mismatch");
  Tensor x = embedding(tok_emb_, tokens, B, T);
  std::vector<int> pos(static_cast<std::size_t>(B) * static_cast<std::size_t>(T));
  for (int b = 0; b < B; ++b) {
    for (int t = 0; t < T; ++t) {
      pos[static_cast<std::size_t>(b) * static_cast<std::size_t>(T) +
          static_cast<std::size_t>(t)] = t;
    }
  }
  x = add(x, embedding(pos_emb_, pos, B, T));
  for (const auto& blk : blocks_) {
    x = block_forward(x, blk, T, training, dropout_rng);
  }
  return layernorm(x, lnf_g_, lnf_b_);
}

Tensor TransformerLM::lm_logits(const Tensor& hidden) const {
  const int B = hidden.dim(0);
  const int T = hidden.dim(1);
  Tensor logits = matmul(hidden, lm_head_);  // (B,T,V)
  return reshape(logits, {B * T, cfg_.vocab});
}

Tensor TransformerLM::forward(const std::vector<int>& tokens, int B, int T,
                              bool training, Rng* dropout_rng) const {
  return lm_logits(forward_hidden(tokens, B, T, training, dropout_rng));
}

// ---------------------------------------------------------------------------
// Inference path (KV cache, no autograd)
// ---------------------------------------------------------------------------

TransformerLM::Cache TransformerLM::make_cache() const {
  Cache c;
  c.k.resize(static_cast<std::size_t>(cfg_.n_layers));
  c.v.resize(static_cast<std::size_t>(cfg_.n_layers));
  for (auto& kk : c.k) {
    kk.reserve(static_cast<std::size_t>(cfg_.max_seq * cfg_.d_model));
  }
  for (auto& vv : c.v) {
    vv.reserve(static_cast<std::size_t>(cfg_.max_seq * cfg_.d_model));
  }
  return c;
}

namespace {

/// y = x @ W + b through either weight tier: the quantized kernel with
/// its fused epilogue when `qw` is packed, the f32 gemv (plus an unfused
/// GELU pass for kBiasGelu) otherwise. The f32 branch is bitwise the
/// pre-quantization behavior — gelu_approx is the same tanh GELU the
/// unfused loop always applied.
void linear1(const float* x, const QuantMatrix* qw, std::span<const float> w,
             std::span<const float> b, float* y, int in, int out,
             Epilogue ep) {
  if (qw != nullptr && !qw->empty()) {
    tensor::qgemv(x, *qw, b.empty() ? nullptr : b.data(), y, ep);
    return;
  }
  tensor::gemv(x, w.data(), b.empty() ? nullptr : b.data(), y,
               static_cast<std::size_t>(in), static_cast<std::size_t>(out));
  if (ep == Epilogue::kBiasGelu) {
    for (int i = 0; i < out; ++i) y[i] = gelu_approx(y[i]);
  }
}

void layernorm_inplace(float* x, std::span<const float> g,
                       std::span<const float> b, int n) {
  float mu = 0;
  for (int i = 0; i < n; ++i) mu += x[i];
  mu /= static_cast<float>(n);
  float var = 0;
  for (int i = 0; i < n; ++i) {
    const float d = x[i] - mu;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float is = 1.0f / std::sqrt(var + 1e-5f);
  for (int i = 0; i < n; ++i) {
    x[i] = (x[i] - mu) * is * g[static_cast<std::size_t>(i)] +
           b[static_cast<std::size_t>(i)];
  }
}

/// x = tok_emb[token] + pos_emb[pos], one d_model row.
void embed_row(std::span<const float> te, std::span<const float> pe, int token,
               int pos, int C, float* x) {
  for (int i = 0; i < C; ++i) {
    x[i] = te[static_cast<std::size_t>(token) * static_cast<std::size_t>(C) +
              static_cast<std::size_t>(i)] +
           pe[static_cast<std::size_t>(pos) * static_cast<std::size_t>(C) +
              static_cast<std::size_t>(i)];
  }
}

/// Causal attention for one query row over T cached positions. `kbase` /
/// `vbase` point at position 0 of the sequence's cache (positions are
/// C floats apart, head-major within a position) — the layout both Cache
/// and BatchedCache slots use, so the reference and batched paths share
/// this exact reduction order.
///
/// Single pass: QK^T, softmax and the V reduction run fused over the
/// cached positions with an online max/normalizer (accumulator rescaled
/// by exp(m_old - m_new) whenever the running max moves), so no score
/// vector is ever materialized and each K/V position is touched exactly
/// once per head.
void attend_row(const float* q, const float* kbase, const float* vbase, int T,
                int C, int H, int hd, float* ctx) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  for (int head = 0; head < H; ++head) {
    const int off = head * hd;
    float m = -1e30f;
    float z = 0.0f;
    for (int i = 0; i < hd; ++i) ctx[off + i] = 0.0f;
    for (int t = 0; t < T; ++t) {
      const std::size_t tc =
          static_cast<std::size_t>(t) * static_cast<std::size_t>(C) +
          static_cast<std::size_t>(off);
      const float* kt = kbase + tc;
      float s = 0;
      for (int i = 0; i < hd; ++i) s += q[off + i] * kt[i];
      s *= scale;
      if (s > m) {
        const float corr = std::exp(m - s);
        z *= corr;
        for (int i = 0; i < hd; ++i) ctx[off + i] *= corr;
        m = s;
      }
      const float p = std::exp(s - m);
      z += p;
      const float* vt = vbase + tc;
      for (int i = 0; i < hd; ++i) ctx[off + i] += p * vt[i];
    }
    const float inv = 1.0f / z;
    for (int i = 0; i < hd; ++i) ctx[off + i] *= inv;
  }
}

/// Y(n,out) = X(n,in) @ W(in,out) + bias, the batched-decode linear,
/// through either weight tier. f32: rows are seeded with the bias and
/// one gemm_nn accumulates on top, so each row's value equals the gemv
/// result whenever the reduction fits one K-panel (see
/// infer_step_batched's contract in the header). Quantized: one qgemm
/// with the epilogue fused.
void linear_batched(const float* x, const QuantMatrix* qw,
                    std::span<const float> w, std::span<const float> b,
                    float* y, std::size_t n, int in, int out, Epilogue ep) {
  const auto outz = static_cast<std::size_t>(out);
  if (qw != nullptr && !qw->empty()) {
    tensor::qgemm(x, *qw, b.empty() ? nullptr : b.data(), y, n, ep);
    return;
  }
  if (b.empty()) {
    std::fill(y, y + n * outz, 0.0f);
  } else {
    for (std::size_t r = 0; r < n; ++r) {
      std::copy(b.begin(), b.end(), y + r * outz);
    }
  }
  tensor::gemm_nn(x, w.data(), y, n, static_cast<std::size_t>(in), outz);
  if (ep == Epilogue::kBiasGelu) {
    for (std::size_t i = 0; i < n * outz; ++i) y[i] = gelu_approx(y[i]);
  }
}

}  // namespace

void TransformerLM::infer_step(Cache& cache, int token,
                               std::vector<float>& logits) const {
  EVA_REQUIRE(token >= 0 && token < cfg_.vocab, "infer_step: bad token");
  EVA_REQUIRE(cache.len < cfg_.max_seq, "infer_step: cache full");
  const int C = cfg_.d_model;
  const int H = cfg_.n_heads;
  const int hd = C / H;
  const int pos = cache.len;

  std::vector<float> x(static_cast<std::size_t>(C));
  embed_row(tok_emb_.data(), pos_emb_.data(), token, pos, C, x.data());

  std::vector<float> h(static_cast<std::size_t>(C));
  std::vector<float> q(static_cast<std::size_t>(C));
  std::vector<float> kv(static_cast<std::size_t>(C));
  std::vector<float> ctx(static_cast<std::size_t>(C));
  std::vector<float> att(static_cast<std::size_t>(C));
  std::vector<float> ff(static_cast<std::size_t>(cfg_.d_ff));

  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    const Block& blk = blocks_[l];
    const QuantBlock* qb = qblocks_.empty() ? nullptr : &qblocks_[l];
    // ln1
    h = x;
    layernorm_inplace(h.data(), blk.ln1_g.data(), blk.ln1_b.data(), C);
    // q,k,v for this position; append k,v to cache.
    linear1(h.data(), qb ? &qb->wq : nullptr, blk.wq.data(), blk.bq.data(),
            q.data(), C, C, Epilogue::kBias);
    linear1(h.data(), qb ? &qb->wk : nullptr, blk.wk.data(), blk.bk.data(),
            kv.data(), C, C, Epilogue::kBias);
    cache.k[l].insert(cache.k[l].end(), kv.begin(), kv.end());
    linear1(h.data(), qb ? &qb->wv : nullptr, blk.wv.data(), blk.bv.data(),
            kv.data(), C, C, Epilogue::kBias);
    cache.v[l].insert(cache.v[l].end(), kv.begin(), kv.end());

    // Attention over cached positions, per head.
    attend_row(q.data(), cache.k[l].data(), cache.v[l].data(), pos + 1, C, H,
               hd, ctx.data());
    linear1(ctx.data(), qb ? &qb->wo : nullptr, blk.wo.data(), blk.bo.data(),
            att.data(), C, C, Epilogue::kBias);
    for (int i = 0; i < C; ++i) x[static_cast<std::size_t>(i)] += att[static_cast<std::size_t>(i)];

    // MLP (GELU fused into the up-projection's epilogue).
    h = x;
    layernorm_inplace(h.data(), blk.ln2_g.data(), blk.ln2_b.data(), C);
    linear1(h.data(), qb ? &qb->w1 : nullptr, blk.w1.data(), blk.b1.data(),
            ff.data(), C, cfg_.d_ff, Epilogue::kBiasGelu);
    linear1(ff.data(), qb ? &qb->w2 : nullptr, blk.w2.data(), blk.b2.data(),
            att.data(), cfg_.d_ff, C, Epilogue::kBias);
    for (int i = 0; i < C; ++i) x[static_cast<std::size_t>(i)] += att[static_cast<std::size_t>(i)];
  }

  layernorm_inplace(x.data(), lnf_g_.data(), lnf_b_.data(), C);
  logits.assign(static_cast<std::size_t>(cfg_.vocab), 0.0f);
  linear1(x.data(), qlm_head_.empty() ? nullptr : &qlm_head_, lm_head_.data(),
          {}, logits.data(), C, cfg_.vocab, Epilogue::kNone);
  ++cache.len;
}

// ---------------------------------------------------------------------------
// Batched inference path (slotted KV cache, one gemm per linear per step)
// ---------------------------------------------------------------------------

TransformerLM::BatchedCache TransformerLM::make_batched_cache(
    int capacity) const {
  EVA_REQUIRE(capacity > 0, "make_batched_cache: capacity must be positive");
  BatchedCache c;
  c.capacity = capacity;
  c.slot_stride = cfg_.max_seq * cfg_.d_model;
  const auto slab = static_cast<std::size_t>(capacity) *
                    static_cast<std::size_t>(c.slot_stride);
  c.k.assign(static_cast<std::size_t>(cfg_.n_layers), AlignedVec<float>(slab));
  c.v.assign(static_cast<std::size_t>(cfg_.n_layers), AlignedVec<float>(slab));
  c.len.assign(static_cast<std::size_t>(capacity), 0);
  // Preallocate the step workspace at full width so decode steps are
  // allocation-free regardless of how many slots each step feeds.
  const auto cap = static_cast<std::size_t>(capacity);
  const auto Cz = static_cast<std::size_t>(cfg_.d_model);
  for (auto* buf : {&c.ws.x, &c.ws.h, &c.ws.q, &c.ws.kv, &c.ws.ctx, &c.ws.att}) {
    buf->reserve(cap * Cz);
  }
  c.ws.ff.reserve(cap * static_cast<std::size_t>(cfg_.d_ff));
  return c;
}

void TransformerLM::infer_step_batched(BatchedCache& cache,
                                       const std::vector<int>& slots,
                                       const std::vector<int>& tokens,
                                       std::vector<float>& logits) const {
  const std::size_t n = slots.size();
  EVA_REQUIRE(n > 0 && tokens.size() == n,
              "infer_step_batched: slots/tokens size mismatch");
  const int C = cfg_.d_model;
  const int H = cfg_.n_heads;
  const int hd = C / H;
  const auto Cz = static_cast<std::size_t>(C);

  for (std::size_t i = 0; i < n; ++i) {
    const int s = slots[i];
    EVA_REQUIRE(s >= 0 && s < cache.capacity, "infer_step_batched: bad slot");
    EVA_REQUIRE(cache.len[static_cast<std::size_t>(s)] < cfg_.max_seq,
                "infer_step_batched: slot cache full");
    EVA_REQUIRE(tokens[i] >= 0 && tokens[i] < cfg_.vocab,
                "infer_step_batched: bad token");
  }
  // The vectorized kernels assume cache slabs on cache-line boundaries
  // (make_batched_cache allocates them aligned; a moved-from or
  // hand-built cache could violate this silently).
  EVA_REQUIRE(!cache.k.empty() && is_kernel_aligned(cache.k[0].data()) &&
                  is_kernel_aligned(cache.v[0].data()),
              "infer_step_batched: cache slabs must be 64-byte aligned");

  auto& ws = cache.ws;
  ws.x.resize(n * Cz);
  ws.h.resize(n * Cz);
  ws.q.resize(n * Cz);
  ws.kv.resize(n * Cz);
  ws.ctx.resize(n * Cz);
  ws.att.resize(n * Cz);
  ws.ff.resize(n * static_cast<std::size_t>(cfg_.d_ff));

  // Embeddings: each row at its own slot's next position.
  for (std::size_t i = 0; i < n; ++i) {
    const int pos = cache.len[static_cast<std::size_t>(slots[i])];
    embed_row(tok_emb_.data(), pos_emb_.data(), tokens[i], pos, C,
              ws.x.data() + i * Cz);
  }

  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    const Block& blk = blocks_[l];
    const QuantBlock* qb = qblocks_.empty() ? nullptr : &qblocks_[l];
    // ln1 per row, then fused q/k/v projections for all rows at once.
    ws.h = ws.x;
    for (std::size_t i = 0; i < n; ++i) {
      layernorm_inplace(ws.h.data() + i * Cz, blk.ln1_g.data(),
                        blk.ln1_b.data(), C);
    }
    linear_batched(ws.h.data(), qb ? &qb->wq : nullptr, blk.wq.data(),
                   blk.bq.data(), ws.q.data(), n, C, C, Epilogue::kBias);
    linear_batched(ws.h.data(), qb ? &qb->wk : nullptr, blk.wk.data(),
                   blk.bk.data(), ws.kv.data(), n, C, C, Epilogue::kBias);
    for (std::size_t i = 0; i < n; ++i) {
      const int s = slots[i];
      float* dst = cache.k[l].data() +
                   static_cast<std::size_t>(s) *
                       static_cast<std::size_t>(cache.slot_stride) +
                   static_cast<std::size_t>(cache.len[static_cast<std::size_t>(s)]) * Cz;
      std::copy_n(ws.kv.data() + i * Cz, Cz, dst);
    }
    linear_batched(ws.h.data(), qb ? &qb->wv : nullptr, blk.wv.data(),
                   blk.bv.data(), ws.kv.data(), n, C, C, Epilogue::kBias);
    for (std::size_t i = 0; i < n; ++i) {
      const int s = slots[i];
      float* dst = cache.v[l].data() +
                   static_cast<std::size_t>(s) *
                       static_cast<std::size_t>(cache.slot_stride) +
                   static_cast<std::size_t>(cache.len[static_cast<std::size_t>(s)]) * Cz;
      std::copy_n(ws.kv.data() + i * Cz, Cz, dst);
    }

    // Attention stays per slot: lengths differ under continuous batching.
    for (std::size_t i = 0; i < n; ++i) {
      const int s = slots[i];
      const std::size_t base = static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(cache.slot_stride);
      attend_row(ws.q.data() + i * Cz, cache.k[l].data() + base,
                 cache.v[l].data() + base,
                 cache.len[static_cast<std::size_t>(s)] + 1, C, H, hd,
                 ws.ctx.data() + i * Cz);
    }
    linear_batched(ws.ctx.data(), qb ? &qb->wo : nullptr, blk.wo.data(),
                   blk.bo.data(), ws.att.data(), n, C, C, Epilogue::kBias);
    for (std::size_t i = 0; i < n * Cz; ++i) ws.x[i] += ws.att[i];

    // MLP, fused across rows (GELU fused into the up-projection).
    ws.h = ws.x;
    for (std::size_t i = 0; i < n; ++i) {
      layernorm_inplace(ws.h.data() + i * Cz, blk.ln2_g.data(),
                        blk.ln2_b.data(), C);
    }
    linear_batched(ws.h.data(), qb ? &qb->w1 : nullptr, blk.w1.data(),
                   blk.b1.data(), ws.ff.data(), n, C, cfg_.d_ff,
                   Epilogue::kBiasGelu);
    linear_batched(ws.ff.data(), qb ? &qb->w2 : nullptr, blk.w2.data(),
                   blk.b2.data(), ws.att.data(), n, cfg_.d_ff, C,
                   Epilogue::kBias);
    for (std::size_t i = 0; i < n * Cz; ++i) ws.x[i] += ws.att[i];
  }

  for (std::size_t i = 0; i < n; ++i) {
    layernorm_inplace(ws.x.data() + i * Cz, lnf_g_.data(), lnf_b_.data(), C);
  }
  logits.resize(n * static_cast<std::size_t>(cfg_.vocab));
  linear_batched(ws.x.data(), qlm_head_.empty() ? nullptr : &qlm_head_,
                 lm_head_.data(), {}, logits.data(), n, C, cfg_.vocab,
                 Epilogue::kNone);
  for (std::size_t i = 0; i < n; ++i) {
    ++cache.len[static_cast<std::size_t>(slots[i])];
  }
}

}  // namespace eva::nn
