#include "nn/sampler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <span>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace eva::nn {

namespace {

/// Sample from logits with temperature and optional top-k; returns the
/// token id and its log-probability under the *sampling* distribution.
/// `scratch` is caller-owned top-k workspace reused across the whole
/// sampled sequence (one allocation per sequence instead of one V-sized
/// vector per token).
std::pair<int, float> sample_from_logits(std::span<float> logits, Rng& rng,
                                         float temperature, int top_k,
                                         std::vector<float>& scratch) {
  const int V = static_cast<int>(logits.size());
  const float invt = 1.0f / std::max(temperature, 1e-4f);
  for (auto& l : logits) l *= invt;

  if (top_k > 0 && top_k < V) {
    // Mask everything below the k-th largest logit. nth_element runs on
    // the scratch copy so the original order survives for masking.
    scratch.assign(logits.begin(), logits.end());
    std::nth_element(scratch.begin(), scratch.begin() + (top_k - 1),
                     scratch.end(), std::greater<float>());
    const float kth = scratch[static_cast<std::size_t>(top_k - 1)];
    for (auto& l : logits) {
      if (l < kth) l = -1e30f;
    }
  }

  float mx = -1e30f;
  for (float l : logits) mx = std::max(mx, l);
  double z = 0.0;
  for (float l : logits) z += std::exp(static_cast<double>(l - mx));
  const double u = rng.uniform() * z;
  double acc = 0.0;
  int pick = V - 1;
  for (int i = 0; i < V; ++i) {
    acc += std::exp(static_cast<double>(logits[static_cast<std::size_t>(i)] - mx));
    if (acc >= u) {
      pick = i;
      break;
    }
  }
  const float logp = static_cast<float>(
      static_cast<double>(logits[static_cast<std::size_t>(pick)] - mx) -
      std::log(z));
  return {pick, logp};
}

/// Euler-walk legality bookkeeping for constrained sampling. Tracks, per
/// mentioned device instance, the multiset of its not-yet-consumed
/// device-cycle edges (the same arithmetic circuit::decode_tour applies
/// at the end, just maintained greedily along the walk).
class WalkLegality {
 public:
  explicit WalkLegality(const Tokenizer& tok) : tok_(&tok) {}

  /// Record a transition to token id `cur` (non-special).
  void on_token(int cur) {
    const circuit::PinToken t = tok_->decode(cur);
    if (!t.is_io) touch_device(t.kind, t.index);
    if (prev_ >= 0) {
      const circuit::PinToken p = tok_->decode(prev_);
      bool consumed_cycle_edge = false;
      if (!p.is_io && !t.is_io && p.kind == t.kind && p.index == t.index) {
        auto& rem = remaining_[key(t.kind, t.index)];
        const auto e = edge_key(p.pin, t.pin);
        const auto it = rem.find(e);
        if (it != rem.end() && it->second > 0) {
          --it->second;
          consumed_cycle_edge = true;
        }
      }
      // Leftover (net) edges define electrical components of the walk.
      if (!consumed_cycle_edge) {
        unite(prev_, cur);
        ++net_deg_[prev_];
        ++net_deg_[cur];
        if (!p.is_io && !t.is_io && p.kind == t.kind &&
            p.index == t.index) {
          // Record the (single allowed) same-device net-edge pin pair.
          net_pair_.emplace(key(t.kind, t.index), edge_key(p.pin, t.pin));
        }
      }
    }
    prev_ = cur;
  }

  /// Device pins mentioned in the walk that have no net edge yet (they
  /// would decode as floating). Excludes the current position.
  [[nodiscard]] std::vector<int> floating_pins() const {
    std::vector<int> out;
    for (const auto& [k, rem] : remaining_) {
      (void)rem;
      const auto kind = static_cast<circuit::DeviceKind>(k >> 32);
      const int index = static_cast<int>(k & 0xFFFFFFFF);
      for (int p = 0; p < pin_count(kind); ++p) {
        const int id = tok_->encode(circuit::dev_token(kind, index, p));
        if (id == prev_) continue;
        const auto it = net_deg_.find(id);
        if (it == net_deg_.end() || it->second == 0) out.push_back(id);
      }
    }
    return out;
  }

  /// True if adding a net edge prev->target would connect the VDD and VSS
  /// components (a supply short in the decoded netlist).
  [[nodiscard]] bool hop_shorts_supplies(int target, int vss_tok,
                                         int vdd_tok) {
    if (prev_ < 0) return false;
    const int a = find(prev_);
    const int b = find(target);
    if (a == b) return false;
    const int vss = find(vss_tok);
    const int vdd = find(vdd_tok);
    return (a == vss && b == vdd) || (a == vdd && b == vss);
  }

  /// True if emitting `cand` next would create a supply short. A
  /// transition that consumes a device-cycle edge is never a net edge and
  /// cannot short anything.
  [[nodiscard]] bool would_short(int cand, int vss_tok, int vdd_tok) {
    if (cand == Tokenizer::kEos || cand == Tokenizer::kPad || prev_ < 0) {
      return false;
    }
    const circuit::PinToken t = tok_->decode(cand);
    const circuit::PinToken p = tok_->decode(prev_);
    if (!p.is_io && !t.is_io && p.kind == t.kind && p.index == t.index) {
      const auto it = remaining_.find(key(t.kind, t.index));
      if (it != remaining_.end()) {
        const auto eit = it->second.find(edge_key(p.pin, t.pin));
        if (eit != it->second.end() && eit->second > 0) return false;
      }
    }
    return hop_shorts_supplies(cand, vss_tok, vdd_tok);
  }

  /// Combined transition legality for sampled tokens: no supply shorts,
  /// and at most one distinct same-device net-edge pin pair per device
  /// (a diode connection); more would mean the model is re-walking a
  /// consumed device cycle, which decodes as all pins shorted together.
  [[nodiscard]] bool illegal_transition(int cand, int vss_tok, int vdd_tok) {
    if (would_short(cand, vss_tok, vdd_tok)) return true;
    if (cand == Tokenizer::kEos || cand == Tokenizer::kPad || prev_ < 0) {
      return false;
    }
    const circuit::PinToken t = tok_->decode(cand);
    const circuit::PinToken p = tok_->decode(prev_);
    const bool same_device =
        !p.is_io && !t.is_io && p.kind == t.kind && p.index == t.index;
    if (same_device) {
      // Fine if it consumes a cycle edge (not a net edge at all).
      const auto it = remaining_.find(key(t.kind, t.index));
      if (it != remaining_.end()) {
        const auto eit = it->second.find(edge_key(p.pin, t.pin));
        if (eit != it->second.end() && eit->second > 0) return false;
      }
      // Only one distinct same-device net pair (a diode connection).
      const auto np = net_pair_.find(key(t.kind, t.index));
      if (np != net_pair_.end() && np->second != edge_key(p.pin, t.pin)) {
        return true;
      }
    }
    // Transitive device shorting: the merged component must not hold 3+
    // pins of any single device.
    return max_same_device_pins_after(cand) >= 3;
  }

  [[nodiscard]] bool all_cycles_complete() const {
    for (const auto& [k, rem] : remaining_) {
      (void)k;
      for (const auto& [e, c] : rem) {
        (void)e;
        if (c > 0) return false;
      }
    }
    return true;
  }

  /// Apply the mask to next-token logits.
  void mask(std::span<float> logits, int start_token) const {
    logits[Tokenizer::kPad] = -1e30f;
    if (prev_ >= 0) logits[static_cast<std::size_t>(prev_)] = -1e30f;
    const bool at_vss = prev_ == start_token;
    if (!(at_vss && all_cycles_complete())) {
      logits[Tokenizer::kEos] = -1e30f;
    }
  }

  /// Tokens needed to force-close the walk from here: finish every open
  /// device cycle (edges + a jump per open device), sweep floating pins,
  /// and return to VSS.
  [[nodiscard]] int closure_cost() const {
    int cost = 2;  // ... VSS <EOS>
    for (const auto& [k, rem] : remaining_) {
      (void)k;
      int open = 0;
      for (const auto& [e, c] : rem) {
        (void)e;
        open += c;
      }
      if (open > 0) cost += open + 2;
    }
    cost += static_cast<int>(floating_pins().size());
    return cost;
  }

  /// Closure policy: the forced next token when the budget runs out.
  /// Order: continue an open cycle at the current pin; else hop to a pin
  /// of some open device (preferring hops that cannot short the supplies
  /// and, for the last open device, landing on the VSS component so the
  /// tour can end cleanly); else return to VSS; else EOS.
  [[nodiscard]] int forced_closing_token(int start_token, int vdd_token) {
    // 1. Open cycle edge incident to the current pin.
    if (prev_ >= 0) {
      const circuit::PinToken p = tok_->decode(prev_);
      if (!p.is_io) {
        const auto it = remaining_.find(key(p.kind, p.index));
        if (it != remaining_.end()) {
          for (const auto& [e, c] : it->second) {
            if (c <= 0) continue;
            const int a = e / 16;
            const int b = e % 16;
            if (a == p.pin || b == p.pin) {
              const int other = (a == p.pin) ? b : a;
              return tok_->encode(
                  circuit::dev_token(p.kind, p.index, other));
            }
          }
        }
      }
    }
    // 1b. Wire in missing mandatory IO pins (VOUT, then VDD) so the
    // decoded netlist has an output and both rails: the hop names the
    // current component as that IO's net.
    {
      const int vout = tok_->encode(
          circuit::io_token(circuit::IoPin::Vout1));
      if (!counted_.count(vout) && prev_ != vout) return vout;
      if (!counted_.count(vdd_token) && prev_ != vdd_token &&
          !hop_shorts_supplies(vdd_token, start_token, vdd_token)) {
        return vdd_token;
      }
    }
    // 2. Hop onto an open device: score candidate entry pins.
    int open_devices = 0;
    for (const auto& [k, rem] : remaining_) {
      (void)k;
      for (const auto& [e, c] : rem) {
        (void)e;
        if (c > 0) {
          ++open_devices;
          break;
        }
      }
    }
    int best = -1;
    int best_score = -1;
    for (const auto& [k, rem] : remaining_) {
      for (const auto& [e, c] : rem) {
        if (c <= 0) continue;
        const auto kind = static_cast<circuit::DeviceKind>(k >> 32);
        const int index = static_cast<int>(k & 0xFFFFFFFF);
        for (const int pin : {e / 16, e % 16}) {
          const int id = tok_->encode(circuit::dev_token(kind, index, pin));
          if (id == prev_) continue;
          int score = 0;
          if (!hop_shorts_supplies(id, start_token, vdd_token)) score += 4;
          // Ending the last cycle on the VSS component lets the final
          // VSS hop stay inside one net.
          if (open_devices == 1 && find(id) == find(start_token)) score += 2;
          if (score > best_score) {
            best_score = score;
            best = id;
          }
        }
      }
      if (best >= 0 && best_score >= 6) break;
    }
    if (best >= 0) return best;
    // 3. Sweep floating pins into a net chain ending at VSS.
    const auto floats = floating_pins();
    for (int f : floats) {
      if (f != prev_) return f;
    }
    // 4. Close the tour.
    if (prev_ != start_token) return start_token;
    return Tokenizer::kEos;
  }

 private:
  static std::uint64_t key(circuit::DeviceKind k, int index) {
    return (static_cast<std::uint64_t>(k) << 32) |
           static_cast<std::uint64_t>(index);
  }
  static int edge_key(int a, int b) {
    if (a > b) std::swap(a, b);
    return a * 16 + b;
  }

  int find(int token) {
    auto it = parent_.find(token);
    if (it == parent_.end()) {
      parent_[token] = token;
      return token;
    }
    int root = token;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[token] != root) {
      const int next = parent_[token];
      parent_[token] = root;
      token = next;
    }
    return root;
  }

  /// Count a device pin toward its component's per-device pin tally.
  void count_pin(int token) {
    if (counted_.count(token)) return;
    counted_.insert(token);
    const circuit::PinToken t = tok_->decode(token);
    if (t.is_io) return;
    ++dev_count_[find(token)][key(t.kind, t.index)];
  }

  void unite(int a, int b) {
    count_pin(a);
    count_pin(b);
    const int ra = find(a);
    const int rb = find(b);
    if (ra == rb) return;
    parent_[ra] = rb;
    for (const auto& [k, c] : dev_count_[ra]) dev_count_[rb][k] += c;
    dev_count_.erase(ra);
  }

  /// Pins of one device that would share a component after adding the
  /// net edge prev->cand (>= 3 decodes as a mostly-shorted device).
  [[nodiscard]] int max_same_device_pins_after(int cand) {
    if (prev_ < 0) return 0;
    count_pin(prev_);
    const int ra = find(prev_);
    const circuit::PinToken t = tok_->decode(cand);
    const int rb = counted_.count(cand) ? find(cand) : -1;
    int worst = 0;
    auto tally = [&](std::uint64_t k) {
      int c = 0;
      const auto ita = dev_count_.find(ra);
      if (ita != dev_count_.end()) {
        const auto it = ita->second.find(k);
        if (it != ita->second.end()) c += it->second;
      }
      if (rb >= 0 && rb != ra) {
        const auto itb = dev_count_.find(rb);
        if (itb != dev_count_.end()) {
          const auto it = itb->second.find(k);
          if (it != itb->second.end()) c += it->second;
        }
      }
      return c;
    };
    // Keys present on either side of the merge.
    for (const int root : {ra, rb}) {
      if (root < 0) continue;
      const auto itr = dev_count_.find(root);
      if (itr == dev_count_.end()) continue;
      for (const auto& [k, c] : itr->second) {
        (void)c;
        worst = std::max(worst, tally(k));
      }
    }
    // The candidate pin itself joins the merged component.
    if (!t.is_io && !counted_.count(cand)) {
      worst = std::max(worst, tally(key(t.kind, t.index)) + 1);
    }
    return worst;
  }

  void touch_device(circuit::DeviceKind kind, int index) {
    const auto k = key(kind, index);
    if (remaining_.count(k)) return;
    auto& rem = remaining_[k];
    const int n = pin_count(kind);
    if (n == 2) {
      rem[edge_key(0, 1)] = 2;
    } else {
      for (int p = 0; p < n; ++p) ++rem[edge_key(p, (p + 1) % n)];
    }
  }

  const Tokenizer* tok_;
  int prev_ = -1;
  std::map<std::uint64_t, std::map<int, int>> remaining_;
  std::map<int, int> parent_;  // union-find over packed token ids
  std::map<std::uint64_t, int> net_pair_;  // device -> allowed net pin pair
  std::map<int, int> net_deg_;  // token -> number of incident net edges
  std::set<int> counted_;       // tokens already tallied into dev_count_
  std::map<int, std::map<std::uint64_t, int>> dev_count_;  // root -> dev -> #pins
};

/// Decode-time state of one in-flight sequence, shared by the reference
/// path (one SeqState, one Cache) and BatchedDecoder (one per slot).
/// Keeping the per-step decision logic in a single place is what makes
/// the two engines token-identical by construction.
struct SeqState {
  /// `scratch` is the caller-owned top-k workspace; BatchedDecoder hands
  /// each slot its own buffer, reused across every sequence that passes
  /// through that slot (continuous batching never re-allocates it).
  SeqState(const Tokenizer& tok, const SampleOptions& opts, Rng* rng_in,
           int max_len_in, int seq_in, std::vector<float>* scratch)
      : legality(tok), topk_scratch(scratch), rng(rng_in), max_len(max_len_in),
        seq(seq_in) {
    token = tok.start_token();
    res.ids.push_back(token);
    if (opts.legality_mask) legality.on_token(token);
  }

  /// Consume this step's next-token logits; returns true when the
  /// sequence is finished (EOS, malformed pad, or length cap).
  bool advance(std::span<float> logits, const Tokenizer& tok,
               const SampleOptions& opts, int soft_len) {
    int next = 0;
    float logp = 0.0f;
    const bool must_close =
        opts.legality_mask &&
        legality.closure_cost() + 6 >= std::min(soft_len, max_len) - t;
    if (must_close) {
      // Budget exhausted: walk the deterministic closure (finish open
      // device cycles, return to VSS, stop).
      next = legality.forced_closing_token(
          tok.start_token(), tok.encode_io(circuit::IoPin::Vdd));
    } else if (opts.legality_mask) {
      legality.mask(logits, tok.start_token());
      const int vdd = tok.encode_io(circuit::IoPin::Vdd);
      // Rejection loop: resample when the candidate would short the
      // supply rails. (After the first draw, logits are already
      // temperature-scaled and top-k-masked, so retries use T=1.)
      for (int tries = 0; tries < 8; ++tries) {
        const auto pick = sample_from_logits(
            logits, *rng, tries == 0 ? opts.temperature : 1.0f,
            tries == 0 ? opts.top_k : 0, *topk_scratch);
        next = pick.first;
        logp = pick.second;
        if (!legality.illegal_transition(next, tok.start_token(), vdd)) break;
        logits[static_cast<std::size_t>(next)] = -1e30f;
      }
    } else {
      const auto pick = sample_from_logits(logits, *rng, opts.temperature,
                                           opts.top_k, *topk_scratch);
      next = pick.first;
      logp = pick.second;
    }
    ++t;
    ++steps;
    if (next == Tokenizer::kEos) {
      res.logprobs.push_back(logp);
      res.hit_eos = true;
      return true;
    }
    if (next == Tokenizer::kPad) {
      // Pad mid-sequence: a malformed ending. Not an accepted action, so
      // no logprob entry (SampleResult invariant).
      return true;
    }
    res.logprobs.push_back(logp);
    res.ids.push_back(next);
    if (opts.legality_mask) legality.on_token(next);
    token = next;
    return t >= max_len;
  }

  SampleResult res;
  WalkLegality legality;
  std::vector<float>* topk_scratch;
  Rng* rng;
  int token = 0;
  int t = 1;        // next decode-step index (mirrors the reference loop)
  int steps = 0;    // transformer forwards consumed (== final KV length)
  int max_len;
  int seq;          // request index (result position)
};

int resolve_max_len(const TransformerLM& model, const SampleOptions& opts) {
  return opts.max_len > 0 ? std::min(opts.max_len, model.config().max_seq)
                          : model.config().max_seq;
}

/// Soft budget: begin guided closure around typical dataset tour lengths
/// rather than letting an unsure model wander to the hard cap.
int resolve_soft_len(int max_len) { return std::max(48, (max_len * 3) / 4); }

void record_finished_sequence(const SeqState& st) {
  static obs::Counter& seqs_c = obs::counter("sampler.sequences");
  static obs::Counter& toks_c = obs::counter("sampler.tokens");
  static obs::Histogram& len_h = obs::histogram("sampler.seq_len");
  static obs::Histogram& kv_h = obs::histogram("sampler.kv_cache_len");
  seqs_c.add();
  toks_c.add(static_cast<std::int64_t>(st.res.logprobs.size()));
  len_h.record(static_cast<double>(st.res.ids.size()));
  kv_h.record(static_cast<double>(st.steps));
}

}  // namespace

SampleResult sample_sequence(const TransformerLM& model, const Tokenizer& tok,
                             Rng& rng, const SampleOptions& opts) {
  obs::Span span("sampler.sequence");
  const auto t0 = std::chrono::steady_clock::now();

  const int max_len = resolve_max_len(model, opts);
  const int soft_len = resolve_soft_len(max_len);
  auto cache = model.make_cache();
  std::vector<float> logits;
  std::vector<float> topk_scratch;
  SeqState st(tok, opts, &rng, max_len, 0, &topk_scratch);
  while (st.t < max_len) {
    model.infer_step(cache, st.token, logits);
    if (st.advance(logits, tok, opts, soft_len)) break;
  }

  record_finished_sequence(st);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (dt > 0) {
    obs::gauge("sampler.tokens_per_sec")
        .set(static_cast<double>(st.res.logprobs.size()) / dt);
  }
  return st.res;
}

BatchedDecoder::BatchedDecoder(const TransformerLM& model, const Tokenizer& tok,
                               int batch_width, SampleOptions opts)
    : model_(&model),
      tok_(&tok),
      opts_(opts),
      width_(std::max(1, batch_width)),
      cache_(model.make_batched_cache(std::max(1, batch_width))),
      slot_scratch_(static_cast<std::size_t>(std::max(1, batch_width))) {}

std::vector<SampleResult> BatchedDecoder::decode(Rng& rng, int n) {
  static obs::Counter& steps_c = obs::counter("sampler.decode_steps");
  static obs::Histogram& occ_h = obs::histogram("sampler.batch_occupancy");
  obs::Span span("sampler.batched_decode");
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<SampleResult> out(static_cast<std::size_t>(std::max(n, 0)));
  if (n <= 0) return out;

  // Per-sequence RNG streams, forked in request order — the same stream
  // layout as the reference fan-out, and independent of batch width.
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rngs.push_back(rng.fork());

  const int max_len = resolve_max_len(*model_, opts_);
  const int soft_len = resolve_soft_len(max_len);
  const int width = std::min(width_, n);

  std::vector<std::unique_ptr<SeqState>> slots(
      static_cast<std::size_t>(width));
  int next_seq = 0;
  int in_flight = 0;
  std::int64_t decoded_tokens = 0;
  std::int64_t steps = 0;
  double occupancy_sum = 0.0;

  auto finish = [&](SeqState& st) {
    record_finished_sequence(st);
    decoded_tokens += static_cast<std::int64_t>(st.res.logprobs.size());
    out[static_cast<std::size_t>(st.seq)] = std::move(st.res);
  };
  // Continuous batching: a freed slot is refilled from the pending queue
  // immediately, so the next decode step already includes the fresh
  // sequence at position 0 while its neighbours continue mid-stream.
  auto refill = [&](int s) {
    slots[static_cast<std::size_t>(s)].reset();
    while (next_seq < n) {
      cache_.reset_slot(s);
      auto st = std::make_unique<SeqState>(*tok_, opts_, &rngs[next_seq],
                                           max_len, next_seq,
                                           &slot_scratch_[static_cast<std::size_t>(s)]);
      ++next_seq;
      if (st->t >= max_len) {  // degenerate cap: nothing to decode
        finish(*st);
        continue;
      }
      slots[static_cast<std::size_t>(s)] = std::move(st);
      ++in_flight;
      break;
    }
  };
  for (int s = 0; s < width; ++s) refill(s);

  auto& slot_ids = slot_ids_;
  auto& tokens = tokens_;
  auto& logits = logits_;
  const auto vocab = static_cast<std::size_t>(model_->config().vocab);
  while (in_flight > 0) {
    slot_ids.clear();
    tokens.clear();
    for (int s = 0; s < width; ++s) {
      if (slots[static_cast<std::size_t>(s)]) {
        slot_ids.push_back(s);
        tokens.push_back(slots[static_cast<std::size_t>(s)]->token);
      }
    }
    {
      obs::Span step_span("sampler.decode_step");
      model_->infer_step_batched(cache_, slot_ids, tokens, logits);
    }
    steps_c.add();
    ++steps;
    const double occ = static_cast<double>(slot_ids.size()) /
                       static_cast<double>(width_);
    occ_h.record(occ);
    occupancy_sum += occ;
    for (std::size_t row = 0; row < slot_ids.size(); ++row) {
      const int s = slot_ids[row];
      SeqState& st = *slots[static_cast<std::size_t>(s)];
      const std::span<float> row_logits(logits.data() + row * vocab, vocab);
      if (st.advance(row_logits, *tok_, opts_, soft_len)) {
        finish(st);
        --in_flight;
        refill(s);
      }
    }
  }

  if (steps > 0) {
    obs::gauge("sampler.batch_occupancy")
        .set(occupancy_sum / static_cast<double>(steps));
  }
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (dt > 0) {
    obs::gauge("sampler.tokens_per_sec")
        .set(static_cast<double>(decoded_tokens) / dt);
  }
  stats_.sequences = n;
  stats_.tokens = decoded_tokens;
  stats_.steps = steps;
  stats_.occupancy =
      steps > 0 ? occupancy_sum / static_cast<double>(steps) : 0.0;
  stats_.duration_ms = dt * 1e3;
  return out;
}

std::vector<SampleResult> sample_batch(const TransformerLM& model,
                                       const Tokenizer& tok, Rng& rng, int n,
                                       const SampleOptions& opts) {
  int width = opts.batch_width;
  if (const char* env = std::getenv("EVA_BATCH_WIDTH")) {
    const int w = std::atoi(env);
    if (w > 0) width = w;
  }
  BatchedDecoder decoder(model, tok, std::max(1, std::min(width, n)), opts);
  return decoder.decode(rng, n);
}

std::vector<SampleResult> sample_batch_reference(const TransformerLM& model,
                                                 const Tokenizer& tok,
                                                 Rng& rng, int n,
                                                 const SampleOptions& opts) {
  std::vector<SampleResult> out(static_cast<std::size_t>(n));
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rngs.push_back(rng.fork());
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t i) {
    out[i] = sample_sequence(model, tok, rngs[i], opts);
  });
  return out;
}

NetlistDecode ids_to_netlist_checked(const Tokenizer& tok,
                                     const std::vector<int>& ids) {
  NetlistDecode out;
  // Bounds-check every id BEFORE any decode-table lookup: wire-protocol
  // and checkpoint inputs are untrusted, and tok.decode() treats an
  // out-of-range id as a thrown requirement failure we'd rather report
  // as data.
  std::vector<circuit::PinToken> tour;
  tour.reserve(ids.size());
  const int vocab = tok.vocab_size();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    if (id < 0 || id >= vocab) {
      out.fail = NetlistDecode::Fail::kTokenOutOfRange;
      out.message = "token id " + std::to_string(id) + " at position " +
                    std::to_string(i) + " outside vocab [0, " +
                    std::to_string(vocab) + ")";
      return out;
    }
    if (id == Tokenizer::kEos || id == Tokenizer::kPad) break;
    tour.push_back(tok.decode(id));
  }
  if (tour.empty()) {
    out.fail = NetlistDecode::Fail::kEmpty;
    out.message = "no pin tokens before EOS/pad";
    return out;
  }
  auto res = circuit::decode_tour(tour);
  if (!res.ok) {
    out.fail = NetlistDecode::Fail::kBadStructure;
    out.message = res.error;
    return out;
  }
  out.netlist = std::move(res.netlist);
  return out;
}

std::optional<circuit::Netlist> ids_to_netlist(const Tokenizer& tok,
                                               const std::vector<int>& ids) {
  auto res = ids_to_netlist_checked(tok, ids);
  if (!res.ok()) return std::nullopt;
  return std::move(res.netlist);
}

}  // namespace eva::nn
