// Explore the synthetic topology dataset: per-type counts, device-count
// statistics, tour lengths, simulatability, and a sample netlist + its
// Euler-tour token sequence for each circuit type.
//
// Run: ./build/examples/dataset_explorer
#include <iostream>
#include <vector>

#include "circuit/pingraph.hpp"
#include "data/dataset.hpp"
#include "nn/tokenizer.hpp"
#include "spice/engine.hpp"
#include "util/io.hpp"
#include "util/stats.hpp"

int main() {
  using namespace eva;
  using circuit::CircuitType;

  data::DatasetConfig cfg;
  cfg.per_type = 20;
  cfg.seed = 42;
  const auto ds = data::Dataset::build(cfg);
  const auto tok = nn::Tokenizer::from_dataset(ds);

  std::cout << "=== EVA dataset explorer ===\n";
  std::cout << "unique topologies: " << ds.entries().size()
            << " | tokenizer vocab: " << tok.vocab_size() << "\n";

  ConsoleTable table("Per-type statistics",
                     {"type", "count", "devices (mean)", "tour tokens (mean)",
                      "simulatable"});
  Rng rng(1);
  for (int t = 0; t < circuit::kNumCircuitTypes; ++t) {
    const auto type = static_cast<CircuitType>(t);
    const auto entries = ds.of_type(type);
    std::vector<double> devices, tours;
    int sim = 0;
    for (const auto* e : entries) {
      devices.push_back(e->netlist.num_devices());
      tours.push_back(
          static_cast<double>(circuit::encode_tour(e->netlist, rng).size()));
      sim += spice::simulatable(e->netlist);
    }
    table.add_row({std::string(circuit::type_name(type)),
                   std::to_string(entries.size()), fmt(mean(devices), 1),
                   fmt(mean(tours), 1),
                   std::to_string(sim) + "/" + std::to_string(entries.size())});
  }
  table.print(std::cout);

  // Show one Op-Amp end to end: netlist and token sequence.
  const auto opamps = ds.of_type(CircuitType::OpAmp);
  if (!opamps.empty()) {
    const auto& nl = opamps.front()->netlist;
    std::cout << "\nexample Op-Amp netlist:\n" << nl.to_spice();
    std::cout << "\nits Euler-tour token sequence:\n  ";
    for (const auto& t : circuit::encode_tour(nl, rng)) {
      std::cout << t.name() << ' ';
    }
    std::cout << "\n";
  }
  return 0;
}
