// Quickstart: the EVA pipeline end to end in ~a minute.
//
//   1. Build the topology dataset (11 analog circuit types).
//   2. Pretrain the decoder-only transformer on Euler-tour sequences.
//   3. Generate new topologies from scratch (starting at VSS).
//   4. Check validity and print one generated netlist as SPICE.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <iostream>

#include "core/eva.hpp"
#include "obs/obs.hpp"
#include "spice/engine.hpp"
#include "util/io.hpp"

int main() {
  using namespace eva;

  core::EvaConfig cfg;
  cfg.dataset.per_type = 15;           // small corpus for a fast demo
  cfg.pretrain.steps = 250;
  cfg.model = nn::ModelConfig::bench_scale(0);

  std::cout << "=== EVA quickstart ===\n";
  core::Eva engine(cfg);
  engine.prepare();
  std::cout << "dataset: " << engine.dataset().entries().size()
            << " unique topologies | vocab: "
            << engine.tokenizer().vocab_size()
            << " tokens | model: " << engine.model().num_params()
            << " parameters\n";

  // Progress goes through the structured logger (stderr + EVA_LOG_FILE);
  // stdout keeps the headline numbers the docs quote.
  obs::log_info("quickstart.pretraining", {{"steps", cfg.pretrain.steps}});
  const auto result = engine.pretrain();
  std::cout << "loss " << eva::fmt(result.losses.front(), 3) << " -> "
            << eva::fmt(result.losses.back(), 3) << " (val "
            << eva::fmt(result.final_val_loss, 3) << ")\n";

  obs::log_info("quickstart.generating", {{"n", 20}});
  const auto attempts = engine.generate(20);
  int valid = 0;
  const circuit::Netlist* first_valid = nullptr;
  for (const auto& a : attempts) {
    if (a && spice::simulatable(*a)) {
      ++valid;
      if (!first_valid) first_valid = &*a;
    }
  }
  std::cout << valid << "/20 generated topologies are simulatable\n";
  if (first_valid) {
    std::cout << "\nfirst valid generated circuit ("
              << circuit::type_name(circuit::classify(*first_valid))
              << "):\n"
              << first_valid->to_spice();
  }
  // Write EVA_METRICS_FILE / EVA_TRACE_FILE now (also runs at exit).
  obs::flush();
  return 0;
}
