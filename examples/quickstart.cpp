// Quickstart: the EVA pipeline end to end in ~a minute.
//
//   1. Build the topology dataset (11 analog circuit types).
//   2. Pretrain the decoder-only transformer on Euler-tour sequences.
//   3. Generate new topologies from scratch (starting at VSS).
//   4. Check validity and print one generated netlist as SPICE.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
//
// Crash safety: set EVA_CHECKPOINT_DIR to snapshot pretraining at
// EVA_CHECKPOINT_EVERY steps; Ctrl-C then finishes the current step,
// writes a final snapshot, and exits cleanly. Re-running with
// EVA_RESUME=1 continues bit-for-bit from the newest valid snapshot.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/eva.hpp"
#include "obs/obs.hpp"
#include "spice/engine.hpp"
#include "train/signal.hpp"
#include "util/io.hpp"

int main() {
  using namespace eva;

  core::EvaConfig cfg;
  cfg.dataset.per_type = 15;           // small corpus for a fast demo
  cfg.pretrain.steps = 250;
  cfg.model = nn::ModelConfig::bench_scale(0);

  if (const char* dir = std::getenv("EVA_CHECKPOINT_DIR")) {
    cfg.pretrain.checkpoint_dir = dir;
    if (const char* every = std::getenv("EVA_CHECKPOINT_EVERY")) {
      cfg.pretrain.checkpoint_every = std::max(1, std::atoi(every));
    }
    const char* resume = std::getenv("EVA_RESUME");
    cfg.pretrain.resume = resume && std::string(resume) != "0";
    train::install_signal_handlers();  // SIGINT/SIGTERM -> clean stop
  }

  std::cout << "=== EVA quickstart ===\n";
  core::Eva engine(cfg);
  engine.prepare();
  std::cout << "dataset: " << engine.dataset().entries().size()
            << " unique topologies | vocab: "
            << engine.tokenizer().vocab_size()
            << " tokens | model: " << engine.model().num_params()
            << " parameters\n";

  // Progress goes through the structured logger (stderr + EVA_LOG_FILE);
  // stdout keeps the headline numbers the docs quote.
  obs::log_info("quickstart.pretraining", {{"steps", cfg.pretrain.steps}});
  const auto result = engine.pretrain();
  if (result.start_step > 0) {
    std::cout << "resumed from checkpoint at step " << result.start_step
              << "\n";
  }
  if (result.interrupted) {
    std::cout << "interrupted at step "
              << result.start_step + static_cast<int>(result.losses.size())
              << "; checkpoint written, rerun with EVA_RESUME=1\n";
    obs::flush();
    return 0;
  }
  if (!result.losses.empty()) {
    std::cout << "loss " << eva::fmt(result.losses.front(), 3) << " -> "
              << eva::fmt(result.losses.back(), 3) << " (val "
              << eva::fmt(result.final_val_loss, 3) << ")\n";
  }

  obs::log_info("quickstart.generating", {{"n", 20}});
  const auto attempts = engine.generate(20);
  int valid = 0;
  const circuit::Netlist* first_valid = nullptr;
  for (const auto& a : attempts) {
    if (a && spice::simulatable(*a)) {
      ++valid;
      if (!first_valid) first_valid = &*a;
    }
  }
  std::cout << valid << "/20 generated topologies are simulatable\n";
  if (first_valid) {
    std::cout << "\nfirst valid generated circuit ("
              << circuit::type_name(circuit::classify(*first_valid))
              << "):\n"
              << first_valid->to_spice();
  }
  // Write EVA_METRICS_FILE / EVA_TRACE_FILE now (also runs at exit).
  obs::flush();
  return 0;
}
