// Targeted discovery of power converters with DPO fine-tuning (§III-C2):
// expert-ranked topologies become win/lose pairs, and the policy is
// aligned offline with the Bradley-Terry objective (Eq. 5) — no reward
// model, no rollouts.
//
// Run: ./build/examples/power_converter_dpo
#include <iostream>

#include "core/eva.hpp"
#include "obs/obs.hpp"
#include "util/io.hpp"

int main() {
  using namespace eva;
  using circuit::CircuitType;

  core::EvaConfig cfg;
  cfg.dataset.per_type = 15;
  cfg.pretrain.steps = 400;

  std::cout << "=== Targeted power-converter discovery with DPO ===\n";
  core::Eva engine(cfg);
  engine.prepare();
  obs::log_info("example.pretraining", {{"steps", cfg.pretrain.steps}});
  engine.pretrain();

  // DPO step progress comes from the trainer's default obs hook
  // (event "dpo.step"); stdout keeps the before/after summary.
  obs::log_info("example.dpo_finetune", {{"target", "PowerConverter"}});
  rl::DpoConfig dpo;
  dpo.steps = 25;
  dpo.pairs_per_step = 3;
  dpo.lr = 1e-4f;
  const auto stats = engine.finetune_dpo(CircuitType::PowerConverter, dpo, 20);
  std::cout << "DPO loss " << eva::fmt(stats.loss.front(), 3) << " -> "
            << eva::fmt(stats.loss.back(), 3) << ", final reward accuracy "
            << eva::fmt(stats.reward_acc.back(), 2) << "\n";

  obs::log_info("example.discovery", {{"attempts", 10}});
  opt::GaConfig ga;
  ga.population = 12;
  ga.generations = 5;
  const auto result =
      engine.discover(CircuitType::PowerConverter, 10, ga);
  std::cout << "valid topologies: " << result.valid
            << "/10, best converter FoM@10: "
            << eva::fmt(result.best_fom, 2)
            << " (|Vout/Vdd| x efficiency x 4)\n";
  return 0;
}
