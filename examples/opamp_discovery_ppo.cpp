// Targeted discovery of high-performance Op-Amps with PPO fine-tuning
// (the paper's flagship workflow, §III-C1):
//
//   pretrain -> label dataset for Op-Amps (Otsu FoM split) -> train the
//   reward model -> PPO (Algorithm 1) -> FoM@10 with GA sizing.
//
// Run: ./build/examples/opamp_discovery_ppo
#include <iostream>

#include "core/eva.hpp"
#include "obs/obs.hpp"
#include "util/io.hpp"

int main() {
  using namespace eva;
  using circuit::CircuitType;

  core::EvaConfig cfg;
  cfg.dataset.per_type = 15;
  cfg.pretrain.steps = 400;

  std::cout << "=== Targeted Op-Amp discovery with PPO ===\n";
  core::Eva engine(cfg);
  engine.prepare();
  obs::log_info(
      "example.pretraining",
      {{"train_seqs", static_cast<std::int64_t>(engine.corpus().train.size())},
       {"steps", cfg.pretrain.steps}});
  engine.pretrain();

  const auto labels = engine.label_for(CircuitType::OpAmp);
  std::cout << "labeled topologies: " << labels.labeled_count
            << " (Otsu FoM threshold " << eva::fmt(labels.fom_threshold, 2)
            << ")\n";

  // PPO epoch progress comes from the trainer's default obs hook
  // (event "ppo.epoch"); the summary table below stays on stdout.
  obs::log_info("example.ppo_finetune", {{"target", "OpAmp"}});
  rl::PpoConfig ppo;
  ppo.epochs = 4;
  ppo.rollouts = 8;
  ppo.max_len = 160;
  rl::RewardModelConfig rm;
  rm.steps = 60;
  const auto stats = engine.finetune_ppo(CircuitType::OpAmp, ppo, rm);
  for (std::size_t e = 0; e < stats.mean_reward.size(); ++e) {
    std::cout << "  epoch " << e << ": mean reward "
              << eva::fmt(stats.mean_reward[e], 3) << "\n";
  }

  obs::log_info("example.discovery", {{"attempts", 10}});
  opt::GaConfig ga;
  ga.population = 12;
  ga.generations = 5;
  const auto result = engine.discover(CircuitType::OpAmp, 10, ga);
  std::cout << "valid topologies: " << result.valid << "/10, relevant: "
            << result.relevant << ", best FoM@10: "
            << eva::fmt(result.best_fom, 2) << "\n";
  return 0;
}
