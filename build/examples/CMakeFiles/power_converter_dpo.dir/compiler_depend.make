# Empty compiler generated dependencies file for power_converter_dpo.
# This may be replaced when dependencies are built.
