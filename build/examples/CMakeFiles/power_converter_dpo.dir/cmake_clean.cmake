file(REMOVE_RECURSE
  "CMakeFiles/power_converter_dpo.dir/power_converter_dpo.cpp.o"
  "CMakeFiles/power_converter_dpo.dir/power_converter_dpo.cpp.o.d"
  "power_converter_dpo"
  "power_converter_dpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_converter_dpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
