# Empty compiler generated dependencies file for opamp_discovery_ppo.
# This may be replaced when dependencies are built.
