file(REMOVE_RECURSE
  "CMakeFiles/opamp_discovery_ppo.dir/opamp_discovery_ppo.cpp.o"
  "CMakeFiles/opamp_discovery_ppo.dir/opamp_discovery_ppo.cpp.o.d"
  "opamp_discovery_ppo"
  "opamp_discovery_ppo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opamp_discovery_ppo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
