# Empty dependencies file for test_opt_eval.
# This may be replaced when dependencies are built.
