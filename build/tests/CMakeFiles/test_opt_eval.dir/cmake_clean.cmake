file(REMOVE_RECURSE
  "CMakeFiles/test_opt_eval.dir/test_opt_eval.cpp.o"
  "CMakeFiles/test_opt_eval.dir/test_opt_eval.cpp.o.d"
  "test_opt_eval"
  "test_opt_eval.pdb"
  "test_opt_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
