file(REMOVE_RECURSE
  "CMakeFiles/eva_baselines.dir/baselines.cpp.o"
  "CMakeFiles/eva_baselines.dir/baselines.cpp.o.d"
  "libeva_baselines.a"
  "libeva_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
