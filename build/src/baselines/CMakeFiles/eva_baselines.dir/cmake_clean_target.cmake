file(REMOVE_RECURSE
  "libeva_baselines.a"
)
