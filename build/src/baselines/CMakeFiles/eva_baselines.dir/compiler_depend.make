# Empty compiler generated dependencies file for eva_baselines.
# This may be replaced when dependencies are built.
