file(REMOVE_RECURSE
  "CMakeFiles/eva_core.dir/eva.cpp.o"
  "CMakeFiles/eva_core.dir/eva.cpp.o.d"
  "libeva_core.a"
  "libeva_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
