file(REMOVE_RECURSE
  "libeva_core.a"
)
