file(REMOVE_RECURSE
  "CMakeFiles/eva_nn.dir/lm_trainer.cpp.o"
  "CMakeFiles/eva_nn.dir/lm_trainer.cpp.o.d"
  "CMakeFiles/eva_nn.dir/sampler.cpp.o"
  "CMakeFiles/eva_nn.dir/sampler.cpp.o.d"
  "CMakeFiles/eva_nn.dir/tokenizer.cpp.o"
  "CMakeFiles/eva_nn.dir/tokenizer.cpp.o.d"
  "CMakeFiles/eva_nn.dir/transformer.cpp.o"
  "CMakeFiles/eva_nn.dir/transformer.cpp.o.d"
  "libeva_nn.a"
  "libeva_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
