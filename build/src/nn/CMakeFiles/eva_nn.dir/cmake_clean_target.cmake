file(REMOVE_RECURSE
  "libeva_nn.a"
)
