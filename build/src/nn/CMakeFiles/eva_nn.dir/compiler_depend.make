# Empty compiler generated dependencies file for eva_nn.
# This may be replaced when dependencies are built.
