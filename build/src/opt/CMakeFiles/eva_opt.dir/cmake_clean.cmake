file(REMOVE_RECURSE
  "CMakeFiles/eva_opt.dir/ga.cpp.o"
  "CMakeFiles/eva_opt.dir/ga.cpp.o.d"
  "libeva_opt.a"
  "libeva_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
