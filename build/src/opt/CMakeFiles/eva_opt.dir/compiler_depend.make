# Empty compiler generated dependencies file for eva_opt.
# This may be replaced when dependencies are built.
