file(REMOVE_RECURSE
  "libeva_opt.a"
)
