# Empty dependencies file for eva_eval.
# This may be replaced when dependencies are built.
