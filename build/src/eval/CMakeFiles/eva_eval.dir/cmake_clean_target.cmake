file(REMOVE_RECURSE
  "libeva_eval.a"
)
