file(REMOVE_RECURSE
  "CMakeFiles/eva_eval.dir/metrics.cpp.o"
  "CMakeFiles/eva_eval.dir/metrics.cpp.o.d"
  "libeva_eval.a"
  "libeva_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
