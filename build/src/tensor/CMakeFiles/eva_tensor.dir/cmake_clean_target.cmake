file(REMOVE_RECURSE
  "libeva_tensor.a"
)
