file(REMOVE_RECURSE
  "CMakeFiles/eva_tensor.dir/optim.cpp.o"
  "CMakeFiles/eva_tensor.dir/optim.cpp.o.d"
  "CMakeFiles/eva_tensor.dir/serialize.cpp.o"
  "CMakeFiles/eva_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/eva_tensor.dir/tensor.cpp.o"
  "CMakeFiles/eva_tensor.dir/tensor.cpp.o.d"
  "libeva_tensor.a"
  "libeva_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
