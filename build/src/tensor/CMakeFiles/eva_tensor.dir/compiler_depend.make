# Empty compiler generated dependencies file for eva_tensor.
# This may be replaced when dependencies are built.
