
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/canon.cpp" "src/circuit/CMakeFiles/eva_circuit.dir/canon.cpp.o" "gcc" "src/circuit/CMakeFiles/eva_circuit.dir/canon.cpp.o.d"
  "/root/repo/src/circuit/classify.cpp" "src/circuit/CMakeFiles/eva_circuit.dir/classify.cpp.o" "gcc" "src/circuit/CMakeFiles/eva_circuit.dir/classify.cpp.o.d"
  "/root/repo/src/circuit/graphstats.cpp" "src/circuit/CMakeFiles/eva_circuit.dir/graphstats.cpp.o" "gcc" "src/circuit/CMakeFiles/eva_circuit.dir/graphstats.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/eva_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/eva_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/pingraph.cpp" "src/circuit/CMakeFiles/eva_circuit.dir/pingraph.cpp.o" "gcc" "src/circuit/CMakeFiles/eva_circuit.dir/pingraph.cpp.o.d"
  "/root/repo/src/circuit/validity.cpp" "src/circuit/CMakeFiles/eva_circuit.dir/validity.cpp.o" "gcc" "src/circuit/CMakeFiles/eva_circuit.dir/validity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eva_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
