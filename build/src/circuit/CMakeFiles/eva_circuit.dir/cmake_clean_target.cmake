file(REMOVE_RECURSE
  "libeva_circuit.a"
)
