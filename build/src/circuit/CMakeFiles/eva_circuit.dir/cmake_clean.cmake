file(REMOVE_RECURSE
  "CMakeFiles/eva_circuit.dir/canon.cpp.o"
  "CMakeFiles/eva_circuit.dir/canon.cpp.o.d"
  "CMakeFiles/eva_circuit.dir/classify.cpp.o"
  "CMakeFiles/eva_circuit.dir/classify.cpp.o.d"
  "CMakeFiles/eva_circuit.dir/graphstats.cpp.o"
  "CMakeFiles/eva_circuit.dir/graphstats.cpp.o.d"
  "CMakeFiles/eva_circuit.dir/netlist.cpp.o"
  "CMakeFiles/eva_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/eva_circuit.dir/pingraph.cpp.o"
  "CMakeFiles/eva_circuit.dir/pingraph.cpp.o.d"
  "CMakeFiles/eva_circuit.dir/validity.cpp.o"
  "CMakeFiles/eva_circuit.dir/validity.cpp.o.d"
  "libeva_circuit.a"
  "libeva_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
