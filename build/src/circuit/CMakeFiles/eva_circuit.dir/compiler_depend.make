# Empty compiler generated dependencies file for eva_circuit.
# This may be replaced when dependencies are built.
