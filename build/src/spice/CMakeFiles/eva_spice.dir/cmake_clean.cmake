file(REMOVE_RECURSE
  "CMakeFiles/eva_spice.dir/engine.cpp.o"
  "CMakeFiles/eva_spice.dir/engine.cpp.o.d"
  "CMakeFiles/eva_spice.dir/fom.cpp.o"
  "CMakeFiles/eva_spice.dir/fom.cpp.o.d"
  "CMakeFiles/eva_spice.dir/sizing.cpp.o"
  "CMakeFiles/eva_spice.dir/sizing.cpp.o.d"
  "libeva_spice.a"
  "libeva_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
