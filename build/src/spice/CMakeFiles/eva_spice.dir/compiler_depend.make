# Empty compiler generated dependencies file for eva_spice.
# This may be replaced when dependencies are built.
