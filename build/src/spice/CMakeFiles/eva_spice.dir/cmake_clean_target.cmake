file(REMOVE_RECURSE
  "libeva_spice.a"
)
