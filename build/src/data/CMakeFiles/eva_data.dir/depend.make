# Empty dependencies file for eva_data.
# This may be replaced when dependencies are built.
