file(REMOVE_RECURSE
  "CMakeFiles/eva_data.dir/builder.cpp.o"
  "CMakeFiles/eva_data.dir/builder.cpp.o.d"
  "CMakeFiles/eva_data.dir/dataset.cpp.o"
  "CMakeFiles/eva_data.dir/dataset.cpp.o.d"
  "CMakeFiles/eva_data.dir/generators.cpp.o"
  "CMakeFiles/eva_data.dir/generators.cpp.o.d"
  "CMakeFiles/eva_data.dir/mutate.cpp.o"
  "CMakeFiles/eva_data.dir/mutate.cpp.o.d"
  "libeva_data.a"
  "libeva_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
