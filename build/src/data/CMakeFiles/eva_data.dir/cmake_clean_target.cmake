file(REMOVE_RECURSE
  "libeva_data.a"
)
