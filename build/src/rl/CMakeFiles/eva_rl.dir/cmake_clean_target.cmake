file(REMOVE_RECURSE
  "libeva_rl.a"
)
