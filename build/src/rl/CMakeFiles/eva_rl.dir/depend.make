# Empty dependencies file for eva_rl.
# This may be replaced when dependencies are built.
