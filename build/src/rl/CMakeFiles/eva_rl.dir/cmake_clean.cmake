file(REMOVE_RECURSE
  "CMakeFiles/eva_rl.dir/dpo.cpp.o"
  "CMakeFiles/eva_rl.dir/dpo.cpp.o.d"
  "CMakeFiles/eva_rl.dir/ppo.cpp.o"
  "CMakeFiles/eva_rl.dir/ppo.cpp.o.d"
  "CMakeFiles/eva_rl.dir/reward_model.cpp.o"
  "CMakeFiles/eva_rl.dir/reward_model.cpp.o.d"
  "libeva_rl.a"
  "libeva_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
