
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/dpo.cpp" "src/rl/CMakeFiles/eva_rl.dir/dpo.cpp.o" "gcc" "src/rl/CMakeFiles/eva_rl.dir/dpo.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "src/rl/CMakeFiles/eva_rl.dir/ppo.cpp.o" "gcc" "src/rl/CMakeFiles/eva_rl.dir/ppo.cpp.o.d"
  "/root/repo/src/rl/reward_model.cpp" "src/rl/CMakeFiles/eva_rl.dir/reward_model.cpp.o" "gcc" "src/rl/CMakeFiles/eva_rl.dir/reward_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/eva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/eva_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/eva_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eva_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/eva_data.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/eva_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
