file(REMOVE_RECURSE
  "libeva_util.a"
)
