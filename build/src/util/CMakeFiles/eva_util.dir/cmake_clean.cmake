file(REMOVE_RECURSE
  "CMakeFiles/eva_util.dir/io.cpp.o"
  "CMakeFiles/eva_util.dir/io.cpp.o.d"
  "CMakeFiles/eva_util.dir/parallel.cpp.o"
  "CMakeFiles/eva_util.dir/parallel.cpp.o.d"
  "CMakeFiles/eva_util.dir/stats.cpp.o"
  "CMakeFiles/eva_util.dir/stats.cpp.o.d"
  "libeva_util.a"
  "libeva_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eva_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
