# Empty dependencies file for eva_util.
# This may be replaced when dependencies are built.
