
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/io.cpp" "src/util/CMakeFiles/eva_util.dir/io.cpp.o" "gcc" "src/util/CMakeFiles/eva_util.dir/io.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/util/CMakeFiles/eva_util.dir/parallel.cpp.o" "gcc" "src/util/CMakeFiles/eva_util.dir/parallel.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/eva_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/eva_util.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
