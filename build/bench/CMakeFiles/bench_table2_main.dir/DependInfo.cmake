
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_main.cpp" "bench/CMakeFiles/bench_table2_main.dir/bench_table2_main.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_main.dir/bench_table2_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/eva_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/eva_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/eva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/eva_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/eva_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/eva_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/eva_data.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/eva_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/eva_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eva_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
