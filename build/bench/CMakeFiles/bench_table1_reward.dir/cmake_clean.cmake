file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_reward.dir/bench_table1_reward.cpp.o"
  "CMakeFiles/bench_table1_reward.dir/bench_table1_reward.cpp.o.d"
  "bench_table1_reward"
  "bench_table1_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
