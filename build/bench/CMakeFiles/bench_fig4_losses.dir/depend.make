# Empty dependencies file for bench_fig4_losses.
# This may be replaced when dependencies are built.
