file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_losses.dir/bench_fig4_losses.cpp.o"
  "CMakeFiles/bench_fig4_losses.dir/bench_fig4_losses.cpp.o.d"
  "bench_fig4_losses"
  "bench_fig4_losses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_losses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
