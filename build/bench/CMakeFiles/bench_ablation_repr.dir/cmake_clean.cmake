file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_repr.dir/bench_ablation_repr.cpp.o"
  "CMakeFiles/bench_ablation_repr.dir/bench_ablation_repr.cpp.o.d"
  "bench_ablation_repr"
  "bench_ablation_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
