// Minimal JSON validator shared by the test binaries: a
// recursive-descent structural check (no value extraction), enough to
// catch unbalanced braces, missing commas, and broken string escaping
// in the exporters without pulling in a JSON library. Header-only so
// each test target compiles its own copy.
#pragma once

#include <cctype>
#include <string_view>

namespace eva::testutil {

struct JsonParser {
  std::string_view s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return false;
        ++i;  // skip escaped char ("\uXXXX" leaves XXXX as literals — fine)
      } else if (c == '"') {
        return true;
      }
    }
    return false;
  }
  bool number() {
    ws();
    bool digit = false;
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
            s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E')) {
      digit = digit || std::isdigit(static_cast<unsigned char>(s[i])) != 0;
      ++i;
    }
    return i > start && digit;
  }
  bool literal(std::string_view word) {
    ws();
    if (s.substr(i, word.size()) == word) {
      i += word.size();
      return true;
    }
    return false;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '"': return string();
      case '{': return object();
      case '[': return array();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
};

inline bool json_valid(std::string_view text) {
  JsonParser p{text};
  if (!p.value()) return false;
  p.ws();
  return p.i == text.size();
}

}  // namespace eva::testutil
