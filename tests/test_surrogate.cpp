// Learned FoM surrogate suite (DESIGN.md §15): trainer checkpoint
// kill-and-resume (bitwise), SurrogateScorer batch-width invariance
// across the three quant tiers, prefix scoring, the serving pre-filter's
// keep-fraction boundary semantics (0 / 1 / NaN scores), the paired
// on/off e2e contract (SPICE solves drop, best verified FoM survives),
// wire-protocol and stats field presence, and the PPO rollout hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/config.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "obs/metrics.hpp"
#include "rl/ppo.hpp"
#include "rl/reward_model.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "serve/stats.hpp"
#include "surrogate/scorer.hpp"
#include "surrogate/surrogate.hpp"
#include "util/rng.hpp"

namespace {

using namespace eva;
using namespace eva::surrogate;

nn::Tokenizer small_tokenizer() {
  return nn::Tokenizer({4, 4, 2, 2, 2, 2, 2, 2});
}

/// Deterministic synthetic labeled set: sequences whose token histogram
/// correlates with the rank class, so a few training steps separate the
/// classes.
std::vector<LabeledSeq> synthetic_examples(int vocab, int n, Rng& rng) {
  std::vector<LabeledSeq> out;
  for (int i = 0; i < n; ++i) {
    LabeledSeq e;
    e.rank = i % kNumClasses;
    const int len = 6 + static_cast<int>(rng.index(10));
    for (int t = 0; t < len; ++t) {
      // Bias the token range by rank so the bag-of-tokens pooling can
      // actually tell the classes apart.
      const int lo = e.rank * vocab / 4;
      const int hi = std::min(vocab - 1, lo + vocab / 2);
      e.ids.push_back(lo + static_cast<int>(rng.index(
                               static_cast<std::size_t>(hi - lo + 1))));
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<std::vector<int>> random_sequences(int vocab, int n, Rng& rng) {
  std::vector<std::vector<int>> out;
  for (int i = 0; i < n; ++i) {
    std::vector<int> ids;
    const int len = 1 + static_cast<int>(rng.index(20));
    for (int t = 0; t < len; ++t) {
      ids.push_back(static_cast<int>(rng.index(
          static_cast<std::size_t>(vocab))));
    }
    out.push_back(std::move(ids));
  }
  return out;
}

// --- make_labeled ------------------------------------------------------------

TEST(Surrogate, MakeLabeledDropsInvalidRank) {
  std::vector<rl::RankedExample> in(4);
  in[0].rank = rl::RankClass::HighRelevant;
  in[1].rank = rl::RankClass::LowRelevant;
  in[2].rank = rl::RankClass::IrrelevantValid;
  in[3].rank = rl::RankClass::Invalid;
  for (auto& e : in) e.ids = {1, 2, 3};
  const auto out = make_labeled(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].rank, 0);
  EXPECT_EQ(out[1].rank, 1);
  EXPECT_EQ(out[2].rank, 2);
}

// --- trainer + checkpoints ---------------------------------------------------

TEST(Surrogate, TrainReducesLossAndRanksClasses) {
  Rng rng(11);
  SurrogateModel model({.vocab = 24, .d_embed = 16, .d_hidden = 16}, rng);
  Rng data_rng(12);
  const auto examples = synthetic_examples(24, 60, data_rng);
  SurrogateTrainConfig cfg;
  cfg.steps = 150;
  cfg.seed = 13;
  const auto res = model.train(examples, cfg);
  ASSERT_EQ(res.losses.size(), 150u);
  EXPECT_LT(res.losses.back(), res.losses.front());
  EXPECT_GT(res.ranking_accuracy, 0.7);
  EXPECT_GT(res.class_accuracy, 0.5);
}

TEST(Surrogate, CheckpointKillAndResumeIsBitwise) {
  const std::string dir_a = ::testing::TempDir() + "sur_ckpt_a";
  const std::string dir_b = ::testing::TempDir() + "sur_ckpt_b";
  const SurrogateConfig scfg{.vocab = 20, .d_embed = 12, .d_hidden = 8};
  Rng data_rng(21);
  const auto examples = synthetic_examples(20, 40, data_rng);

  SurrogateTrainConfig tcfg;
  tcfg.steps = 12;
  tcfg.checkpoint_every = 6;
  tcfg.seed = 23;

  // Uninterrupted run.
  Rng rng_a(22);
  SurrogateModel a(scfg, rng_a);
  tcfg.checkpoint_dir = dir_a;
  a.train(examples, tcfg);

  // Killed at step 6, resumed in a freshly-initialized model (the
  // checkpoint restores params + optimizer + RNG, so init is irrelevant).
  Rng rng_b(22);
  SurrogateModel b(scfg, rng_b);
  tcfg.checkpoint_dir = dir_b;
  tcfg.steps = 6;
  b.train(examples, tcfg);

  Rng rng_c(999);  // deliberately different init
  SurrogateModel c(scfg, rng_c);
  tcfg.steps = 12;
  tcfg.resume = true;
  const auto res = c.train(examples, tcfg);
  EXPECT_EQ(res.start_step, 6);

  const auto pa = a.parameters();
  const auto pc = c.parameters();
  ASSERT_EQ(pa.size(), pc.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const auto da = pa[i].data();
    const auto dc = pc[i].data();
    ASSERT_EQ(da.size(), dc.size());
    for (std::size_t j = 0; j < da.size(); ++j) {
      ASSERT_EQ(da[j], dc[j]) << "param " << i << " elem " << j;
    }
  }
}

TEST(Surrogate, LoadCheckpointRestoresScores) {
  const std::string dir = ::testing::TempDir() + "sur_ckpt_load";
  const SurrogateConfig scfg{.vocab = 20, .d_embed = 12, .d_hidden = 8};
  Rng data_rng(31);
  const auto examples = synthetic_examples(20, 40, data_rng);
  Rng rng(32);
  SurrogateModel trained(scfg, rng);
  SurrogateTrainConfig tcfg;
  tcfg.steps = 10;
  tcfg.checkpoint_dir = dir;
  tcfg.seed = 33;
  trained.train(examples, tcfg);

  Rng rng2(77);
  SurrogateModel loaded(scfg, rng2);
  ASSERT_TRUE(loaded.load_checkpoint(dir));
  const std::vector<int> probe = {1, 5, 9, 13};
  EXPECT_EQ(trained.score(probe), loaded.score(probe));
  // Mismatched architecture refuses to load.
  Rng rng3(78);
  SurrogateModel other({.vocab = 20, .d_embed = 12, .d_hidden = 16}, rng3);
  EXPECT_FALSE(other.load_checkpoint(dir));
}

// --- scorer ------------------------------------------------------------------

TEST(SurrogateScorer, BatchMatchesSingleAcrossWidthsAndTiers) {
  Rng rng(41);
  SurrogateModel model({.vocab = 28, .d_embed = 16, .d_hidden = 12}, rng);
  Rng seq_rng(42);
  const auto seqs = random_sequences(28, 17, seq_rng);
  for (const auto kind : {tensor::QuantKind::kF32, tensor::QuantKind::kBf16,
                          tensor::QuantKind::kInt8}) {
    const SurrogateScorer scorer(model, kind);
    for (const std::size_t width : {std::size_t{1}, std::size_t{8},
                                    std::size_t{17}}) {
      const std::vector<std::vector<int>> batch(seqs.begin(),
                                                seqs.begin() +
                                                    static_cast<long>(width));
      const auto got = scorer.score_batch(batch);
      ASSERT_EQ(got.size(), width);
      for (std::size_t i = 0; i < width; ++i) {
        ASSERT_EQ(got[i], scorer.score_one(batch[i]))
            << "tier " << tensor::quant_kind_name(kind) << " width " << width
            << " row " << i;
      }
    }
  }
}

TEST(SurrogateScorer, ScoresAreFiniteAndInRange) {
  Rng rng(43);
  SurrogateModel model({.vocab = 28, .d_embed = 16, .d_hidden = 12}, rng);
  const SurrogateScorer scorer(model);
  Rng seq_rng(44);
  for (const auto& ids : random_sequences(28, 10, seq_rng)) {
    const float s = scorer.score_one(ids);
    ASSERT_TRUE(std::isfinite(s));
    ASSERT_GE(s, -0.5f);
    ASSERT_LE(s, 1.0f);
  }
}

TEST(SurrogateScorer, PrefixScoresEndAtFullSequenceScore) {
  Rng rng(45);
  SurrogateModel model({.vocab = 28, .d_embed = 16, .d_hidden = 12}, rng);
  for (const auto kind : {tensor::QuantKind::kF32, tensor::QuantKind::kInt8}) {
    const SurrogateScorer scorer(model, kind);
    const std::vector<int> ids = {3, 7, 1, 19, 4, 4, 22, 9};
    const auto prefixes = scorer.score_prefixes(ids);
    ASSERT_EQ(prefixes.size(), ids.size());
    EXPECT_EQ(prefixes.back(), scorer.score_one(ids));
    EXPECT_EQ(prefixes.front(), scorer.score_one({ids.front()}));
  }
}

// --- serving pre-filter ------------------------------------------------------

struct SurrogateServeFixture {
  explicit SurrogateServeFixture(double keep,
                                 bool with_scorer = true,
                                 bool poison_scorer = false)
      : tok(small_tokenizer()),
        rng(99),
        model(nn::ModelConfig::tiny(tok.vocab_size()), rng) {
    serve::ServiceConfig cfg;
    cfg.batch_width = 4;
    cfg.sample.max_len = 48;
    cfg.surrogate_keep = keep;
    if (with_scorer) {
      SurrogateModel head = SurrogateModel::from_lm(model, 16, rng);
      if (poison_scorer) {
        // NaN weights -> NaN scores for every candidate: the filter must
        // stay total (non-finite sorts last, n_keep still honored).
        auto params = head.parameters();
        for (float& x : params[3].data()) {
          x = std::numeric_limits<float>::quiet_NaN();
        }
      }
      cfg.surrogate = std::make_shared<SurrogateScorer>(head);
    }
    service = std::make_unique<serve::GenerationService>(model, tok, cfg);
  }

  serve::Response run(int n, std::uint64_t seed) {
    service->start();
    serve::Request req;
    req.n = n;
    req.seed = seed;
    auto t = service->submit(req);
    return t.response.get();
  }

  nn::Tokenizer tok;
  Rng rng;
  nn::TransformerLM model;
  std::unique_ptr<serve::GenerationService> service;
};

std::int64_t dc_solves() {
  return obs::counter("spice.dc_solves").value();
}

TEST(SurrogateServe, KeepZeroSkipsAllSpice) {
  SurrogateServeFixture f(0.0);
  const std::int64_t before = dc_solves();
  const auto r = f.run(6, 17);
  ASSERT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(dc_solves(), before);
  for (const auto& item : r.items) {
    if (item.decoded && !item.cached) {
      EXPECT_TRUE(item.surrogate);
      EXPECT_FALSE(item.valid);
    }
  }
}

TEST(SurrogateServe, KeepOneVerifiesEverything) {
  SurrogateServeFixture on(1.0);
  SurrogateServeFixture off(0.25, /*with_scorer=*/false);
  const auto r_on = on.run(6, 17);
  const auto r_off = off.run(6, 17);
  ASSERT_EQ(r_on.status, serve::Status::kOk);
  ASSERT_EQ(r_on.items.size(), r_off.items.size());
  for (std::size_t i = 0; i < r_on.items.size(); ++i) {
    EXPECT_FALSE(r_on.items[i].surrogate);
    // keep >= 1 must be outcome-identical to no surrogate at all.
    EXPECT_EQ(r_on.items[i].valid, r_off.items[i].valid);
    EXPECT_EQ(r_on.items[i].fom, r_off.items[i].fom);
  }
}

TEST(SurrogateServe, NanScoresStillResolve) {
  SurrogateServeFixture f(0.5, /*with_scorer=*/true, /*poison_scorer=*/true);
  const auto r = f.run(6, 17);
  ASSERT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.items.size(), 6u);
  // NaN keep fraction keeps everything (fails open, never crashes).
  SurrogateServeFixture g(std::numeric_limits<double>::quiet_NaN());
  const auto r2 = g.run(4, 17);
  ASSERT_EQ(r2.status, serve::Status::kOk);
  for (const auto& item : r2.items) EXPECT_FALSE(item.surrogate);
}

/// Shared trained-surrogate world for the paired e2e: a dataset-derived
/// tokenizer, a tiny LM, and a surrogate head fitted on the labeled
/// dataset (the same pipeline tools/eva_surrogate_train drives). Built
/// once — everything downstream is deterministic.
struct TrainedWorld {
  data::Dataset ds;
  nn::Tokenizer tok;
  nn::TransformerLM model;
  std::shared_ptr<SurrogateScorer> scorer;

  static const TrainedWorld& get() {
    static TrainedWorld* w = [] {
      data::DatasetConfig dcfg;
      dcfg.per_type = 8;
      dcfg.seed = 71;
      dcfg.require_simulatable = false;
      auto ds = data::Dataset::build(dcfg);
      auto tok = nn::Tokenizer::from_dataset(ds);
      Rng rng(72);
      nn::TransformerLM model(nn::ModelConfig::tiny(tok.vocab_size()), rng);
      auto* out = new TrainedWorld{std::move(ds), std::move(tok),
                                   std::move(model), nullptr};
      rl::LabelingConfig lcfg;
      lcfg.seed = 73;
      const auto labels = rl::label_dataset(out->ds, out->tok, lcfg);
      SurrogateModel head = SurrogateModel::from_lm(out->model, 16, rng);
      SurrogateTrainConfig tcfg;
      tcfg.steps = 200;
      tcfg.seed = 74;
      head.train(make_labeled(labels.examples), tcfg);
      out->scorer = std::make_shared<SurrogateScorer>(head);
      return out;
    }();
    return *w;
  }

  std::unique_ptr<serve::GenerationService> service(bool with_surrogate,
                                                    double keep) const {
    serve::ServiceConfig cfg;
    cfg.batch_width = 4;
    cfg.sample.max_len = 48;
    cfg.surrogate_keep = keep;
    if (with_surrogate) cfg.surrogate = scorer;
    return std::make_unique<serve::GenerationService>(
        const_cast<nn::TransformerLM&>(model), tok, cfg);
  }
};

TEST(SurrogateServe, PairedOnOffDropsSpiceAndKeepsBestFom) {
  // Seeded regression set: the same request stream (seeds 1..48, fixed
  // n) through a surrogate-off and a surrogate-on service sharing the
  // model weights. The contract: total SPICE solve work drops by >= 3x
  // at keep = 0.25 while the best verified FoM across the whole set is
  // identical — the filter sheds work, not discoveries.
  const auto& w = TrainedWorld::get();
  auto off_svc = w.service(false, 0.25);
  auto on_svc = w.service(true, 0.25);
  off_svc->start();
  on_svc->start();

  const int kN = 16;
  const std::uint64_t kSeeds = 48;
  double best_off = 0.0, best_on = 0.0;
  std::int64_t off_delta = 0, on_delta = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    serve::Request req;
    req.n = kN;
    req.seed = seed;
    std::int64_t t0 = dc_solves();
    auto t_off = off_svc->submit(req);
    const auto r_off = t_off.response.get();
    off_delta += dc_solves() - t0;

    t0 = dc_solves();
    auto t_on = on_svc->submit(req);
    const auto r_on = t_on.response.get();
    on_delta += dc_solves() - t0;

    ASSERT_EQ(r_off.status, serve::Status::kOk);
    ASSERT_EQ(r_on.status, serve::Status::kOk);
    ASSERT_EQ(r_off.items.size(), r_on.items.size());
    // Same decoded topologies on both sides (the filter never touches
    // sampling).
    for (std::size_t i = 0; i < r_off.items.size(); ++i) {
      ASSERT_EQ(r_off.items[i].ids, r_on.items[i].ids);
    }
    for (const auto& item : r_off.items) {
      if (item.valid) best_off = std::max(best_off, item.fom);
    }
    for (const auto& item : r_on.items) {
      if (item.valid) best_on = std::max(best_on, item.fom);
    }
  }

  // SPICE work drops by at least 3x at keep = 0.25.
  ASSERT_GT(off_delta, 0);
  EXPECT_GE(off_delta, 3 * on_delta) << "off " << off_delta << " on "
                                     << on_delta;

  // The trained filter kept every discovery: identical best FoM over the
  // full regression set.
  ASSERT_GT(best_off, 0.0);
  EXPECT_EQ(best_on, best_off);
}

// --- wire protocol + stats ---------------------------------------------------

TEST(SurrogateServe, ProtocolAndStatsCarrySurrogateFields) {
  serve::Item item;
  item.surrogate = true;
  EXPECT_NE(serve::item_to_json(item, 1).find("\"surrogate\": true"),
            std::string::npos);
  item.surrogate = false;
  EXPECT_NE(serve::item_to_json(item, 1).find("\"surrogate\": false"),
            std::string::npos);

  serve::Response r;
  r.status = serve::Status::kOk;
  EXPECT_NE(serve::done_to_json(r).find("\"surrogate_ms\""),
            std::string::npos);

  SurrogateServeFixture f(0.25);
  f.run(2, 5);
  const std::string stats = serve::stats_json(*f.service);
  EXPECT_NE(stats.find("\"surrogate\": {\"enabled\": true"),
            std::string::npos);
  EXPECT_NE(stats.find("\"keep_frac\": 0.25"), std::string::npos);
  EXPECT_NE(stats.find("\"skipped_spice\""), std::string::npos);
  EXPECT_NE(stats.find("\"ranking_accuracy\""), std::string::npos);
  EXPECT_NE(stats.find("\"surrogate\": {\"window\""), std::string::npos)
      << "surrogate stage missing from the stage histograms";
}

// --- PPO hook ----------------------------------------------------------------

TEST(SurrogatePpo, FilteredRolloutsSkipRewardModelSpice) {
  data::DatasetConfig dcfg;
  dcfg.per_type = 4;
  dcfg.seed = 61;
  dcfg.require_simulatable = false;
  const auto ds = data::Dataset::build(dcfg);
  const auto tok = nn::Tokenizer::from_dataset(ds);
  Rng rng(62);
  nn::TransformerLM policy(nn::ModelConfig::tiny(tok.vocab_size()), rng);
  const rl::RewardModel rm(policy, tok, rng);

  SurrogateModel head = SurrogateModel::from_lm(policy, 16, rng);
  const SurrogateScorer scorer(head);

  rl::PpoConfig cfg;
  cfg.epochs = 1;
  cfg.rollouts = 6;
  cfg.ppo_epochs = 1;
  cfg.max_len = 24;
  cfg.surrogate = &scorer;
  cfg.surrogate_keep = 0.25f;

  const std::int64_t scored0 = obs::counter("ppo.surrogate.scored").value();
  const std::int64_t spice0 =
      obs::counter("ppo.surrogate.spice_rewards").value();
  const std::int64_t skip0 =
      obs::counter("ppo.surrogate.skipped_spice").value();

  rl::PpoTrainer trainer(policy, tok, rm, cfg, rng);
  const auto stats = trainer.train();
  EXPECT_EQ(stats.mean_reward.size(), 1u);

  const std::int64_t scored = obs::counter("ppo.surrogate.scored").value() -
                              scored0;
  const std::int64_t spice =
      obs::counter("ppo.surrogate.spice_rewards").value() - spice0;
  const std::int64_t skipped =
      obs::counter("ppo.surrogate.skipped_spice").value() - skip0;
  EXPECT_EQ(scored, 6);
  EXPECT_EQ(spice + skipped, scored);
  EXPECT_EQ(spice, 2);  // ceil(0.25 * 6)
}

}  // namespace
