// Additional coverage: PPO-support tensor ops (clamp/min), constrained-
// sampling guarantees, simulator device-model behaviours, uniform-policy
// tours, and reward-model learning effects.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/canon.hpp"
#include "circuit/pingraph.hpp"
#include "circuit/validity.hpp"
#include "data/builder.hpp"
#include "data/dataset.hpp"
#include "nn/sampler.hpp"
#include "rl/reward_model.hpp"
#include "spice/engine.hpp"
#include "spice/fom.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace eva;
using circuit::DeviceKind;
using circuit::IoPin;
using circuit::Netlist;

// --- clamp_t / min_t ---------------------------------------------------------

TEST(TensorExtra, ClampForward) {
  auto x = tensor::Tensor::from({4}, {-2.0f, 0.5f, 1.0f, 3.0f});
  auto y = tensor::clamp_t(x, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 0.5f);
  EXPECT_FLOAT_EQ(y.data()[3], 1.0f);
}

TEST(TensorExtra, ClampGradZeroOutsideInterval) {
  auto x = tensor::Tensor::from({3}, {-2.0f, 0.5f, 3.0f}, true);
  auto loss = tensor::sum_all(tensor::clamp_t(x, 0.0f, 1.0f));
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 0.0f);
}

TEST(TensorExtra, MinForwardAndGradRouting) {
  auto a = tensor::Tensor::from({3}, {1.0f, 5.0f, 2.0f}, true);
  auto b = tensor::Tensor::from({3}, {3.0f, 4.0f, 2.0f}, true);
  auto m = tensor::min_t(a, b);
  EXPECT_FLOAT_EQ(m.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(m.data()[1], 4.0f);
  auto loss = tensor::sum_all(m);
  loss.backward();
  // Gradient goes to the smaller side; ties go to a.
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 0.0f);
  EXPECT_FLOAT_EQ(b.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[2], 1.0f);  // tie
  EXPECT_FLOAT_EQ(b.grad()[2], 0.0f);
}

TEST(TensorExtra, PpoClippedSurrogateValue) {
  // min(r*A, clip(r)*A) with A > 0 caps the ratio at 1+eps.
  auto ratio = tensor::Tensor::from({2}, {2.0f, 0.5f}, true);
  auto adv = tensor::Tensor::from({2}, {1.0f, 1.0f});
  auto clipped = tensor::clamp_t(ratio, 0.8f, 1.2f);
  auto obj = tensor::min_t(tensor::mul(ratio, adv), tensor::mul(clipped, adv));
  EXPECT_FLOAT_EQ(obj.data()[0], 1.2f);
  EXPECT_FLOAT_EQ(obj.data()[1], 0.5f);
}

// --- constrained sampling guarantees ----------------------------------------

struct SamplerFixture {
  data::Dataset ds;
  nn::Tokenizer tok;
  nn::TransformerLM model;
  static SamplerFixture make() {
    data::DatasetConfig cfg;
    cfg.per_type = 4;
    cfg.seed = 900;
    cfg.require_simulatable = false;
    auto ds = data::Dataset::build(cfg);
    auto tok = nn::Tokenizer::from_dataset(ds);
    Rng rng(1);
    nn::TransformerLM model(nn::ModelConfig::tiny(tok.vocab_size()), rng);
    return {std::move(ds), std::move(tok), std::move(model)};
  }
};

TEST(ConstrainedSampling, EveryMaskedSampleDecodes) {
  // The walk-legality mask + guided closure guarantee decodability even
  // from a random-weight model.
  auto fx = SamplerFixture::make();
  Rng rng(2);
  nn::SampleOptions opts;
  opts.max_len = 96;
  opts.legality_mask = true;
  const auto samples = nn::sample_batch(fx.model, fx.tok, rng, 30, opts);
  int decoded = 0;
  for (const auto& s : samples) {
    decoded += nn::ids_to_netlist(fx.tok, s.ids).has_value();
  }
  EXPECT_EQ(decoded, 30);
}

TEST(ConstrainedSampling, NoSelfLoopsEmitted) {
  auto fx = SamplerFixture::make();
  Rng rng(3);
  nn::SampleOptions opts;
  opts.max_len = 96;
  const auto samples = nn::sample_batch(fx.model, fx.tok, rng, 10, opts);
  for (const auto& s : samples) {
    for (std::size_t i = 1; i < s.ids.size(); ++i) {
      EXPECT_NE(s.ids[i], s.ids[i - 1]);
    }
  }
}

TEST(ConstrainedSampling, SupplyShortsAreRare) {
  // The sampled-token rejection makes rail shorts impossible for model
  // edges; only the forced-closure's final hop can still create one (when
  // the walk is stranded on the VDD component). Even from a random-weight
  // model that must stay a small minority.
  auto fx = SamplerFixture::make();
  Rng rng(4);
  nn::SampleOptions opts;
  opts.max_len = 96;
  const auto samples = nn::sample_batch(fx.model, fx.tok, rng, 25, opts);
  int shorted = 0;
  for (const auto& s : samples) {
    const auto nl = nn::ids_to_netlist(fx.tok, s.ids);
    ASSERT_TRUE(nl.has_value());
    bool shorted_here = false;
    for (const auto& net : nl->nets()) {
      bool vdd = false, vss = false;
      for (const auto& p : net) {
        vdd |= p.is_io() && p.io == IoPin::Vdd;
        vss |= p.is_io() && p.io == IoPin::Vss;
      }
      shorted_here |= vdd && vss;
    }
    shorted += shorted_here;
  }
  EXPECT_LE(shorted, 25 * 2 / 5);
}

TEST(ConstrainedSampling, UnmaskedModeStillWorks) {
  auto fx = SamplerFixture::make();
  Rng rng(5);
  nn::SampleOptions opts;
  opts.max_len = 64;
  opts.legality_mask = false;
  const auto s = nn::sample_sequence(fx.model, fx.tok, rng, opts);
  EXPECT_GE(s.ids.size(), 1u);
  EXPECT_EQ(s.ids.front(), fx.tok.start_token());
}

// --- simulator device behaviours ---------------------------------------------

TEST(SpiceExtra, PmosMirrorCopiesCurrent) {
  // IREF-fed PMOS mirror: both branch currents flow; output leg drives a
  // resistor whose drop reflects the mirrored current.
  data::NetBuilder b;
  b.rails();
  b.io("ref", IoPin::Iref);
  b.mos(DeviceKind::Pmos, "ref", "ref", "VDD");  // diode-connected
  b.mos(DeviceKind::Pmos, "ref", "out", "VDD");  // mirror leg
  b.two(DeviceKind::Resistor, "out", "VSS");
  b.io("out", IoPin::Vout1);
  const Netlist nl = b.take();
  spice::Simulator sim(nl, spice::default_sizing(nl));
  ASSERT_TRUE(sim.solve_dc());
  const double vout = sim.io_voltage(IoPin::Vout1);
  // ~20 uA into 10 kOhm ~= 0.2 V (loose bounds: mirror + lambda effects).
  EXPECT_GT(vout, 0.02);
  EXPECT_LT(vout, 1.2);
}

TEST(SpiceExtra, NpnFollowerTracksBase) {
  data::NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);  // 0.9 V bias
  b.bjt(DeviceKind::Npn, "VDD", "in", "out");
  b.two(DeviceKind::Resistor, "out", "VSS");
  b.io("out", IoPin::Vout1);
  const Netlist nl = b.take();
  spice::Simulator sim(nl, spice::default_sizing(nl));
  ASSERT_TRUE(sim.solve_dc());
  const double vout = sim.io_voltage(IoPin::Vout1);
  // Emitter follower: out ~= base - VBE.
  EXPECT_NEAR(vout, 0.9 - 0.65, 0.2);
}

TEST(SpiceExtra, DifferentialPairGainExceedsSingleEnded) {
  // 5T OTA driven differentially must show small-signal gain > 1.
  data::NetBuilder b;
  b.rails();
  b.io("inp", IoPin::Vin1);
  b.io("inn", IoPin::Vin2);
  b.io("bt", IoPin::Vb1);
  b.mos(DeviceKind::Nmos, "inp", "d1", "tail");
  b.mos(DeviceKind::Nmos, "inn", "out", "tail");
  b.mos(DeviceKind::Nmos, "bt", "tail", "VSS");
  b.mos(DeviceKind::Pmos, "d1", "d1", "VDD");
  b.mos(DeviceKind::Pmos, "d1", "out", "VDD");
  b.io("out", IoPin::Vout1);
  const Netlist nl = b.take();
  spice::Simulator sim(nl, spice::default_sizing(nl));
  ASSERT_TRUE(sim.solve_dc());
  const auto sweep = sim.ac_sweep();
  EXPECT_GT(std::abs(sweep.front().h), 2.0);
}

TEST(SpiceExtra, BoostConverterStepsUp) {
  data::NetBuilder b;
  b.rails();
  b.io("clk", IoPin::Clk1);
  b.two(DeviceKind::Inductor, "VDD", "sw");
  b.mos(DeviceKind::Nmos, "clk", "sw", "VSS");
  b.two(DeviceKind::Diode, "sw", "out");
  b.two(DeviceKind::Capacitor, "out", "VSS");
  b.io("out", IoPin::Vout1);
  const Netlist nl = b.take();
  const auto perf =
      spice::evaluate_default(nl, circuit::CircuitType::PowerConverter);
  ASSERT_TRUE(perf.ok);
  // Quasi-static averaging: output must at least approach the input rail
  // (ideal boost exceeds it; averaged model is conservative).
  EXPECT_GT(perf.ratio, 0.3);
}

// --- uniform tour policy -------------------------------------------------------

TEST(TourPolicy, UniformToursStillRoundTrip) {
  Rng rng(6);
  data::DatasetConfig cfg;
  cfg.per_type = 2;
  cfg.seed = 901;
  cfg.require_simulatable = false;
  const auto ds = data::Dataset::build(cfg);
  for (const auto& e : ds.entries()) {
    const auto tour = circuit::encode_tour(
        e.netlist, rng, circuit::PinGraph::TourPolicy::Uniform);
    const auto res = circuit::decode_tour(tour);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(circuit::canonical_hash(res.netlist), e.hash);
  }
}

TEST(TourPolicy, PoliciesGiveSameGraph) {
  Rng rng(7);
  const auto nl = [] {
    data::NetBuilder b;
    b.rails();
    b.io("in", IoPin::Vin1);
    b.io("out", IoPin::Vout1);
    b.mos(DeviceKind::Nmos, "in", "out", "VSS");
    b.two(DeviceKind::Resistor, "VDD", "out");
    return b.take();
  }();
  const auto t1 = circuit::encode_tour(
      nl, rng, circuit::PinGraph::TourPolicy::DeviceFirst);
  const auto t2 =
      circuit::encode_tour(nl, rng, circuit::PinGraph::TourPolicy::Uniform);
  EXPECT_EQ(t1.size(), t2.size());  // same edge count either way
  const auto r1 = circuit::decode_tour(t1);
  const auto r2 = circuit::decode_tour(t2);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(circuit::canonical_hash(r1.netlist),
            circuit::canonical_hash(r2.netlist));
}

// --- reward model learning -----------------------------------------------------

TEST(RewardModelExtra, AccuracyImprovesWithTraining) {
  data::DatasetConfig cfg;
  cfg.per_type = 5;
  cfg.seed = 902;
  cfg.require_simulatable = false;
  const auto ds = data::Dataset::build(cfg);
  const auto tok = nn::Tokenizer::from_dataset(ds);
  Rng rng(8);
  nn::TransformerLM model(nn::ModelConfig::tiny(tok.vocab_size()), rng);

  rl::LabelingConfig lcfg;
  lcfg.target = circuit::CircuitType::Mixer;
  const auto labels = rl::label_dataset(ds, tok, lcfg);

  rl::RewardModel rm(model, tok, rng);
  const double acc_before = rm.accuracy(labels.examples);
  rl::RewardModelConfig rmc;
  rmc.steps = 40;
  rm.train(labels.examples, rmc);
  const double acc_after = rm.accuracy(labels.examples);
  EXPECT_GE(acc_after, acc_before);
  EXPECT_GT(acc_after, 0.4);  // well above 1/3 chance on train set
}

TEST(LabelingExtra, OtsuThresholdSplitsRelevant) {
  data::DatasetConfig cfg;
  cfg.per_type = 6;
  cfg.seed = 903;
  cfg.require_simulatable = true;
  const auto ds = data::Dataset::build(cfg);
  const auto tok = nn::Tokenizer::from_dataset(ds);
  rl::LabelingConfig lcfg;
  lcfg.target = circuit::CircuitType::OpAmp;
  const auto labels = rl::label_dataset(ds, tok, lcfg);
  int high = 0, low = 0;
  for (const auto& e : labels.examples) {
    high += e.rank == rl::RankClass::HighRelevant;
    low += e.rank == rl::RankClass::LowRelevant;
  }
  EXPECT_GT(high, 0);
  EXPECT_GT(low, 0);
  EXPECT_EQ(high + low, 6);
}

}  // namespace
