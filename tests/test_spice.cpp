// Tests for the mini-SPICE substrate: linear algebra, DC operating points
// on analytically-solvable circuits, AC behaviour, FoM extraction, and the
// simulatability oracle over generated topologies.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/classify.hpp"
#include "data/builder.hpp"
#include "data/generators.hpp"
#include "spice/engine.hpp"
#include "spice/fom.hpp"
#include "spice/mna.hpp"
#include "spice/sizing.hpp"

namespace {

using namespace eva::spice;
using namespace eva::circuit;
using eva::Rng;
using eva::data::NetBuilder;

// --- dense LU ---------------------------------------------------------------

TEST(Mna, SolvesIdentity) {
  DenseMatrix<double> a(3);
  for (std::size_t i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  std::vector<double> b{1, 2, 3};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_DOUBLE_EQ(b[1], 2.0);
}

TEST(Mna, SolvesGeneralSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  DenseMatrix<double> a(2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  std::vector<double> b{5, 10};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Mna, PivotsOnZeroDiagonal) {
  DenseMatrix<double> a(2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  std::vector<double> b{2, 3};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Mna, DetectsSingular) {
  DenseMatrix<double> a(2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  std::vector<double> b{1, 2};
  EXPECT_FALSE(lu_solve(a, b));
}

TEST(Mna, ComplexSolve) {
  using cd = std::complex<double>;
  DenseMatrix<cd> a(1);
  a.at(0, 0) = cd{0.0, 2.0};
  std::vector<cd> b{cd{4.0, 0.0}};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0].imag(), -2.0, 1e-12);
}

// --- sizing -----------------------------------------------------------------

TEST(Sizing, DefaultsWithinBounds) {
  Rng rng(1);
  const Netlist nl = eva::data::gen_opamp(rng);
  const auto space = sizing_space(nl);
  const auto def = default_sizing(nl);
  ASSERT_EQ(space.size(), def.value.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_GE(def.value[i], space[i].lo);
    EXPECT_LE(def.value[i], space[i].hi);
  }
}

TEST(Sizing, UnitCubeMapsToBounds) {
  Rng rng(2);
  const Netlist nl = eva::data::gen_opamp(rng);
  const auto space = sizing_space(nl);
  const std::vector<double> zeros(space.size(), 0.0);
  const std::vector<double> ones(space.size(), 1.0);
  const auto lo = sizing_from_unit(nl, zeros);
  const auto hi = sizing_from_unit(nl, ones);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_NEAR(lo.value[i], space[i].lo, space[i].lo * 1e-9);
    EXPECT_NEAR(hi.value[i], space[i].hi, space[i].hi * 1e-9);
  }
}

// --- DC on analytic circuits --------------------------------------------------

TEST(Dc, ResistorDividerHalvesSupply) {
  NetBuilder b;
  b.rails();
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "VDD", "out");
  b.two(DeviceKind::Resistor, "out", "VSS");
  const Netlist nl = b.take();
  Simulator sim(nl, default_sizing(nl));
  ASSERT_TRUE(sim.solve_dc());
  EXPECT_NEAR(sim.io_voltage(IoPin::Vout1), 0.9, 1e-3);
}

TEST(Dc, UnequalDividerRatio) {
  NetBuilder b;
  b.rails();
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "VDD", "out");  // device 0
  b.two(DeviceKind::Resistor, "out", "VSS");  // device 1
  const Netlist nl = b.take();
  Sizing sz = default_sizing(nl);
  sz.value[0] = 10e3;
  sz.value[1] = 30e3;
  Simulator sim(nl, sz);
  ASSERT_TRUE(sim.solve_dc());
  EXPECT_NEAR(sim.io_voltage(IoPin::Vout1), 1.8 * 0.75, 1e-3);
}

TEST(Dc, DiodeDropNearHalfVolt) {
  NetBuilder b;
  b.rails();
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "VDD", "out");
  b.two(DeviceKind::Diode, "out", "VSS");
  const Netlist nl = b.take();
  Simulator sim(nl, default_sizing(nl));
  ASSERT_TRUE(sim.solve_dc());
  const double vd = sim.io_voltage(IoPin::Vout1);
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.8);
}

TEST(Dc, NmosDiodeConnectedSitsAboveVth) {
  NetBuilder b;
  b.rails();
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "VDD", "out");
  b.mos(DeviceKind::Nmos, "out", "out", "VSS");  // diode-connected
  const Netlist nl = b.take();
  Simulator sim(nl, default_sizing(nl));
  ASSERT_TRUE(sim.solve_dc());
  const double v = sim.io_voltage(IoPin::Vout1);
  EXPECT_GT(v, 0.5);  // must exceed VTH to conduct
  EXPECT_LT(v, 1.2);
}

TEST(Dc, CommonSourceOutputBetweenRails) {
  NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);  // biased at vcm = 0.9 V
  b.io("out", IoPin::Vout1);
  b.mos(DeviceKind::Nmos, "in", "out", "VSS");
  b.two(DeviceKind::Resistor, "VDD", "out");
  const Netlist nl = b.take();
  Simulator sim(nl, default_sizing(nl));
  ASSERT_TRUE(sim.solve_dc());
  const double v = sim.io_voltage(IoPin::Vout1);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.8);
  EXPECT_GT(sim.supply_power(), 0.0);
}

TEST(Dc, SupplyPowerScalesWithLoad) {
  auto run = [](double r) {
    NetBuilder b;
    b.rails();
    b.io("out", IoPin::Vout1);
    b.two(DeviceKind::Resistor, "VDD", "out");
    b.two(DeviceKind::Resistor, "out", "VSS");
    const Netlist nl = b.take();
    Sizing sz = default_sizing(nl);
    sz.value[0] = r;
    sz.value[1] = r;
    Simulator sim(nl, sz);
    EXPECT_TRUE(sim.solve_dc());
    return sim.supply_power();
  };
  EXPECT_GT(run(1e3), run(1e4));
}

// --- AC ------------------------------------------------------------------------

TEST(Ac, RcLowpassCorner) {
  // R from VIN1 to out, C from out to VSS: f3dB = 1/(2 pi R C).
  NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "in", "out");   // 10k default
  b.two(DeviceKind::Capacitor, "out", "VSS"); // 1p default
  // Anchor VDD somewhere so validity-independent sim still has the rail.
  b.two(DeviceKind::Resistor, "VDD", "out");
  const Netlist nl = b.take();
  Sizing sz = default_sizing(nl);
  sz.value[0] = 1e4;    // R
  sz.value[1] = 1e-9;   // C (1 nF -> f3dB ~ 15.9 kHz)
  sz.value[2] = 1e9;    // make the anchor resistor negligible

  SimOptions opts;
  opts.load_cap = 0.0;  // isolate the intended RC
  Simulator sim(nl, sz, opts);
  ASSERT_TRUE(sim.solve_dc());
  const auto sweep = sim.ac_sweep(10.0, 1e7, 141);
  const double a0 = std::abs(sweep.front().h);
  EXPECT_NEAR(a0, 1.0, 0.05);
  // Find -3 dB point.
  double f3 = 0;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (std::abs(sweep[i].h) < a0 / std::sqrt(2.0)) {
      f3 = sweep[i].freq_hz;
      break;
    }
  }
  const double expected = 1.0 / (2 * 3.14159265 * 1e4 * 1e-9);
  EXPECT_GT(f3, expected / 2);
  EXPECT_LT(f3, expected * 2);
}

TEST(Ac, CommonSourceHasGain) {
  NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);
  b.io("out", IoPin::Vout1);
  b.mos(DeviceKind::Nmos, "in", "out", "VSS");
  b.two(DeviceKind::Resistor, "VDD", "out");
  const Netlist nl = b.take();
  Simulator sim(nl, default_sizing(nl));
  ASSERT_TRUE(sim.solve_dc());
  const auto sweep = sim.ac_sweep();
  // gm * RL > 1 for default sizing.
  EXPECT_GT(std::abs(sweep.front().h), 1.0);
  // Gain must roll off at high frequency due to the output load cap.
  EXPECT_LT(std::abs(sweep.back().h), std::abs(sweep.front().h));
}

// --- FoM ------------------------------------------------------------------------

TEST(Fom, OpAmpEvaluates) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const Netlist nl = eva::data::gen_opamp(rng);
    const auto perf = evaluate_default(nl, CircuitType::OpAmp);
    if (!perf.ok) continue;
    EXPECT_GE(perf.fom, 0.0);
    EXPECT_GT(perf.power_w, 0.0);
    return;  // at least one op-amp evaluated
  }
  FAIL() << "no generated op-amp produced a DC point";
}

TEST(Fom, AcPointsScalesSweepNotVerdict) {
  // The verification-fidelity knob (SimOptions::ac_points / EVA_AC_POINTS)
  // changes AC sweep cost, not which circuits pass: a denser sweep must
  // still evaluate ok with a gain within a whisker of the default, and
  // the floor of 2 points must not crash.
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const Netlist nl = eva::data::gen_opamp(rng);
    const auto base = evaluate_default(nl, CircuitType::OpAmp);
    if (!base.ok) continue;
    SimOptions dense;
    dense.ac_points = 501;
    const auto hi = evaluate(nl, default_sizing(nl), CircuitType::OpAmp,
                             dense);
    ASSERT_TRUE(hi.ok);
    // Low-frequency gain comes from the first sweep point (1 Hz in both
    // sweeps), so it is resolution-independent.
    EXPECT_NEAR(hi.gain, base.gain, 1e-9 * std::abs(base.gain));
    // The denser grid brackets the -3 dB crossing at least as tightly.
    EXPECT_GT(hi.bw_hz, 0.0);
    SimOptions floor_opts;
    floor_opts.ac_points = 1;  // clamped to 2 inside evaluate
    const auto lo = evaluate(nl, default_sizing(nl), CircuitType::OpAmp,
                             floor_opts);
    EXPECT_TRUE(lo.ok);
    return;
  }
  FAIL() << "no generated op-amp produced a DC point";
}

TEST(Fom, BuckConverterStepsDown) {
  // Non-synchronous buck built explicitly.
  NetBuilder b;
  b.rails();
  b.io("clk", IoPin::Clk1);
  b.mos(DeviceKind::Pmos, "clk", "sw", "VDD");
  b.two(DeviceKind::Diode, "VSS", "sw");
  b.two(DeviceKind::Inductor, "sw", "out");
  b.two(DeviceKind::Capacitor, "out", "VSS");
  b.io("out", IoPin::Vout1);
  const Netlist nl = b.take();
  const auto perf = evaluate_default(nl, CircuitType::PowerConverter);
  ASSERT_TRUE(perf.ok);
  EXPECT_GT(perf.ratio, 0.05);
  EXPECT_LT(perf.ratio, 1.0);  // buck: output below the supply
  EXPECT_GT(perf.efficiency, 0.0);
  EXPECT_LE(perf.efficiency, 1.0);
  EXPECT_GT(perf.fom, 0.0);
}

TEST(Fom, GeneratedConvertersEvaluate) {
  Rng rng(6);
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    const Netlist nl = eva::data::gen_power_converter(rng);
    const auto perf = evaluate_default(nl, CircuitType::PowerConverter);
    ok += perf.ok;
  }
  EXPECT_GE(ok, 5);
}

TEST(Fom, InvalidNetlistNotOk) {
  Netlist empty;
  const auto perf = evaluate_default(empty, CircuitType::OpAmp);
  EXPECT_FALSE(perf.ok);
}

TEST(Fom, BiggerInputPairRaisesOpAmpFom) {
  // Monotonicity sanity for the GA: widening the input devices of a fixed
  // 5T OTA topology should not reduce gain*GBW/power catastrophically.
  NetBuilder b;
  b.rails();
  b.io("inp", IoPin::Vin1);
  b.io("inn", IoPin::Vin2);
  b.io("bt", IoPin::Vb1);
  b.mos(DeviceKind::Nmos, "inp", "d1", "tail");  // 0
  b.mos(DeviceKind::Nmos, "inn", "out", "tail"); // 1
  b.mos(DeviceKind::Nmos, "bt", "tail", "VSS");  // 2
  b.mos(DeviceKind::Pmos, "d1", "d1", "VDD");    // 3
  b.mos(DeviceKind::Pmos, "d1", "out", "VDD");   // 4
  b.io("out", IoPin::Vout1);
  const Netlist nl = b.take();

  auto fom_with_w = [&](double w) {
    Sizing sz = default_sizing(nl);
    sz.value[0] = w;
    sz.value[1] = w;
    const auto perf = evaluate(nl, sz, CircuitType::OpAmp);
    EXPECT_TRUE(perf.ok);
    return perf.fom;
  };
  const double f_small = fom_with_w(2e-6);
  const double f_big = fom_with_w(4e-5);
  EXPECT_GT(f_big, 0.0);
  EXPECT_GT(f_small, 0.0);
}

TEST(Simulatable, AcceptsGeneratedTopologies) {
  Rng rng(7);
  int ok = 0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const Netlist nl = eva::data::generate(
        static_cast<CircuitType>(i % 11), rng);
    ok += simulatable(nl);
  }
  EXPECT_GE(ok, n * 3 / 5);
}

TEST(Simulatable, RejectsStructurallyInvalid) {
  Netlist nl;  // empty
  EXPECT_FALSE(simulatable(nl));
}

}  // namespace
