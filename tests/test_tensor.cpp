// Unit tests for the autodiff tensor engine: forward values, gradient
// checks against finite differences for every op, optimizers, serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/optim.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace eva::tensor;
using eva::Rng;

/// Numeric gradient check: f builds a fresh graph from the leaf each call.
void grad_check(Tensor leaf, const std::function<Tensor(const Tensor&)>& f,
                float tol = 2e-2f) {
  leaf.zero_grad();  // leaves are reused across checks within a test
  Tensor loss = f(leaf);
  ASSERT_EQ(loss.numel(), 1u);
  loss.backward();
  std::vector<float> analytic(leaf.grad().begin(), leaf.grad().end());

  const float eps = 1e-2f;
  auto data = leaf.data();
  for (std::size_t i = 0; i < leaf.numel(); ++i) {
    const float orig = data[i];
    data[i] = orig + eps;
    const float up = f(leaf).item();
    data[i] = orig - eps;
    const float down = f(leaf).item();
    data[i] = orig;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0f, std::abs(numeric)))
        << "grad mismatch at index " << i;
  }
}

TEST(Tensor, FactoriesAndIntrospection) {
  auto t = Tensor::zeros({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 3);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);

  auto f = Tensor::full({2}, 3.5f);
  EXPECT_EQ(f.data()[0], 3.5f);
  EXPECT_FALSE(f.requires_grad());

  Rng rng(1);
  auto r = Tensor::randn({100}, rng, 2.0f);
  EXPECT_TRUE(r.requires_grad());
}

TEST(Tensor, AddSameShape) {
  auto a = Tensor::from({2, 2}, {1, 2, 3, 4});
  auto b = Tensor::from({2, 2}, {10, 20, 30, 40});
  auto c = add(a, b);
  EXPECT_EQ(c.data()[3], 44.0f);
}

TEST(Tensor, AddSuffixBroadcast) {
  auto a = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  auto b = Tensor::from({3}, {10, 20, 30});
  auto c = add(a, b);
  EXPECT_EQ(c.data()[0], 11.0f);
  EXPECT_EQ(c.data()[5], 36.0f);
}

TEST(Tensor, AddScalarOperandBroadcast) {
  auto a = Tensor::from({2, 2}, {1, 2, 3, 4});
  auto s = Tensor::scalar(100.0f);
  auto c = add(a, s);
  EXPECT_EQ(c.data()[2], 103.0f);
}

TEST(Tensor, MulGradBothOperands) {
  Rng rng(2);
  auto a = Tensor::randn({6}, rng, 1.0f);
  grad_check(a, [](const Tensor& x) {
    auto y = Tensor::from({6}, {1, -2, 3, 0.5f, 2, -1});
    return sum_all(mul(x, y));
  });
}

TEST(Tensor, BroadcastGradReducesToSuffix) {
  Rng rng(3);
  auto b = Tensor::randn({3}, rng, 1.0f);
  grad_check(b, [](const Tensor& x) {
    auto a = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
    return sum_all(mul(a, x));
  });
}

TEST(Tensor, SubAndScalarOps) {
  Rng rng(4);
  auto a = Tensor::randn({5}, rng, 1.0f);
  grad_check(a, [](const Tensor& x) {
    return sum_all(add_scalar(mul_scalar(sub(x, Tensor::full({5}, 1.0f)), 3.0f),
                              2.0f));
  });
}

TEST(Tensor, UnaryOpsForward) {
  auto x = Tensor::from({3}, {-1.0f, 0.0f, 1.0f});
  EXPECT_NEAR(relu(x).data()[0], 0.0f, 1e-6);
  EXPECT_NEAR(relu(x).data()[2], 1.0f, 1e-6);
  EXPECT_NEAR(tanh_t(x).data()[2], std::tanh(1.0f), 1e-6);
  EXPECT_NEAR(sigmoid(x).data()[1], 0.5f, 1e-6);
  EXPECT_NEAR(exp_t(x).data()[2], std::exp(1.0f), 1e-5);
  EXPECT_NEAR(square(x).data()[0], 1.0f, 1e-6);
  EXPECT_NEAR(neg(x).data()[2], -1.0f, 1e-6);
}

TEST(Tensor, UnaryGradChecks) {
  Rng rng(5);
  auto x = Tensor::randn({8}, rng, 0.7f);
  grad_check(x, [](const Tensor& t) { return sum_all(tanh_t(t)); });
  grad_check(x, [](const Tensor& t) { return sum_all(sigmoid(t)); });
  grad_check(x, [](const Tensor& t) { return sum_all(gelu(t)); });
  grad_check(x, [](const Tensor& t) { return sum_all(square(t)); });
  grad_check(x, [](const Tensor& t) { return sum_all(exp_t(mul_scalar(t, 0.5f))); });
}

TEST(Tensor, LogGrad) {
  auto x = Tensor::from({4}, {0.5f, 1.0f, 2.0f, 3.0f}, true);
  grad_check(x, [](const Tensor& t) { return sum_all(log_t(t)); });
}

TEST(Tensor, Matmul2D) {
  auto a = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  auto b = Tensor::from({3, 2}, {7, 8, 9, 10, 11, 12});
  auto c = matmul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.data()[0], 58.0f);   // 1*7+2*9+3*11
  EXPECT_EQ(c.data()[3], 154.0f);  // 4*8+5*10+6*12
}

TEST(Tensor, Matmul2DGrad) {
  Rng rng(6);
  auto a = Tensor::randn({3, 4}, rng, 0.5f);
  grad_check(a, [](const Tensor& x) {
    auto w = Tensor::from({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
    return sum_all(matmul(x, w));
  });
  auto w = Tensor::randn({4, 2}, rng, 0.5f);
  grad_check(w, [](const Tensor& x) {
    auto a2 = Tensor::from({3, 4}, {1, 0, 2, -1, 3, 1, 0, 2, -2, 1, 1, 0});
    return sum_all(matmul(a2, x));
  });
}

TEST(Tensor, Matmul3Dx2D) {
  Rng rng(7);
  auto a = Tensor::randn({2, 3, 4}, rng, 0.5f);
  auto w = Tensor::randn({4, 5}, rng, 0.5f);
  auto c = matmul(a, w);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 5}));
  grad_check(a, [&w](const Tensor& x) { return sum_all(matmul(x, w.detach())); });
  grad_check(w, [&a](const Tensor& x) { return sum_all(matmul(a.detach(), x)); });
}

TEST(Tensor, BatchedMatmulGrad) {
  Rng rng(8);
  auto a = Tensor::randn({2, 2, 3}, rng, 0.5f);
  auto b = Tensor::randn({2, 3, 2}, rng, 0.5f);
  auto c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
  grad_check(a, [&b](const Tensor& x) { return sum_all(matmul(x, b.detach())); });
  grad_check(b, [&a](const Tensor& x) { return sum_all(matmul(a.detach(), x)); });
}

// --- raw GEMM kernels -----------------------------------------------------
// The blocked kernels behind matmul/linear, checked against a naive
// triple loop across shapes that hit every tiling edge case: unit dims,
// sub-tile ragged edges (3, 17), exact tiles (64), and one-past-a-tile
// (129). Reduction order differs from the reference, so compare with a
// K-scaled tolerance rather than exact equality.

std::vector<float> random_mat(std::size_t rows, std::size_t cols, Rng& rng) {
  std::vector<float> m(rows * cols);
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

TEST(Gemm, KernelsMatchNaiveReference) {
  const std::size_t dims[] = {1, 3, 17, 64, 129};
  Rng rng(99);
  for (std::size_t M : dims) {
    for (std::size_t K : dims) {
      for (std::size_t N : dims) {
        const auto A = random_mat(M, K, rng);    // (M,K)
        const auto B = random_mat(K, N, rng);    // (K,N)
        const auto Bt = random_mat(N, K, rng);   // (N,K), for nt
        const auto At = random_mat(K, M, rng);   // (K,M), for tn
        const float tol = 1e-4f * static_cast<float>(K);

        std::vector<float> ref(M * N, 0.0f), out(M * N, 0.0f);

        for (std::size_t i = 0; i < M; ++i)
          for (std::size_t k = 0; k < K; ++k)
            for (std::size_t j = 0; j < N; ++j)
              ref[i * N + j] += A[i * K + k] * B[k * N + j];
        gemm_nn(A.data(), B.data(), out.data(), M, K, N);
        for (std::size_t i = 0; i < M * N; ++i)
          ASSERT_NEAR(out[i], ref[i], tol)
              << "nn " << M << "x" << K << "x" << N << " @" << i;

        std::fill(ref.begin(), ref.end(), 0.0f);
        std::fill(out.begin(), out.end(), 0.0f);
        for (std::size_t i = 0; i < M; ++i)
          for (std::size_t j = 0; j < N; ++j)
            for (std::size_t k = 0; k < K; ++k)
              ref[i * N + j] += A[i * K + k] * Bt[j * K + k];
        gemm_nt(A.data(), Bt.data(), out.data(), M, K, N);
        for (std::size_t i = 0; i < M * N; ++i)
          ASSERT_NEAR(out[i], ref[i], tol)
              << "nt " << M << "x" << K << "x" << N << " @" << i;

        std::fill(ref.begin(), ref.end(), 0.0f);
        std::fill(out.begin(), out.end(), 0.0f);
        for (std::size_t k = 0; k < K; ++k)
          for (std::size_t i = 0; i < M; ++i)
            for (std::size_t j = 0; j < N; ++j)
              ref[i * N + j] += At[k * M + i] * B[k * N + j];
        gemm_tn(At.data(), B.data(), out.data(), K, M, N);
        for (std::size_t i = 0; i < M * N; ++i)
          ASSERT_NEAR(out[i], ref[i], tol)
              << "tn " << K << "x" << M << "x" << N << " @" << i;
      }
    }
  }
}

TEST(Gemm, KernelsAccumulateIntoC) {
  // All three kernels are C += ..., not C = ...; the backward pass
  // relies on accumulation when a tensor feeds several consumers.
  Rng rng(100);
  const std::size_t n = 17;
  const auto A = random_mat(n, n, rng);
  const auto B = random_mat(n, n, rng);
  std::vector<float> once(n * n, 1.0f), twice(n * n, 1.0f);
  gemm_nn(A.data(), B.data(), once.data(), n, n, n);
  gemm_nn(A.data(), B.data(), twice.data(), n, n, n);
  gemm_nn(A.data(), B.data(), twice.data(), n, n, n);
  for (std::size_t i = 0; i < n * n; ++i)
    EXPECT_NEAR(twice[i], 2.0f * once[i] - 1.0f, 1e-3f);
}

TEST(Gemm, GemvMatchesGemmRow) {
  Rng rng(101);
  for (std::size_t in : {1u, 7u, 64u, 130u}) {
    for (std::size_t out : {1u, 9u, 64u, 200u}) {
      const auto x = random_mat(1, in, rng);
      const auto w = random_mat(in, out, rng);
      const auto b = random_mat(1, out, rng);
      std::vector<float> ref(out, 0.0f), y(out, -1.0f);
      for (std::size_t k = 0; k < in; ++k)
        for (std::size_t j = 0; j < out; ++j) ref[j] += x[k] * w[k * out + j];
      gemv(x.data(), w.data(), nullptr, y.data(), in, out);
      for (std::size_t j = 0; j < out; ++j)
        ASSERT_NEAR(y[j], ref[j], 1e-4f * static_cast<float>(in) + 1e-5f)
            << "in=" << in << " out=" << out << " @" << j;
      gemv(x.data(), w.data(), b.data(), y.data(), in, out);
      for (std::size_t j = 0; j < out; ++j)
        ASSERT_NEAR(y[j], ref[j] + b[j], 1e-4f * static_cast<float>(in) + 1e-5f)
            << "bias in=" << in << " out=" << out << " @" << j;
    }
  }
}

TEST(Tensor, TransposeLast) {
  auto a = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  auto t = transpose_last(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.data()[0], 1.0f);
  EXPECT_EQ(t.data()[1], 4.0f);
  Rng rng(9);
  auto x = Tensor::randn({2, 2, 3}, rng, 1.0f);
  grad_check(x, [](const Tensor& t2) {
    auto w = Tensor::from({2, 3, 2}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
    return sum_all(mul(transpose_last(t2), w));
  });
}

TEST(Tensor, ReshapeRoundTrip) {
  auto a = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  auto r = reshape(a, {3, 2});
  EXPECT_EQ(r.data()[4], 5.0f);
  grad_check(a, [](const Tensor& x) {
    return sum_all(square(reshape(x, {6})));
  });
}

TEST(Tensor, SplitMergeHeadsInverse) {
  Rng rng(10);
  auto x = Tensor::randn({2, 3, 4}, rng, 1.0f);  // B=2 T=3 C=4, H=2
  auto s = split_heads(x, 2);
  EXPECT_EQ(s.shape(), (Shape{4, 3, 2}));
  auto m = merge_heads(s, 2);
  ASSERT_EQ(m.shape(), x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(m.data()[i], x.data()[i]);
  }
  grad_check(x, [](const Tensor& t) {
    return sum_all(square(split_heads(t, 2)));
  });
}

TEST(Tensor, SoftmaxRowsSumToOne) {
  Rng rng(11);
  auto x = Tensor::randn({3, 5}, rng, 2.0f);
  auto s = softmax_lastdim(x);
  for (int r = 0; r < 3; ++r) {
    float sum = 0;
    for (int c = 0; c < 5; ++c) sum += s.data()[r * 5 + c];
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  grad_check(x, [](const Tensor& t) {
    auto w = Tensor::from({3, 5}, std::vector<float>(15, 0.0f));
    w.data()[2] = 1.0f;
    w.data()[7] = -2.0f;
    return sum_all(mul(softmax_lastdim(t), w));
  });
}

TEST(Tensor, CausalSoftmaxMasksFuture) {
  auto x = Tensor::full({1, 3, 3}, 1.0f, true);
  auto s = causal_softmax(x, 3);
  // Row 0 attends only to col 0.
  EXPECT_NEAR(s.data()[0], 1.0f, 1e-6);
  EXPECT_NEAR(s.data()[1], 0.0f, 1e-6);
  // Row 1: two valid entries of equal score.
  EXPECT_NEAR(s.data()[3], 0.5f, 1e-6);
  EXPECT_NEAR(s.data()[4], 0.5f, 1e-6);
  EXPECT_NEAR(s.data()[5], 0.0f, 1e-6);
}

TEST(Tensor, CausalSoftmaxGrad) {
  Rng rng(12);
  auto x = Tensor::randn({2, 3, 3}, rng, 1.0f);  // (B*H=2, T=3, T=3)
  grad_check(x, [](const Tensor& t) {
    auto w = Tensor::from({2, 3, 3},
                          {1, 0, 0, -1, 2, 0, 0.5f, 1, -2,
                           0, 1, 0, 2, -1, 0, 1, 0.5f, 1});
    return sum_all(mul(causal_softmax(t, 3), w));
  });
}

TEST(Tensor, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(13);
  auto x = Tensor::randn({2, 4}, rng, 1.5f);
  auto ls = log_softmax_lastdim(x);
  auto s = softmax_lastdim(x);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-5);
  }
  grad_check(x, [](const Tensor& t) {
    auto w = Tensor::from({2, 4}, {1, 0, -1, 2, 0.5f, 1, 0, -2});
    return sum_all(mul(log_softmax_lastdim(t), w));
  });
}

TEST(Tensor, LayernormNormalizes) {
  Rng rng(14);
  auto x = Tensor::randn({4, 8}, rng, 3.0f);
  auto gamma = Tensor::full({8}, 1.0f);
  auto beta = Tensor::zeros({8});
  auto y = layernorm(x, gamma, beta);
  for (int r = 0; r < 4; ++r) {
    float mu = 0, var = 0;
    for (int c = 0; c < 8; ++c) mu += y.data()[r * 8 + c];
    mu /= 8;
    for (int c = 0; c < 8; ++c) {
      const float d = y.data()[r * 8 + c] - mu;
      var += d * d;
    }
    EXPECT_NEAR(mu, 0.0f, 1e-4);
    EXPECT_NEAR(var / 8, 1.0f, 1e-2);
  }
}

TEST(Tensor, LayernormGradAllInputs) {
  Rng rng(15);
  auto x = Tensor::randn({2, 4}, rng, 1.0f);
  auto gamma = Tensor::randn({4}, rng, 0.3f);
  auto beta = Tensor::randn({4}, rng, 0.3f);
  auto wrap = [&](const Tensor& t) {
    return sum_all(square(layernorm(t, gamma, beta)));
  };
  grad_check(x, wrap, 5e-2f);
  grad_check(gamma, [&](const Tensor& g) {
    return sum_all(square(layernorm(x, g, beta)));
  });
  grad_check(beta, [&](const Tensor& bb) {
    return sum_all(square(layernorm(x, gamma, bb)));
  });
}

TEST(Tensor, EmbeddingGatherAndScatter) {
  auto table = Tensor::from({3, 2}, {1, 2, 3, 4, 5, 6}, true);
  auto e = embedding(table, {2, 0, 2}, 1, 3);
  EXPECT_EQ(e.shape(), (Shape{1, 3, 2}));
  EXPECT_EQ(e.data()[0], 5.0f);
  EXPECT_EQ(e.data()[2], 1.0f);
  grad_check(table, [](const Tensor& t) {
    return sum_all(square(embedding(t, {2, 0, 2}, 1, 3)));
  });
}

TEST(Tensor, CrossEntropyValueAndGrad) {
  // Uniform logits over V=4: loss = log(4).
  auto logits = Tensor::zeros({2, 4}, true);
  auto loss = cross_entropy(logits, {1, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5);
  Rng rng(16);
  auto x = Tensor::randn({3, 5}, rng, 1.0f);
  grad_check(x, [](const Tensor& t) {
    return cross_entropy(t, {0, 2, 4});
  });
}

TEST(Tensor, CrossEntropyIgnoreIndex) {
  auto logits = Tensor::from({2, 2}, {10, 0, 0, 10}, true);
  // Second row ignored: loss comes from row 0 only.
  auto loss = cross_entropy(logits, {0, -1}, -1);
  EXPECT_NEAR(loss.item(), 0.0f, 1e-3);
  loss.backward();
  // Ignored row gets zero grad.
  EXPECT_FLOAT_EQ(logits.grad()[2], 0.0f);
  EXPECT_FLOAT_EQ(logits.grad()[3], 0.0f);
}

TEST(Tensor, GatherLastdim) {
  auto x = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  auto g = gather_lastdim(x, {2, 0});
  EXPECT_EQ(g.data()[0], 3.0f);
  EXPECT_EQ(g.data()[1], 4.0f);
  grad_check(x, [](const Tensor& t) {
    return sum_all(square(gather_lastdim(t, {2, 0})));
  });
}

TEST(Tensor, MaskedMean) {
  auto x = Tensor::from({4}, {1, 2, 3, 4}, true);
  auto m = masked_mean(x, {1, 0, 1, 0});
  EXPECT_NEAR(m.item(), 2.0f, 1e-6);
  grad_check(x, [](const Tensor& t) {
    return masked_mean(t, {1, 0, 1, 0});
  });
}

TEST(Tensor, DropoutTrainAndEval) {
  Rng rng(17);
  auto x = Tensor::full({1000}, 1.0f, true);
  auto y = dropout(x, 0.5f, rng, true);
  int zeros = 0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 2.0f, 1e-6);  // inverted scaling
    }
  }
  EXPECT_NEAR(zeros, 500, 80);
  // Eval mode: identity (same node).
  auto z = dropout(x, 0.5f, rng, false);
  EXPECT_EQ(z.node().get(), x.node().get());
}

TEST(Tensor, GradAccumulatesOnReuse) {
  auto x = Tensor::from({1}, {3.0f}, true);
  auto y = add(x, x);  // dy/dx = 2
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(Tensor, DetachStopsGradient) {
  auto x = Tensor::from({2}, {1.0f, 2.0f}, true);
  auto d = x.detach();
  EXPECT_FALSE(d.requires_grad());
  auto loss = sum_all(mul(x, d));
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 2.0f);
}

// --- optim -----------------------------------------------------------------

TEST(Optim, SgdConvergesOnQuadratic) {
  auto w = Tensor::from({1}, {5.0f}, true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    auto loss = square(w);
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 1e-3);
}

TEST(Optim, AdamWFitsLinearRegression) {
  // Fit y = 2x + 1 from 16 points.
  Rng rng(18);
  std::vector<float> xs(16), ys(16);
  for (int i = 0; i < 16; ++i) {
    xs[static_cast<std::size_t>(i)] = static_cast<float>(i) / 8.0f - 1.0f;
    ys[static_cast<std::size_t>(i)] = 2.0f * xs[static_cast<std::size_t>(i)] + 1.0f;
  }
  auto w = Tensor::from({1}, {0.0f}, true);
  auto b = Tensor::from({1}, {0.0f}, true);
  AdamW opt({w, b}, {.lr = 0.05f});
  for (int step = 0; step < 400; ++step) {
    opt.zero_grad();
    auto x = Tensor::from({16}, xs);
    auto y = Tensor::from({16}, ys);
    auto pred = add(mul(x, w), b);
    auto loss = mean_all(square(sub(pred, y)));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.data()[0], 2.0f, 0.05f);
  EXPECT_NEAR(b.data()[0], 1.0f, 0.05f);
}

TEST(Optim, ClipGradNorm) {
  auto a = Tensor::from({2}, {0.0f, 0.0f}, true);
  auto loss = sum_all(mul_scalar(a, 100.0f));
  loss.backward();
  std::vector<Tensor> params{a};
  const double pre = clip_grad_norm(params, 1.0);
  EXPECT_NEAR(pre, 100.0 * std::sqrt(2.0), 1e-3);
  double post = 0;
  for (float g : a.grad()) post += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(post), 1.0, 1e-4);
}

// --- serialize ---------------------------------------------------------------

TEST(Serialize, SaveLoadRoundTrip) {
  Rng rng(19);
  std::vector<Tensor> params{Tensor::randn({3, 4}, rng, 1.0f),
                             Tensor::randn({5}, rng, 1.0f)};
  const std::string path = "/tmp/eva_test_ckpt.bin";
  save_params(params, path);

  std::vector<Tensor> loaded{Tensor::zeros({3, 4}, true),
                             Tensor::zeros({5}, true)};
  load_params(loaded, path);
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::size_t i = 0; i < params[p].numel(); ++i) {
      EXPECT_FLOAT_EQ(loaded[p].data()[i], params[p].data()[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsShapeMismatch) {
  Rng rng(20);
  std::vector<Tensor> params{Tensor::randn({2, 2}, rng, 1.0f)};
  const std::string path = "/tmp/eva_test_ckpt2.bin";
  save_params(params, path);
  std::vector<Tensor> wrong{Tensor::zeros({4}, true)};
  EXPECT_THROW(load_params(wrong, path), eva::ConfigError);
  std::remove(path.c_str());
}

TEST(Serialize, CopyParams) {
  std::vector<Tensor> src{Tensor::from({2}, {1, 2})};
  std::vector<Tensor> dst{Tensor::zeros({2})};
  copy_params(src, dst);
  EXPECT_FLOAT_EQ(dst[0].data()[1], 2.0f);
  EXPECT_EQ(count_params(src), 2u);
}

}  // namespace
