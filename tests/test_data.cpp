// Tests for the dataset substrate: generators, mutations, dataset
// assembly, train/val splitting.
#include <gtest/gtest.h>

#include <set>

#include "circuit/canon.hpp"
#include "circuit/classify.hpp"
#include "circuit/validity.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/mutate.hpp"

namespace {

using namespace eva::circuit;
using namespace eva::data;
using eva::Rng;

class GeneratorValidity : public ::testing::TestWithParam<CircuitType> {};

TEST_P(GeneratorValidity, ProducesStructurallyValidCircuits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  int valid = 0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    valid += structurally_valid(generate(GetParam(), rng));
  }
  EXPECT_EQ(valid, n) << "type " << type_name(GetParam());
}

TEST_P(GeneratorValidity, ProducesStructuralVariety) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 1);
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 30; ++i) {
    hashes.insert(canonical_hash(generate(GetParam(), rng)));
  }
  // Every family has structural knobs: expect several distinct variants.
  EXPECT_GE(hashes.size(), 3u) << "type " << type_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, GeneratorValidity,
    ::testing::Values(CircuitType::OpAmp, CircuitType::Ldo,
                      CircuitType::Bandgap, CircuitType::Comparator,
                      CircuitType::Pll, CircuitType::Lna, CircuitType::Pa,
                      CircuitType::Mixer, CircuitType::Vco,
                      CircuitType::PowerConverter, CircuitType::ScSampler));

// --- mutations -------------------------------------------------------------

class MutationProperty : public ::testing::TestWithParam<MutationKind> {};

TEST_P(MutationProperty, ChangesHashWhenApplied) {
  Rng rng(91);
  int applied = 0;
  int changed = 0;
  for (int i = 0; i < 20; ++i) {
    Netlist nl = gen_opamp(rng);
    const auto before = canonical_hash(nl);
    if (apply_mutation(nl, GetParam(), rng)) {
      ++applied;
      changed += canonical_hash(nl) != before;
    }
  }
  EXPECT_GT(applied, 0);
  EXPECT_EQ(changed, applied);  // every applied mutation alters topology
}

TEST_P(MutationProperty, UsuallyPreservesValidity) {
  Rng rng(92);
  int applied = 0;
  int still_valid = 0;
  for (int i = 0; i < 30; ++i) {
    Netlist nl = gen_opamp(rng);
    if (apply_mutation(nl, GetParam(), rng)) {
      ++applied;
      still_valid += structurally_valid(nl);
    }
  }
  if (applied > 0) {
    EXPECT_GE(still_valid * 10, applied * 9)
        << "mutation broke validity too often";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MutationProperty,
    ::testing::Values(MutationKind::ParallelDevice,
                      MutationKind::SeriesResistor,
                      MutationKind::SourceDegeneration, MutationKind::Cascode,
                      MutationKind::LoadCap, MutationKind::BypassCap));

TEST(Mutate, GrowsDeviceCount) {
  Rng rng(93);
  Netlist nl = gen_opamp(rng);
  const int before = nl.num_devices();
  int grew = 0;
  for (int i = 0; i < 5; ++i) grew += mutate(nl, rng);
  if (grew > 0) EXPECT_GT(nl.num_devices(), before);
}

// --- dataset ---------------------------------------------------------------

TEST(Dataset, BuildsRequestedCounts) {
  DatasetConfig cfg;
  cfg.per_type = 8;
  cfg.seed = 100;
  cfg.require_simulatable = false;  // fast build for unit tests
  const Dataset ds = Dataset::build(cfg);
  EXPECT_EQ(ds.entries().size(), 8u * 11u);
  for (int t = 0; t < kNumCircuitTypes; ++t) {
    EXPECT_EQ(ds.of_type(static_cast<CircuitType>(t)).size(), 8u);
  }
}

TEST(Dataset, EntriesAreUniqueByHash) {
  DatasetConfig cfg;
  cfg.per_type = 6;
  cfg.seed = 101;
  cfg.require_simulatable = false;
  const Dataset ds = Dataset::build(cfg);
  std::set<std::uint64_t> hashes;
  for (const auto& e : ds.entries()) hashes.insert(e.hash);
  EXPECT_EQ(hashes.size(), ds.entries().size());
}

TEST(Dataset, EntriesAreValidAndTyped) {
  DatasetConfig cfg;
  cfg.per_type = 5;
  cfg.seed = 102;
  cfg.require_simulatable = false;
  const Dataset ds = Dataset::build(cfg);
  for (const auto& e : ds.entries()) {
    EXPECT_TRUE(structurally_valid(e.netlist));
    EXPECT_EQ(classify(e.netlist), e.type);
    EXPECT_EQ(canonical_hash(e.netlist), e.hash);
    EXPECT_TRUE(ds.contains_hash(e.hash));
  }
}

TEST(Dataset, SimulatableFilterHolds) {
  DatasetConfig cfg;
  cfg.per_type = 3;
  cfg.seed = 103;
  cfg.require_simulatable = true;
  const Dataset ds = Dataset::build(cfg);
  EXPECT_EQ(ds.entries().size(), 3u * 11u);
}

TEST(Dataset, SplitDisjointAndComplete) {
  DatasetConfig cfg;
  cfg.per_type = 6;
  cfg.seed = 104;
  cfg.require_simulatable = false;
  const Dataset ds = Dataset::build(cfg);
  const auto split = ds.split(0.9);
  EXPECT_EQ(split.train.size() + split.val.size(), ds.entries().size());
  std::set<std::size_t> train(split.train.begin(), split.train.end());
  for (std::size_t v : split.val) EXPECT_EQ(train.count(v), 0u);
  EXPECT_GT(split.val.size(), 0u);
}

TEST(Dataset, SplitDeterministicForSeed) {
  DatasetConfig cfg;
  cfg.per_type = 4;
  cfg.seed = 105;
  cfg.require_simulatable = false;
  const Dataset ds = Dataset::build(cfg);
  const auto s1 = ds.split(0.9, 7);
  const auto s2 = ds.split(0.9, 7);
  EXPECT_EQ(s1.train, s2.train);
}

TEST(Dataset, BuildDeterministicForSeed) {
  DatasetConfig cfg;
  cfg.per_type = 3;
  cfg.seed = 106;
  cfg.require_simulatable = false;
  const Dataset a = Dataset::build(cfg);
  const Dataset b = Dataset::build(cfg);
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_EQ(a.entries()[i].hash, b.entries()[i].hash);
  }
}

}  // namespace
