// Quantized-inference suite (DESIGN.md "Kernel backends & quantized
// inference"): QuantMatrix roundtrip error bounds (bf16 relative, int8
// per-column-scale absolute) including zero-column and large-magnitude
// edge cases, qgemm/qgemv vs the f32 kernels at the tier's analytic
// error bound (weight rounding + activation quantization), fused-
// epilogue equivalence, the gemm backend registry/dispatch counters,
// and quantized-vs-f32 decode: width-invariance at widths 1/8/16 with
// mid-stream slot refill, and logits tolerance against the f32 path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_backend.hpp"
#include "tensor/quant.hpp"
#include "util/aligned.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace eva;
using namespace eva::tensor;

std::vector<float> random_matrix(std::size_t n, std::uint64_t seed,
                                 float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (auto& v : out) v = scale * static_cast<float>(rng.normal());
  return out;
}

// --- roundtrip error bounds --------------------------------------------------

TEST(Quant, Bf16RoundtripRelativeErrorBound) {
  const auto w = random_matrix(64 * 48, 11);
  const auto q = QuantMatrix::quantize(QuantKind::kBf16, w.data(), 64, 48);
  std::vector<float> back(w.size());
  q.dequantize(back.data());
  for (std::size_t i = 0; i < w.size(); ++i) {
    // Round-to-nearest-even truncation keeps 8 significand bits:
    // relative error <= 2^-8.
    EXPECT_LE(std::fabs(back[i] - w[i]), std::fabs(w[i]) / 256.0f + 1e-30f)
        << "at " << i;
  }
}

TEST(Quant, Bf16ExactForRepresentableValues) {
  // Values with <= 8 significand bits survive bf16 exactly.
  const std::vector<float> exact{0.0f, 1.0f, -2.5f, 0.15625f, 1024.0f, -0.375f};
  const auto q =
      QuantMatrix::quantize(QuantKind::kBf16, exact.data(), 1, exact.size());
  std::vector<float> back(exact.size());
  q.dequantize(back.data());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(back[i], exact[i]);
  }
}

TEST(Quant, Int8RoundtripAbsoluteErrorBound) {
  constexpr std::size_t kRows = 40, kCols = 96;
  const auto w = random_matrix(kRows * kCols, 12);
  const auto q = QuantMatrix::quantize(QuantKind::kInt8, w.data(), kRows, kCols);
  ASSERT_EQ(q.scale.size(), kCols);
  ASSERT_EQ(q.colsum.size(), kCols);
  std::vector<float> back(w.size());
  q.dequantize(back.data());
  for (std::size_t c = 0; c < kCols; ++c) {
    // Symmetric rounding: absolute error <= scale/2 per element, with
    // the scale set by the column's absolute maximum.
    const float bound = q.scale[c] * 0.5f + 1e-6f;
    std::int32_t sum = 0;
    for (std::size_t r = 0; r < kRows; ++r) {
      EXPECT_LE(std::fabs(back[r * kCols + c] - w[r * kCols + c]), bound)
          << "row " << r << " col " << c;
      sum += q.q8[r * kCols + c];
    }
    EXPECT_EQ(q.colsum[c], sum) << "col " << c;
  }
}

TEST(Quant, Int8ZeroColumnGetsZeroScaleAndExactZeros) {
  // Columns 0 and 2 all-zero, column 1 live: the dead columns must get
  // scale 0 + zero codes so dequantization reproduces exact zeros.
  constexpr std::size_t kRows = 8, kCols = 3;
  std::vector<float> w(kRows * kCols, 0.0f);
  for (std::size_t r = 0; r < kRows; ++r) {
    w[r * kCols + 1] = 0.5f * static_cast<float>(r + 1);
  }
  const auto q = QuantMatrix::quantize(QuantKind::kInt8, w.data(), kRows, kCols);
  EXPECT_EQ(q.scale[0], 0.0f);
  EXPECT_GT(q.scale[1], 0.0f);
  EXPECT_EQ(q.scale[2], 0.0f);
  std::vector<float> back(w.size());
  q.dequantize(back.data());
  for (std::size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(back[r * kCols + 0], 0.0f);
    EXPECT_EQ(back[r * kCols + 2], 0.0f);
  }
}

TEST(Quant, Int8LargeMagnitudeColumnsStayFiniteAndBounded) {
  constexpr std::size_t kRows = 32;
  std::vector<float> w(kRows * 2);
  for (std::size_t r = 0; r < kRows; ++r) {
    // Fraction first: scaling 3e37 up before dividing would overflow.
    w[r * 2] = (r % 2 == 0 ? 1.0f : -1.0f) * 3.0e37f *
               (static_cast<float>(r + 1) / static_cast<float>(kRows));
    w[r * 2 + 1] = 1e-30f;  // denormal-adjacent tiny column
  }
  const auto q = QuantMatrix::quantize(QuantKind::kInt8, w.data(), kRows, 2);
  EXPECT_TRUE(std::isfinite(q.scale[0]));
  EXPECT_TRUE(std::isfinite(q.scale[1]));
  std::vector<float> back(w.size());
  q.dequantize(back.data());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_TRUE(std::isfinite(back[i])) << "at " << i;
    const std::size_t c = i % 2;
    EXPECT_LE(std::fabs(back[i] - w[i]), q.scale[c] * 0.5f * 1.0001f);
  }
}

TEST(Quant, ParseAndEnvRoundTrip) {
  EXPECT_EQ(parse_quant_kind("f32", QuantKind::kInt8), QuantKind::kF32);
  EXPECT_EQ(parse_quant_kind("bf16", QuantKind::kF32), QuantKind::kBf16);
  EXPECT_EQ(parse_quant_kind("int8", QuantKind::kF32), QuantKind::kInt8);
  EXPECT_EQ(parse_quant_kind("garbage", QuantKind::kBf16), QuantKind::kBf16);
  for (const QuantKind k :
       {QuantKind::kF32, QuantKind::kBf16, QuantKind::kInt8}) {
    EXPECT_EQ(parse_quant_kind(quant_kind_name(k), QuantKind::kF32), k);
  }
}

// --- quantized kernels vs f32 ------------------------------------------------

/// Max |a-b| over n entries.
float max_abs_diff(const float* a, const float* b, std::size_t n) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

/// f32 reference for epilogue(x@W + bias).
std::vector<float> ref_linear(const std::vector<float>& x,
                              const std::vector<float>& w,
                              const std::vector<float>& bias, std::size_t n,
                              std::size_t in, std::size_t out, Epilogue ep) {
  std::vector<float> y(n * out, 0.0f);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t j = 0; j < out; ++j) {
      float acc = ep == Epilogue::kNone ? 0.0f : bias[j];
      for (std::size_t k = 0; k < in; ++k) {
        acc += x[r * in + k] * w[k * out + j];
      }
      y[r * out + j] = ep == Epilogue::kBiasGelu ? gelu_approx(acc) : acc;
    }
  }
  return y;
}

TEST(QuantKernels, QgemmMatchesF32WithinTierTolerance) {
  constexpr std::size_t kN = 8, kIn = 96, kOut = 160;
  const auto w = random_matrix(kIn * kOut, 21, 0.1f);
  const auto x = random_matrix(kN * kIn, 22);
  const auto bias = random_matrix(kOut, 23, 0.05f);

  for (const QuantKind kind : {QuantKind::kBf16, QuantKind::kInt8}) {
    const auto qw = QuantMatrix::quantize(kind, w.data(), kIn, kOut);
    // The reference runs f32 on dequant(W). The kernels additionally
    // quantize the activations (int8: u8 with a dynamic per-row scale,
    // |xhat - x| <= ascale/2; bf16: round to bf16, relative error
    // <= 2^-9), so the analytic per-element gap vs that reference is
    //   int8: (ascale_r / 2) * sum_k |wq[k][j]|
    //   bf16: 2^-9 * sum_k |x[k] * wq[k][j]|
    // A 1.5x margin plus a small absolute slack absorbs f32 epilogue
    // rounding and the GELU Lipschitz factor (~1.13). The portable
    // fallback keeps activations f32 and sits far inside these bounds.
    std::vector<float> wq(w.size());
    qw.dequantize(wq.data());
    for (const Epilogue ep :
         {Epilogue::kNone, Epilogue::kBias, Epilogue::kBiasGelu}) {
      std::vector<float> y(kN * kOut, -7.0f);  // poison: qgemm overwrites
      qgemm(x.data(), qw, bias.data(), y.data(), kN, ep);
      const auto ref = ref_linear(x, wq, bias, kN, kIn, kOut, ep);
      for (std::size_t r = 0; r < kN; ++r) {
        float amax = 0.0f;
        for (std::size_t k = 0; k < kIn; ++k) {
          amax = std::max(amax, std::fabs(x[r * kIn + k]));
        }
        const float ascale = amax / 127.0f;
        for (std::size_t j = 0; j < kOut; ++j) {
          float bound = 0.0f;
          for (std::size_t k = 0; k < kIn; ++k) {
            const float wv = std::fabs(wq[k * kOut + j]);
            bound += kind == QuantKind::kInt8
                         ? 0.5f * ascale * wv
                         : std::fabs(x[r * kIn + k]) * wv / 512.0f;
          }
          bound = 1.5f * bound + 1e-4f;
          EXPECT_LE(std::fabs(y[r * kOut + j] - ref[r * kOut + j]), bound)
              << quant_kind_name(kind) << " ep=" << static_cast<int>(ep)
              << " row " << r << " col " << j;
        }
      }
    }
  }
}

TEST(QuantKernels, QgemvMatchesQgemmRowZero) {
  constexpr std::size_t kIn = 128, kOut = 200;
  const auto w = random_matrix(kIn * kOut, 31, 0.1f);
  const auto x = random_matrix(kIn, 32);
  const auto bias = random_matrix(kOut, 33, 0.05f);
  for (const QuantKind kind : {QuantKind::kBf16, QuantKind::kInt8}) {
    const auto qw = QuantMatrix::quantize(kind, w.data(), kIn, kOut);
    for (const Epilogue ep :
         {Epilogue::kNone, Epilogue::kBias, Epilogue::kBiasGelu}) {
      std::vector<float> y1(kOut, -7.0f), yn(kOut, 7.0f);
      qgemv(x.data(), qw, bias.data(), y1.data(), ep);
      qgemm(x.data(), qw, bias.data(), yn.data(), 1, ep);
      // qgemv IS the 1-row qgemm kernel, so this is bitwise, not merely
      // within accumulation noise.
      for (std::size_t j = 0; j < kOut; ++j) {
        ASSERT_EQ(y1[j], yn[j]) << quant_kind_name(kind) << " col " << j;
      }
    }
  }
}

TEST(QuantKernels, QgemmRowsIndependentOfBatchSize) {
  // Width-invariance at the kernel level: row r of an n-row qgemm is
  // bitwise the same as the single-row call (the per-row reduction order
  // depends only on the shapes). This is what keeps BatchedDecoder
  // deterministic across widths under quantization.
  constexpr std::size_t kIn = 192, kOut = 256;
  const auto w = random_matrix(kIn * kOut, 41, 0.1f);
  const auto bias = random_matrix(kOut, 42, 0.05f);
  const auto x = random_matrix(16 * kIn, 43);
  for (const QuantKind kind : {QuantKind::kBf16, QuantKind::kInt8}) {
    const auto qw = QuantMatrix::quantize(kind, w.data(), kIn, kOut);
    std::vector<float> y16(16 * kOut);
    qgemm(x.data(), qw, bias.data(), y16.data(), 16, Epilogue::kBias);
    for (const std::size_t r : {std::size_t{0}, std::size_t{7}, std::size_t{15}}) {
      std::vector<float> y1(kOut);
      qgemm(x.data() + r * kIn, qw, bias.data(), y1.data(), 1, Epilogue::kBias);
      for (std::size_t j = 0; j < kOut; ++j) {
        ASSERT_EQ(y1[j], y16[r * kOut + j])
            << quant_kind_name(kind) << " row " << r << " col " << j;
      }
    }
  }
}

TEST(QuantKernels, QgemmBitwiseStableUnderForcedPoolWorkers) {
  // Regression: the AVX-512 paths fill activation scratch held in
  // `static thread_local` vectors on the submitting thread; thread_local
  // names are never captured by [&], so pool workers executing the
  // parallel region used to resolve them to their own empty vectors and
  // read through nullptr. Single-core machines (CI, this container) run
  // parallel_chunks inline and never see it, so force real workers and
  // a shape wide enough (64 strips) that they must pull chunks.
  constexpr std::size_t kN = 16, kIn = 96, kOut = 2048;
  const auto w = random_matrix(kIn * kOut, 51, 0.1f);
  const auto x = random_matrix(kN * kIn, 52);
  const auto bias = random_matrix(kOut, 53, 0.05f);
  for (const QuantKind kind : {QuantKind::kBf16, QuantKind::kInt8}) {
    const auto qw = QuantMatrix::quantize(kind, w.data(), kIn, kOut);
    std::vector<float> y1(kN * kOut, -7.0f), y8(kN * kOut, 7.0f);
    set_num_threads(1);
    qgemm(x.data(), qw, bias.data(), y1.data(), kN, Epilogue::kBias);
    set_num_threads(8);
    // Several reps: whether a worker or the caller wins a chunk is a
    // race, so one quiet pass proves little.
    for (int rep = 0; rep < 8; ++rep) {
      std::fill(y8.begin(), y8.end(), 7.0f);
      qgemm(x.data(), qw, bias.data(), y8.data(), kN, Epilogue::kBias);
      // Each output element is produced by exactly one thread with a
      // shape-determined reduction order, so this is bitwise.
      for (std::size_t i = 0; i < y1.size(); ++i) {
        ASSERT_EQ(y1[i], y8[i]) << quant_kind_name(kind) << " rep " << rep
                                << " elem " << i;
      }
    }
    set_num_threads(0);
  }
}

TEST(QuantKernels, NanActivationInScalarTailIsDefinedAndFinite) {
  // K = 100 leaves a 4-element scalar tail after the 16-lane AVX-512
  // body. A NaN there slips past the amax reduction (std::max discards
  // NaN), which used to hit an undefined float->int cast; it must now
  // map to the same code as the vector body's cvtps2dq+clamp and yield
  // finite outputs.
  constexpr std::size_t kN = 4, kIn = 100, kOut = 64;
  const auto w = random_matrix(kIn * kOut, 61, 0.1f);
  const auto bias = random_matrix(kOut, 62, 0.05f);
  auto x = random_matrix(kN * kIn, 63);
  x[1 * kIn + 98] = std::numeric_limits<float>::quiet_NaN();  // tail of row 1
  const auto qw = QuantMatrix::quantize(QuantKind::kInt8, w.data(), kIn, kOut);
  std::vector<float> y(kN * kOut, -7.0f);
  qgemm(x.data(), qw, bias.data(), y.data(), kN, Epilogue::kBias);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i])) << "elem " << i;
  }
}

TEST(Quant, Int8NanElementPoisonsColumnToZeroScale) {
  // The documented contract: a column holding any non-finite weight
  // quantizes to scale 0 + all-zero codes. NaN is the tricky case — a
  // std::max amax reduction silently discards it.
  constexpr std::size_t kRows = 8, kCols = 3;
  auto w = random_matrix(kRows * kCols, 71);
  w[4 * kCols + 1] = std::numeric_limits<float>::quiet_NaN();
  const auto q = QuantMatrix::quantize(QuantKind::kInt8, w.data(), kRows, kCols);
  EXPECT_EQ(q.scale[1], 0.0f);
  EXPECT_GT(q.scale[0], 0.0f);
  EXPECT_GT(q.scale[2], 0.0f);
  std::vector<float> back(w.size());
  q.dequantize(back.data());
  for (std::size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(back[r * kCols + 1], 0.0f) << "row " << r;
  }
}

// --- backend registry & dispatch --------------------------------------------

TEST(GemmBackend, CpuIsRegisteredAndActiveByDefault) {
  const auto names = gemm_backend_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "cpu");
  EXPECT_EQ(gemm_backend_name(), "cpu");
}

TEST(GemmBackend, RegistrationValidatesAndDispatchCounts) {
  // Reject incomplete tables and duplicate names.
  EXPECT_FALSE(register_gemm_backend(GemmBackendOps{}));
  {
    GemmBackendOps dup;
    dup.name = "cpu";
    dup.nn = [](const float*, const float*, float*, std::size_t, std::size_t,
                std::size_t) {};
    dup.nt = dup.nn;
    dup.tn = dup.nn;
    dup.gemv = [](const float*, const float*, const float*, float*,
                  std::size_t, std::size_t) {};
    EXPECT_FALSE(register_gemm_backend(dup));
  }

  // A minimal f32-only backend (no quantized entries): dispatch must
  // route qgemm/qgemv through the dequant fallback + its f32 kernels,
  // and bump its counter for every entry point.
  static int nn_calls = 0;
  GemmBackendOps null_ops;
  null_ops.name = "test-null";
  null_ops.nn = [](const float* A, const float* B, float* C, std::size_t M,
                   std::size_t K, std::size_t N) {
    ++nn_calls;
    for (std::size_t m = 0; m < M; ++m) {
      for (std::size_t k = 0; k < K; ++k) {
        for (std::size_t j = 0; j < N; ++j) {
          C[m * N + j] += A[m * K + k] * B[k * N + j];
        }
      }
    }
  };
  null_ops.nt = [](const float*, const float*, float*, std::size_t,
                   std::size_t, std::size_t) {};
  null_ops.tn = [](const float*, const float*, float*, std::size_t,
                   std::size_t, std::size_t) {};
  null_ops.gemv = [](const float* x, const float* w, const float* bias,
                     float* y, std::size_t in, std::size_t out) {
    for (std::size_t j = 0; j < out; ++j) {
      float acc = bias != nullptr ? bias[j] : 0.0f;
      for (std::size_t k = 0; k < in; ++k) acc += x[k] * w[k * out + j];
      y[j] = acc;
    }
  };
  const bool first_run = register_gemm_backend(null_ops);
  if (!first_run) {
    // Re-registration in the same process (test repeated via --gtest_repeat)
    // is expected to be refused; the backend from the first run persists.
    EXPECT_NE(std::find(gemm_backend_names().begin(),
                        gemm_backend_names().end(), "test-null"),
              gemm_backend_names().end());
  }

  ASSERT_TRUE(set_gemm_backend("test-null"));
  EXPECT_EQ(gemm_backend_name(), "test-null");
  obs::Counter& c = obs::counter("tensor.gemm_backend_dispatch.test-null");
  const auto before = c.value();
  const int calls_before = nn_calls;

  constexpr std::size_t kIn = 8, kOut = 12;
  const auto w = random_matrix(kIn * kOut, 51, 0.1f);
  const auto x = random_matrix(kIn, 52);
  const auto qw = QuantMatrix::quantize(QuantKind::kInt8, w.data(), kIn, kOut);
  std::vector<float> wq(w.size());
  qw.dequantize(wq.data());

  std::vector<float> y_fb(kOut), y_ref(kOut);
  qgemm(x.data(), qw, nullptr, y_fb.data(), 1, Epilogue::kNone);
  EXPECT_GT(nn_calls, calls_before);  // fallback used the backend's nn
  for (std::size_t j = 0; j < kOut; ++j) {
    float acc = 0.0f;
    for (std::size_t k = 0; k < kIn; ++k) acc += x[k] * wq[k * kOut + j];
    y_ref[j] = acc;
  }
  EXPECT_LE(max_abs_diff(y_fb.data(), y_ref.data(), kOut), 1e-5f);

  std::vector<float> yv(kOut);
  qgemv(x.data(), qw, nullptr, yv.data(), Epilogue::kNone);
  EXPECT_LE(max_abs_diff(yv.data(), y_ref.data(), kOut), 1e-5f);

  EXPECT_GE(c.value() - before, 2);  // one dispatch per entry point above

  // Unknown names are refused without changing the active backend; then
  // restore the real one for the rest of the process.
  EXPECT_FALSE(set_gemm_backend("no-such-backend"));
  EXPECT_EQ(gemm_backend_name(), "test-null");
  ASSERT_TRUE(set_gemm_backend("cpu"));
  const auto cpu_before =
      obs::counter("tensor.gemm_backend_dispatch.cpu").value();
  std::vector<float> y(kOut, 0.0f);
  gemv(x.data(), w.data(), nullptr, y.data(), kIn, kOut);
  EXPECT_GE(obs::counter("tensor.gemm_backend_dispatch.cpu").value(),
            cpu_before + 1);
}

// --- quantized decode equivalence -------------------------------------------

nn::Tokenizer small_tokenizer() {
  return nn::Tokenizer({4, 4, 2, 2, 2, 2, 2, 2});
}

TEST(QuantDecode, RepackedLogitsWithinToleranceOfF32) {
  const auto tok = small_tokenizer();
  Rng rng(60);
  nn::ModelConfig cfg = nn::ModelConfig::tiny(tok.vocab_size());
  cfg.n_layers = 2;
  nn::TransformerLM model(cfg, rng);

  const std::vector<int> seq{2, 7, 11, 3, 19, 5, 8};
  // f32 reference logits per step.
  std::vector<std::vector<float>> ref;
  {
    auto cache = model.make_cache();
    std::vector<float> logits;
    for (int t : seq) {
      model.infer_step(cache, t, logits);
      ref.push_back(logits);
    }
  }
  struct Tier {
    tensor::QuantKind kind;
    float tol;
  };
  // Tolerance contract (DESIGN.md): bf16 ~ 2^-8 relative weight error
  // (+2^-9 activation rounding), int8 per-column absolute weight error
  // (+per-row activation quantization); both amplified by depth. These
  // bounds are the documented ones for tiny/bench-scale configs.
  for (const Tier tier : {Tier{QuantKind::kBf16, 5e-2f},
                          Tier{QuantKind::kInt8, 2e-1f}}) {
    model.set_inference_quant(tier.kind);
    EXPECT_EQ(model.inference_quant(), tier.kind);
    auto cache = model.make_cache();
    std::vector<float> logits;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      model.infer_step(cache, seq[i], logits);
      ASSERT_EQ(logits.size(), ref[i].size());
      EXPECT_LE(max_abs_diff(logits.data(), ref[i].data(), logits.size()),
                tier.tol)
          << quant_kind_name(tier.kind) << " step " << i;
    }
  }
  // kF32 restores the exact float path.
  model.set_inference_quant(QuantKind::kF32);
  auto cache = model.make_cache();
  std::vector<float> logits;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    model.infer_step(cache, seq[i], logits);
    for (std::size_t j = 0; j < logits.size(); ++j) {
      ASSERT_EQ(logits[j], ref[i][j]) << "step " << i << " logit " << j;
    }
  }
}

TEST(QuantDecode, BatchedMatchesReferenceStepPathQuantized) {
  // The batched and reference inference paths must stay exactly
  // equivalent under quantization (same kernels, same per-row reduction
  // order).
  const auto tok = small_tokenizer();
  Rng rng(61);
  nn::ModelConfig cfg = nn::ModelConfig::tiny(tok.vocab_size());
  cfg.n_layers = 2;
  nn::TransformerLM model(cfg, rng);
  model.set_inference_quant(QuantKind::kInt8);

  const std::vector<std::vector<int>> seqs{
      {2, 7, 11, 3, 19}, {5, 5, 5, 5, 5}, {21, 2, 13, 17, 8}};
  std::vector<nn::TransformerLM::Cache> ref_caches;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    ref_caches.push_back(model.make_cache());
  }
  auto bcache = model.make_batched_cache(static_cast<int>(seqs.size()));
  std::vector<float> ref_logits, bat_logits;
  const auto vocab = static_cast<std::size_t>(cfg.vocab);
  for (std::size_t t = 0; t < seqs[0].size(); ++t) {
    std::vector<int> slots, tokens;
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      slots.push_back(static_cast<int>(i));
      tokens.push_back(seqs[i][t]);
    }
    model.infer_step_batched(bcache, slots, tokens, bat_logits);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      model.infer_step(ref_caches[i], seqs[i][t], ref_logits);
      for (std::size_t j = 0; j < vocab; ++j) {
        ASSERT_FLOAT_EQ(ref_logits[j], bat_logits[i * vocab + j])
            << "seq " << i << " step " << t << " logit " << j;
      }
    }
  }
}

TEST(QuantDecode, WidthInvariantTokenIdenticalWithRefill) {
  // n=23 through widths 1/8/16: 23 is coprime-ish with both widths, so
  // the wider runs exercise mid-stream slot refill (continuous
  // batching), and every width must emit token-identical sequences.
  const auto tok = small_tokenizer();
  Rng rng(62);
  nn::ModelConfig cfg = nn::ModelConfig::tiny(tok.vocab_size());
  nn::TransformerLM model(cfg, rng);
  model.set_inference_quant(QuantKind::kInt8);

  nn::SampleOptions opts;
  opts.temperature = 0.9f;
  opts.top_k = 8;
  opts.max_len = 40;
  constexpr int kN = 23;

  std::vector<std::vector<nn::SampleResult>> by_width;
  for (const int width : {1, 8, 16}) {
    nn::BatchedDecoder decoder(model, tok, width, opts);
    Rng sample_rng(63);
    by_width.push_back(decoder.decode(sample_rng, kN));
  }
  for (std::size_t w = 1; w < by_width.size(); ++w) {
    ASSERT_EQ(by_width[w].size(), by_width[0].size());
    for (int i = 0; i < kN; ++i) {
      const auto& a = by_width[0][static_cast<std::size_t>(i)];
      const auto& b = by_width[w][static_cast<std::size_t>(i)];
      EXPECT_EQ(a.ids, b.ids) << "width index " << w << " seq " << i;
      EXPECT_EQ(a.hit_eos, b.hit_eos);
      ASSERT_EQ(a.logprobs.size(), b.logprobs.size());
      for (std::size_t k = 0; k < a.logprobs.size(); ++k) {
        EXPECT_FLOAT_EQ(a.logprobs[k], b.logprobs[k]);
      }
    }
  }
}

TEST(QuantDecode, LoadFromRefreshesQuantizedWeights) {
  const auto tok = small_tokenizer();
  Rng rng_a(70), rng_b(71);
  const nn::ModelConfig cfg = nn::ModelConfig::tiny(tok.vocab_size());
  nn::TransformerLM a(cfg, rng_a);
  nn::TransformerLM b(cfg, rng_b);
  a.set_inference_quant(QuantKind::kInt8);

  // After load_from, a's quantized decode must match a fresh repack of
  // b's weights — not the stale snapshot of a's old ones.
  a.load_from(b);
  b.set_inference_quant(QuantKind::kInt8);
  auto ca = a.make_cache(), cb = b.make_cache();
  std::vector<float> la, lb;
  for (const int t : {2, 9, 4}) {
    a.infer_step(ca, t, la);
    b.infer_step(cb, t, lb);
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t j = 0; j < la.size(); ++j) {
      ASSERT_EQ(la[j], lb[j]) << "logit " << j;
    }
  }
}

TEST(QuantDecode, AlignedSlabsInBatchedCache) {
  const auto tok = small_tokenizer();
  Rng rng(72);
  const nn::ModelConfig cfg = nn::ModelConfig::tiny(tok.vocab_size());
  const nn::TransformerLM model(cfg, rng);
  auto cache = model.make_batched_cache(5);
  for (const auto& slab : cache.k) {
    EXPECT_TRUE(is_kernel_aligned(slab.data()));
  }
  for (const auto& slab : cache.v) {
    EXPECT_TRUE(is_kernel_aligned(slab.data()));
  }
}

}  // namespace
